/**
 * @file
 * Bug-report triage (the paper's envisioned deployment, §1): run
 * Portend over the whole workload suite and print a priority-sorted
 * triage queue — "spec violated" first, then "output differs",
 * leaving the harmless categories for later.
 *
 *   $ ./triage_bug_reports [workload...]
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "portend/portend.h"
#include "workloads/registry.h"

using namespace portend;

namespace {

struct Item
{
    std::string program;
    std::string cell;
    core::RaceClass cls;
    core::ViolationKind viol;
    int instances;
    std::string detail;
};

int
severity(core::RaceClass c)
{
    switch (c) {
      case core::RaceClass::SpecViolated: return 0;
      case core::RaceClass::OutputDiffers: return 1;
      case core::RaceClass::Unclassified: return 2;
      case core::RaceClass::KWitnessHarmless: return 3;
      case core::RaceClass::SingleOrdering: return 4;
    }
    return 5;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            names.push_back(argv[i]);
    } else {
        names = workloads::workloadNames();
    }

    std::vector<Item> queue;
    for (const auto &name : names) {
        workloads::Workload w = workloads::buildWorkload(name);
        core::Portend tool(w.program);
        core::PortendResult res = tool.run();
        for (const auto &r : res.reports) {
            Item item;
            item.program = name;
            item.cell = w.program.cellName(
                r.cluster.representative.cell);
            item.cls = r.classification.cls;
            item.viol = r.classification.viol;
            item.instances = r.cluster.instances;
            item.detail = r.classification.detail;
            queue.push_back(std::move(item));
        }
    }

    std::stable_sort(queue.begin(), queue.end(),
                     [](const Item &a, const Item &b) {
                         return severity(a.cls) < severity(b.cls);
                     });

    std::printf("triage queue (%zu races, most severe first)\n",
                queue.size());
    std::printf("%-4s %-11s %-22s %-20s %9s\n", "#", "program",
                "location", "class", "instances");
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Item &it = queue[i];
        std::string cls = core::raceClassName(it.cls);
        if (it.cls == core::RaceClass::SpecViolated) {
            cls += std::string(" (") +
                   core::violationKindName(it.viol) + ")";
        }
        std::printf("%-4zu %-11s %-22s %-20s %9d\n", i + 1,
                    it.program.c_str(), it.cell.c_str(), cls.c_str(),
                    it.instances);
    }
    return 0;
}
