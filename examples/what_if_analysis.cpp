/**
 * @file
 * What-if analysis (paper §5.1): is it safe to remove a particular
 * synchronization point, e.g. to reduce lock contention? We build
 * the memcached model twice — once as shipped and once with the
 * stats-lock turned into a no-op — and let Portend judge the race
 * the removal induces.
 *
 *   $ ./what_if_analysis
 */

#include <cstdio>

#include "portend/portend.h"
#include "workloads/registry.h"

using namespace portend;

namespace {

void
report(const char *title, const workloads::Workload &w)
{
    core::Portend tool(w.program);
    core::PortendResult res = tool.run();
    int harmful = 0;
    std::printf("== %s: %zu distinct races\n", title,
                res.reports.size());
    for (const auto &r : res.reports) {
        if (!r.classification.harmful())
            continue;
        harmful += 1;
        std::printf("%s\n",
                    core::formatReport(w.program, r).c_str());
    }
    if (!harmful)
        std::printf("   no harmful races\n");
    std::printf("\n");
}

} // namespace

int
main()
{
    workloads::Workload normal = workloads::buildMemcached(false);
    report("memcached (as shipped)", normal);

    workloads::Workload whatif = workloads::buildMemcached(true);
    report("memcached (stats_lock removed)", whatif);

    std::printf("Verdict: removing the lock admits an interleaving "
                "in which a reader\nobserves the transient zero "
                "divisor and the server crashes — Portend\nclassifies "
                "the induced race 'spec violated', so the lock must "
                "stay.\n");
    return 0;
}
