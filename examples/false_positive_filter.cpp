/**
 * @file
 * False-positive filtering (paper §5.2): imprecise detectors (e.g.
 * static or lockset-based tools, or a happens-before detector blind
 * to some synchronization) report races that are not races. Portend
 * classifies every such report "single ordering". This example runs
 * a mutex-protected program under a detector with its mutex
 * awareness removed and shows Portend absorbing the false reports.
 *
 *   $ ./false_positive_filter
 */

#include <cstdio>

#include "ir/builder.h"
#include "portend/portend.h"

using namespace portend;
using ir::I;
using ir::R;
using K = sym::ExprKind;

int
main()
{
    // Correctly synchronized bank account: both threads deposit
    // under a lock.
    ir::ProgramBuilder pb("bank");
    ir::GlobalId balance = pb.global("balance", 1, {100});
    ir::SyncId lock = pb.mutex("account_lock");

    for (int t = 1; t <= 2; ++t) {
        auto &f = pb.function("deposit" + std::to_string(t), 1);
        f.file("bank.c").line(20 + t);
        f.to(f.block("entry"));
        f.lock(lock);
        ir::Reg v = f.load(balance);
        f.store(balance, I(0), R(f.bin(K::Add, R(v), I(10 * t))));
        f.unlock(lock);
        f.retVoid();
    }
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg t1 = m.threadCreate("deposit1", I(0));
    ir::Reg t2 = m.threadCreate("deposit2", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.output("balance", R(m.load(balance)));
    m.halt();
    ir::Program program = pb.build();

    // A sound detector reports nothing.
    {
        core::Portend tool(program);
        core::DetectionResult det = tool.detect();
        std::printf("happens-before detector: %zu race reports "
                    "(expected 0)\n",
                    det.clusters.size());
    }

    // An imperfect detector (mutex-blind) reports false positives;
    // Portend classifies every one as "single ordering".
    {
        core::PortendOptions opts;
        opts.detector = core::DetectorKind::HappensBeforeNoMutex;
        core::Portend tool(program, opts);
        core::PortendResult res = tool.run();
        std::printf("mutex-blind detector: %zu race reports\n",
                    res.reports.size());
        for (const auto &r : res.reports) {
            std::printf("  %-14s -> %s\n",
                        program
                            .cellName(r.cluster.representative.cell)
                            .c_str(),
                        core::raceClassName(r.classification.cls));
        }
    }
    std::printf("All false positives land in 'single ordering': the "
                "alternate ordering\ncannot be produced, exactly as "
                "the paper reports for its imperfect-detector\n"
                "experiment.\n");
    return 0;
}
