/**
 * @file
 * Quickstart: build a small racy program with the PIL builder API,
 * run the full Portend pipeline on it, and print the classified
 * race reports.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "ir/builder.h"
#include "portend/portend.h"

using namespace portend;
using ir::I;
using ir::R;
using K = sym::ExprKind;

int
main()
{
    // A tiny server: a worker bumps a shared request counter while
    // the main thread snapshots it for a status line — without any
    // synchronization. Is that race harmful?
    ir::ProgramBuilder pb("quickstart");
    ir::GlobalId requests = pb.global("requests");

    auto &worker = pb.function("worker", 1);
    worker.file("server.c").line(42);
    worker.to(worker.block("entry"));
    ir::Reg v = worker.load(requests);
    worker.store(requests, I(0), R(worker.bin(K::Add, R(v), I(1))));
    worker.retVoid();

    auto &m = pb.function("main", 0);
    m.file("server.c").line(10);
    m.to(m.block("entry"));
    ir::Reg tid = m.threadCreate("worker", I(0));
    ir::Reg snapshot = m.load(requests); // races with the worker
    m.output("status", R(snapshot));
    m.threadJoin(R(tid));
    m.halt();

    ir::Program program = pb.build();

    // Run detection + classification with the paper's defaults
    // (Mp = 5 primary paths, Ma = 2 alternate schedules).
    core::Portend tool(program);
    core::PortendResult result = tool.run();

    std::printf("detected %zu distinct race(s), %zu dynamic "
                "instance(s)\n\n",
                result.detection.clusters.size(),
                result.detection.dynamic_races);
    for (const core::PortendReport &report : result.reports)
        std::printf("%s\n", core::formatReport(program, report).c_str());

    std::printf("schedule trace: %s\n",
                result.detection.trace.summary().c_str());
    return 0;
}
