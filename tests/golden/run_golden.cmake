# Golden-verdict diff: run `portend classify <WORKLOAD> --json` and
# compare its bytes against the pinned golden file. Invoked by ctest
# (see tests/CMakeLists.txt) with:
#   -DPORTEND=<path to the portend binary>
#   -DWORKLOAD=<workload name>
#   -DGOLDEN=<path to tests/golden/<workload>.json>
#
# The comparison is byte-exact on purpose: verdict classes, k
# counts, distinct-schedule ledgers, and evidence signatures are all
# deterministic (across --jobs values and sanitizer builds), so any
# diff is a behavior change that must be reviewed. Regenerate with
# tools/update_goldens.sh and commit the diff.

foreach(var PORTEND WORKLOAD GOLDEN)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_golden.cmake needs -D${var}=...")
    endif()
endforeach()

# Optional -DDISPATCH=<switch|threaded|auto>: the golden bytes must
# not depend on the interpreter's dispatch loop, so the harness also
# runs each workload pinned to the portable switch loop.
set(dispatch_args)
if(DEFINED DISPATCH)
    set(dispatch_args --dispatch ${DISPATCH})
endif()

execute_process(
    COMMAND ${PORTEND} ${dispatch_args} classify ${WORKLOAD} --json
    OUTPUT_VARIABLE got
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "portend classify ${WORKLOAD} --json exited with ${rc}")
endif()

if(NOT EXISTS ${GOLDEN})
    message(FATAL_ERROR "missing golden file ${GOLDEN} "
        "(run tools/update_goldens.sh)")
endif()
file(READ ${GOLDEN} want)

if(NOT got STREQUAL want)
    # Show the fresh output so the ctest log carries the full diff
    # context without needing a rerun.
    message(FATAL_ERROR
        "golden mismatch for workload '${WORKLOAD}'.\n"
        "--- expected (${GOLDEN}) ---\n${want}\n"
        "--- got ---\n${got}\n"
        "If the change is intentional, regenerate with "
        "tools/update_goldens.sh and review the git diff.")
endif()
