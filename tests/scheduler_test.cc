/** @file Determinism and accounting tests for the parallel
 *  classification scheduler. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "portend/portend.h"
#include "portend/scheduler.h"
#include "workloads/registry.h"

namespace portend::core {
namespace {

/** Run one workload's full pipeline with the given worker count. */
PortendResult
runWith(const workloads::Workload &w, int jobs,
        std::uint64_t seed = 1)
{
    PortendOptions opts;
    opts.jobs = jobs;
    opts.detection_seed = seed;
    opts.semantic_predicates = w.semantic_predicates;
    Portend tool(w.program, opts);
    return tool.run();
}

/** Concatenated Fig. 6 report text of a pipeline result. */
std::string
reportText(const ir::Program &prog, const PortendResult &res)
{
    std::ostringstream os;
    for (const PortendReport &r : res.reports)
        os << formatReport(prog, r);
    return os.str();
}

// The headline contract: a full-suite run with jobs=4 produces the
// same verdicts, k values, and Fig. 6 report bytes as jobs=1 at the
// same seed. Parallelism must be a pure throughput dial.
TEST(SchedulerDeterminismTest, FullSuiteIdenticalAcrossJobs)
{
    for (const std::string &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        PortendResult seq = runWith(w, 1);
        PortendResult par = runWith(w, 4);

        ASSERT_EQ(seq.reports.size(), par.reports.size()) << name;
        for (std::size_t i = 0; i < seq.reports.size(); ++i) {
            const Classification &a = seq.reports[i].classification;
            const Classification &b = par.reports[i].classification;
            EXPECT_EQ(a.cls, b.cls) << name << " cluster " << i;
            EXPECT_EQ(a.k, b.k) << name << " cluster " << i;
            EXPECT_EQ(a.viol, b.viol) << name << " cluster " << i;
            EXPECT_EQ(a.detail, b.detail) << name << " cluster " << i;
        }
        EXPECT_EQ(reportText(w.program, seq),
                  reportText(w.program, par))
            << name;
    }
}

// Detection is untouched by the scheduler refactor: same clusters,
// same trace, same step counts for any jobs value.
TEST(SchedulerDeterminismTest, DetectionUnaffectedByJobs)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    PortendResult seq = runWith(w, 1);
    PortendResult par = runWith(w, 4);
    EXPECT_EQ(seq.detection.dynamic_races, par.detection.dynamic_races);
    EXPECT_EQ(seq.detection.clusters.size(),
              par.detection.clusters.size());
    EXPECT_EQ(seq.detection.steps, par.detection.steps);
}

TEST(SchedulerStatsTest, LedgerMatchesPerClusterStats)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    PortendResult res = runWith(w, 2);
    ASSERT_FALSE(res.reports.empty());

    std::uint64_t steps = 0;
    int schedules = 0;
    for (const PortendReport &r : res.reports) {
        steps += r.classification.stats.steps;
        schedules += r.classification.stats.schedules_explored;
    }
    EXPECT_EQ(res.scheduling.steps, steps);
    EXPECT_EQ(res.scheduling.schedules_explored, schedules);
    EXPECT_EQ(res.scheduling.clusters,
              static_cast<int>(res.reports.size()));
    EXPECT_GE(res.scheduling.jobs, 1);
    EXPECT_GT(res.scheduling.steps, 0u);
    EXPECT_GE(res.scheduling.seconds, 0.0);
}

TEST(SchedulerStatsTest, PerClusterWallTimeIsRecorded)
{
    workloads::Workload w = workloads::buildWorkload("bbuf");
    PortendResult res = runWith(w, 2);
    ASSERT_FALSE(res.reports.empty());
    for (const PortendReport &r : res.reports) {
        EXPECT_GT(r.classification.stats.seconds, 0.0);
        EXPECT_GE(r.classification.stats.queue_seconds, 0.0);
    }
}

TEST(SchedulerBudgetTest, GlobalBudgetsSliceDeterministically)
{
    workloads::Workload w = workloads::buildWorkload("bbuf");
    PortendOptions opts;
    opts.total_state_budget = 64;
    opts.total_step_budget = 4000000;
    rt::StaticInfo si(w.program);

    ClassificationScheduler sched(w.program, opts, si);
    for (std::size_t i = 0; i < 4; ++i) {
        PortendOptions sliced = sched.taskOptions(4, i);
        EXPECT_EQ(sliced.executor_max_states, 16) << "cluster " << i;
        EXPECT_EQ(sliced.max_steps, 1000000u) << "cluster " << i;
    }

    // Slices never exceed the per-task caps.
    PortendOptions one = sched.taskOptions(1, 0);
    EXPECT_EQ(one.executor_max_states, 64);
    EXPECT_EQ(one.max_steps, opts.max_steps);

    // Without global budgets the per-task caps pass through.
    PortendOptions unbudgeted;
    ClassificationScheduler plain(w.program, unbudgeted, si);
    PortendOptions same = plain.taskOptions(8, 3);
    EXPECT_EQ(same.executor_max_states,
              unbudgeted.executor_max_states);
    EXPECT_EQ(same.max_steps, unbudgeted.max_steps);
}

// Budgets that do not divide evenly must not lose their remainder:
// the first `total % n` clusters carry one extra unit and the slices
// sum back to the exact global budget.
TEST(SchedulerBudgetTest, SliceRemainderIsDistributed)
{
    workloads::Workload w = workloads::buildWorkload("bbuf");
    PortendOptions opts;
    opts.total_state_budget = 65;      // 65 = 4*16 + 1
    opts.total_step_budget = 4000003;  // 4000003 = 4*1000000 + 3
    rt::StaticInfo si(w.program);
    ClassificationScheduler sched(w.program, opts, si);

    int state_sum = 0;
    std::uint64_t step_sum = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        PortendOptions sliced = sched.taskOptions(4, i);
        state_sum += sliced.executor_max_states;
        step_sum += sliced.max_steps;
        // The remainder lands on the lowest indices, one unit each.
        EXPECT_EQ(sliced.executor_max_states, i == 0 ? 17 : 16)
            << "cluster " << i;
        EXPECT_EQ(sliced.max_steps, i < 3 ? 1000001u : 1000000u)
            << "cluster " << i;
    }
    EXPECT_EQ(state_sum, opts.total_state_budget);
    EXPECT_EQ(step_sum, opts.total_step_budget);
}

// The scheduler's ladder accounting: one build replay per batch, and
// a rung for every cluster the replay reached.
TEST(SchedulerLadderTest, LadderIsBuiltOncePerBatch)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    PortendResult res = runWith(w, 2);
    ASSERT_FALSE(res.reports.empty());
    EXPECT_GT(res.scheduling.ladder_rungs, 0);
    EXPECT_LE(res.scheduling.ladder_rungs, res.scheduling.clusters);
    EXPECT_GT(res.scheduling.ladder_steps, 0u);
    // Every covered cluster saves at least its own prefix replay.
    EXPECT_GE(res.scheduling.ladder_covered_steps,
              static_cast<std::uint64_t>(res.scheduling.ladder_rungs));
}

TEST(SchedulerBudgetTest, JobsZeroResolvesToHardware)
{
    workloads::Workload w = workloads::buildWorkload("avv");
    PortendOptions opts;
    opts.jobs = 0;
    rt::StaticInfo si(w.program);
    ClassificationScheduler sched(w.program, opts, si);
    EXPECT_GE(sched.jobs(), 1);
}

/** Full pipeline under an explicit explorer and worker count. */
PortendResult
runWithExplorer(const workloads::Workload &w, explore::ExploreMode m,
                int jobs, int ma = 4)
{
    PortendOptions opts;
    opts.jobs = jobs;
    opts.ma = ma;
    opts.explore = m;
    opts.semantic_predicates = w.semantic_predicates;
    Portend tool(w.program, opts);
    return tool.run();
}

// The explorer is job-local state driven only by its own cluster's
// runs: dpor verdicts, k counts, distinct-schedule ledgers, and the
// Fig. 6 report bytes are identical across --jobs values. (The same
// byte streams are pinned by the golden suite, which CI runs under
// both the regular and TSan builds — cross-build identity rides on
// that.)
TEST(ExplorerDeterminismTest, DporIdenticalAcrossJobs)
{
    for (const std::string &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        PortendResult seq =
            runWithExplorer(w, explore::ExploreMode::Dpor, 1);
        PortendResult par =
            runWithExplorer(w, explore::ExploreMode::Dpor, 4);

        ASSERT_EQ(seq.reports.size(), par.reports.size()) << name;
        for (std::size_t i = 0; i < seq.reports.size(); ++i) {
            const Classification &a = seq.reports[i].classification;
            const Classification &b = par.reports[i].classification;
            EXPECT_EQ(a.cls, b.cls) << name << " cluster " << i;
            EXPECT_EQ(a.k, b.k) << name << " cluster " << i;
            EXPECT_EQ(a.stats.distinct_schedules,
                      b.stats.distinct_schedules)
                << name << " cluster " << i;
            EXPECT_EQ(a.stats.schedules_explored,
                      b.stats.schedules_explored)
                << name << " cluster " << i;
            EXPECT_EQ(a.evidence_signature, b.evidence_signature)
                << name << " cluster " << i;
            EXPECT_EQ(a.evidence_schedule, b.evidence_schedule)
                << name << " cluster " << i;
        }
        EXPECT_EQ(reportText(w.program, seq),
                  reportText(w.program, par))
            << name;
        EXPECT_EQ(seq.scheduling.distinct_schedules,
                  par.scheduling.distinct_schedules)
            << name;
    }
}

// Same contract for the legacy random explorer (whose runs the dpor
// random phase must reproduce seed-for-seed).
TEST(ExplorerDeterminismTest, RandomIdenticalAcrossJobs)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    PortendResult seq =
        runWithExplorer(w, explore::ExploreMode::Random, 1);
    PortendResult par =
        runWithExplorer(w, explore::ExploreMode::Random, 4);
    EXPECT_EQ(reportText(w.program, seq), reportText(w.program, par));
}

// Rerunning the identical dpor configuration twice is byte-stable —
// the explorer has no hidden wall-clock or address-order state
// (this is what makes the TSan build's golden runs meaningful).
TEST(ExplorerDeterminismTest, DporIsRunToRunStable)
{
    workloads::Workload w = workloads::buildWorkload("ctrace");
    PortendResult one =
        runWithExplorer(w, explore::ExploreMode::Dpor, 2);
    PortendResult two =
        runWithExplorer(w, explore::ExploreMode::Dpor, 2);
    EXPECT_EQ(reportText(w.program, one), reportText(w.program, two));
    EXPECT_EQ(one.scheduling.distinct_schedules,
              two.scheduling.distinct_schedules);
}

// The batch ledger aggregates the per-cluster distinct-schedule
// counts exactly (scheduler accounting for the new stat).
TEST(SchedulerStatsTest, DistinctScheduleLedgerSums)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    PortendResult res = runWith(w, 2);
    int distinct = 0;
    for (const PortendReport &r : res.reports) {
        EXPECT_LE(r.classification.stats.distinct_schedules,
                  r.classification.stats.schedules_explored);
        distinct += r.classification.stats.distinct_schedules;
    }
    EXPECT_EQ(res.scheduling.distinct_schedules, distinct);
}

// classifyRace now reuses the facade's analyzer (and its hoisted
// StaticInfo): repeated calls agree with each other and with the
// batch verdict for the same race.
TEST(SchedulerReuseTest, ClassifyRaceReusesAnalyzer)
{
    workloads::Workload w = workloads::buildWorkload("avv");
    PortendOptions opts;
    opts.semantic_predicates = w.semantic_predicates;
    Portend tool(w.program, opts);
    DetectionResult det = tool.detect();
    ASSERT_FALSE(det.clusters.empty());

    const race::RaceReport &race = det.clusters[0].representative;
    Classification first = tool.classifyRace(race, det.trace);
    Classification second = tool.classifyRace(race, det.trace);
    EXPECT_EQ(first.cls, second.cls);
    EXPECT_EQ(first.k, second.k);
    EXPECT_EQ(first.detail, second.detail);
}

} // namespace
} // namespace portend::core
