/**
 * @file
 * Minimizer tests: convergence to a 1-minimal reproducer on a known
 * injected oracle bug, predicate preservation, probe budgeting, and
 * signature-preserving shrinking against the real oracle.
 */

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"

namespace portend::fuzz {
namespace {

/** A bulky start recipe with one "guilty" atom buried in noise. */
ProgramRecipe
bulkyRecipe()
{
    ProgramRecipe r;
    r.name = "bulky";
    r.workers = 4;
    r.patterns.push_back(
        PatternSpec{PatternKind::LastWriter, 0, 1, 11});
    r.patterns.push_back(
        PatternSpec{PatternKind::OverflowCrash, 2, 3, 4});
    r.patterns.push_back(
        PatternSpec{PatternKind::PrintedValue, 1, 2, 33});
    r.decors.push_back(DecorSpec{DecorKind::Barrier, 0, 1, 0});
    r.decors.push_back(DecorSpec{DecorKind::MutexCounter, 2, 3, 3});
    r.decors.push_back(DecorSpec{DecorKind::YieldNoise, 0, 2, 2});
    return r;
}

TEST(FuzzMinimize, ConvergesOnInjectedOracleBug)
{
    // Simulated oracle bug: "fails whenever the program contains an
    // overflow-crash pattern". The minimizer must strip everything
    // else and shrink the guilty atom's parameter to its minimum.
    auto pred = [](const ProgramRecipe &r) {
        for (const PatternSpec &p : r.patterns)
            if (p.kind == PatternKind::OverflowCrash)
                return true;
        return false;
    };
    MinimizeResult res = minimizeRecipe(bulkyRecipe(), pred);
    EXPECT_TRUE(res.one_minimal);
    ASSERT_EQ(res.recipe.patterns.size(), 1u);
    EXPECT_EQ(res.recipe.patterns[0].kind,
              PatternKind::OverflowCrash);
    EXPECT_EQ(res.recipe.patterns[0].param, 2); // smallest table
    EXPECT_TRUE(res.recipe.decors.empty());
    EXPECT_EQ(res.recipe.workers, 2); // unused threads compacted
    EXPECT_TRUE(pred(res.recipe));
}

TEST(FuzzMinimize, UninterestingStartIsReturnedUnchanged)
{
    auto never = [](const ProgramRecipe &) { return false; };
    ProgramRecipe start = bulkyRecipe();
    MinimizeResult res = minimizeRecipe(start, never);
    EXPECT_EQ(res.recipe, start);
    EXPECT_FALSE(res.one_minimal);
    EXPECT_EQ(res.probes, 1);
}

TEST(FuzzMinimize, RespectsProbeBudget)
{
    auto always = [](const ProgramRecipe &) { return true; };
    MinimizeOptions opts;
    opts.max_probes = 3;
    MinimizeResult res = minimizeRecipe(bulkyRecipe(), always, opts);
    EXPECT_LE(res.probes, 3);
    EXPECT_FALSE(res.one_minimal);
}

TEST(FuzzMinimize, ResultIsOneMinimal)
{
    auto pred = [](const ProgramRecipe &r) {
        for (const PatternSpec &p : r.patterns)
            if (p.kind == PatternKind::OverflowCrash)
                return true;
        return false;
    };
    MinimizeResult res = minimizeRecipe(bulkyRecipe(), pred);
    // Removing any single remaining atom must lose the property.
    for (std::size_t i = 0; i < res.recipe.patterns.size(); ++i) {
        ProgramRecipe cand = res.recipe;
        cand.patterns.erase(cand.patterns.begin() +
                            static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(pred(cand));
    }
}

TEST(FuzzMinimize, SignaturePreservingShrinkAgainstRealOracle)
{
    // The campaign's regression-exemplar path: shrink while the
    // oracle signature is unchanged and the oracle stays clean.
    GeneratedProgram g = generateProgram(42, 3, GeneratorOptions{});
    ASSERT_TRUE(g.verify_errors.empty());
    OracleOptions oopts;
    const std::string sig = runOracle(g.program, oopts).signature();

    auto pred = [&](const ProgramRecipe &cand) {
        GeneratedProgram cg = buildProgram(cand);
        if (!cg.verify_errors.empty())
            return false;
        OracleVerdict v = runOracle(cg.program, oopts);
        return !v.flagged() && v.signature() == sig;
    };
    MinimizeResult res = minimizeRecipe(g.recipe, pred);
    EXPECT_TRUE(res.one_minimal);
    EXPECT_LE(res.recipe.patterns.size(), g.recipe.patterns.size());
    EXPECT_LE(res.recipe.decors.size(), g.recipe.decors.size());
    EXPECT_TRUE(pred(res.recipe));
}

} // namespace
} // namespace portend::fuzz
