/**
 * @file
 * Dispatch-mode differential battery.
 *
 * The interpreter compiles its segment loop twice — a portable switch
 * and a computed-goto direct-threaded variant — and the rebuild's
 * whole correctness argument is that the two are observationally
 * identical: same event stream byte for byte, same final state, same
 * classification verdicts, under every scheduling policy. These tests
 * pin that equivalence, so a divergence introduced in either copy of
 * the loop (or in the shared decode/value/counter machinery they sit
 * on) fails loudly instead of surfacing as a golden drift.
 *
 * On toolchains without computed goto the threaded variant does not
 * exist; every test degrades to switch-vs-switch, which still
 * exercises the digest plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "portend/portend.h"
#include "rt/interpreter.h"
#include "rt/policy.h"
#include "workloads/registry.h"

namespace portend::rt {
namespace {

/** Restore the process-wide default dispatch mode on scope exit. */
class DispatchModeGuard
{
  public:
    DispatchModeGuard() : saved(defaultDispatchMode()) {}
    ~DispatchModeGuard() { setDefaultDispatchMode(saved); }

  private:
    DispatchMode saved;
};

/** The mode pair under test: threaded when built in, else switch
 *  twice (the comparison becomes a determinism check). */
DispatchMode
secondMode()
{
    return threadedDispatchAvailable() ? DispatchMode::Threaded
                                       : DispatchMode::Switch;
}

/** Serializes every observed event into one line. */
class StreamSink : public EventSink
{
  public:
    explicit StreamSink(bool immediate) : immediate_(immediate) {}

    void
    onEvent(const Event &ev) override
    {
        os << eventKindName(ev.kind) << ' ' << ev.tid << ' ' << ev.pc
           << ' ' << ev.step << ' ' << ev.cell << ' ' << ev.atomic
           << ' ' << ev.occurrence << ' ' << ev.cell_occurrence << ' '
           << ev.sid << ' ' << ev.other << '\n';
    }

    bool immediate() const override { return immediate_; }

    std::string str() const { return os.str(); }

  private:
    std::ostringstream os;
    bool immediate_;
};

/** Everything observable about one run, in comparable text form. */
struct RunDigest
{
    std::string events;           ///< batched-sink stream
    std::string immediate_events; ///< immediate-sink stream
    std::string final_state;      ///< outcome, stats, memory, outputs
};

std::string
digestState(const Interpreter &interp, RunOutcome outcome)
{
    const VmState &st = interp.state();
    std::ostringstream os;
    os << "outcome=" << static_cast<int>(outcome)
       << " steps=" << st.stats.steps
       << " preemptions=" << st.stats.preemption_points
       << " threads=" << st.threads.size() << '\n';
    for (std::size_t i = 0; i < st.mem.size(); ++i) {
        const Value &v = st.mem[i];
        os << "cell " << i << " = "
           << (v.isConcrete() ? std::to_string(v.constValue())
                              : v.expr()->toString())
           << '\n';
    }
    for (const OutputRecord &r : st.output.records) {
        os << "out " << r.label << " tid=" << r.tid << " pc=" << r.pc
           << " val="
           << (r.value ? r.value->toString() : std::string("<none>"))
           << '\n';
    }
    os << "chain=" << st.output.concrete_chain.digest() << '\n';
    return os.str();
}

RunDigest
runOnce(const ir::Program &p, DispatchMode mode, bool random_policy)
{
    ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.rng_seed = 7;
    eo.dispatch = mode;
    Interpreter interp(p, eo);
    StreamSink batched(false);
    StreamSink immediate(true);
    interp.addSink(&batched);
    interp.addSink(&immediate);
    RandomPolicy random;
    if (random_policy)
        interp.setPolicy(&random);
    const RunOutcome outcome = interp.run();
    RunDigest d;
    d.events = batched.str();
    d.immediate_events = immediate.str();
    d.final_state = digestState(interp, outcome);
    return d;
}

void
expectModesAgree(const ir::Program &p, const std::string &what)
{
    for (bool random : {false, true}) {
        SCOPED_TRACE(what + (random ? " [random policy]" : " [fifo]"));
        const RunDigest a = runOnce(p, DispatchMode::Switch, random);
        const RunDigest b = runOnce(p, secondMode(), random);
        EXPECT_EQ(a.events, b.events);
        EXPECT_EQ(a.final_state, b.final_state);
        // Batching must be an ordering-preserving buffer: immediate
        // and batched sinks on the *same* run see the same stream.
        EXPECT_EQ(a.events, a.immediate_events);
        EXPECT_EQ(b.events, b.immediate_events);
    }
}

TEST(InterpDifferentialTest, WorkloadEventStreamsMatch)
{
    for (const std::string &name : workloads::workloadNames()) {
        auto w = workloads::buildWorkload(name);
        expectModesAgree(w.program, name);
    }
}

TEST(InterpDifferentialTest, ExtensionWorkloadEventStreamsMatch)
{
    for (const std::string &name : workloads::extensionWorkloadNames()) {
        auto w = workloads::buildWorkload(name);
        expectModesAgree(w.program, name);
    }
}

TEST(InterpDifferentialTest, FuzzedProgramsMatch)
{
    fuzz::GeneratorOptions opts;
    for (std::uint64_t i = 0; i < 12; ++i) {
        auto gen = fuzz::generateProgram(42, i, opts);
        if (!gen.verify_errors.empty())
            continue;
        expectModesAgree(gen.program, gen.recipe.name);
    }
}

TEST(InterpDifferentialTest, ClassificationVerdictsMatch)
{
    // The classifier spins up many interpreters internally (replay,
    // alternate schedules, symbolic exploration); steering them all
    // through the process default pins the full pipeline, not just
    // one loop.
    DispatchModeGuard guard;
    for (const char *name : {"avv", "dcl", "rw", "bbuf"}) {
        auto w = workloads::buildWorkload(name);

        setDefaultDispatchMode(DispatchMode::Switch);
        core::Portend sw(w.program);
        core::PortendResult rs = sw.run();

        setDefaultDispatchMode(secondMode());
        core::Portend th(w.program);
        core::PortendResult rt_ = th.run();

        ASSERT_EQ(rs.reports.size(), rt_.reports.size()) << name;
        for (std::size_t i = 0; i < rs.reports.size(); ++i) {
            EXPECT_EQ(core::formatReport(w.program, rs.reports[i]),
                      core::formatReport(w.program, rt_.reports[i]))
                << name << " report " << i;
        }
        EXPECT_EQ(rs.detection.dynamic_races,
                  rt_.detection.dynamic_races)
            << name;
        EXPECT_EQ(rs.detection.steps, rt_.detection.steps) << name;
    }
}

TEST(InterpDifferentialTest, ThreadedIsDefaultWhenAvailable)
{
    // Release builds on GCC/Clang must not silently regress to the
    // switch loop: Auto resolves to Threaded whenever the variant
    // was compiled in.
    if (!threadedDispatchAvailable())
        GTEST_SKIP() << "computed goto not available";
    EXPECT_EQ(defaultDispatchMode(), DispatchMode::Threaded);
    auto w = workloads::buildWorkload("avv");
    ExecOptions eo;
    Interpreter interp(w.program, eo);
    EXPECT_EQ(interp.dispatchMode(), DispatchMode::Threaded);
}

} // namespace
} // namespace portend::rt
