/** @file Unit and property tests for the interval domain. */

#include <gtest/gtest.h>

#include "support/rng.h"
#include "sym/interval.h"

namespace portend::sym {
namespace {

TEST(IntervalTest, Basics)
{
    Interval t = Interval::top();
    EXPECT_FALSE(t.empty());
    EXPECT_TRUE(Interval::bottom().empty());
    EXPECT_TRUE(Interval::point(5).singleton());
    EXPECT_TRUE(Interval::point(5).contains(5));
    EXPECT_FALSE(Interval::point(5).contains(6));
    EXPECT_EQ((Interval{1, 4}).size(), 4u);
}

TEST(IntervalTest, MeetJoin)
{
    Interval a{0, 10}, b{5, 20};
    EXPECT_EQ(a.meet(b), (Interval{5, 10}));
    EXPECT_EQ(a.join(b), (Interval{0, 20}));
    EXPECT_TRUE(a.meet(Interval{11, 12}).empty());
    EXPECT_EQ(a.join(Interval::bottom()), a);
}

TEST(IntervalTest, SaturatingArithmetic)
{
    Interval big{INT64_MAX - 1, INT64_MAX};
    Interval r = ivAdd(big, big);
    EXPECT_EQ(r.hi, INT64_MAX); // saturates, no overflow UB
    Interval neg = ivNeg(Interval{INT64_MIN, 0});
    EXPECT_EQ(neg.hi, INT64_MAX);
}

TEST(IntervalEvalTest, ComparisonNarrowing)
{
    ExprPtr x = Expr::symbol("x", 0, Width::I64, 0, 10);
    IntervalEnv env;
    Interval r = evalInterval(mkSlt(x, mkConst(5)), env);
    EXPECT_EQ(r, (Interval{0, 1})); // unknown without narrowing
    env[0] = Interval{7, 10};
    EXPECT_EQ(evalInterval(mkSlt(x, mkConst(5)), env),
              Interval::point(0));
    env[0] = Interval{0, 3};
    EXPECT_EQ(evalInterval(mkSlt(x, mkConst(5)), env),
              Interval::point(1));
}

TEST(IntervalEvalTest, SymbolDomainsRespected)
{
    ExprPtr x = Expr::symbol("x", 0, Width::I64, 3, 7);
    IntervalEnv env;
    Interval r = evalInterval(mkAdd(x, mkConst(10)), env);
    EXPECT_EQ(r, (Interval{13, 17}));
}

TEST(IntervalEvalTest, IteJoinsBranches)
{
    ExprPtr x = Expr::symbol("x", 0, Width::I64, 0, 1);
    ExprPtr e = Expr::ite(mkEq(x, mkConst(0)), mkConst(3),
                          mkConst(9));
    Interval r = evalInterval(e, {});
    EXPECT_TRUE(r.contains(3));
    EXPECT_TRUE(r.contains(9));
}

/**
 * Property (soundness): for random expressions over bounded
 * symbols, the concrete evaluation under any in-domain model lies
 * within evalInterval's result.
 */
class IntervalSoundness : public ::testing::TestWithParam<int>
{
  protected:
    ExprPtr
    randomExpr(Rng &rng, int depth)
    {
        if (depth == 0 || rng.chance(1, 3)) {
            if (rng.chance(1, 2))
                return Expr::symbol("s",
                                    static_cast<int>(rng.below(3)),
                                    Width::I64, -5, 9);
            return mkConst(rng.range(-6, 6));
        }
        static const ExprKind kinds[] = {
            ExprKind::Add, ExprKind::Sub, ExprKind::Mul,
            ExprKind::Eq,  ExprKind::Ne,  ExprKind::Slt,
            ExprKind::Sle, ExprKind::Sgt, ExprKind::Sge,
            ExprKind::LAnd, ExprKind::LOr,
        };
        ExprKind k = kinds[rng.below(std::size(kinds))];
        return Expr::binary(k, randomExpr(rng, depth - 1),
                            randomExpr(rng, depth - 1));
    }
};

TEST_P(IntervalSoundness, ContainsConcreteEvaluations)
{
    Rng rng(GetParam() * 31337 + 5);
    for (int round = 0; round < 60; ++round) {
        ExprPtr e = randomExpr(rng, 4);
        Interval iv = evalInterval(e, {});
        for (int m = 0; m < 10; ++m) {
            Model model;
            for (int id = 0; id < 3; ++id)
                model.values[id] = rng.range(-5, 9);
            std::int64_t v = e->evaluate(model);
            EXPECT_TRUE(iv.contains(v))
                << e->toString() << " = " << v << " not in "
                << iv.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness,
                         ::testing::Range(0, 8));

} // namespace
} // namespace portend::sym
