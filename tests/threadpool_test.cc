/** @file Unit tests for the support/ worker thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/threadpool.h"

namespace portend {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, ClampsThreadCountToOne)
{
    ThreadPool pool(-3);
    EXPECT_EQ(pool.size(), 1);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerRunsJobsInSubmissionOrder)
{
    // With one worker the FIFO queue forces strict submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 64; ++i)
        done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : done)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ManyWorkersCompleteEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> done;
    for (int i = 1; i <= 100; ++i)
        done.push_back(pool.submit(
            [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
    for (auto &f : done)
        f.get();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ResultsComeBackThroughFutures)
{
    ThreadPool pool(2);
    std::future<std::string> s =
        pool.submit([] { return std::string("verdict"); });
    std::future<int> n = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(s.get(), "verdict");
    EXPECT_EQ(n.get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A thrown job must not poison the pool.
    EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedJobs)
{
    // Every job submitted before the destructor must run, even the
    // ones still queued when shutdown begins.
    std::atomic<int> ran{0};
    std::vector<std::future<void>> done;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            done.push_back(pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ran.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        // Destructor runs here with most jobs still queued.
    }
    EXPECT_EQ(ran.load(), 32);
    for (auto &f : done) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        f.get();
    }
}

} // namespace
} // namespace portend
