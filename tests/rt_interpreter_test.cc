/** @file Unit and property tests for the interpreter core. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rt/interpreter.h"
#include "rt/staticinfo.h"

namespace portend::rt {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

TEST(InterpreterTest, ArithmeticAndOutput)
{
    ir::ProgramBuilder pb("arith");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg a = m.iconst(6);
    ir::Reg b = m.bin(K::Mul, R(a), I(7));
    m.output("answer", R(b));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    ASSERT_EQ(interp.state().output.size(), 1u);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              42);
}

TEST(InterpreterTest, ControlFlowLoop)
{
    ir::ProgramBuilder pb("loop");
    ir::GlobalId g = pb.global("acc");
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("entry");
    ir::BlockId loop = m.block("loop");
    ir::BlockId done = m.block("done");
    m.to(e);
    ir::Reg i = m.iconst(5);
    m.jmp(loop);
    m.to(loop);
    ir::Reg v = m.load(g);
    m.store(g, I(0), R(m.bin(K::Add, R(v), R(i))));
    m.binInto(i, K::Sub, R(i), I(1));
    m.br(R(m.bin(K::Sgt, R(i), I(0))), loop, done);
    m.to(done);
    m.output("sum", R(m.load(g)));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              15); // 5+4+3+2+1
}

TEST(InterpreterTest, FunctionCallsReturnValues)
{
    ir::ProgramBuilder pb("calls");
    auto &sq = pb.function("square", 1);
    sq.to(sq.block("entry"));
    sq.ret(R(sq.bin(K::Mul, R(sq.param(0)), R(sq.param(0)))));
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg r = m.call("square", {I(9)});
    m.output("sq", R(r));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              81);
}

TEST(InterpreterTest, OutOfBoundsCrashes)
{
    ir::ProgramBuilder pb("oob");
    ir::GlobalId g = pb.global("arr", 3);
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.store(g, I(3), I(1));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::CrashOob);
    EXPECT_NE(interp.state().outcome_detail.find("out of bounds"),
              std::string::npos);
}

TEST(InterpreterTest, DivisionByZeroCrashes)
{
    ir::ProgramBuilder pb("div0");
    ir::GlobalId g = pb.global("zero");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg z = m.load(g);
    m.bin(K::SDiv, I(1), R(z));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::CrashDivZero);
}

TEST(InterpreterTest, AssertFailure)
{
    ir::ProgramBuilder pb("assert");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.assertTrue(I(0), "must hold");
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::AssertFail);
    EXPECT_NE(interp.state().outcome_detail.find("must hold"),
              std::string::npos);
}

TEST(InterpreterTest, StepBudgetTimesOut)
{
    ir::ProgramBuilder pb("spin");
    ir::GlobalId g = pb.global("never");
    auto &m = pb.function("main", 0);
    ir::BlockId spin = m.block("spin");
    m.to(spin);
    ir::Reg v = m.load(g);
    m.br(R(v), spin, spin);
    ir::Program p = pb.build();
    ExecOptions eo;
    eo.max_steps = 1000;
    Interpreter interp(p, eo);
    EXPECT_EQ(interp.run(), RunOutcome::TimedOut);
}

TEST(InterpreterTest, ThreadCreateJoinAndSharedMemory)
{
    ir::ProgramBuilder pb("threads");
    ir::GlobalId g = pb.global("sum");
    auto &w = pb.function("adder", 1);
    w.to(w.block("entry"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), R(w.param(0)))));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg t1 = m.threadCreate("adder", I(10));
    m.threadJoin(R(t1));
    ir::Reg t2 = m.threadCreate("adder", I(32));
    m.threadJoin(R(t2));
    m.output("sum", R(m.load(g)));
    m.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              42);
}

TEST(InterpreterTest, SymbolicInputsAndForcedDecisions)
{
    ir::ProgramBuilder pb("symin");
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("entry");
    ir::BlockId yes = m.block("yes");
    ir::BlockId no = m.block("no");
    m.to(e);
    ir::Reg x = m.input("x", 0, 9);
    m.br(R(m.bin(K::Sgt, R(x), I(4))), yes, no);
    m.to(yes);
    m.outputStr("big");
    m.halt();
    m.to(no);
    m.outputStr("small");
    m.halt();
    ir::Program p = pb.build();

    ExecOptions eo;
    eo.input_mode = InputMode::Symbolic;
    Interpreter interp(p, eo);
    // Force both directions without a hook via the decision queue.
    interp.state().forced_decisions.push_back(true);
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].label, "big");
    EXPECT_EQ(interp.state().path.size(), 1u);

    interp.reset();
    interp.state().forced_decisions.push_back(false);
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].label, "small");
}

TEST(InterpreterTest, ConcreteInputsConsumedInOrder)
{
    ir::ProgramBuilder pb("inputs");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg a = m.input("a", 0, 100);
    ir::Reg b = m.input("b", 0, 100);
    m.output("diff", R(m.bin(K::Sub, R(a), R(b))));
    m.halt();
    ir::Program p = pb.build();
    ExecOptions eo;
    eo.concrete_inputs = {50, 8};
    Interpreter interp(p, eo);
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              42);
    EXPECT_EQ(interp.state().env_log.size(), 2u);
}

TEST(InterpreterTest, CheckpointRestoreResumesExactly)
{
    ir::ProgramBuilder pb("ckpt");
    ir::GlobalId g = pb.global("cell");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.store(g, I(0), I(1));
    m.store(g, I(0), I(2));
    m.store(g, I(0), I(3));
    m.output("final", R(m.load(g)));
    m.halt();
    ir::Program p = pb.build();

    Interpreter interp(p, ExecOptions{});
    Interpreter::StopSpec stop;
    stop.before_cell.push_back({0, 0, 2}); // before 2nd access
    EXPECT_EQ(interp.run(stop), RunOutcome::Running);
    ASSERT_TRUE(interp.stopped());
    VmState ckpt = interp.state();
    EXPECT_EQ(ckpt.mem[0].constValue(), 1);

    // Finish from the checkpoint twice; identical results.
    for (int i = 0; i < 2; ++i) {
        Interpreter resume(p, ExecOptions{});
        resume.setState(ckpt);
        EXPECT_EQ(resume.run(), RunOutcome::Exited);
        EXPECT_EQ(
            resume.state().output.records[0].value->constValue(), 3);
    }
}

TEST(StaticInfoTest, TransitiveMayWrite)
{
    ir::ProgramBuilder pb("static");
    ir::GlobalId a = pb.global("a");
    ir::GlobalId b = pb.global("b");
    auto &leaf = pb.function("leaf", 0);
    leaf.to(leaf.block("entry"));
    leaf.store(b, I(0), I(1));
    leaf.retVoid();
    auto &mid = pb.function("mid", 0);
    mid.to(mid.block("entry"));
    mid.store(a, I(0), I(1));
    mid.callVoid("leaf");
    mid.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.callVoid("mid");
    m.halt();
    ir::Program p = pb.build();
    StaticInfo si(p);
    ir::FuncId mid_id = p.findFunction("mid");
    EXPECT_TRUE(si.mayWrite(mid_id).count(a));
    EXPECT_TRUE(si.mayWrite(mid_id).count(b)); // via leaf
    EXPECT_TRUE(si.mayWrite(p.entry).count(b));
}

/** Property: execution is bit-for-bit deterministic per seed. */
class DeterminismTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DeterminismTest, SameSeedSameRun)
{
    ir::ProgramBuilder pb("det");
    ir::GlobalId g = pb.global("x");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), R(w.param(0)))));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg t1 = m.threadCreate("w", I(1));
    ir::Reg t2 = m.threadCreate("w", I(2));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.output("x", R(m.load(g)));
    m.halt();
    ir::Program p = pb.build();

    auto run = [&](std::uint64_t seed) {
        ExecOptions eo;
        eo.preempt_on_memory = true;
        eo.rng_seed = seed;
        Interpreter interp(p, eo);
        RandomPolicy rnd;
        interp.setPolicy(&rnd);
        EXPECT_EQ(interp.run(), RunOutcome::Exited);
        return std::make_pair(interp.state().global_step,
                              interp.state()
                                  .output.concrete_chain.digest());
    };
    std::uint64_t seed = GetParam() * 1234567 + 1;
    auto first = run(seed);
    auto second = run(seed);
    EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace portend::rt
