/** @file Unit and property tests for the small-model solver. */

#include <gtest/gtest.h>

#include "support/rng.h"
#include "sym/simplify.h"
#include "sym/solver.h"

namespace portend::sym {
namespace {

ExprPtr
sym01(int id, std::int64_t lo, std::int64_t hi)
{
    return Expr::symbol("s" + std::to_string(id), id, Width::I64, lo,
                        hi);
}

TEST(SolverTest, TrivialSatAndUnsat)
{
    Solver s;
    Model m;
    EXPECT_EQ(s.checkSat({}, &m), SatResult::Sat);
    EXPECT_EQ(s.checkSat({Expr::boolean(false)}, nullptr),
              SatResult::Unsat);
    EXPECT_EQ(s.checkSat({Expr::boolean(true)}, nullptr),
              SatResult::Sat);
}

TEST(SolverTest, ModelSatisfiesConstraints)
{
    Solver s;
    ExprPtr x = sym01(0, 0, 100);
    ExprPtr y = sym01(1, 0, 100);
    std::vector<ExprPtr> cs{
        mkSlt(mkConst(10), x),            // 10 < x
        mkSlt(x, mkConst(15)),            // x < 15
        mkEq(mkAdd(x, y), mkConst(30)),   // x + y == 30
    };
    Model m;
    ASSERT_EQ(s.checkSat(cs, &m), SatResult::Sat);
    for (const auto &c : cs)
        EXPECT_NE(c->evaluate(m), 0) << c->toString();
}

TEST(SolverTest, UnsatOnEmptyDomainIntersection)
{
    Solver s;
    ExprPtr x = sym01(0, 0, 7);
    EXPECT_EQ(s.checkSat({mkSlt(mkConst(9), x)}, nullptr),
              SatResult::Unsat);
    EXPECT_EQ(s.checkSat({mkEq(x, mkConst(3)),
                          mkEq(x, mkConst(4))},
                         nullptr),
              SatResult::Unsat);
}

TEST(SolverTest, MustAndMayBeTrue)
{
    Solver s;
    ExprPtr x = sym01(0, 5, 10);
    std::vector<ExprPtr> pc{mkSlt(x, mkConst(8))};
    EXPECT_TRUE(s.mustBeTrue(pc, mkSlt(x, mkConst(9))));
    EXPECT_FALSE(s.mustBeTrue(pc, mkSlt(x, mkConst(7))));
    EXPECT_TRUE(s.mayBeTrue(pc, mkEq(x, mkConst(6))));
    EXPECT_FALSE(s.mayBeTrue(pc, mkEq(x, mkConst(9))));
}

TEST(SolverTest, StatsCount)
{
    Solver s;
    ExprPtr x = sym01(0, 0, 3);
    (void)s.checkSat({mkEq(x, mkConst(2))}, nullptr);
    EXPECT_EQ(s.stats().queries, 1u);
    EXPECT_EQ(s.stats().sat, 1u);
}

TEST(SolverTest, LargeDomainSamplingFindsLiteralSolutions)
{
    // The domain is too large to enumerate, but the constraint
    // mentions the literal, which seeds the candidates.
    Solver s;
    ExprPtr x = sym01(0, INT64_MIN / 2, INT64_MAX / 2);
    Model m;
    ASSERT_EQ(s.checkSat({mkEq(x, mkConst(123456789))}, &m),
              SatResult::Sat);
    EXPECT_EQ(m.lookup(0), 123456789);
}

TEST(PathConditionTest, DropsTrueDetectsFalse)
{
    PathCondition pc;
    pc.add(Expr::boolean(true));
    EXPECT_EQ(pc.size(), 0u);
    ExprPtr x = sym01(0, 0, 5);
    pc.add(mkSlt(x, mkConst(3)));
    pc.add(mkSlt(x, mkConst(3))); // duplicate dropped
    EXPECT_EQ(pc.size(), 1u);
    EXPECT_FALSE(pc.trivialFalse());
    pc.add(Expr::boolean(false));
    EXPECT_TRUE(pc.trivialFalse());
}

TEST(EvalPartialTest, ShortCircuits)
{
    ExprPtr x = sym01(0, 0, 5);
    Model empty;
    // LAnd with a false bound side decides without the other.
    ExprPtr e = Expr::binary(ExprKind::LAnd, Expr::boolean(false),
                             mkSlt(x, mkConst(3)));
    // The simplifier already folds this; build the unfolded shape.
    ExprPtr g = Expr::binary(ExprKind::LAnd, mkSlt(x, mkConst(3)),
                             mkEq(x, mkConst(9)));
    Model m9;
    m9.values[0] = 9;
    EXPECT_EQ(evalPartial(e, empty).value_or(-1), 0);
    EXPECT_EQ(evalPartial(g, m9).value_or(-1), 0);
    EXPECT_FALSE(evalPartial(mkSlt(x, mkConst(3)), empty));
}

/**
 * Property: on random constraint sets over small domains, Sat
 * answers carry valid models, and Unsat answers are confirmed by
 * exhaustive enumeration.
 */
class SolverAgainstBruteForce : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverAgainstBruteForce, AgreesWithEnumeration)
{
    Rng rng(GetParam() * 104729 + 11);
    for (int round = 0; round < 25; ++round) {
        ExprPtr x = sym01(0, 0, 6);
        ExprPtr y = sym01(1, -3, 3);
        std::vector<ExprPtr> cs;
        const int n = 1 + static_cast<int>(rng.below(3));
        for (int i = 0; i < n; ++i) {
            ExprPtr lhs = rng.chance(1, 2)
                              ? mkAdd(x, y)
                              : mkMul(x, mkConst(rng.range(1, 3)));
            ExprPtr rhs = mkConst(rng.range(-4, 10));
            switch (rng.below(3)) {
              case 0: cs.push_back(mkEq(lhs, rhs)); break;
              case 1: cs.push_back(mkSlt(lhs, rhs)); break;
              default: cs.push_back(mkSle(rhs, lhs)); break;
            }
        }
        Solver solver;
        Model m;
        SatResult r = solver.checkSat(cs, &m);

        bool truly_sat = false;
        for (std::int64_t vx = 0; vx <= 6 && !truly_sat; ++vx) {
            for (std::int64_t vy = -3; vy <= 3 && !truly_sat; ++vy) {
                Model probe;
                probe.values[0] = vx;
                probe.values[1] = vy;
                bool all = true;
                for (const auto &c : cs)
                    all = all && c->evaluate(probe) != 0;
                truly_sat = all;
            }
        }
        ASSERT_NE(r, SatResult::Unknown);
        EXPECT_EQ(r == SatResult::Sat, truly_sat);
        if (r == SatResult::Sat) {
            for (const auto &c : cs)
                EXPECT_NE(c->evaluate(m), 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgainstBruteForce,
                         ::testing::Range(0, 10));

} // namespace
} // namespace portend::sym
