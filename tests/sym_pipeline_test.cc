/** @file End-to-end tests for multi-path symbolic classification.
 *
 * Two batteries:
 *
 *  - SymPipelineTest (fast): the ibuf/iguard extension workloads
 *    classify "k-witness harmless" through the default pipeline and
 *    upgrade only under named symbolic inputs, with a
 *    solver-concretized witness value recorded in the evidence and
 *    replayed deterministically by replayEvidence (byte-identical
 *    across repeat replays and --jobs counts).
 *
 *  - SymExhaustiveTest (slow ctest label): for programs small
 *    enough to brute-force every input value x every interleaving,
 *    the single symbolic classification run must land on the most
 *    severe verdict class the enumeration reaches — and must not
 *    invent one the enumeration cannot reach.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "portend/portend.h"
#include "rt/interpreter.h"
#include "rt/policy.h"
#include "workloads/registry.h"

namespace portend::core {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

PortendOptions
withSymInput(const std::string &name)
{
    PortendOptions o;
    o.sym_inputs.push_back(rt::SymInputSpec{name, false, 0, 0});
    return o;
}

PortendReport
classifyWorkload(const std::string &wname, PortendOptions opts = {})
{
    workloads::Workload w = workloads::buildWorkload(wname);
    Portend tool(w.program, opts);
    PortendResult res = tool.run();
    EXPECT_EQ(res.reports.size(), 1u) << wname;
    if (res.reports.empty())
        return {};
    return res.reports[0];
}

std::int64_t
witnessValue(const Classification &c, const std::string &name)
{
    for (const auto &w : c.evidence_witness) {
        if (w.name == name)
            return w.value;
    }
    ADD_FAILURE() << "no witness for input '" << name << "'";
    return -1;
}

TEST(SymPipelineTest, IbufDefaultPipelineMissesTheGate)
{
    PortendReport r = classifyWorkload("ibuf");
    EXPECT_EQ(r.classification.cls, RaceClass::KWitnessHarmless);
    EXPECT_TRUE(r.classification.evidence_witness.empty());
}

TEST(SymPipelineTest, IbufSymInputUpgradesToOutputDiffers)
{
    PortendReport r = classifyWorkload("ibuf", withSymInput("n"));
    EXPECT_EQ(r.classification.cls, RaceClass::OutputDiffers);
    // The gate is n > 4 over domain [0, 8]; the solver must pick a
    // concrete value that opens it.
    std::int64_t n = witnessValue(r.classification, "n");
    EXPECT_GT(n, 4);
    EXPECT_LE(n, 8);
    EXPECT_GT(r.classification.stats.solver_queries, 0u);
}

TEST(SymPipelineTest, IguardDefaultPipelineMissesTheGate)
{
    PortendReport r = classifyWorkload("iguard");
    EXPECT_EQ(r.classification.cls, RaceClass::KWitnessHarmless);
    EXPECT_TRUE(r.classification.evidence_witness.empty());
}

TEST(SymPipelineTest, IguardSymInputUpgradesToSpecViolated)
{
    PortendReport r = classifyWorkload("iguard", withSymInput("n"));
    EXPECT_EQ(r.classification.cls, RaceClass::SpecViolated);
    EXPECT_EQ(r.classification.viol, ViolationKind::Crash);
    // Only n >= 8 makes the bumped index overflow ig_table[9].
    EXPECT_GE(witnessValue(r.classification, "n"), 8);
}

TEST(SymPipelineTest, RangeOverrideKeepsInfeasibleGateClosed)
{
    // Restricting n to [0, 4] makes the n > 4 branch unsatisfiable,
    // so even the symbolic run must keep the harmless verdict.
    PortendOptions o;
    rt::SymInputSpec spec;
    spec.name = "n";
    spec.has_range = true;
    spec.lo = 0;
    spec.hi = 4;
    o.sym_inputs.push_back(spec);
    PortendReport r = classifyWorkload("ibuf", o);
    EXPECT_EQ(r.classification.cls, RaceClass::KWitnessHarmless);
    EXPECT_TRUE(r.classification.evidence_witness.empty());
}

std::string
renderReplay(const RaceAnalyzer::EvidenceReplay &r)
{
    std::string s = rt::runOutcomeName(r.outcome);
    s += "|" + r.detail + "|";
    for (const auto &rec : r.output.records)
        s += rec.toString() + "\n";
    return s;
}

TEST(SymPipelineTest, WitnessReplayIsByteDeterministic)
{
    for (const char *wname : {"ibuf", "iguard"}) {
        workloads::Workload w = workloads::buildWorkload(wname);
        PortendOptions opts = withSymInput("n");
        Portend tool(w.program, opts);
        DetectionResult det = tool.detect();
        ASSERT_EQ(det.clusters.size(), 1u) << wname;
        RaceAnalyzer analyzer(w.program, opts);
        Classification verdict = analyzer.classify(
            det.clusters[0].representative, det.trace);
        ASSERT_FALSE(verdict.evidence_witness.empty()) << wname;

        RaceAnalyzer::EvidenceReplay a = analyzer.replayEvidence(
            det.clusters[0].representative, det.trace, verdict);
        RaceAnalyzer::EvidenceReplay b = analyzer.replayEvidence(
            det.clusters[0].representative, det.trace, verdict);
        EXPECT_EQ(renderReplay(a), renderReplay(b)) << wname;

        if (verdict.cls == RaceClass::SpecViolated) {
            EXPECT_TRUE(rt::isSpecViolation(a.outcome))
                << wname << ": " << a.detail;
        } else {
            EXPECT_EQ(a.outcome, rt::RunOutcome::Exited) << wname;
        }
    }
}

TEST(SymPipelineTest, VerdictAndWitnessInvariantAcrossJobs)
{
    for (const char *wname : {"ibuf", "iguard"}) {
        workloads::Workload w = workloads::buildWorkload(wname);
        std::vector<std::string> renders;
        for (int jobs : {1, 4}) {
            PortendOptions opts = withSymInput("n");
            opts.jobs = jobs;
            Portend tool(w.program, opts);
            PortendResult res = tool.run();
            ASSERT_EQ(res.reports.size(), 1u) << wname;
            renders.push_back(
                formatReport(w.program, res.reports[0]));
        }
        EXPECT_EQ(renders[0], renders[1]) << wname;
        EXPECT_NE(renders[0].find("witness input: n="),
                  std::string::npos)
            << wname << ":\n"
            << renders[0];
    }
}

// ---------------------------------------------------------------
// Exhaustive cross-check: brute-force input x interleaving truth.
// ---------------------------------------------------------------

/** Reader prints the racy cell only when n >= 2 (domain [0, 3]). */
ir::Program
gatedOutputMicro()
{
    ir::ProgramBuilder pb("gated_out");
    ir::GlobalId cfg = pb.global("cfg");
    ir::GlobalId msg = pb.global("msg");
    auto &wr = pb.function("writer", 1);
    wr.to(wr.block("e"));
    wr.store(msg, I(0), I(1));
    wr.retVoid();
    auto &rd = pb.function("reader", 1);
    rd.to(rd.block("e"));
    ir::Reg g = rd.load(cfg);
    ir::Reg r = rd.load(msg); // racing read
    ir::BlockId big = rd.block("big");
    ir::BlockId small = rd.block("small");
    ir::BlockId done = rd.block("done");
    rd.br(R(rd.bin(K::Sge, R(g), I(2))), big, small);
    rd.to(big);
    rd.output("msg", R(r));
    rd.jmp(done);
    rd.to(small);
    rd.output("msg", I(0));
    rd.jmp(done);
    rd.to(done);
    rd.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    m.store(cfg, I(0), R(m.input("n", 0, 3)));
    ir::Reg t1 = m.threadCreate("writer", I(0));
    ir::Reg t2 = m.threadCreate("reader", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.halt();
    return pb.build();
}

/** The bumped racy index overflows tab[4] only when n >= 3. */
ir::Program
gatedCrashMicro()
{
    ir::ProgramBuilder pb("gated_crash");
    ir::GlobalId cfg = pb.global("cfg");
    ir::GlobalId idx = pb.global("idx");
    ir::GlobalId tab = pb.global("tab", 4);
    auto &user = pb.function("user", 1);
    user.to(user.block("e"));
    ir::Reg g = user.load(cfg);
    ir::Reg i = user.load(idx); // racing read
    ir::BlockId wide = user.block("wide");
    ir::BlockId narrow = user.block("narrow");
    ir::BlockId done = user.block("done");
    user.br(R(user.bin(K::Sge, R(g), I(3))), wide, narrow);
    user.to(wide);
    user.store(tab, R(user.bin(K::Add, R(i), R(g))), I(7));
    user.jmp(done);
    user.to(narrow);
    user.store(tab, R(i), I(7));
    user.jmp(done);
    user.to(done);
    user.retVoid();
    auto &bump = pb.function("bumper", 1);
    bump.to(bump.block("e"));
    ir::Reg v = bump.load(idx);
    bump.store(idx, I(0), R(bump.bin(K::Add, R(v), I(1))));
    bump.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    m.store(cfg, I(0), R(m.input("n", 0, 3)));
    ir::Reg t1 = m.threadCreate("user", I(0));
    ir::Reg t2 = m.threadCreate("bumper", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.halt();
    return pb.build();
}

/** Input-reading program whose write-write race is value-redundant:
 *  no input or interleaving changes outcome or output. */
ir::Program
redundantMicro()
{
    ir::ProgramBuilder pb("redundant_in");
    ir::GlobalId cfg = pb.global("cfg");
    ir::GlobalId flag = pb.global("flag");
    auto &w = pb.function("worker", 1);
    w.to(w.block("e"));
    w.store(flag, I(0), I(7));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    m.store(cfg, I(0), R(m.input("n", 0, 3)));
    ir::Reg t1 = m.threadCreate("worker", I(0));
    m.store(flag, I(0), I(7));
    m.threadJoin(R(t1));
    m.halt();
    return pb.build();
}

/** Verdict severity for cross-checking against enumerated truth:
 *  3 crash, 2 output divergence, 1 no externally visible effect. */
int
rank(RaceClass c)
{
    switch (c) {
    case RaceClass::SpecViolated:
        return 3;
    case RaceClass::OutputDiffers:
        return 2;
    default:
        return 1;
    }
}

struct ConcreteRun
{
    rt::RunOutcome outcome = rt::RunOutcome::Running;
    std::string output;
    rt::ScheduleObservation obs;
};

ConcreteRun
runConcrete(const ir::Program &p,
            const std::vector<std::int64_t> &inputs,
            const std::vector<rt::ThreadId> &prefix)
{
    rt::ExecOptions eo;
    eo.input_mode = rt::InputMode::Concrete;
    eo.concrete_inputs = inputs;
    eo.preempt_on_memory = true;
    eo.max_steps = 100000;
    rt::Interpreter interp(p, eo);
    rt::RotatePolicy rotate;
    rt::GuidedPolicy pol(prefix, &rotate);
    interp.setPolicy(&pol);
    ConcreteRun r;
    r.outcome = interp.run();
    for (const auto &rec : interp.state().output.records)
        r.output += rec.toString() + "\n";
    r.obs = pol.takeObservation();
    return r;
}

/** DFS over the scheduler decision tree for one fixed input vector,
 *  collecting per-interleaving outputs and whether any run crashes
 *  (the same brute force as tests/explore_test.cc, plus inputs). */
void
enumerateSchedules(const ir::Program &p,
                   const std::vector<std::int64_t> &inputs,
                   std::vector<rt::ThreadId> prefix,
                   std::set<std::string> &outputs, bool &crashed,
                   int &runs)
{
    ConcreteRun r = runConcrete(p, inputs, prefix);
    runs += 1;
    ASSERT_LT(runs, 200000) << p.name;
    if (rt::isSpecViolation(r.outcome))
        crashed = true;
    else
        outputs.insert(r.output);
    for (std::size_t i = prefix.size(); i < r.obs.picks.size(); ++i) {
        for (rt::ThreadId t : r.obs.enabled[i]) {
            if (t == r.obs.picks[i])
                continue;
            std::vector<rt::ThreadId> child(
                r.obs.picks.begin(),
                r.obs.picks.begin() + static_cast<long>(i));
            child.push_back(t);
            enumerateSchedules(p, inputs, child, outputs, crashed,
                               runs);
        }
    }
}

class SymExhaustiveTest : public ::testing::Test
{
  protected:
    /**
     * Ground truth by brute force over the full input cross product
     * x every interleaving: severity 3 if any (input, schedule)
     * pair crashes, else 2 if some fixed input vector shows
     * diverging outputs across schedules, else 1.
     */
    int
    enumeratedRank(const ir::Program &p)
    {
        bool crashed = false;
        bool diverged = false;
        int runs = 0;
        std::vector<std::int64_t> inputs;
        enumerateInputs(p, 0, inputs, crashed, diverged, runs);
        EXPECT_GT(runs, 1) << p.name;
        return crashed ? 3 : diverged ? 2 : 1;
    }

    /** One symbolic classification run over the same program; the
     *  gate input is always the last declared. */
    int
    symbolicRank(const ir::Program &p)
    {
        EXPECT_FALSE(p.inputs.empty()) << p.name;
        PortendOptions opts = withSymInput(p.inputs.back().name);
        Portend tool(p, opts);
        PortendResult res = tool.run();
        EXPECT_EQ(res.reports.size(), 1u) << p.name;
        if (res.reports.empty())
            return 0;
        return rank(res.reports[0].classification.cls);
    }

    void
    crossCheck(const ir::Program &p)
    {
        EXPECT_EQ(symbolicRank(p), enumeratedRank(p)) << p.name;
    }

  private:
    void
    enumerateInputs(const ir::Program &p, std::size_t decl,
                    std::vector<std::int64_t> &inputs, bool &crashed,
                    bool &diverged, int &runs)
    {
        if (decl == p.inputs.size()) {
            std::set<std::string> outputs;
            enumerateSchedules(p, inputs, {}, outputs, crashed,
                               runs);
            diverged = diverged || outputs.size() > 1;
            return;
        }
        for (std::int64_t v = p.inputs[decl].lo;
             v <= p.inputs[decl].hi; ++v) {
            inputs.push_back(v);
            enumerateInputs(p, decl + 1, inputs, crashed, diverged,
                            runs);
            inputs.pop_back();
        }
    }
};

TEST_F(SymExhaustiveTest, GatedOutputReachesEnumeratedSeverity)
{
    crossCheck(gatedOutputMicro());
}

TEST_F(SymExhaustiveTest, GatedCrashReachesEnumeratedSeverity)
{
    crossCheck(gatedCrashMicro());
}

TEST_F(SymExhaustiveTest, RedundantRaceStaysHarmless)
{
    crossCheck(redundantMicro());
}

TEST_F(SymExhaustiveTest, ExtensionWorkloadsReachEnumeratedSeverity)
{
    // The checked-in workloads carry two decoy inputs before the
    // gate; the recursive enumerator covers all three domains.
    for (const char *wname : {"ibuf", "iguard"}) {
        workloads::Workload w = workloads::buildWorkload(wname);
        ASSERT_EQ(w.program.inputs.size(), 3u) << wname;
        ASSERT_EQ(w.program.inputs.back().name, "n") << wname;
        crossCheck(w.program);
    }
}

} // namespace
} // namespace portend::core
