/** @file Tests for the baseline classifiers. */

#include <gtest/gtest.h>

#include "baseline/adhoc_detector.h"
#include "baseline/heuristic.h"
#include "baseline/replay_analyzer.h"
#include "ir/builder.h"
#include "portend/portend.h"

namespace portend::baseline {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

/** Detect the single race of @p prog and return (race, trace). */
std::pair<race::RaceReport, replay::ScheduleTrace>
detectOne(const ir::Program &prog)
{
    core::Portend tool(prog, core::PortendOptions{});
    core::DetectionResult det = tool.detect();
    EXPECT_EQ(det.clusters.size(), 1u);
    return {det.clusters[0].representative, det.trace};
}

ir::Program
sameValueWriteProgram()
{
    ir::ProgramBuilder pb("same");
    ir::GlobalId g = pb.global("flag");
    auto &w = pb.function("w", 1);
    w.to(w.block("e"));
    w.store(g, I(0), I(7));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t = m.threadCreate("w", I(0));
    m.store(g, I(0), I(7));
    m.threadJoin(R(t));
    m.halt();
    return pb.build();
}

ir::Program
differentValueWriteProgram()
{
    ir::ProgramBuilder pb("diff");
    ir::GlobalId g = pb.global("flag");
    auto &w = pb.function("w", 1);
    w.to(w.block("e"));
    w.store(g, I(0), I(9));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t = m.threadCreate("w", I(0));
    m.store(g, I(0), I(7));
    m.threadJoin(R(t));
    m.halt();
    return pb.build();
}

ir::Program
spinFlagProgram()
{
    ir::ProgramBuilder pb("spin");
    ir::GlobalId flag = pb.global("done_flag");
    auto &w = pb.function("producer", 1);
    w.to(w.block("e"));
    w.store(flag, I(0), I(1));
    w.retVoid();
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("e");
    ir::BlockId spin = m.block("spin");
    ir::BlockId done = m.block("done");
    m.to(e);
    m.threadCreate("producer", I(0));
    m.jmp(spin);
    m.to(spin);
    ir::Reg f = m.load(flag);
    m.br(R(f), done, spin);
    m.to(done);
    m.halt();
    return pb.build();
}

TEST(ReplayAnalyzerTest, SameStatesLikelyHarmless)
{
    ir::Program p = sameValueWriteProgram();
    auto [race, trace] = detectOne(p);
    ReplayAnalyzer ra(p);
    ReplayAnalysis a = ra.analyze(race, trace);
    EXPECT_EQ(a.verdict, ReplayVerdict::LikelyHarmless);
    EXPECT_FALSE(a.states_differ);
}

TEST(ReplayAnalyzerTest, DifferentStatesLikelyHarmful)
{
    ir::Program p = differentValueWriteProgram();
    auto [race, trace] = detectOne(p);
    ReplayAnalyzer ra(p);
    ReplayAnalysis a = ra.analyze(race, trace);
    EXPECT_EQ(a.verdict, ReplayVerdict::LikelyHarmful);
    EXPECT_TRUE(a.states_differ);
}

TEST(ReplayAnalyzerTest, ReplayFailureReportedHarmful)
{
    // Ad-hoc sync prevents the alternate: [45] says likely harmful;
    // this is the 74% false-positive source the paper fixes.
    ir::Program p = spinFlagProgram();
    auto [race, trace] = detectOne(p);
    ReplayAnalyzer ra(p, /*max_steps=*/200000);
    ReplayAnalysis a = ra.analyze(race, trace);
    EXPECT_EQ(a.verdict, ReplayVerdict::LikelyHarmful);
    EXPECT_TRUE(a.replay_failed);
}

TEST(AdhocDetectorTest, RecognizesSpinLoops)
{
    ir::Program p = spinFlagProgram();
    AdhocDetector ad(p);
    EXPECT_EQ(ad.spinFlags().size(), 1u);
    auto [race, trace] = detectOne(p);
    (void)trace;
    EXPECT_EQ(ad.classify(race), AdhocVerdict::SingleOrdering);
}

TEST(AdhocDetectorTest, LeavesOtherRacesUnclassified)
{
    ir::Program p = differentValueWriteProgram();
    AdhocDetector ad(p);
    auto [race, trace] = detectOne(p);
    (void)trace;
    EXPECT_EQ(ad.classify(race), AdhocVerdict::NotClassified);
}

TEST(HeuristicTest, RedundantWritePattern)
{
    ir::Program p = sameValueWriteProgram();
    auto [race, trace] = detectOne(p);
    (void)trace;
    HeuristicClassifier h(p);
    HeuristicResult r = h.classify(race);
    EXPECT_EQ(r.verdict, HeuristicVerdict::LikelyHarmless);
    EXPECT_EQ(r.pattern, BenignPattern::RedundantWrite);
}

TEST(HeuristicTest, CounterIncrementPattern)
{
    ir::ProgramBuilder pb("counter");
    ir::GlobalId g = pb.global("stat_counter");
    auto &w = pb.function("w", 1);
    w.to(w.block("e"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t = m.threadCreate("w", I(0));
    m.load(g); // racing read of the statistics counter
    m.threadJoin(R(t));
    m.halt();
    ir::Program p = pb.build();
    auto [race, trace] = detectOne(p);
    (void)trace;
    HeuristicClassifier h(p);
    EXPECT_EQ(h.classify(race).pattern,
              BenignPattern::StatisticsCounter);
}

TEST(HeuristicTest, UnknownPatternNotClassified)
{
    ir::Program p = differentValueWriteProgram();
    auto [race, trace] = detectOne(p);
    (void)trace;
    HeuristicClassifier h(p);
    EXPECT_EQ(h.classify(race).verdict,
              HeuristicVerdict::NotClassified);
}

TEST(FalsePositiveTest, PortendClassifiesLockProtectedAsSingleOrdering)
{
    // The paper's §5.2 experiment: a detector blind to mutexes
    // reports lock-protected accesses; Portend must classify every
    // such false positive as "single ordering".
    ir::ProgramBuilder pb("fp");
    ir::GlobalId g = pb.global("guarded");
    ir::SyncId m = pb.mutex("l");
    auto &w = pb.function("w", 1);
    w.to(w.block("e"));
    w.lock(m);
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.unlock(m);
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("e"));
    ir::Reg t1 = mn.threadCreate("w", I(0));
    ir::Reg t2 = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    ir::Program p = pb.build();

    core::PortendOptions opts;
    opts.detector = core::DetectorKind::HappensBeforeNoMutex;
    core::Portend tool(p, opts);
    core::PortendResult res = tool.run();
    ASSERT_FALSE(res.reports.empty());
    for (const auto &r : res.reports) {
        EXPECT_EQ(r.classification.cls,
                  core::RaceClass::SingleOrdering)
            << formatReport(p, r);
    }
}

} // namespace
} // namespace portend::baseline
