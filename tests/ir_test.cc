/** @file Unit tests for the PIL program representation. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace portend::ir {
namespace {

using K = sym::ExprKind;

Program
tinyProgram()
{
    ProgramBuilder pb("tiny");
    GlobalId g = pb.global("g", 2, {7, 9});
    auto &f = pb.function("main", 0);
    f.to(f.block("entry"));
    Reg v = f.load(g, I(1));
    f.store(g, I(0), R(f.bin(K::Add, R(v), I(1))));
    f.output("v", R(v));
    f.halt();
    return pb.build();
}

TEST(ProgramTest, FinalizeAssignsLinearPcs)
{
    Program p = tinyProgram();
    EXPECT_TRUE(p.finalized());
    EXPECT_EQ(p.numInsts(), 5);
    for (int pc = 0; pc < p.numInsts(); ++pc)
        EXPECT_EQ(p.instAt(pc).pc, pc);
}

TEST(ProgramTest, CellIdsAndNames)
{
    Program p = tinyProgram();
    EXPECT_EQ(p.numCells(), 2);
    EXPECT_EQ(p.cellId(0, 1), 1);
    EXPECT_EQ(p.cellName(0), "g[0]");
    EXPECT_EQ(p.cellGlobal(1), 0);
    EXPECT_EQ(p.cellGlobal(99), -1);
}

TEST(ProgramTest, FindFunction)
{
    Program p = tinyProgram();
    EXPECT_EQ(p.findFunction("main"), p.entry);
    EXPECT_EQ(p.findFunction("nope"), -1);
}

TEST(BuilderTest, CallResolutionAndParams)
{
    ProgramBuilder pb("calls");
    auto &callee = pb.function("twice", 1);
    callee.to(callee.block("entry"));
    callee.ret(R(callee.bin(K::Mul, R(callee.param(0)), I(2))));
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    Reg r = m.call("twice", {I(21)});
    m.output("r", R(r));
    m.halt();
    Program p = pb.build();
    EXPECT_EQ(p.functions.size(), 2u);
    // The call instruction resolved to the callee's id.
    bool found = false;
    for (const auto &b : p.function(p.entry).blocks) {
        for (const auto &inst : b.insts) {
            if (inst.op == Op::Call) {
                EXPECT_EQ(inst.fid, p.findFunction("twice"));
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(VerifierTest, AcceptsValidProgram)
{
    Program p = tinyProgram();
    EXPECT_TRUE(verifyProgram(p).empty());
}

TEST(VerifierTest, RejectsMissingTerminator)
{
    Program p = tinyProgram();
    // Chop off the terminator of the entry block.
    p.functions[0].blocks[0].insts.pop_back();
    p.finalize();
    auto errs = verifyProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsBadBranchTarget)
{
    Program p = tinyProgram();
    Inst br;
    br.op = Op::Br;
    br.a = I(1);
    br.then_block = 42;
    br.else_block = 0;
    auto &insts = p.functions[0].blocks[0].insts;
    insts.insert(insts.end() - 1, br);
    p.finalize();
    auto errs = verifyProgram(p);
    bool found = false;
    for (const auto &e : errs)
        found = found || e.find("target") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(VerifierTest, RejectsRegisterOutOfRange)
{
    Program p = tinyProgram();
    p.functions[0].blocks[0].insts[0].dst = 999;
    auto errs = verifyProgram(p);
    bool found = false;
    for (const auto &e : errs)
        found = found || e.find("out of range") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(VerifierTest, RejectsBadSyncIds)
{
    ProgramBuilder pb("badsync");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.halt();
    Program p = pb.build();
    Inst lk;
    lk.op = Op::MutexLock;
    lk.sid = 3; // no mutexes declared
    auto &insts = p.functions[0].blocks[0].insts;
    insts.insert(insts.begin(), lk);
    p.finalize();
    auto errs = verifyProgram(p);
    bool found = false;
    for (const auto &e : errs)
        found = found || e.find("mutex") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(VerifierTest, RejectsEmptyInputDomain)
{
    ProgramBuilder pb("badinput");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.input("x", 5, 2); // empty domain
    m.halt();
    Program p = pb.build(/*verify=*/false);
    auto errs = verifyProgram(p);
    bool found = false;
    for (const auto &e : errs)
        found = found || e.find("domain") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(PrinterTest, RendersEveryInstruction)
{
    Program p = tinyProgram();
    std::string text = programToString(p);
    EXPECT_NE(text.find("program tiny"), std::string::npos);
    EXPECT_NE(text.find("global g[2]"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_GT(programLineCount(p), 5);
}

} // namespace
} // namespace portend::ir
