/** @file End-to-end tests for the Portend classifier. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "portend/outputcmp.h"
#include "portend/portend.h"

namespace portend::core {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

ir::Program
outputDiffersProgram()
{
    ir::ProgramBuilder pb("outdiff");
    ir::GlobalId g = pb.global("counter");
    auto &w = pb.function("worker", 1);
    w.to(w.block("e"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.retVoid();
    auto &f = pb.function("main", 0);
    f.to(f.block("e"));
    ir::Reg t1 = f.threadCreate("worker", I(0));
    ir::Reg v0 = f.load(g);
    f.output("snapshot", R(v0));
    f.threadJoin(R(t1));
    f.halt();
    return pb.build();
}

ir::Program
redundantWriteProgram()
{
    ir::ProgramBuilder pb("redundant");
    ir::GlobalId g = pb.global("flag");
    auto &w = pb.function("worker", 1);
    w.to(w.block("e"));
    w.store(g, I(0), I(7));
    w.retVoid();
    auto &f = pb.function("main", 0);
    f.to(f.block("e"));
    ir::Reg t1 = f.threadCreate("worker", I(0));
    f.store(g, I(0), I(7));
    f.threadJoin(R(t1));
    f.halt();
    return pb.build();
}

ir::Program
adhocSyncProgram()
{
    ir::ProgramBuilder pb("adhoc");
    ir::GlobalId flag = pb.global("done");
    auto &w = pb.function("producer", 1);
    w.to(w.block("e"));
    w.store(flag, I(0), I(1));
    w.retVoid();
    auto &f = pb.function("main", 0);
    ir::BlockId e = f.block("e");
    ir::BlockId spin = f.block("spin");
    ir::BlockId done = f.block("done");
    f.to(e);
    f.threadCreate("producer", I(0));
    f.jmp(spin);
    f.to(spin);
    ir::Reg fl = f.load(flag);
    f.br(R(fl), done, spin);
    f.to(done);
    f.halt();
    return pb.build();
}

ir::Program
crashProgram()
{
    ir::ProgramBuilder pb("crash");
    ir::GlobalId idx = pb.global("idx", 1, {3});
    ir::GlobalId arr = pb.global("arr", 4);
    auto &w = pb.function("bumper", 1);
    w.to(w.block("e"));
    ir::Reg v = w.load(idx);
    w.store(idx, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.retVoid();
    auto &f = pb.function("main", 0);
    f.to(f.block("e"));
    ir::Reg t1 = f.threadCreate("bumper", I(0));
    ir::Reg i = f.load(idx);
    f.store(arr, R(i), I(9));
    f.threadJoin(R(t1));
    f.halt();
    return pb.build();
}

Classification
classifyOnly(const ir::Program &p, PortendOptions opts = {})
{
    Portend tool(p, opts);
    PortendResult res = tool.run();
    EXPECT_EQ(res.reports.size(), 1u) << p.name;
    if (res.reports.empty())
        return {};
    return res.reports[0].classification;
}

TEST(PortendTest, OutputDiffersDetected)
{
    Classification c = classifyOnly(outputDiffersProgram());
    EXPECT_EQ(c.cls, RaceClass::OutputDiffers);
    EXPECT_FALSE(c.output_diff.empty());
    EXPECT_TRUE(c.evidence_alternate);
}

TEST(PortendTest, RedundantWriteIsKWitness)
{
    Classification c = classifyOnly(redundantWriteProgram());
    EXPECT_EQ(c.cls, RaceClass::KWitnessHarmless);
    EXPECT_GE(c.k, 1);
    EXPECT_FALSE(c.states_differ); // same value written both orders
}

TEST(PortendTest, SpinFlagIsSingleOrdering)
{
    Classification c = classifyOnly(adhocSyncProgram());
    EXPECT_EQ(c.cls, RaceClass::SingleOrdering);
}

TEST(PortendTest, IndexOverflowIsSpecViolated)
{
    Classification c = classifyOnly(crashProgram());
    EXPECT_EQ(c.cls, RaceClass::SpecViolated);
    EXPECT_EQ(c.viol, ViolationKind::Crash);
    EXPECT_NE(c.detail.find("out of bounds"), std::string::npos);
}

TEST(PortendTest, AdhocDetectionOffTurnsSingleOrderingHarmful)
{
    // Fig. 7's "single-path" configuration conservatively reports
    // unenforceable alternates as harmful, like [45].
    PortendOptions opts;
    opts.adhoc_detection = false;
    opts.multi_path = false;
    opts.multi_schedule = false;
    Classification c = classifyOnly(adhocSyncProgram(), opts);
    EXPECT_EQ(c.cls, RaceClass::SpecViolated);
    EXPECT_EQ(c.viol, ViolationKind::ReplayFailure);
}

TEST(PortendTest, KGrowsWithDials)
{
    PortendOptions small;
    small.mp = 1;
    small.ma = 1;
    Classification c1 = classifyOnly(redundantWriteProgram(), small);
    PortendOptions big;
    big.mp = 5;
    big.ma = 3;
    Classification c2 = classifyOnly(redundantWriteProgram(), big);
    EXPECT_LE(c1.k, c2.k);
}

TEST(PortendTest, FormatReportMentionsEverything)
{
    ir::Program p = crashProgram();
    Portend tool(p, PortendOptions{});
    PortendResult res = tool.run();
    ASSERT_EQ(res.reports.size(), 1u);
    std::string text = formatReport(p, res.reports[0]);
    EXPECT_NE(text.find("Data race during access to: idx"),
              std::string::npos);
    EXPECT_NE(text.find("spec violated"), std::string::npos);
    EXPECT_NE(text.find("evidence"), std::string::npos);
}

TEST(PortendTest, ByClassFilters)
{
    ir::Program p = crashProgram();
    Portend tool(p, PortendOptions{});
    PortendResult res = tool.run();
    EXPECT_EQ(res.byClass(RaceClass::SpecViolated).size(), 1u);
    EXPECT_TRUE(res.byClass(RaceClass::OutputDiffers).empty());
}

TEST(PortendTest, ByClassFiltersSyntheticResult)
{
    PortendResult res;
    auto add = [&res](RaceClass c) {
        PortendReport r;
        r.classification.cls = c;
        res.reports.push_back(r);
    };
    add(RaceClass::SpecViolated);
    add(RaceClass::OutputDiffers);
    add(RaceClass::SpecViolated);
    add(RaceClass::KWitnessHarmless);
    add(RaceClass::SingleOrdering);

    std::vector<const PortendReport *> viol =
        res.byClass(RaceClass::SpecViolated);
    ASSERT_EQ(viol.size(), 2u);
    // Pointers reference the result's own reports, in report order.
    EXPECT_EQ(viol[0], &res.reports[0]);
    EXPECT_EQ(viol[1], &res.reports[2]);
    EXPECT_EQ(res.byClass(RaceClass::OutputDiffers).size(), 1u);
    EXPECT_EQ(res.byClass(RaceClass::KWitnessHarmless).size(), 1u);
    EXPECT_EQ(res.byClass(RaceClass::SingleOrdering).size(), 1u);
    EXPECT_TRUE(res.byClass(RaceClass::Unclassified).empty());
}

TEST(ClassifyTest, RaceClassNameRoundTrips)
{
    for (RaceClass c : kAllRaceClasses) {
        std::optional<RaceClass> parsed =
            raceClassFromName(raceClassName(c));
        ASSERT_TRUE(parsed.has_value()) << raceClassName(c);
        EXPECT_EQ(*parsed, c) << raceClassName(c);
    }
}

TEST(ClassifyTest, RaceClassNamesArePaperSpellings)
{
    EXPECT_STREQ(raceClassName(RaceClass::SpecViolated),
                 "spec violated");
    EXPECT_STREQ(raceClassName(RaceClass::OutputDiffers),
                 "output differs");
    EXPECT_STREQ(raceClassName(RaceClass::KWitnessHarmless),
                 "k-witness harmless");
    EXPECT_STREQ(raceClassName(RaceClass::SingleOrdering),
                 "single ordering");
}

TEST(ClassifyTest, RaceClassFromNameRejectsUnknown)
{
    EXPECT_FALSE(raceClassFromName("benign").has_value());
    EXPECT_FALSE(raceClassFromName("").has_value());
    EXPECT_FALSE(raceClassFromName("Spec Violated").has_value());
    EXPECT_FALSE(raceClassFromName("spec violated ").has_value());
}

TEST(OutputCmpTest, ConcreteComparison)
{
    rt::OutputLog a, b;
    rt::OutputRecord r;
    r.label = "x";
    r.tid = 0;
    r.value = sym::mkConst(1);
    a.append(r);
    b.append(r);
    EXPECT_TRUE(compareConcreteOutputs(a, b).match);
    rt::OutputRecord r2 = r;
    r2.value = sym::mkConst(2);
    b.append(r2);
    EXPECT_FALSE(compareConcreteOutputs(a, b).match);
}

TEST(OutputCmpTest, SymbolicComparisonUsesConstraints)
{
    sym::ExprPtr x = sym::Expr::symbol("x", 0, sym::Width::I64, 0, 9);
    rt::OutputLog primary, alternate;
    rt::OutputRecord rp;
    rp.label = "v";
    rp.tid = 0;
    rp.value = sym::mkAdd(x, sym::mkConst(1));
    primary.append(rp);
    rt::OutputRecord ra;
    ra.label = "v";
    ra.tid = 0;
    ra.value = sym::mkConst(5);
    alternate.append(ra);

    sym::Solver solver;
    // Under x < 9 the concrete 5 is admissible (x = 4).
    std::vector<sym::ExprPtr> pc{sym::mkSlt(x, sym::mkConst(9))};
    EXPECT_TRUE(
        compareSymbolicOutputs(primary, pc, alternate, solver).match);
    // Under x > 7 it is not (x + 1 >= 9 > 5).
    std::vector<sym::ExprPtr> pc2{sym::mkSlt(sym::mkConst(7), x)};
    EXPECT_FALSE(
        compareSymbolicOutputs(primary, pc2, alternate, solver).match);
}

TEST(OutputCmpTest, PerThreadInterleavingIgnored)
{
    // Cross-thread interleaving differences are scheduler noise;
    // per-thread sequences decide equivalence.
    rt::OutputLog a, b;
    rt::OutputRecord t0;
    t0.label = "zero";
    t0.tid = 0;
    rt::OutputRecord t1;
    t1.label = "one";
    t1.tid = 1;
    a.append(t0);
    a.append(t1);
    b.append(t1);
    b.append(t0);
    EXPECT_TRUE(compareConcreteOutputs(a, b).match);
}

} // namespace
} // namespace portend::core

namespace portend::core {
namespace {

TEST(EvidenceReplayTest, CrashEvidenceReproduces)
{
    ir::Program p = crashProgram();
    Portend tool(p, PortendOptions{});
    DetectionResult det = tool.detect();
    ASSERT_EQ(det.clusters.size(), 1u);
    RaceAnalyzer analyzer(p, PortendOptions{});
    Classification verdict = analyzer.classify(
        det.clusters[0].representative, det.trace);
    ASSERT_EQ(verdict.cls, RaceClass::SpecViolated);

    // Replaying the evidence deterministically reproduces the crash.
    RaceAnalyzer::EvidenceReplay replay = analyzer.replayEvidence(
        det.clusters[0].representative, det.trace, verdict);
    EXPECT_TRUE(rt::isSpecViolation(replay.outcome))
        << rt::runOutcomeName(replay.outcome) << ": " << replay.detail;
}

TEST(EvidenceReplayTest, HarmlessEvidenceCompletes)
{
    ir::Program p = redundantWriteProgram();
    Portend tool(p, PortendOptions{});
    DetectionResult det = tool.detect();
    ASSERT_EQ(det.clusters.size(), 1u);
    RaceAnalyzer analyzer(p, PortendOptions{});
    Classification verdict = analyzer.classify(
        det.clusters[0].representative, det.trace);
    ASSERT_EQ(verdict.cls, RaceClass::KWitnessHarmless);
    RaceAnalyzer::EvidenceReplay replay = analyzer.replayEvidence(
        det.clusters[0].representative, det.trace, verdict);
    EXPECT_EQ(replay.outcome, rt::RunOutcome::Exited);
}

} // namespace
} // namespace portend::core
