/**
 * @file
 * Tests for the unified observability layer (PR 8): metrics-shard
 * merge algebra, collector drains, export determinism across worker
 * counts and runs, trace-event JSON schema invariants, JSON-lines
 * telemetry, and the monotonic clock contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "portend/portend.h"
#include "support/clock.h"
#include "support/observe.h"
#include "support/trace.h"
#include "workloads/registry.h"

namespace portend {
namespace {

/** Reset every process-wide sink on scope exit, so tests cannot
 *  leak an installed collector/tracer/progress into each other. */
struct SinkGuard
{
    ~SinkGuard()
    {
        obs::setCollector(nullptr);
        obs::setTracer(nullptr);
        obs::setProgress(nullptr);
    }
};

core::PortendResult
runWorkload(const std::string &name, int jobs)
{
    workloads::Workload w = workloads::buildWorkload(name);
    core::PortendOptions opts;
    opts.jobs = jobs;
    opts.semantic_predicates = w.semantic_predicates;
    core::Portend tool(w.program, opts);
    return tool.run();
}

// ---------------------------------------------------------------------------
// Shard algebra
// ---------------------------------------------------------------------------

TEST(MetricsShardTest, MergeIsCommutative)
{
    obs::MetricsShard a;
    a.add(obs::Counter::InterpSteps, 10);
    a.level(obs::Gauge::DecodedSites, 7);
    a.observe(obs::Hist::InterpRunSteps, 5);

    obs::MetricsShard b;
    b.add(obs::Counter::InterpSteps, 32);
    b.add(obs::Counter::SolverQueries, 4);
    b.level(obs::Gauge::DecodedSites, 3);
    b.observe(obs::Hist::InterpRunSteps, 900);

    obs::MetricsShard ab = a;
    ab.merge(b);
    obs::MetricsShard ba = b;
    ba.merge(a);
    EXPECT_EQ(obs::metricsJson(ab), obs::metricsJson(ba));
    EXPECT_EQ(ab.counter(obs::Counter::InterpSteps), 42u);
    EXPECT_EQ(ab.gauge(obs::Gauge::DecodedSites), 7u); // max, not sum
    EXPECT_EQ(ab.histCount(obs::Hist::InterpRunSteps), 2u);
    EXPECT_EQ(ab.histSum(obs::Hist::InterpRunSteps), 905u);
}

TEST(MetricsShardTest, HistogramBucketsAreLog2)
{
    obs::MetricsShard s;
    s.observe(obs::Hist::InterpRunSteps, 0); // bucket 0: {0}
    s.observe(obs::Hist::InterpRunSteps, 1); // bucket 1: [1, 2)
    s.observe(obs::Hist::InterpRunSteps, 2); // bucket 2: [2, 4)
    s.observe(obs::Hist::InterpRunSteps, 3);
    s.observe(obs::Hist::InterpRunSteps, 1024); // bucket 11
    EXPECT_EQ(s.histBucket(obs::Hist::InterpRunSteps, 0), 1u);
    EXPECT_EQ(s.histBucket(obs::Hist::InterpRunSteps, 1), 1u);
    EXPECT_EQ(s.histBucket(obs::Hist::InterpRunSteps, 2), 2u);
    EXPECT_EQ(s.histBucket(obs::Hist::InterpRunSteps, 11), 1u);
    EXPECT_EQ(s.histCount(obs::Hist::InterpRunSteps), 5u);
    EXPECT_EQ(s.histSum(obs::Hist::InterpRunSteps), 1030u);
}

TEST(MetricsShardTest, ExportCoversEveryRegisteredMetric)
{
    obs::MetricsShard s;
    const std::string json = obs::metricsJson(s);
    EXPECT_NE(json.find("\"schema\": \"portend-metrics-v1\""),
              std::string::npos);
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
        const char *name =
            obs::counterName(static_cast<obs::Counter>(i));
        EXPECT_NE(json.find('"' + std::string(name) + '"'),
                  std::string::npos)
            << "counter missing from export: " << name;
    }
    for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
        const char *name = obs::gaugeName(static_cast<obs::Gauge>(i));
        EXPECT_NE(json.find('"' + std::string(name) + '"'),
                  std::string::npos)
            << "gauge missing from export: " << name;
    }
    for (std::size_t i = 0; i < obs::kNumHists; ++i) {
        const char *name = obs::histName(static_cast<obs::Hist>(i));
        EXPECT_NE(json.find('"' + std::string(name) + '"'),
                  std::string::npos)
            << "histogram missing from export: " << name;
    }
    // No timing and no worker counts: the determinism contract.
    EXPECT_EQ(json.find("seconds"), std::string::npos);
    EXPECT_EQ(json.find("jobs"), std::string::npos);
}

TEST(CollectorTest, DrainMatchesShardAndIsNonDestructive)
{
    obs::Collector c;
    c.add(obs::Counter::SolverQueries, 3);
    c.level(obs::Gauge::FuzzCorpusSize, 9);
    c.level(obs::Gauge::FuzzCorpusSize, 4); // max keeps 9
    c.observe(obs::Hist::InterpRunSteps, 17);

    obs::MetricsShard expect;
    expect.add(obs::Counter::SolverQueries, 3);
    expect.level(obs::Gauge::FuzzCorpusSize, 9);
    expect.observe(obs::Hist::InterpRunSteps, 17);

    obs::MetricsShard once;
    c.drainInto(once);
    EXPECT_EQ(obs::metricsJson(once), obs::metricsJson(expect));

    obs::MetricsShard twice;
    c.drainInto(twice);
    EXPECT_EQ(obs::metricsJson(twice), obs::metricsJson(once));
}

// ---------------------------------------------------------------------------
// Pipeline export determinism
// ---------------------------------------------------------------------------

TEST(MetricsDeterminismTest, JobsDoNotChangeExportedBytes)
{
    // rw reaches stage 3 (k-witness harmless via DPOR), so every
    // subsystem contributes to the shard.
    const std::string one =
        obs::metricsJson(runWorkload("rw", 1).metrics);
    const std::string four =
        obs::metricsJson(runWorkload("rw", 4).metrics);
    EXPECT_EQ(one, four);
}

TEST(MetricsDeterminismTest, RunToRunBytesAreIdentical)
{
    const std::string first =
        obs::metricsJson(runWorkload("dbm", 2).metrics);
    const std::string second =
        obs::metricsJson(runWorkload("dbm", 2).metrics);
    EXPECT_EQ(first, second);
}

TEST(MetricsDeterminismTest, PipelineShardCountsClustersAndVerdicts)
{
    core::PortendResult res = runWorkload("rw", 2);
    const obs::MetricsShard &m = res.metrics;
    EXPECT_EQ(m.counter(obs::Counter::PipelineWorkloads), 1u);
    EXPECT_EQ(m.counter(obs::Counter::ClassifyClusters),
              res.reports.size());
    std::uint64_t verdicts =
        m.counter(obs::Counter::VerdictSpecViolated) +
        m.counter(obs::Counter::VerdictOutputDiffers) +
        m.counter(obs::Counter::VerdictKWitnessHarmless) +
        m.counter(obs::Counter::VerdictSingleOrdering) +
        m.counter(obs::Counter::VerdictUnclassified);
    EXPECT_EQ(verdicts, res.reports.size());
    EXPECT_EQ(m.counter(obs::Counter::DetectClusters),
              res.detection.clusters.size());
    EXPECT_GT(m.counter(obs::Counter::ClassifySteps), 0u);
}

// ---------------------------------------------------------------------------
// Ledger views stay consistent with the registry
// ---------------------------------------------------------------------------

TEST(LedgerViewTest, SchedulerStatsMatchTheMergedShard)
{
    workloads::Workload w = workloads::buildWorkload("rw");
    core::PortendOptions opts;
    opts.jobs = 2;
    opts.semantic_predicates = w.semantic_predicates;
    core::Portend tool(w.program, opts);
    core::PortendResult res = tool.run();
    const core::SchedulerStats &st = res.scheduling;
    const obs::MetricsShard &m = res.metrics;
    EXPECT_EQ(static_cast<std::uint64_t>(st.clusters),
              m.counter(obs::Counter::ClassifyClusters));
    EXPECT_EQ(st.steps, m.counter(obs::Counter::ClassifySteps));
    EXPECT_EQ(static_cast<std::uint64_t>(st.schedules_explored),
              m.counter(obs::Counter::ClassifySchedules));
    EXPECT_EQ(static_cast<std::uint64_t>(st.solver_queries),
              m.counter(obs::Counter::ClassifySolverQueries));
}

TEST(LedgerViewTest, DetectionShardMirrorsVmStats)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    core::Portend tool(w.program, core::PortendOptions{});
    core::DetectionResult d = tool.detect();
    const obs::MetricsShard &m = d.metrics;
    EXPECT_EQ(m.counter(obs::Counter::DetectRuns), 1u);
    EXPECT_EQ(m.counter(obs::Counter::DetectSteps), d.steps);
    EXPECT_EQ(m.counter(obs::Counter::DetectEventsBatched),
              d.vm.events_batched);
    EXPECT_EQ(m.counter(obs::Counter::DetectPagesUnshared),
              d.vm.pages_unshared);
    EXPECT_EQ(m.counter(obs::Counter::DetectValuesBoxed),
              d.vm.values_boxed);
    EXPECT_EQ(m.gauge(obs::Gauge::DecodedSites),
              static_cast<std::uint64_t>(d.decoded_sites));
}

// ---------------------------------------------------------------------------
// Trace-event JSON schema
// ---------------------------------------------------------------------------

/** One parsed ph:"X" event (fields pulled straight off the line the
 *  writer emits — the writer's one-event-per-line layout is part of
 *  what this parser checks). */
struct ParsedEvent
{
    double ts = 0;
    double dur = 0;
    long tid = -1;
    std::string cat;
};

std::vector<ParsedEvent>
parseCompleteEvents(const std::string &json)
{
    std::vector<ParsedEvent> out;
    std::istringstream is(json);
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        ParsedEvent e;
        auto number = [&](const char *key) -> double {
            std::size_t at = line.find(key);
            EXPECT_NE(at, std::string::npos) << key << " in " << line;
            return std::stod(line.substr(at + std::strlen(key)));
        };
        e.ts = number("\"ts\": ");
        e.dur = number("\"dur\": ");
        e.tid = static_cast<long>(number("\"tid\": "));
        std::size_t c = line.find("\"cat\": \"");
        EXPECT_NE(c, std::string::npos);
        c += 8;
        e.cat = line.substr(c, line.find('"', c) - c);
        out.push_back(e);
    }
    return out;
}

TEST(TraceSchemaTest, PipelineTraceIsWellFormedAndNested)
{
    SinkGuard guard;
    obs::Tracer tracer;
    obs::setTracer(&tracer);
    core::PortendResult res = runWorkload("rw", 2);
    obs::setTracer(nullptr);
    ASSERT_FALSE(res.reports.empty());

    const std::string json = tracer.toJson();
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_EQ(tracer.dropped(), 0u);

    std::vector<ParsedEvent> events = parseCompleteEvents(json);
    ASSERT_GE(events.size(), 5u);

    // Spans from at least five subsystems (the acceptance bar).
    std::map<std::string, int> cats;
    for (const ParsedEvent &e : events)
        cats[e.cat] += 1;
    EXPECT_GE(cats.size(), 5u) << "categories seen: " << cats.size();
    for (const char *want :
         {"interp", "ladder", "explore", "sym", "scheduler"})
        EXPECT_TRUE(cats.count(want)) << "no spans from " << want;

    // Per thread: timestamps monotone (the writer sorts) and spans
    // properly nested — a child must end before its parent does.
    std::map<long, std::vector<ParsedEvent>> per_tid;
    for (const ParsedEvent &e : events)
        per_tid[e.tid].push_back(e);
    for (auto &[tid, evs] : per_tid) {
        double prev_ts = -1;
        std::vector<double> open_ends;
        for (const ParsedEvent &e : evs) {
            EXPECT_GE(e.ts, prev_ts) << "ts not monotone, tid " << tid;
            prev_ts = e.ts;
            const double end = e.ts + e.dur;
            while (!open_ends.empty() && open_ends.back() <= e.ts)
                open_ends.pop_back();
            if (!open_ends.empty()) {
                EXPECT_LE(end, open_ends.back())
                    << "span overlaps its parent, tid " << tid;
            }
            open_ends.push_back(end);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON-lines telemetry
// ---------------------------------------------------------------------------

TEST(ProgressTest, OneClusterEventPerClassifiedCluster)
{
    SinkGuard guard;
    std::ostringstream sink;
    obs::Progress progress(sink);
    obs::setProgress(&progress);
    core::PortendResult res = runWorkload("rw", 2);
    obs::setProgress(nullptr);

    std::size_t cluster_lines = 0;
    std::size_t schedule_lines = 0;
    std::istringstream is(sink.str());
    std::string line;
    while (std::getline(is, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        if (line.find("\"event\": \"cluster\"") != std::string::npos)
            cluster_lines += 1;
        if (line.find("\"event\": \"schedule\"") != std::string::npos)
            schedule_lines += 1;
    }
    EXPECT_EQ(cluster_lines, res.reports.size());
    // rw reaches multi-schedule exploration, so schedule events flow.
    EXPECT_GT(schedule_lines, 0u);
}

TEST(ProgressTest, VerdictsUnchangedWithEverySinkInstalled)
{
    core::PortendResult plain = runWorkload("dcl", 2);

    SinkGuard guard;
    obs::Collector collector;
    obs::Tracer tracer;
    std::ostringstream sink;
    obs::Progress progress(sink);
    obs::setCollector(&collector);
    obs::setTracer(&tracer);
    obs::setProgress(&progress);
    core::PortendResult observed = runWorkload("dcl", 2);
    obs::setCollector(nullptr);
    obs::setTracer(nullptr);
    obs::setProgress(nullptr);

    ASSERT_EQ(plain.reports.size(), observed.reports.size());
    for (std::size_t i = 0; i < plain.reports.size(); ++i) {
        EXPECT_EQ(plain.reports[i].classification.cls,
                  observed.reports[i].classification.cls);
        EXPECT_EQ(plain.reports[i].classification.k,
                  observed.reports[i].classification.k);
    }
    EXPECT_EQ(obs::metricsJson(plain.metrics),
              obs::metricsJson(observed.metrics));
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

TEST(ClockTest, SteadyNanosIsMonotone)
{
    std::uint64_t prev = steadyNanos();
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t now = steadyNanos();
        ASSERT_GE(now, prev);
        prev = now;
    }
}

TEST(ClockTest, SteadySecondsConverts)
{
    EXPECT_DOUBLE_EQ(steadySeconds(0, 2'500'000'000ull), 2.5);
    EXPECT_DOUBLE_EQ(steadySeconds(1'000'000'000ull,
                                   1'000'000'000ull),
                     0.0);
}

} // namespace
} // namespace portend
