/**
 * @file
 * Serve-layer tests: wire-protocol round trips and mutant-fuzz
 * robustness (PR 3 style — mutated frames must parse or poison,
 * never crash), subprocess supervision primitives, and the headline
 * end-to-end properties of `portend serve`: a submission's merged
 * verdict bytes are identical to a single-process campaign run,
 * including after a worker is SIGKILLed mid-unit (its claimed-but-
 * unjournaled units are re-dispatched), and a resubmission of the
 * same manifest is answered entirely from the journal + cache.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "campaign/campaign.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/subproc.h"
#include "support/wire.h"

namespace fs = std::filesystem;

namespace portend {
namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

// -- Wire protocol ----------------------------------------------------

TEST(WireTest, EncodeDecodeRoundTrip)
{
    const std::vector<wire::Frame> frames = {
        {"ping", ""},
        {"submit", "line one\nline two\n"},
        {"result", std::string("bin\0ary\nbytes", 13)},
        {"a", std::string(100000, 'x')},
    };
    std::string stream;
    for (const wire::Frame &f : frames)
        stream += wire::encodeFrame(f);

    wire::FrameReader r;
    r.feed(stream.data(), stream.size());
    for (const wire::Frame &want : frames) {
        std::optional<wire::Frame> got = r.next();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->type, want.type);
        EXPECT_EQ(got->payload, want.payload);
    }
    EXPECT_FALSE(r.next().has_value());
    EXPECT_FALSE(r.failed());
}

TEST(WireTest, OneBytePerFeedReassembles)
{
    const wire::Frame want = {"status_ok", "{\"busy\": 0}"};
    const std::string bytes = wire::encodeFrame(want);
    wire::FrameReader r;
    std::optional<wire::Frame> got;
    for (char c : bytes) {
        ASSERT_FALSE(got.has_value());
        r.feed(&c, 1);
        got = r.next();
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, want.type);
    EXPECT_EQ(got->payload, want.payload);
}

TEST(WireTest, MalformedHeadersPoisonPermanently)
{
    const std::vector<std::string> bad = {
        "xsrv1 ping 0\n",         // wrong magic
        "psrv1 PING 0\n",         // uppercase type
        "psrv1 pi-ng 0\n",        // bad type char
        "psrv1 ping -1\n",        // negative size
        "psrv1 ping 0x10\n",      // hex size
        "psrv1 ping 999999999999999\n", // over the payload cap
        "psrv1 " + std::string(64, 'a') + " 0\n", // overlong type
        "psrv1 ping\n",           // missing size
        std::string(128, 'z'),    // no newline within header bound
    };
    for (const std::string &b : bad) {
        wire::FrameReader r;
        r.feed(b.data(), b.size());
        EXPECT_FALSE(r.next().has_value()) << b;
        EXPECT_TRUE(r.failed()) << b;
        // Poisoned for good: later valid bytes must not resurrect it.
        const std::string good = wire::encodeFrame({"ping", ""});
        r.feed(good.data(), good.size());
        EXPECT_FALSE(r.next().has_value()) << b;
        EXPECT_TRUE(r.failed()) << b;
    }
}

TEST(WireTest, MutantFuzzParseOrPoisonNeverCrash)
{
    // PR 3 style: mutate every byte of a valid two-frame stream
    // through a few deterministic operators. Every mutant must
    // either parse into well-formed frames or poison the reader —
    // and a returned frame always satisfies the protocol bounds.
    const std::string base = wire::encodeFrame({"submit", "abc\n"}) +
                             wire::encodeFrame({"done", "7 deadbeef 0"});
    int parsed = 0, poisoned = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (int op = 0; op < 3; ++op) {
            std::string m = base;
            if (op == 0)
                m[i] = static_cast<char>(m[i] ^ 0x20);
            else if (op == 1)
                m.erase(i, 1);
            else
                m.insert(i, 1, '\n');
            wire::FrameReader r;
            r.feed(m.data(), m.size());
            int frames = 0;
            while (std::optional<wire::Frame> f = r.next()) {
                frames += 1;
                EXPECT_TRUE(wire::validFrameType(f->type));
                EXPECT_LE(f->payload.size(), wire::kMaxFramePayload);
                ASSERT_LE(frames, 4); // no infinite frame streams
            }
            if (r.failed())
                poisoned += 1;
            else
                parsed += 1;
        }
    }
    // Both outcomes must actually occur across the battery.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(poisoned, 0);
}

#ifndef _WIN32

// -- Subprocess supervision ------------------------------------------

TEST(SubprocTest, SpawnEchoTerminateReap)
{
    std::string err;
    std::optional<sub::Child> child = sub::spawn(
        [](int fd) {
            char buf[64];
            for (;;) {
                const long r = sub::readSome(fd, buf, sizeof buf);
                if (r <= 0)
                    return 0;
                if (!sub::writeAll(fd, buf,
                                   static_cast<std::size_t>(r)))
                    return 1;
            }
        },
        &err);
    ASSERT_TRUE(child.has_value()) << err;
    ASSERT_TRUE(child->running());
    const char msg[] = "round trip";
    ASSERT_TRUE(sub::writeAll(child->fd, msg, sizeof msg - 1));
    char buf[64];
    const long r = sub::readSome(child->fd, buf, sizeof buf);
    ASSERT_EQ(r, static_cast<long>(sizeof msg - 1));
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(r)), msg);
    sub::terminate(*child, 2.0);
    EXPECT_FALSE(child->running());
}

TEST(SubprocTest, SigkilledChildIsReaped)
{
    std::string err;
    std::optional<sub::Child> child = sub::spawn(
        [](int fd) {
            char buf[8];
            while (sub::readSome(fd, buf, sizeof buf) > 0) {
            }
            // Linger even after the channel closes.
            for (;;)
                ::usleep(100 * 1000);
            return 0; // unreachable; fixes the deduced return type
        },
        &err);
    ASSERT_TRUE(child.has_value()) << err;
    sub::kill(*child, SIGKILL);
    while (!sub::reap(*child))
        ::usleep(1000);
    EXPECT_FALSE(child->running());
    sub::closeChannel(*child);
}

// -- End-to-end server -----------------------------------------------

/** The 3-unit manifest the serve tests submit. */
campaign::CampaignConfig
microConfig()
{
    campaign::CampaignConfig config;
    config.render.json = true;
    config.units = {{"workload", "avv"},
                    {"workload", "dcl"},
                    {"workload", "dbm"}};
    return config;
}

/** What a single-process run of @p config renders. */
std::string
ephemeralBytes(const campaign::CampaignConfig &config)
{
    campaign::Campaign engine(config);
    campaign::CampaignResult res = engine.run(-1, 1);
    EXPECT_TRUE(res.complete());
    return res.mergedOutput(config.render.json);
}

/** Fork a `portend serve` equivalent: Server::start + loop in a
 *  child process. Returns the child (reply channel unused). */
std::optional<sub::Child>
startServer(const serve::ServeOptions &so, std::string *err)
{
    return sub::spawn(
        [so](int) {
            serve::Server server(so);
            std::string e;
            if (!server.start(&e)) {
                std::fprintf(stderr, "server: %s\n", e.c_str());
                return 1;
            }
            return server.loop();
        },
        err);
}

int
waitExit(sub::Child &child)
{
    int status = -1;
    while (!sub::reap(child, &status))
        ::usleep(2000);
    sub::closeChannel(child);
    return status;
}

TEST(ServeTest, SubmitMatchesSingleProcessCampaignBytes)
{
    const campaign::CampaignConfig config = microConfig();
    const std::string expected = ephemeralBytes(config);
    const std::string dir = scratchDir("e2e");

    serve::ServeOptions so;
    so.dir = dir + "/state";
    so.socket_path = dir + "/sock";
    so.workers = 2;
    std::string err;
    std::optional<sub::Child> server = startServer(so, &err);
    ASSERT_TRUE(server.has_value()) << err;

    serve::Endpoint ep;
    ep.socket_path = so.socket_path;
    ASSERT_TRUE(serve::ping(ep, &err)) << err;

    const std::string manifest = campaign::manifestText(config);
    std::string out;
    ASSERT_TRUE(serve::submit(ep, manifest, &out, &err)) << err;
    EXPECT_EQ(out, expected);

    // Resubmission: every unit is journaled now, so the answer comes
    // from replay without dispatching anything — and is the same
    // bytes.
    std::string out2;
    ASSERT_TRUE(serve::submit(ep, manifest, &out2, &err)) << err;
    EXPECT_EQ(out2, expected);

    std::string status;
    ASSERT_TRUE(serve::requestStatus(ep, &status, &err)) << err;
    EXPECT_NE(status.find("\"units_completed\": 3"),
              std::string::npos)
        << status;
    EXPECT_NE(status.find("\"submissions\": 2"), std::string::npos)
        << status;

    ASSERT_TRUE(serve::requestShutdown(ep, &err)) << err;
    EXPECT_EQ(waitExit(*server), 0);
}

TEST(ServeTest, SigkilledWorkerUnitsAreRedispatched)
{
    const campaign::CampaignConfig config = microConfig();
    const std::string expected = ephemeralBytes(config);
    const std::string dir = scratchDir("kill");

    serve::ServeOptions so;
    so.dir = dir + "/state";
    so.socket_path = dir + "/sock";
    // One worker + kill injection after the first completion: the
    // worker is SIGKILLed while busy on the next unit, which must be
    // re-dispatched to the respawned worker.
    so.workers = 1;
    so.kill_worker_after = 1;
    std::string err;
    std::optional<sub::Child> server = startServer(so, &err);
    ASSERT_TRUE(server.has_value()) << err;

    serve::Endpoint ep;
    ep.socket_path = so.socket_path;
    std::string out;
    ASSERT_TRUE(serve::submit(ep, campaign::manifestText(config),
                              &out, &err))
        << err;
    EXPECT_EQ(out, expected);

    std::string status;
    ASSERT_TRUE(serve::requestStatus(ep, &status, &err)) << err;
    EXPECT_NE(status.find("\"worker_deaths\": 1"), std::string::npos)
        << status;
    EXPECT_NE(status.find("\"worker_restarts\": 1"),
              std::string::npos)
        << status;

    ASSERT_TRUE(serve::requestShutdown(ep, &err)) << err;
    EXPECT_EQ(waitExit(*server), 0);
}

TEST(ServeTest, MalformedManifestGetsErrorFrame)
{
    const std::string dir = scratchDir("badmanifest");
    serve::ServeOptions so;
    so.dir = dir + "/state";
    so.socket_path = dir + "/sock";
    so.workers = 1;
    std::string err;
    std::optional<sub::Child> server = startServer(so, &err);
    ASSERT_TRUE(server.has_value()) << err;

    serve::Endpoint ep;
    ep.socket_path = so.socket_path;
    std::string out;
    EXPECT_FALSE(serve::submit(ep, "not a manifest\n", &out, &err));
    EXPECT_NE(err.find("bad manifest"), std::string::npos) << err;

    wire::Frame resp;
    ASSERT_TRUE(serve::request(ep, {"bogus", ""}, &resp, &err))
        << err;
    EXPECT_EQ(resp.type, "error");

    ASSERT_TRUE(serve::requestShutdown(ep, &err)) << err;
    EXPECT_EQ(waitExit(*server), 0);
}

TEST(ServeTest, RawGarbageClosesTheConnection)
{
    const std::string dir = scratchDir("garbage");
    serve::ServeOptions so;
    so.dir = dir + "/state";
    so.socket_path = dir + "/sock";
    so.workers = 1;
    std::string err;
    std::optional<sub::Child> server = startServer(so, &err);
    ASSERT_TRUE(server.has_value()) << err;
    serve::Endpoint ep;
    ep.socket_path = so.socket_path;
    ASSERT_TRUE(serve::ping(ep, &err)) << err;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, so.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof addr),
              0);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(sub::writeAll(fd, junk, sizeof junk - 1));
    // The server answers with an error frame (best effort) and
    // closes; either way the stream must end.
    char buf[4096];
    long r;
    std::string got;
    while ((r = sub::readSome(fd, buf, sizeof buf)) > 0)
        got.append(buf, static_cast<std::size_t>(r));
    EXPECT_EQ(r, 0);
    EXPECT_NE(got.find("error"), std::string::npos) << got;
    ::close(fd);

    // And the server is still healthy afterwards.
    ASSERT_TRUE(serve::ping(ep, &err)) << err;
    ASSERT_TRUE(serve::requestShutdown(ep, &err)) << err;
    EXPECT_EQ(waitExit(*server), 0);
}

#endif // _WIN32

} // namespace
} // namespace portend
