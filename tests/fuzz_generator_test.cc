/**
 * @file
 * Generator invariants: every generated program is verifier-clean,
 * identical seeds yield byte-identical programs, recipes round-trip,
 * and the campaign's idiom coverage spans the sync surface.
 */

#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.h"
#include "ir/serialize.h"

namespace portend::fuzz {
namespace {

TEST(FuzzGenerator, EveryProgramIsVerifierClean)
{
    GeneratorOptions opts;
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        for (std::uint64_t i = 0; i < 40; ++i) {
            GeneratedProgram g = generateProgram(seed, i, opts);
            EXPECT_TRUE(g.verify_errors.empty())
                << "seed " << seed << " index " << i << ": "
                << g.verify_errors.front();
        }
    }
}

TEST(FuzzGenerator, SameSeedYieldsByteIdenticalProgram)
{
    GeneratorOptions opts;
    for (std::uint64_t i = 0; i < 20; ++i) {
        GeneratedProgram a = generateProgram(42, i, opts);
        GeneratedProgram b = generateProgram(42, i, opts);
        EXPECT_EQ(a.recipe, b.recipe);
        EXPECT_EQ(ir::serializeProgram(a.program),
                  ir::serializeProgram(b.program));
    }
}

TEST(FuzzGenerator, DifferentSeedsDiffer)
{
    GeneratorOptions opts;
    // Not a tautology (two draws could collide), but across 10
    // indices at least one program must differ between seeds.
    bool any_diff = false;
    for (std::uint64_t i = 0; i < 10 && !any_diff; ++i) {
        any_diff = ir::serializeProgram(
                       generateProgram(1, i, opts).program) !=
                   ir::serializeProgram(
                       generateProgram(2, i, opts).program);
    }
    EXPECT_TRUE(any_diff);
}

TEST(FuzzGenerator, CampaignSpansAtLeastFiveSyncIdioms)
{
    GeneratorOptions opts;
    std::set<std::string> idioms;
    for (std::uint64_t i = 0; i < 60; ++i) {
        GeneratedProgram g = generateProgram(42, i, opts);
        idioms.insert(g.idioms.begin(), g.idioms.end());
    }
    EXPECT_GE(idioms.size(), 5u) << "idiom coverage collapsed";
    // The properly synchronized decorations must appear too, not
    // just the racy patterns.
    EXPECT_TRUE(idioms.count("thread-join"));
    EXPECT_TRUE(idioms.count("barrier") ||
                idioms.count("cond-handshake") ||
                idioms.count("mutex-counter"));
}

TEST(FuzzGenerator, BlockingWaitsPointAtSmallerThreadIndices)
{
    // The deadlock-freedom argument rests on this invariant.
    GeneratorOptions opts;
    for (std::uint64_t i = 0; i < 60; ++i) {
        ProgramRecipe r = generateProgram(7, i, opts).recipe;
        for (const PatternSpec &p : r.patterns) {
            if (p.kind == PatternKind::SpinFlag ||
                p.kind == PatternKind::SpinFlagOnly) {
                EXPECT_LT(p.producer, p.consumer);
            }
        }
        for (const DecorSpec &d : r.decors) {
            if (d.kind == DecorKind::CondHandshake) {
                EXPECT_LT(d.a, d.b);
            }
        }
    }
}

TEST(FuzzGenerator, RecipeSerializationRoundTrips)
{
    GeneratorOptions opts;
    for (std::uint64_t i = 0; i < 25; ++i) {
        ProgramRecipe r = generateProgram(42, i, opts).recipe;
        std::optional<ProgramRecipe> back =
            deserializeRecipe(r.serialize());
        ASSERT_TRUE(back.has_value()) << r.serialize();
        EXPECT_EQ(*back, r);
    }
}

TEST(FuzzGenerator, RecipeParserRejectsMalformedText)
{
    EXPECT_FALSE(deserializeRecipe("").has_value());
    EXPECT_FALSE(deserializeRecipe("recipe v2 x 2").has_value());
    EXPECT_FALSE(deserializeRecipe("recipe v1 x 0").has_value());
    EXPECT_FALSE(
        deserializeRecipe("recipe v1 x 2 pat:bogus:0:1:0").has_value());
    EXPECT_FALSE(
        deserializeRecipe("recipe v1 x 2 pat:last-writer:0:5:1")
            .has_value());
    EXPECT_FALSE(
        deserializeRecipe("recipe v1 x 2 pat:last-writer:1:1:1")
            .has_value());
    EXPECT_FALSE(
        deserializeRecipe("recipe v1 x 2 dec:barrier:0:1").has_value());
    EXPECT_FALSE(
        deserializeRecipe("recipe v1 x 2 zzz:barrier:0:1:0")
            .has_value());
}

TEST(FuzzGenerator, BuildRejectsOutOfRangeRecipeIndices)
{
    ProgramRecipe r;
    r.name = "bad";
    r.workers = 2;
    r.patterns.push_back(
        PatternSpec{PatternKind::LastWriter, 0, 5, 1});
    GeneratedProgram g = buildProgram(r);
    ASSERT_FALSE(g.verify_errors.empty());
    EXPECT_NE(g.verify_errors.front().find("recipe"),
              std::string::npos);
}

TEST(FuzzGenerator, LoweringIsDeterministicPerRecipe)
{
    ProgramRecipe r;
    r.name = "fixed";
    r.workers = 3;
    r.patterns.push_back(
        PatternSpec{PatternKind::SpinFlag, 0, 2, 1});
    r.patterns.push_back(
        PatternSpec{PatternKind::PrintedValue, 1, 0, 9});
    r.decors.push_back(DecorSpec{DecorKind::Barrier, 0, 1, 0});
    r.decors.push_back(DecorSpec{DecorKind::CondHandshake, 0, 2, 0});
    GeneratedProgram a = buildProgram(r);
    GeneratedProgram b = buildProgram(r);
    ASSERT_TRUE(a.verify_errors.empty());
    EXPECT_EQ(ir::serializeProgram(a.program),
              ir::serializeProgram(b.program));
    // Ground truth rides along: spin-flag contributes two races.
    EXPECT_EQ(a.expected.size(), 3u);
}

} // namespace
} // namespace portend::fuzz
