/** @file Integration tests: every paper workload's race population
 *  must match its documented ground truth (Table 3). */

#include <gtest/gtest.h>

#include <map>

#include "portend/portend.h"
#include "workloads/registry.h"

namespace portend::workloads {
namespace {

/** Full pipeline over one workload with default (paper) options. */
class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, MatchesGroundTruth)
{
    Workload w = buildWorkload(GetParam());
    core::Portend tool(w.program, core::PortendOptions{});
    core::PortendResult res = tool.run();

    // Distinct race count matches Table 3 exactly.
    EXPECT_EQ(res.reports.size(), w.expected.size());

    std::multimap<std::string, ExpectedRace> expected;
    for (const auto &e : w.expected)
        expected.insert({e.cell, e});

    for (const auto &r : res.reports) {
        std::string cell =
            w.program.cellName(r.cluster.representative.cell);
        auto it = expected.find(cell);
        ASSERT_NE(it, expected.end()) << "unexpected cluster " << cell;
        EXPECT_EQ(r.classification.cls, it->second.portend_expected)
            << cell << ": "
            << core::raceClassName(r.classification.cls) << " vs "
            << core::raceClassName(it->second.portend_expected)
            << "\n" << core::formatReport(w.program, r);
        expected.erase(it);
    }
    EXPECT_TRUE(expected.empty()) << "missing clusters";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::Values("sqlite", "ocean", "fmm", "memcached", "pbzip2",
                      "ctrace", "bbuf", "avv", "dcl", "dbm", "rw",
                      "ibuf", "iguard"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadMetadataTest, ExtensionSuiteStaysOutsidePaperCounts)
{
    // The input-sensitive extensions live outside workloadNames(),
    // so the Table 1/Table 3 pins above never see them; each is a
    // documented default-pipeline miss (truth above the expected
    // verdict) that needs multi-path analysis to recover.
    auto names = extensionWorkloadNames();
    ASSERT_EQ(names.size(), 2u);
    for (const auto &n : names) {
        Workload w = buildWorkload(n);
        EXPECT_FALSE(w.program.inputs.empty()) << n;
        ASSERT_EQ(w.expected.size(), 1u) << n;
        EXPECT_EQ(w.expected[0].portend_expected,
                  core::RaceClass::KWitnessHarmless)
            << n;
        EXPECT_NE(w.expected[0].truth, w.expected[0].portend_expected)
            << n;
        EXPECT_EQ(w.expected[0].required_level, 2) << n;
        for (const auto &p : workloadNames())
            EXPECT_NE(p, n);
    }
}

TEST(WorkloadMetadataTest, SuiteShapeMatchesTable1)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 11u);
    int total_distinct = 0;
    for (const auto &n : names) {
        Workload w = buildWorkload(n);
        total_distinct += static_cast<int>(w.expected.size());
        EXPECT_GT(w.forked_threads, 0) << n;
        EXPECT_GT(w.paper_loc, 0) << n;
        EXPECT_FALSE(w.program.functions.empty()) << n;
    }
    EXPECT_EQ(total_distinct, 93); // the paper's 93 distinct races
}

TEST(WorkloadMetadataTest, GroundTruthAccountingMatchesTable3)
{
    std::map<core::RaceClass, int> by_truth;
    for (const auto &n : workloadNames()) {
        Workload w = buildWorkload(n);
        for (const auto &e : w.expected)
            by_truth[e.truth] += 1;
    }
    // Table 3 totals: 5 spec violated, 22 output differs (21 + the
    // ocean miss whose ground truth is output-differs), 9 k-witness,
    // 57 single ordering.
    EXPECT_EQ(by_truth[core::RaceClass::SpecViolated], 5);
    EXPECT_EQ(by_truth[core::RaceClass::OutputDiffers], 22);
    EXPECT_EQ(by_truth[core::RaceClass::KWitnessHarmless], 9);
    EXPECT_EQ(by_truth[core::RaceClass::SingleOrdering], 57);
}

TEST(WorkloadSemanticsTest, FmmPredicateFlipsTimestampRace)
{
    Workload w = buildWorkload("fmm");
    ASSERT_FALSE(w.semantic_predicates.empty());

    core::PortendOptions with_pred;
    with_pred.semantic_predicates = w.semantic_predicates;
    core::Portend tool(w.program, with_pred);
    core::PortendResult res = tool.run();

    bool ts_semantic = false;
    for (const auto &r : res.reports) {
        std::string cell =
            w.program.cellName(r.cluster.representative.cell);
        if (cell == "particle_ts") {
            ts_semantic =
                r.classification.cls == core::RaceClass::SpecViolated &&
                r.classification.viol ==
                    core::ViolationKind::SemanticAssert;
        }
    }
    EXPECT_TRUE(ts_semantic)
        << "timestamp race must become a semantic violation";
}

TEST(WorkloadWhatIfTest, MemcachedSyncRemovalInducesCrashRace)
{
    // §5.1's what-if analysis: removing a synchronization operation
    // induces a race that Portend proves harmful.
    Workload normal = buildMemcached(false);
    Workload whatif = buildMemcached(true);
    EXPECT_EQ(whatif.expected.size(), normal.expected.size() + 1);

    core::Portend tool(whatif.program, core::PortendOptions{});
    core::PortendResult res = tool.run();
    bool crash_found = false;
    for (const auto &r : res.reports) {
        std::string cell =
            whatif.program.cellName(r.cluster.representative.cell);
        if (cell == "ratio_div") {
            crash_found =
                r.classification.cls == core::RaceClass::SpecViolated;
        }
    }
    EXPECT_TRUE(crash_found);
}

} // namespace
} // namespace portend::workloads
