/**
 * @file
 * Adversarial parser tests for ir::deserializeProgram and
 * replay::ScheduleTrace::deserialize, seeded with shapes the fuzzing
 * subsystem surfaced: truncated lines, duplicate names, out-of-range
 * sizes and operands, trailing junk. Malformed input must fail with
 * nullopt/error — never crash, never OOM, never yield a program that
 * is unsafe to execute. A deterministic mutation fuzz over valid
 * serializations backstops the hand-written cases.
 */

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "ir/serialize.h"
#include "ir/verifier.h"
#include "replay/trace.h"
#include "support/rng.h"
#include "support/str.h"
#include "workloads/registry.h"

namespace portend {
namespace {

std::string
validProgramText()
{
    return ir::serializeProgram(
        workloads::buildWorkload("dcl").program);
}

/** Expect a parse failure and a non-empty diagnostic. */
void
expectReject(const std::string &text, const char *why)
{
    std::string error;
    std::optional<ir::Program> p =
        ir::deserializeProgram(text, &error);
    EXPECT_FALSE(p.has_value()) << why;
    EXPECT_FALSE(error.empty()) << why;
}

TEST(ProgramParserRobustness, RejectsStructuralGarbage)
{
    expectReject("", "empty input");
    expectReject("pil v1 \"x\"\n", "missing end");
    expectReject("global \"g\" 1\npil v1 \"x\"\nend\n",
                 "content before header");
    expectReject("pil v1 \"x\"\npil v1 \"y\"\nend\n",
                 "duplicate header");
    expectReject("pil v2 \"x\"\nend\n", "unsupported version");
    expectReject("pil v1 \"x\"\nwat \"z\"\nend\n", "unknown tag");
    expectReject("pil v1 \"x\"\nend\ntrailing junk\n",
                 "content after end");
    expectReject("pil v1 \"x\"\nend\n", "no main function");
}

TEST(ProgramParserRobustness, RejectsBadDeclarations)
{
    const std::string h = "pil v1 \"x\"\n";
    expectReject(h + "global \"g\" 0\nend\n", "zero-size global");
    expectReject(h + "global \"g\" -4\nend\n", "negative global");
    expectReject(h + "global \"g\" 9999999999\nend\n",
                 "huge global");
    expectReject(h + "global \"g\" 1 1 2 3\nend\n",
                 "more init values than cells");
    expectReject(h + "global \"g\" 2 1 x\nend\n",
                 "non-numeric init value");
    expectReject(h + "global \"g\" 1\nglobal \"g\" 1\nend\n",
                 "duplicate global");
    expectReject(h + "mutex \"m\"\nmutex \"m\"\nend\n",
                 "duplicate mutex");
    expectReject(h + "cond \"c\"\ncond \"c\"\nend\n",
                 "duplicate cond");
    expectReject(h + "barrier \"b\" 0\nend\n", "zero barrier count");
    expectReject(h + "barrier \"b\" 2\nbarrier \"b\" 2\nend\n",
                 "duplicate barrier");
    expectReject(h + "input \"n\"\nend\n", "input missing domain");
    expectReject(h + "input \"n\" 0\nend\n", "input missing hi");
    expectReject(h + "input \"n\" 0 x\nend\n",
                 "non-numeric input bound");
    expectReject(h + "input \"n\" 5 2\nend\n", "empty input domain");
    expectReject(h + "input \"n\" 0 4\ninput \"n\" 0 4\nend\n",
                 "duplicate input");
    expectReject(h + "input \"n\" 0 4 9\nend\n",
                 "trailing tokens after input");
    expectReject(h + "func \"f\" 2 1\nend\n",
                 "params exceed registers");
    expectReject(h + "func \"f\" -1 4\nend\n", "negative params");
    expectReject(h + "func \"f\" 0 99999999\nend\n", "huge regs");
    expectReject(h + "func \"f\" 0 1\nfunc \"f\" 0 1\nend\n",
                 "duplicate func");
    expectReject(h + "block \"b\"\nend\n", "block outside func");
    expectReject(h + "inst Nop -1 _ _ _ add 64\nend\n",
                 "inst outside block");
}

TEST(ProgramParserRobustness, RejectsBadInstructions)
{
    const std::string pre = "pil v1 \"x\"\nglobal \"g\" 1\n"
                            "func \"main\" 0 2\nblock \"entry\"\n";
    expectReject(pre + "inst Halt\nend\n", "truncated inst line");
    expectReject(pre + "inst Bogus -1 _ _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "unknown opcode");
    expectReject(pre + "inst Halt -1 _ _ _ add 63 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "bad width");
    expectReject(pre + "inst Halt -1 _ _ _ wat 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "unknown ALU kind");
    expectReject(pre + "inst Halt -5 _ _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "bad dst register");
    expectReject(pre + "inst Halt -1 q7 _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "bad operand token");
    expectReject(pre + "inst Halt -1 _ _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0 junk\nend\n",
                 "trailing tokens");
    // Structurally invalid but syntactically fine: the embedded
    // verifier must reject it (out-of-range register / global).
    expectReject(pre + "inst Load 9 i0 _ _ add 64 0 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\n"
                       "inst Halt -1 _ _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "verifier: dst out of range");
    expectReject(pre + "inst Load 1 i0 _ _ add 64 7 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\n"
                       "inst Halt -1 _ _ _ add 64 -1 -1 -1 -1 -1 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "verifier: dangling global id");
    expectReject(pre + "inst Jmp -1 _ _ _ add 64 -1 -1 -1 -1 5 -1 "
                       "0 0 \"\" \"\" 0\nend\n",
                 "verifier: dangling block target");
}

TEST(ProgramParserRobustness, AcceptsItsOwnOutput)
{
    std::string text = validProgramText();
    std::string error;
    std::optional<ir::Program> p =
        ir::deserializeProgram(text, &error);
    ASSERT_TRUE(p.has_value()) << error;
    EXPECT_EQ(ir::serializeProgram(*p), text);
}

TEST(ProgramParserRobustness, SurvivesDeterministicMutationFuzz)
{
    // 400 mutants of three valid serializations (a paper workload,
    // a generated fuzz program, and an input-declaring extension
    // workload): every parse must either fail cleanly or produce a
    // verifier-clean program that round-trips.
    std::vector<std::string> bases = {
        validProgramText(),
        ir::serializeProgram(
            fuzz::generateProgram(42, 2, fuzz::GeneratorOptions{})
                .program),
        ir::serializeProgram(
            workloads::buildWorkload("ibuf").program),
    };
    Rng rng(6);
    for (int iter = 0; iter < 400; ++iter) {
        std::string text = bases[iter % bases.size()];
        switch (rng.below(4)) {
          case 0: // truncate
            text = text.substr(0, rng.below(text.size() + 1));
            break;
          case 1: { // delete a line
            std::vector<std::string> lines = split(text, '\n');
            lines.erase(lines.begin() +
                        static_cast<std::ptrdiff_t>(
                            rng.below(lines.size())));
            text = join(lines, "\n");
            break;
          }
          case 2: { // duplicate a line
            std::vector<std::string> lines = split(text, '\n');
            std::size_t i = rng.below(lines.size());
            lines.insert(lines.begin() +
                             static_cast<std::ptrdiff_t>(i),
                         lines[i]);
            text = join(lines, "\n");
            break;
          }
          default: { // clobber a character
            if (!text.empty()) {
                std::size_t i = rng.below(text.size());
                text[i] = static_cast<char>('!' + rng.below(90));
            }
            break;
          }
        }
        std::string error;
        std::optional<ir::Program> p =
            ir::deserializeProgram(text, &error);
        if (p) {
            // Anything accepted must be safe: verifier-clean (the
            // parser runs it) and serializable again.
            EXPECT_TRUE(ir::verifyProgram(*p).empty());
            EXPECT_FALSE(ir::serializeProgram(*p).empty());
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(TraceParserRobustness, RejectsMalformedTraces)
{
    using replay::ScheduleTrace;
    EXPECT_FALSE(ScheduleTrace::deserialize("").has_value());
    EXPECT_FALSE(ScheduleTrace::deserialize("not a trace").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize("trace v2\n").has_value());
    const std::string h = "trace v1\n";
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "z 1 2 3").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "d 1 2").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "d 1 2 3 4").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "d -1 2 3").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "d 1 -7 3").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "d x 2 3").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "i 1 0").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "i 7 0 5").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "i 1 -9 5").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize(h + "i 0 0 5 9").has_value());
}

TEST(TraceParserRobustness, AcceptsItsOwnOutput)
{
    replay::ScheduleTrace t;
    t.decisions.push_back({2, 17, 5});
    t.decisions.push_back({0, -1, 9});
    rt::VmState::EnvRead r;
    r.symbolic = true;
    r.sym_id = 0;
    r.value = 3;
    t.inputs.push_back(r);
    auto back = replay::ScheduleTrace::deserialize(t.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == t);
}

} // namespace
} // namespace portend
