/**
 * @file
 * Campaign engine tests: cache-key stability (the signature is a
 * pure function of program + trace + analysis config, never of
 * worker count or run count), change detection (every verdict-
 * relevant dial moves the signature), cache/journal persistence
 * round-trips with torn-write tolerance, and the headline resume
 * property — a campaign killed after N units and resumed merges to
 * bytes identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "campaign/cache.h"
#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "campaign/queue.h"
#include "campaign/signature.h"
#include "support/subproc.h"
#include "fuzz/fuzzer.h"
#include "fuzz/oracle.h"
#include "portend/portend.h"
#include "rt/decode.h"
#include "workloads/registry.h"

namespace fs = std::filesystem;

namespace portend::campaign {
namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("campaign_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Detection run of one registry workload (trace source for keys). */
replay::ScheduleTrace
detectTrace(const std::string &workload, std::uint64_t seed = 1)
{
    workloads::Workload w = workloads::buildWorkload(workload);
    core::PortendOptions opts;
    opts.detection_seed = seed;
    opts.semantic_predicates = w.semantic_predicates;
    core::Portend tool(w.program, opts);
    return tool.detect().trace;
}

/** A small 3-unit manifest that keeps engine tests fast. */
CampaignConfig
microConfig(bool json = true)
{
    CampaignConfig config;
    config.render.json = json;
    config.units = {{"workload", "avv"},
                    {"workload", "dcl"},
                    {"workload", "dbm"}};
    return config;
}

// -- Signature stability ---------------------------------------------

TEST(SignatureTest, StableAcrossRepeatsAndRuntimeDials)
{
    core::PortendOptions opts;
    const std::uint64_t h1 = configHash(opts, "salt");
    const std::uint64_t h2 = configHash(opts, "salt");
    EXPECT_EQ(h1, h2);

    // `jobs` is a throughput dial: verdicts are byte-identical for
    // every worker count (the PR 2 contract), so the key must not
    // move with it.
    core::PortendOptions j4 = opts;
    j4.jobs = 4;
    EXPECT_EQ(configHash(j4, "salt"), h1);
    j4.jobs = 0;
    EXPECT_EQ(configHash(j4, "salt"), h1);
}

TEST(SignatureTest, TraceHashIsStableAndScheduleSensitive)
{
    const replay::ScheduleTrace t1 = detectTrace("avv", 1);
    const replay::ScheduleTrace t2 = detectTrace("avv", 1);
    EXPECT_EQ(traceHash(t1), traceHash(t2));

    // A different recorded schedule must move the key, because
    // classification consumes the trace verbatim. (A tiny workload's
    // schedule can be seed-insensitive, so compare across programs —
    // the guaranteed way to get a different recording.)
    const replay::ScheduleTrace t3 = detectTrace("dcl", 1);
    EXPECT_NE(traceHash(t1), traceHash(t3));
}

TEST(SignatureTest, ProgramEditMovesTheFingerprint)
{
    workloads::Workload a = workloads::buildWorkload("avv");
    workloads::Workload b = workloads::buildWorkload("dcl");
    EXPECT_NE(rt::programFingerprint(a.program),
              rt::programFingerprint(b.program));
}

TEST(SignatureTest, EveryAnalysisDialMovesTheKey)
{
    core::PortendOptions base;
    const std::uint64_t h = configHash(base);

    core::PortendOptions ma = base;
    ma.ma = base.ma + 3;
    EXPECT_NE(configHash(ma), h);

    core::PortendOptions mp = base;
    mp.mp = base.mp + 1;
    EXPECT_NE(configHash(mp), h);

    core::PortendOptions expl = base;
    expl.explore = explore::ExploreMode::Random;
    EXPECT_NE(configHash(expl), h);

    core::PortendOptions det = base;
    det.detector = core::DetectorKind::Lockset;
    EXPECT_NE(configHash(det), h);

    core::PortendOptions seed = base;
    seed.detection_seed = 123;
    EXPECT_NE(configHash(seed), h);

    core::PortendOptions sym = base;
    sym.sym_inputs.push_back({"x", true, 0, 7});
    EXPECT_NE(configHash(sym), h);

    // The same named input with a different range is a different
    // stage-2 search space.
    core::PortendOptions sym2 = base;
    sym2.sym_inputs.push_back({"x", true, 0, 8});
    EXPECT_NE(configHash(sym2), configHash(sym));

    core::PortendOptions budget = base;
    budget.total_step_budget = 5000;
    EXPECT_NE(configHash(budget), h);

    // The salt carries per-unit state (unit name, render mode).
    EXPECT_NE(configHash(base, "unit=workload:avv"),
              configHash(base, "unit=workload:dcl"));
}

TEST(SignatureTest, HexRoundTrip)
{
    const std::uint64_t v = 0x0123456789abcdefULL;
    EXPECT_EQ(hex16(v), "0123456789abcdef");
    std::uint64_t back = 0;
    ASSERT_TRUE(parseHex16(hex16(v), &back));
    EXPECT_EQ(back, v);
    EXPECT_FALSE(parseHex16("0123", &back));
    EXPECT_FALSE(parseHex16("012345678 abcdef", &back));
}

// -- Queue -----------------------------------------------------------

TEST(QueueTest, ClaimsEveryUnitExactlyOnce)
{
    Queue<int> q({10, 11, 12, 13});
    EXPECT_EQ(q.size(), 4u);
    std::vector<int> got;
    std::size_t idx = 0;
    while (const int *u = q.next(&idx))
        got.push_back(*u);
    EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
    EXPECT_TRUE(q.drained());
    EXPECT_EQ(q.next(), nullptr);
}

// -- Cache persistence -----------------------------------------------

TEST(CacheTest, EntryRoundTripAndTornWriteRejected)
{
    CacheEntry e;
    e.key = {0x1111, 0x2222, 0x3333};
    e.sig = signatureHex(e.key);
    e.name = "avv";
    e.payload = "line one\nline two\n";

    const std::string bytes = serializeCacheEntry(e);
    std::optional<CacheEntry> back = deserializeCacheEntry(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->sig, e.sig);
    EXPECT_TRUE(back->key == e.key);
    EXPECT_EQ(back->name, e.name);
    EXPECT_EQ(back->payload, e.payload);

    // A kill mid-write leaves fewer payload bytes than the header
    // promises: the loader must reject, never return a short verdict.
    EXPECT_FALSE(deserializeCacheEntry(
                     bytes.substr(0, bytes.size() - 5))
                     .has_value());
}

TEST(CacheTest, CorruptDiskEntryIsRepairedByStore)
{
    const std::string dir = scratchDir("cache_repair");
    CacheEntry e;
    e.key = {0xa1, 0xb2, 0xc3};
    e.sig = signatureHex(e.key);
    e.name = "unit";
    e.payload = "the verdict bytes";
    const std::string path = dir + "/" + e.sig + ".entry";
    {
        VerdictCache cache(dir);
        ASSERT_TRUE(cache.store(e));
    }
    // Corrupt the published entry (torn write, disk fault, ...).
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "garbage";
    }
    // A fresh instance (no memory layer masking the damage) rejects
    // the corrupt bytes...
    {
        VerdictCache cache(dir);
        EXPECT_FALSE(cache.probe(e.sig).has_value());
        // ...and store() must replace them, not early-return because
        // the file merely exists (the regression this test pins).
        ASSERT_TRUE(cache.store(e));
    }
    VerdictCache verify(dir);
    std::optional<CacheEntry> hit = verify.probe(e.sig);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->payload, e.payload);
}

TEST(CacheTest, WrongSignatureEntryIsReplacedByStore)
{
    // A valid entry file whose recorded signature disagrees with its
    // file name (e.g. a botched copy) is also repaired on store.
    const std::string dir = scratchDir("cache_wrongsig");
    CacheEntry right;
    right.key = {1, 2, 3};
    right.sig = signatureHex(right.key);
    right.name = "unit";
    right.payload = "right";
    CacheEntry wrong = right;
    wrong.key = {4, 5, 6};
    wrong.sig = signatureHex(wrong.key);
    wrong.payload = "wrong";
    {
        std::ofstream f(dir + "/" + right.sig + ".entry",
                        std::ios::binary);
        f << serializeCacheEntry(wrong);
    }
    VerdictCache cache(dir);
    EXPECT_FALSE(cache.probe(right.sig).has_value());
    ASSERT_TRUE(cache.store(right));
    VerdictCache verify(dir);
    std::optional<CacheEntry> hit = verify.probe(right.sig);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->payload, "right");
}

#ifndef _WIN32
TEST(CacheTest, CrossProcessStoreRaceLeavesOneValidEntry)
{
    // Two worker processes racing store() on one signature — the
    // serve layer's steady state. The temp + rename publish means
    // whichever rename lands last wins wholesale; the file must
    // never interleave bytes from both writers.
    const std::string dir = scratchDir("cache_race");
    CacheEntry e;
    e.key = {0x77, 0x88, 0x99};
    e.sig = signatureHex(e.key);
    e.name = "unit";
    e.payload = std::string(8192, 'p'); // big enough to tear
    std::vector<sub::Child> children;
    for (int c = 0; c < 2; ++c) {
        std::optional<sub::Child> child = sub::spawn(
            [dir, e](int) {
                VerdictCache cache(dir);
                for (int i = 0; i < 200; ++i)
                    if (!cache.store(e))
                        return 1;
                return 0;
            },
            nullptr);
        if (!child.has_value())
            return; // spawn unavailable: nothing to test
        children.push_back(*child);
    }
    for (sub::Child &c : children) {
        int status = -1;
        while (!sub::reap(c, &status))
            ;
        EXPECT_EQ(status, 0);
        sub::closeChannel(c);
    }
    VerdictCache verify(dir);
    std::optional<CacheEntry> hit = verify.probe(e.sig);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->payload, e.payload);
}
#endif // _WIN32

TEST(CacheTest, DiskEntriesSurviveAcrossInstances)
{
    const std::string dir = scratchDir("cache_disk");
    CacheEntry e;
    e.key = {7, 8, 9};
    e.sig = signatureHex(e.key);
    e.name = "unit";
    e.payload = "verdict";
    {
        VerdictCache cache(dir);
        ASSERT_TRUE(cache.store(e));
        EXPECT_EQ(cache.sizeOnDisk(), 1u);
    }
    VerdictCache fresh(dir);
    std::optional<CacheEntry> hit = fresh.probe(e.sig);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->payload, "verdict");
    EXPECT_FALSE(fresh.probe(signatureHex({1, 2, 3})).has_value());
}

// -- Journal ---------------------------------------------------------

TEST(JournalTest, RecordRoundTrip)
{
    JournalRecord rec;
    rec.unit = 5;
    rec.kind = "workload";
    rec.name = "avv";
    rec.key = {0xaaaa, 0xbbbb, 0xcccc};
    rec.sig = signatureHex(rec.key);

    JournalRecord back;
    ASSERT_TRUE(parseJournalLine(journalLine(rec), &back));
    EXPECT_EQ(back.unit, rec.unit);
    EXPECT_EQ(back.kind, rec.kind);
    EXPECT_EQ(back.name, rec.name);
    EXPECT_EQ(back.sig, rec.sig);
    EXPECT_TRUE(back.key == rec.key);
}

TEST(JournalTest, AdversarialEscapesRoundTrip)
{
    // Names with every character class the writer escapes: quotes,
    // backslashes, the named escapes, and raw control bytes (which
    // the writer emits as \u00XX).
    const std::vector<std::string> names = {
        "quo\"te",
        "back\\slash",
        "nl\ntab\tcr\r",
        std::string("ctl\x01\x1f\x07end"),
        "\\u0041 stays literal after a backslash escape",
        "mixed\"\\\n\t\r\x02\x1e",
    };
    for (const std::string &name : names) {
        JournalRecord rec;
        rec.unit = 3;
        rec.kind = "workload";
        rec.name = name;
        rec.key = {10, 20, 30};
        rec.sig = signatureHex(rec.key);
        JournalRecord back;
        ASSERT_TRUE(parseJournalLine(journalLine(rec), &back))
            << journalLine(rec);
        EXPECT_EQ(back.name, name);
    }
}

TEST(JournalTest, WideUnicodeEscapeIsRejectedNotTruncated)
{
    // The writer only ever emits \u00XX, so a wider value in a
    // journal line is not ours. The old reader truncated \u0100 to
    // its low byte, silently corrupting the unit name on load; the
    // record must be rejected instead (the unit then re-runs).
    JournalRecord rec;
    rec.unit = 1;
    rec.kind = "workload";
    rec.name = "XYZ";
    rec.key = {1, 2, 3};
    rec.sig = signatureHex(rec.key);
    const std::string line = journalLine(rec);
    const std::string needle = "\"name\": \"XYZ\"";
    const std::size_t at = line.find(needle);
    ASSERT_NE(at, std::string::npos);

    JournalRecord out;
    for (const char *esc : {"\\u0100", "\\u0041\\uffff", "\\uBEEF"}) {
        std::string mutated = line;
        mutated.replace(at, needle.size(),
                        "\"name\": \"" + std::string(esc) + "\"");
        EXPECT_FALSE(parseJournalLine(mutated, &out)) << mutated;
    }
    // \u00XX (the writer's own range) still parses.
    std::string ok = line;
    ok.replace(at, needle.size(), "\"name\": \"\\u00e9\"");
    ASSERT_TRUE(parseJournalLine(ok, &out));
    EXPECT_EQ(out.name, "\xe9");
}

TEST(JournalTest, TornFinalLineIsSkippedNotFatal)
{
    const std::string dir = scratchDir("journal_torn");
    const std::string path = dir + "/journal.jsonl";

    JournalRecord rec;
    rec.unit = 0;
    rec.kind = "workload";
    rec.name = "avv";
    rec.key = {1, 2, 3};
    rec.sig = signatureHex(rec.key);
    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path));
        ASSERT_TRUE(w.append(rec));
    }
    // Simulate a kill mid-append: half a record, no newline.
    {
        std::ofstream f(path, std::ios::app | std::ios::binary);
        f << "{\"v\": 1, \"unit\": 1, \"ki";
    }
    int skipped = 0;
    std::vector<JournalRecord> recs = loadJournal(path, &skipped);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].name, "avv");
    EXPECT_EQ(skipped, 1);
}

// -- Campaign engine -------------------------------------------------

TEST(CampaignTest, ManifestRoundTrip)
{
    CampaignConfig config = microConfig();
    config.analysis.ma = 5;
    config.analysis.detection_seed = 17;
    config.analysis.explore = explore::ExploreMode::Random;
    config.analysis.sym_inputs.push_back({"flag", true, 0, 1});
    config.render.stats = true;

    std::string error;
    std::optional<CampaignConfig> back =
        parseManifest(manifestText(config), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(manifestText(*back), manifestText(config));
    EXPECT_EQ(back->units, config.units);
    EXPECT_EQ(back->analysis.ma, 5);
    EXPECT_EQ(back->analysis.sym_inputs.size(), 1u);

    EXPECT_FALSE(parseManifest("not-a-manifest\n", &error).has_value());
}

TEST(CampaignTest, EphemeralRunsAreByteIdenticalAcrossJobs)
{
    Campaign one(microConfig());
    CampaignResult r1 = one.run(-1, 1);
    ASSERT_TRUE(r1.error.empty()) << r1.error;
    ASSERT_TRUE(r1.complete());
    EXPECT_EQ(r1.executed, 3);

    Campaign four(microConfig());
    CampaignResult r4 = four.run(-1, 4);
    ASSERT_TRUE(r4.complete());
    EXPECT_EQ(r1.mergedOutput(true), r4.mergedOutput(true));

    // Same manifest, fresh engine, repeated run: same bytes again.
    Campaign again(microConfig());
    EXPECT_EQ(again.run(-1, 2).mergedOutput(true),
              r1.mergedOutput(true));
}

TEST(CampaignTest, AbortAndResumeMergeToUninterruptedBytes)
{
    Campaign baseline(microConfig());
    const std::string want = baseline.run(-1, 1).mergedOutput(true);

    const std::string dir = scratchDir("resume");
    fs::remove_all(dir);
    std::string error;
    std::optional<Campaign> c =
        Campaign::create(dir, microConfig(), &error);
    ASSERT_TRUE(c.has_value()) << error;

    // "Crash" after one journaled unit (exact with one worker).
    CampaignResult partial = c->run(1, 1);
    EXPECT_TRUE(partial.aborted);
    EXPECT_FALSE(partial.complete());
    EXPECT_EQ(partial.executed, 1);

    std::optional<Campaign> resumed = Campaign::open(dir, &error);
    ASSERT_TRUE(resumed.has_value()) << error;
    CampaignResult rest = resumed->run(-1, 1);
    ASSERT_TRUE(rest.complete());
    EXPECT_EQ(rest.resume_skips, 1);
    EXPECT_EQ(rest.executed, 2);
    EXPECT_EQ(rest.mergedOutput(true), want);

    // Warm re-run: the journal covers everything, nothing executes.
    std::optional<Campaign> warm = Campaign::open(dir, &error);
    ASSERT_TRUE(warm.has_value()) << error;
    CampaignResult all = warm->run(-1, 1);
    ASSERT_TRUE(all.complete());
    EXPECT_EQ(all.executed, 0);
    EXPECT_EQ(all.resume_skips, 3);
    EXPECT_EQ(all.mergedOutput(true), want);
    EXPECT_GE(all.metrics.counter(obs::Counter::CampaignResumeSkips),
              3u);
}

TEST(CampaignTest, TornJournalLineIsToleratedOnResume)
{
    Campaign baseline(microConfig());
    const std::string want = baseline.run(-1, 1).mergedOutput(true);

    const std::string dir = scratchDir("torn");
    fs::remove_all(dir);
    std::string error;
    std::optional<Campaign> c =
        Campaign::create(dir, microConfig(), &error);
    ASSERT_TRUE(c.has_value()) << error;
    c->run(2, 1);

    {
        std::ofstream f(dir + "/journal.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"v\": 1, \"unit\": 2, \"kind\": \"work";
    }
    std::optional<Campaign> resumed = Campaign::open(dir, &error);
    ASSERT_TRUE(resumed.has_value()) << error;
    CampaignResult rest = resumed->run(-1, 1);
    ASSERT_TRUE(rest.complete());
    EXPECT_GE(rest.journal_torn, 1);
    EXPECT_EQ(rest.mergedOutput(true), want);
}

TEST(CampaignTest, CreateRejectsManifestMismatch)
{
    const std::string dir = scratchDir("mismatch");
    fs::remove_all(dir);
    std::string error;
    ASSERT_TRUE(Campaign::create(dir, microConfig(), &error).has_value())
        << error;

    CampaignConfig other = microConfig();
    other.analysis.ma = 9;
    EXPECT_FALSE(Campaign::create(dir, other, &error).has_value());
    EXPECT_FALSE(error.empty());
}

// -- Fuzz verdict payload + fuzz campaign ----------------------------

TEST(FuzzVerdictTest, SerializeRoundTrip)
{
    fuzz::OracleVerdict v;
    v.outcome = "exited";
    v.distinct_races = 2;
    v.dynamic_races = 5;
    v.class_counts = {{"spec violated", 1}, {"k-witness harmless", 1}};
    v.baseline_counts = {{"replay-analyzer-conservative-fp", 3}};
    v.checks = {{"determinism", true, ""},
                {"hb-subset-lockset", false, "cell c raced\nonly in hb"}};
    v.trace_text = "trace v1\nstep 0\nstep 1\n";
    v.report_text = "report\nwith \"quotes\" and\nnewlines";
    v.witness_text = "";

    const std::string bytes = fuzz::serializeVerdict(v);
    std::string error;
    std::optional<fuzz::OracleVerdict> back =
        fuzz::deserializeVerdict(bytes, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->outcome, v.outcome);
    EXPECT_EQ(back->distinct_races, v.distinct_races);
    EXPECT_EQ(back->dynamic_races, v.dynamic_races);
    EXPECT_EQ(back->class_counts, v.class_counts);
    EXPECT_EQ(back->baseline_counts, v.baseline_counts);
    ASSERT_EQ(back->checks.size(), 2u);
    EXPECT_EQ(back->checks[1].detail, v.checks[1].detail);
    EXPECT_FALSE(back->checks[1].ok);
    EXPECT_EQ(back->trace_text, v.trace_text);
    EXPECT_EQ(back->report_text, v.report_text);
    EXPECT_EQ(fuzz::serializeVerdict(*back), bytes);

    // Truncations and garbage must yield nullopt, never a partial
    // verdict (the campaign then re-runs the oracle).
    for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                            std::size_t{10}, std::size_t{0}}) {
        EXPECT_FALSE(
            fuzz::deserializeVerdict(bytes.substr(0, cut)).has_value())
            << "cut at " << cut;
    }
    EXPECT_FALSE(fuzz::deserializeVerdict(bytes + "x").has_value());
}

TEST(FuzzCampaignTest, WarmRerunHitsCacheForEveryProgram)
{
    const std::string dir = scratchDir("fuzz_warm");
    fs::remove_all(dir);

    fuzz::FuzzOptions opts;
    opts.budget = 6;
    opts.jobs = 1;
    opts.campaign_dir = dir;

    fuzz::FuzzResult cold = fuzz::runFuzz(opts);
    EXPECT_EQ(cold.cache_hits, 0);
    EXPECT_EQ(cold.journal_replays, 0);

    fuzz::FuzzResult warm = fuzz::runFuzz(opts);
    EXPECT_EQ(warm.cache_hits, cold.verifier_clean);
    EXPECT_EQ(warm.journal_replays, cold.verifier_clean);
    EXPECT_EQ(warm.programs, cold.programs);
    EXPECT_EQ(warm.flagged, cold.flagged);
    EXPECT_EQ(warm.outcome_counts, cold.outcome_counts);
    EXPECT_EQ(warm.class_counts, cold.class_counts);
    EXPECT_EQ(warm.check_runs, cold.check_runs);

    // A different detection seed is a different signature: no hits.
    fuzz::FuzzOptions other = opts;
    other.detection_seed = 77;
    EXPECT_EQ(fuzz::runFuzz(other).cache_hits, 0);
}

} // namespace
} // namespace portend::campaign
