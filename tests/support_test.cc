/** @file Unit tests for the support utilities. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/hash.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/str.h"

namespace portend {
namespace {

TEST(RngTest, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(RngTest, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(r.range(5, 5), 5);
    EXPECT_EQ(r.range(5, 1), 5); // degenerate range collapses to lo
}

TEST(HashTest, Fnv1aMatchesKnownVector)
{
    // FNV-1a of the empty string is the offset basis.
    EXPECT_EQ(fnv1a(std::string("")), kFnvOffset);
    EXPECT_NE(fnv1a(std::string("a")), fnv1a(std::string("b")));
}

TEST(HashTest, ChainOrderSensitive)
{
    HashChain a, b;
    a.append("x");
    a.append("y");
    b.append("y");
    b.append("x");
    EXPECT_NE(a.digest(), b.digest());
    EXPECT_EQ(a.count(), 2u);
}

TEST(HashTest, ChainEquality)
{
    HashChain a, b;
    for (std::uint64_t v : {1ull, 2ull, 3ull}) {
        a.append(v);
        b.append(v);
    }
    EXPECT_TRUE(a == b);
}

TEST(StatsTest, AccumulatorMinMaxMean)
{
    Accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(4.0);
    acc.add(6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_EQ(acc.count(), 3u);
}

TEST(StrTest, JoinSplitRoundTrip)
{
    std::vector<std::string> parts{"a", "bb", "", "c"};
    EXPECT_EQ(join(parts, ","), "a,bb,,c");
    EXPECT_EQ(split("a,bb,,c", ','), parts);
}

TEST(StrTest, Padding)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
}

TEST(StrTest, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(StrTest, ParseI64AcceptsTheFullRange)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseI64("0", &v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(parseI64("-42", &v));
    EXPECT_EQ(v, -42);
    EXPECT_TRUE(parseI64("9223372036854775807", &v));
    EXPECT_EQ(v, std::numeric_limits<std::int64_t>::max());
    EXPECT_TRUE(parseI64("-9223372036854775808", &v));
    EXPECT_EQ(v, std::numeric_limits<std::int64_t>::min());
}

TEST(StrTest, ParseI64RejectsOverflowNotSaturates)
{
    // The CLI regression this pins: strtoll saturates at INT64_MAX
    // with errno == ERANGE, and a missing check turned absurd flag
    // values into silently-accepted budgets.
    std::int64_t v = 0;
    EXPECT_FALSE(parseI64("9223372036854775808", &v));
    EXPECT_FALSE(parseI64("-9223372036854775809", &v));
    EXPECT_FALSE(parseI64("99999999999999999999", &v));
}

TEST(StrTest, ParseI64RejectsMalformedInput)
{
    std::int64_t v = 0;
    EXPECT_FALSE(parseI64("", &v));
    EXPECT_FALSE(parseI64("banana", &v));
    EXPECT_FALSE(parseI64("12x", &v));
    EXPECT_FALSE(parseI64("1.5", &v));
    EXPECT_FALSE(parseI64("-", &v));
}

TEST(StrTest, StartsWith)
{
    EXPECT_TRUE(startsWith("block_ready[3]", "block_ready"));
    EXPECT_FALSE(startsWith("blo", "block"));
}

} // namespace
} // namespace portend
