/** @file Round-trip tests for the PIL text serialization. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/serialize.h"
#include "portend/portend.h"
#include "rt/interpreter.h"
#include "workloads/registry.h"

namespace portend::ir {
namespace {

/** Structural equality of two programs (field-by-field). */
void
expectSamePrograms(const Program &a, const Program &b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.globals.size(), b.globals.size());
    for (std::size_t i = 0; i < a.globals.size(); ++i) {
        EXPECT_EQ(a.globals[i].name, b.globals[i].name);
        EXPECT_EQ(a.globals[i].size, b.globals[i].size);
        EXPECT_EQ(a.globals[i].init, b.globals[i].init);
    }
    EXPECT_EQ(a.mutex_names, b.mutex_names);
    EXPECT_EQ(a.cond_names, b.cond_names);
    EXPECT_EQ(a.barrier_names, b.barrier_names);
    EXPECT_EQ(a.barrier_counts, b.barrier_counts);
    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (std::size_t i = 0; i < a.inputs.size(); ++i) {
        EXPECT_EQ(a.inputs[i].name, b.inputs[i].name);
        EXPECT_EQ(a.inputs[i].lo, b.inputs[i].lo);
        EXPECT_EQ(a.inputs[i].hi, b.inputs[i].hi);
    }
    EXPECT_EQ(a.entry, b.entry);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (std::size_t f = 0; f < a.functions.size(); ++f) {
        const Function &fa = a.functions[f];
        const Function &fb = b.functions[f];
        EXPECT_EQ(fa.name, fb.name);
        EXPECT_EQ(fa.num_params, fb.num_params);
        EXPECT_EQ(fa.num_regs, fb.num_regs);
        ASSERT_EQ(fa.blocks.size(), fb.blocks.size());
        for (std::size_t bi = 0; bi < fa.blocks.size(); ++bi) {
            const BasicBlock &ba = fa.blocks[bi];
            const BasicBlock &bb = fb.blocks[bi];
            EXPECT_EQ(ba.name, bb.name);
            ASSERT_EQ(ba.insts.size(), bb.insts.size());
            for (std::size_t i = 0; i < ba.insts.size(); ++i) {
                const Inst &ia = ba.insts[i];
                const Inst &ib = bb.insts[i];
                EXPECT_EQ(ia.op, ib.op);
                EXPECT_EQ(ia.dst, ib.dst);
                EXPECT_EQ(ia.a.kind, ib.a.kind);
                EXPECT_EQ(ia.a.reg, ib.a.reg);
                EXPECT_EQ(ia.a.imm, ib.a.imm);
                EXPECT_EQ(ia.kind, ib.kind);
                EXPECT_EQ(ia.width, ib.width);
                EXPECT_EQ(ia.gid, ib.gid);
                EXPECT_EQ(ia.sid, ib.sid);
                EXPECT_EQ(ia.sid2, ib.sid2);
                EXPECT_EQ(ia.fid, ib.fid);
                EXPECT_EQ(ia.then_block, ib.then_block);
                EXPECT_EQ(ia.else_block, ib.else_block);
                EXPECT_EQ(ia.lo, ib.lo);
                EXPECT_EQ(ia.hi, ib.hi);
                EXPECT_EQ(ia.text, ib.text);
                EXPECT_EQ(ia.loc.file, ib.loc.file);
                EXPECT_EQ(ia.loc.line, ib.loc.line);
                EXPECT_EQ(ia.pc, ib.pc);
            }
        }
    }
}

/** Property: every workload model round-trips exactly. */
class SerializeRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SerializeRoundTrip, WorkloadModelRoundTrips)
{
    workloads::Workload w = workloads::buildWorkload(GetParam());
    std::string text = serializeProgram(w.program);
    std::string err;
    auto parsed = deserializeProgram(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    expectSamePrograms(w.program, *parsed);

    // Second round trip is byte-identical (canonical form).
    EXPECT_EQ(serializeProgram(*parsed), text);
}

TEST_P(SerializeRoundTrip, ParsedProgramExecutesIdentically)
{
    workloads::Workload w = workloads::buildWorkload(GetParam());
    auto parsed = deserializeProgram(serializeProgram(w.program));
    ASSERT_TRUE(parsed.has_value());

    auto digest = [](const Program &p) {
        rt::ExecOptions eo;
        eo.preempt_on_memory = true;
        rt::Interpreter interp(p, eo);
        rt::RotatePolicy rot;
        interp.setPolicy(&rot);
        interp.run();
        return std::make_pair(
            interp.state().global_step,
            interp.state().output.concrete_chain.digest());
    };
    EXPECT_EQ(digest(w.program), digest(*parsed));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SerializeRoundTrip,
    ::testing::Values("sqlite", "ocean", "fmm", "memcached", "pbzip2",
                      "ctrace", "bbuf", "avv", "dcl", "dbm", "rw",
                      "ibuf", "iguard"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(SerializeErrorTest, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(deserializeProgram("", &err).has_value());
    EXPECT_FALSE(deserializeProgram("garbage", &err).has_value());
    EXPECT_FALSE(
        deserializeProgram("pil v2 \"x\"\nend\n", &err).has_value());
    EXPECT_FALSE(
        deserializeProgram("pil v1 \"x\"\nend\n", &err).has_value())
        << "no main function must be rejected";
    EXPECT_FALSE(deserializeProgram("pil v1 \"x\"\n"
                                    "inst nop 0 _ _ _ add 64 -1 -1 "
                                    "-1 -1 -1 -1 0 0 \"\" \"\" 0\n"
                                    "end\n",
                                    &err)
                     .has_value())
        << "inst outside block must be rejected";
    EXPECT_FALSE(deserializeProgram("pil v1 \"x\"\n"
                                    "func \"main\" 0 1\n"
                                    "block \"e\"\n"
                                    "inst frobnicate 0 _ _ _ add 64 "
                                    "-1 -1 -1 -1 -1 -1 0 0 \"\" \"\" "
                                    "0\nend\n",
                                    &err)
                     .has_value());
}

TEST(SerializeQuoteTest, EscapedStringsSurvive)
{
    ProgramBuilder pb("with \"quotes\" and \\slashes");
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    m.outputStr("label with spaces \"and\" quotes");
    m.halt();
    Program p = pb.build();
    auto parsed = deserializeProgram(serializeProgram(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->name, p.name);
    EXPECT_EQ(parsed->functions[0].blocks[0].insts[0].text,
              "label with spaces \"and\" quotes");
}

} // namespace
} // namespace portend::ir
