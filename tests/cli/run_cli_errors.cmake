# CLI flag-validation battery: every malformed flag value must be a
# usage error (exit 2) with a diagnostic on stderr — never a silent
# saturation or a crash. Invoked by ctest (see tests/CMakeLists.txt)
# with -DPORTEND=<path to the portend binary>.
#
# The out-of-range rows pin the --ma 99999999999999999999 regression:
# strtoll used to saturate without an ERANGE check, so an absurd
# budget silently became INT64_MAX (then truncated through an int
# cast) instead of being rejected.

if(NOT DEFINED PORTEND)
    message(FATAL_ERROR "run_cli_errors.cmake needs -DPORTEND=...")
endif()

# Each case: a semicolon-free command line that must exit 2.
set(bad_cases
    "classify avv --ma 99999999999999999999"
    "classify avv --mp 99999999999999999999"
    "classify avv --k 9223372036854775808"
    "classify avv --mp -3"
    "classify avv --ma 0"
    "classify avv --jobs 0"
    "classify avv --jobs 2147483648"
    "classify avv --seed -1"
    "classify avv --seed 1x"
    "classify avv --k banana"
    "campaign run ignored --abort-after -1"
    "fuzz --budget -5"
    "fuzz --fuzz-seed -2"
    "serve state --workers 0 --port 1"
    "serve state --port 65536"
    "submit --port 0"
    "submit --socket x --timeout 0 --status"
    )

foreach(case IN LISTS bad_cases)
    separate_arguments(args UNIX_COMMAND "${case}")
    execute_process(
        COMMAND ${PORTEND} ${args}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "expected usage error (exit 2) for `portend ${case}`, "
            "got exit ${rc}\nstdout:\n${out}\nstderr:\n${err}")
    endif()
    if(NOT err MATCHES "portend: ")
        message(FATAL_ERROR
            "no diagnostic on stderr for `portend ${case}`:\n${err}")
    endif()
endforeach()

# And the good-value boundary cases must NOT be rejected by flag
# parsing (they may fail later for other reasons, but never with the
# parse diagnostics above).
execute_process(
    COMMAND ${PORTEND} classify avv --ma 1 --mp 1 --seed 0
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "boundary values rejected: exit ${rc}\n${err}")
endif()
