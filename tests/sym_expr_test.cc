/** @file Unit and property tests for the expression layer. */

#include <gtest/gtest.h>

#include "support/rng.h"
#include "sym/expr.h"
#include "sym/simplify.h"

namespace portend::sym {
namespace {

TEST(ExprTest, ConstantFoldingAtConstruction)
{
    ExprPtr e = mkAdd(mkConst(2), mkConst(3));
    ASSERT_EQ(e->kind(), ExprKind::Const);
    EXPECT_EQ(e->constValue(), 5);
}

TEST(ExprTest, ConcreteInvariant)
{
    // An expression with no symbols is always a Const node.
    ExprPtr e = Expr::binary(ExprKind::Mul,
                             mkAdd(mkConst(2), mkConst(3)),
                             mkConst(4));
    EXPECT_TRUE(e->isConcrete());
    EXPECT_EQ(e->constValue(), 20);
}

TEST(ExprTest, SymbolsStaySymbolic)
{
    ExprPtr x = Expr::symbol("x", 0, Width::I64, 0, 10);
    ExprPtr e = mkAdd(x, mkConst(1));
    EXPECT_FALSE(e->isConcrete());
    std::set<int> syms;
    e->collectSymbols(syms);
    EXPECT_EQ(syms, std::set<int>{0});
}

TEST(ExprTest, EvaluateUnderModel)
{
    ExprPtr x = Expr::symbol("x", 0);
    ExprPtr y = Expr::symbol("y", 1);
    ExprPtr e = mkMul(mkAdd(x, mkConst(1)), y);
    Model m;
    m.values[0] = 4;
    m.values[1] = 3;
    EXPECT_EQ(e->evaluate(m), 15);
}

TEST(ExprTest, WidthTruncation)
{
    EXPECT_EQ(Expr::truncate(0x1ff, Width::I8), -1);
    EXPECT_EQ(Expr::truncate(0x80, Width::I8), -128);
    EXPECT_EQ(Expr::truncate(3, Width::I1), 1);
    ExprPtr e = Expr::constant(300, Width::I8);
    EXPECT_EQ(e->constValue(), 44); // 300 mod 256
}

TEST(ExprTest, DivisionSemanticsTotal)
{
    EXPECT_EQ(Expr::applyBinary(ExprKind::SDiv, 7, 0, Width::I64), 0);
    EXPECT_EQ(Expr::applyBinary(ExprKind::SDiv, INT64_MIN, -1,
                                Width::I64),
              INT64_MIN);
    EXPECT_EQ(Expr::applyBinary(ExprKind::SRem, 7, 0, Width::I64), 0);
}

TEST(ExprTest, ShiftsOutOfRange)
{
    EXPECT_EQ(Expr::applyBinary(ExprKind::Shl, 1, 64, Width::I64), 0);
    EXPECT_EQ(Expr::applyBinary(ExprKind::AShr, -8, 100, Width::I64),
              -1);
    EXPECT_EQ(Expr::applyBinary(ExprKind::LShr, -1, 1, Width::I64),
              INT64_MAX);
}

TEST(ExprTest, StructuralEquality)
{
    ExprPtr x = Expr::symbol("x", 0);
    ExprPtr a = mkAdd(x, mkConst(1));
    ExprPtr b = mkAdd(x, mkConst(1));
    ExprPtr c = mkAdd(x, mkConst(2));
    EXPECT_TRUE(a->equals(*b));
    EXPECT_FALSE(a->equals(*c));
    EXPECT_EQ(a->hash(), b->hash());
}

TEST(SimplifyTest, Identities)
{
    ExprPtr x = Expr::symbol("x", 0);
    EXPECT_TRUE(mkAdd(x, mkConst(0))->equals(*x));
    EXPECT_TRUE(mkMul(x, mkConst(1))->equals(*x));
    EXPECT_TRUE(mkMul(x, mkConst(0))->isConstEq(0));
    EXPECT_TRUE(mkEq(x, x)->isConstEq(1));
    EXPECT_TRUE(mkNe(x, x)->isConstEq(0));
    EXPECT_TRUE(mkSlt(x, x)->isConstEq(0));
    EXPECT_TRUE(
        Expr::binary(ExprKind::Xor, x, x)->isConstEq(0));
}

TEST(SimplifyTest, DoubleNegation)
{
    ExprPtr x = Expr::symbol("x", 0, Width::I1, 0, 1);
    ExprPtr e = negate(negate(x));
    EXPECT_TRUE(e->equals(*x));
}

TEST(SimplifyTest, NotOfComparisonInverts)
{
    ExprPtr x = Expr::symbol("x", 0);
    ExprPtr e = negate(mkSlt(x, mkConst(5)));
    EXPECT_EQ(e->kind(), ExprKind::Sge);
}

TEST(SimplifyTest, IteFolding)
{
    ExprPtr x = Expr::symbol("x", 0);
    EXPECT_TRUE(Expr::ite(Expr::boolean(true), x, mkConst(0))
                    ->equals(*x));
    EXPECT_TRUE(Expr::ite(mkSlt(x, mkConst(1)), x, x)->equals(*x));
}

TEST(SimplifyTest, ConjoinEmptyIsTrue)
{
    EXPECT_TRUE(isTrue(conjoin({})));
}

/**
 * Property: simplify() preserves evaluation. Random expressions are
 * generated from a seed, simplified, and both forms evaluated under
 * random models.
 */
class SimplifySoundness : public ::testing::TestWithParam<int>
{
  protected:
    ExprPtr
    randomExpr(Rng &rng, int depth)
    {
        if (depth == 0 || rng.chance(1, 4)) {
            if (rng.chance(1, 2)) {
                return Expr::symbol("s",
                                    static_cast<int>(rng.below(3)));
            }
            return mkConst(rng.range(-8, 8));
        }
        static const ExprKind kinds[] = {
            ExprKind::Add, ExprKind::Sub, ExprKind::Mul,
            ExprKind::And, ExprKind::Or,  ExprKind::Xor,
            ExprKind::Eq,  ExprKind::Slt, ExprKind::Sle,
        };
        ExprKind k = kinds[rng.below(std::size(kinds))];
        return Expr::binary(k, randomExpr(rng, depth - 1),
                            randomExpr(rng, depth - 1));
    }
};

TEST_P(SimplifySoundness, EvaluationPreserved)
{
    Rng rng(GetParam() * 7919 + 1);
    for (int round = 0; round < 50; ++round) {
        ExprPtr e = randomExpr(rng, 4);
        ExprPtr s = simplify(e);
        // Idempotence.
        EXPECT_TRUE(simplify(s)->equals(*s));
        for (int m = 0; m < 8; ++m) {
            Model model;
            for (int id = 0; id < 3; ++id)
                model.values[id] = rng.range(-16, 16);
            EXPECT_EQ(e->evaluate(model), s->evaluate(model))
                << e->toString() << " vs " << s->toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySoundness,
                         ::testing::Range(0, 8));

} // namespace
} // namespace portend::sym
