/** @file Tests for the multi-path symbolic explorer. */

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "ir/builder.h"

namespace portend::exec {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

/** One input, three-way branch structure -> three feasible paths. */
ir::Program
branchyProgram()
{
    ir::ProgramBuilder pb("branchy");
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("entry");
    ir::BlockId lo = m.block("lo");
    ir::BlockId midhi = m.block("midhi");
    ir::BlockId mid = m.block("mid");
    ir::BlockId hi = m.block("hi");
    m.to(e);
    ir::Reg x = m.input("x", 0, 9);
    m.br(R(m.bin(K::Slt, R(x), I(3))), lo, midhi);
    m.to(lo);
    m.output("bucket", I(0));
    m.halt();
    m.to(midhi);
    m.br(R(m.bin(K::Slt, R(x), I(7))), mid, hi);
    m.to(mid);
    m.output("bucket", I(1));
    m.halt();
    m.to(hi);
    m.output("bucket", I(2));
    m.halt();
    return pb.build();
}

TEST(ExecutorTest, ExploresAllFeasiblePaths)
{
    ir::Program p = branchyProgram();
    rt::ExecOptions eo;
    eo.input_mode = rt::InputMode::Symbolic;
    rt::Interpreter interp(p, eo);
    Executor ex(ExecutorOptions{});
    auto paths = ex.explore(
        interp, [] { return std::make_unique<rt::FifoPolicy>(); },
        [](const rt::VmState &) { return true; });
    ASSERT_EQ(paths.size(), 3u);

    // Each path's model must drive its own bucket when evaluated.
    std::set<std::int64_t> buckets;
    for (const auto &pr : paths) {
        ASSERT_EQ(pr.state.output.size(), 1u);
        buckets.insert(pr.state.output.records[0].value->constValue());
        // Model satisfies the path condition.
        for (const auto &c : pr.state.path.constraints())
            EXPECT_NE(c->evaluate(pr.model), 0);
    }
    EXPECT_EQ(buckets, (std::set<std::int64_t>{0, 1, 2}));
}

TEST(ExecutorTest, MaxPathsBoundsExploration)
{
    ir::Program p = branchyProgram();
    rt::ExecOptions eo;
    eo.input_mode = rt::InputMode::Symbolic;
    rt::Interpreter interp(p, eo);
    ExecutorOptions xo;
    xo.max_paths = 2;
    Executor ex(xo);
    auto paths = ex.explore(
        interp, [] { return std::make_unique<rt::FifoPolicy>(); },
        [](const rt::VmState &) { return true; });
    EXPECT_EQ(paths.size(), 2u);
}

TEST(ExecutorTest, AcceptFilterPrunes)
{
    ir::Program p = branchyProgram();
    rt::ExecOptions eo;
    eo.input_mode = rt::InputMode::Symbolic;
    rt::Interpreter interp(p, eo);
    Executor ex(ExecutorOptions{});
    auto paths = ex.explore(
        interp, [] { return std::make_unique<rt::FifoPolicy>(); },
        [](const rt::VmState &s) {
            return !s.output.records.empty() &&
                   s.output.records[0].value->constValue() == 2;
        });
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].model.lookup(0) >= 7, true);
}

TEST(ExecutorTest, SymbolicBoundsForkCrashPath)
{
    // Symbolic index: in-bounds and out-of-bounds paths both exist.
    ir::ProgramBuilder pb("symidx");
    ir::GlobalId arr = pb.global("arr", 4);
    auto &m = pb.function("main", 0);
    m.to(m.block("entry"));
    ir::Reg x = m.input("i", 0, 8); // may exceed the array
    m.store(arr, R(x), I(1));
    m.outputStr("ok");
    m.halt();
    ir::Program p = pb.build();

    rt::ExecOptions eo;
    eo.input_mode = rt::InputMode::Symbolic;
    rt::Interpreter interp(p, eo);
    Executor ex(ExecutorOptions{});
    auto paths = ex.explore(
        interp, [] { return std::make_unique<rt::FifoPolicy>(); },
        [](const rt::VmState &) { return true; });
    bool crashed = false, survived = false;
    for (const auto &pr : paths) {
        if (pr.state.outcome == rt::RunOutcome::CrashOob) {
            crashed = true;
            EXPECT_GE(pr.model.lookup(0), 4);
        }
        if (pr.state.outcome == rt::RunOutcome::Exited) {
            survived = true;
            EXPECT_LT(pr.model.lookup(0), 4);
        }
    }
    EXPECT_TRUE(crashed);
    EXPECT_TRUE(survived);
}

TEST(ExecutorTest, CompleteModelFillsDomainDefaults)
{
    sym::ExprPtr x = sym::Expr::symbol("x", 0, sym::Width::I64, 5, 9);
    sym::Model m;
    completeModel(x, m);
    EXPECT_EQ(m.lookup(0), 5);
    m.values[0] = 7;
    completeModel(x, m);
    EXPECT_EQ(m.lookup(0), 7); // existing bindings kept
}

} // namespace
} // namespace portend::exec
