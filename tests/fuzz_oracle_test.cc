/**
 * @file
 * Differential-oracle tests: the full check battery is clean on
 * generated programs and on the paper workloads, signatures are
 * stable, and every advertised check actually runs.
 */

#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "workloads/registry.h"

namespace portend::fuzz {
namespace {

TEST(FuzzOracle, CleanOnGeneratedPrograms)
{
    GeneratorOptions gopts;
    OracleOptions oopts;
    for (std::uint64_t i = 0; i < 16; ++i) {
        GeneratedProgram g = generateProgram(42, i, gopts);
        ASSERT_TRUE(g.verify_errors.empty());
        oopts.deep = i % 4 == 0;
        OracleVerdict v = runOracle(g.program, oopts);
        EXPECT_FALSE(v.flagged())
            << "index " << i << ": check '" << v.firstFailure()
            << "' failed";
    }
}

TEST(FuzzOracle, CleanOnPaperMicrobenchmarks)
{
    OracleOptions opts;
    opts.deep = true;
    for (const char *name : {"avv", "dcl", "dbm", "rw", "bbuf"}) {
        workloads::Workload w = workloads::buildWorkload(name);
        OracleVerdict v = runOracle(w.program, opts);
        EXPECT_FALSE(v.flagged())
            << name << ": check '" << v.firstFailure() << "' failed";
        EXPECT_GT(v.distinct_races, 0) << name;
    }
}

TEST(FuzzOracle, DeepBatteryRunsAllChecks)
{
    GeneratedProgram g = generateProgram(42, 0, GeneratorOptions{});
    OracleOptions opts;
    opts.deep = true;
    OracleVerdict v = runOracle(g.program, opts);

    std::set<std::string> names;
    for (const CheckResult &c : v.checks)
        names.insert(c.name);
    for (const char *want :
         {"verify", "roundtrip", "hb-subset-nomutex",
          "hb-subset-lockset", "determinism", "jobs-invariance",
          "k-monotonicity", "explore-monotonicity",
          "ma-monotonicity"}) {
        EXPECT_TRUE(names.count(want)) << "check missing: " << want;
    }
}

// The symbolic battery (sym-monotonicity + witness-replay) runs
// exactly when the program declares inputs, and on the
// input-sensitive extension workloads it must be clean and record a
// solver-concretized witness for the upgraded verdict.
TEST(FuzzOracle, SymbolicBatteryCleanOnExtensionWorkloads)
{
    OracleOptions opts;
    opts.deep = true;
    for (const char *name : {"ibuf", "iguard"}) {
        workloads::Workload w = workloads::buildWorkload(name);
        ASSERT_FALSE(w.program.inputs.empty());
        OracleVerdict v = runOracle(w.program, opts);
        EXPECT_FALSE(v.flagged())
            << name << ": check '" << v.firstFailure() << "' failed";
        std::set<std::string> names;
        for (const CheckResult &c : v.checks)
            names.insert(c.name);
        EXPECT_TRUE(names.count("sym-monotonicity")) << name;
        EXPECT_TRUE(names.count("witness-replay")) << name;
        EXPECT_NE(v.witness_text.find(":n="), std::string::npos)
            << name << ": witness_text = '" << v.witness_text << "'";
    }
}

TEST(FuzzOracle, SymbolicBatterySkippedWithoutInputDecls)
{
    workloads::Workload w = workloads::buildWorkload("avv");
    ASSERT_TRUE(w.program.inputs.empty());
    OracleOptions opts;
    opts.deep = true;
    OracleVerdict v = runOracle(w.program, opts);
    for (const CheckResult &c : v.checks) {
        EXPECT_NE(c.name, "sym-monotonicity");
        EXPECT_NE(c.name, "witness-replay");
    }
    EXPECT_TRUE(v.witness_text.empty());
}

// The schedule-coverage monotonicity property: across a generated
// batch, switching random -> dpor and doubling Ma never loses a
// "spec violated" verdict. Runs under both primary explorers so
// both directions of the cross-check exercise.
TEST(FuzzOracle, ScheduleCoverageMonotonicityHolds)
{
    GeneratorOptions gopts;
    for (explore::ExploreMode mode :
         {explore::ExploreMode::Dpor, explore::ExploreMode::Random}) {
        OracleOptions oopts;
        oopts.deep = true;
        oopts.explore = mode;
        for (std::uint64_t i = 0; i < 6; ++i) {
            GeneratedProgram g = generateProgram(1337, i, gopts);
            ASSERT_TRUE(g.verify_errors.empty());
            OracleVerdict v = runOracle(g.program, oopts);
            for (const CheckResult &c : v.checks) {
                if (c.name == "explore-monotonicity" ||
                    c.name == "ma-monotonicity") {
                    EXPECT_TRUE(c.ok)
                        << exploreModeName(mode) << " index " << i
                        << ": " << c.name << ": " << c.detail;
                }
            }
        }
    }
}

// The monotonicity property also holds on the paper workloads —
// including the ones whose stage 3 actually decides the verdict.
TEST(FuzzOracle, ScheduleCoverageMonotonicityOnWorkloads)
{
    OracleOptions opts;
    opts.deep = true;
    for (const char *name : {"pbzip2", "bbuf", "avv"}) {
        workloads::Workload w = workloads::buildWorkload(name);
        OracleVerdict v = runOracle(w.program, opts);
        for (const CheckResult &c : v.checks) {
            if (c.name == "explore-monotonicity" ||
                c.name == "ma-monotonicity") {
                EXPECT_TRUE(c.ok)
                    << name << ": " << c.name << ": " << c.detail;
            }
        }
    }
}

TEST(FuzzOracle, ShallowBatterySkipsMetamorphicReruns)
{
    GeneratedProgram g = generateProgram(42, 1, GeneratorOptions{});
    OracleOptions opts;
    opts.deep = false;
    OracleVerdict v = runOracle(g.program, opts);
    for (const CheckResult &c : v.checks) {
        EXPECT_NE(c.name, "determinism");
        EXPECT_NE(c.name, "jobs-invariance");
        EXPECT_NE(c.name, "k-monotonicity");
    }
}

TEST(FuzzOracle, SignatureIsStableAcrossRuns)
{
    GeneratedProgram g = generateProgram(7, 3, GeneratorOptions{});
    OracleOptions opts;
    OracleVerdict a = runOracle(g.program, opts);
    OracleVerdict b = runOracle(g.program, opts);
    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_EQ(a.trace_text, b.trace_text);
    EXPECT_EQ(a.report_text, b.report_text);
}

TEST(FuzzOracle, SignatureReflectsDetectionSeed)
{
    // Different schedule seeds may expose different interleavings;
    // whatever they find, the signature must name the seed's own
    // results deterministically (two runs at each seed agree).
    GeneratedProgram g = generateProgram(7, 5, GeneratorOptions{});
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        OracleOptions opts;
        opts.detection_seed = seed;
        EXPECT_EQ(runOracle(g.program, opts).signature(),
                  runOracle(g.program, opts).signature());
    }
}

TEST(FuzzOracle, FlagsStructurallyInvalidPrograms)
{
    ir::Program p; // no functions at all
    OracleVerdict v = runOracle(p, OracleOptions{});
    EXPECT_TRUE(v.flagged());
    EXPECT_EQ(v.firstFailure(), "verify");
}

} // namespace
} // namespace portend::fuzz
