/** @file Tests for vector clocks and the race detectors. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "race/hb.h"
#include "race/lockset.h"
#include "race/vclock.h"
#include "rt/interpreter.h"
#include "support/rng.h"

namespace portend::race {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

TEST(VClockTest, TickAndGet)
{
    VectorClock c;
    EXPECT_EQ(c.get(3), 0u);
    c.tick(3);
    c.tick(3);
    EXPECT_EQ(c.get(3), 2u);
}

TEST(VClockTest, JoinIsPointwiseMax)
{
    VectorClock a, b;
    a.set(0, 5);
    a.set(1, 1);
    b.set(1, 7);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 7u);
}

TEST(VClockTest, OrderingLaws)
{
    VectorClock a, b;
    a.set(0, 1);
    b.set(0, 2);
    b.set(1, 1);
    EXPECT_TRUE(a.lessOrEqual(b));
    EXPECT_FALSE(b.lessOrEqual(a));
    // Incomparable pair.
    VectorClock c, d;
    c.set(0, 2);
    d.set(1, 2);
    EXPECT_FALSE(c.lessOrEqual(d));
    EXPECT_FALSE(d.lessOrEqual(c));
}

/** Property: join is a least upper bound (lattice laws). */
class VClockLattice : public ::testing::TestWithParam<int>
{
  protected:
    VectorClock
    randomClock(Rng &rng)
    {
        VectorClock c;
        for (int t = 0; t < 4; ++t)
            c.set(t, rng.below(6));
        return c;
    }
};

TEST_P(VClockLattice, JoinIsLub)
{
    Rng rng(GetParam() * 997 + 3);
    for (int i = 0; i < 100; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock b = randomClock(rng);
        VectorClock j = a;
        j.join(b);
        EXPECT_TRUE(a.lessOrEqual(j));
        EXPECT_TRUE(b.lessOrEqual(j));
        // Idempotent and commutative.
        VectorClock j2 = b;
        j2.join(a);
        EXPECT_TRUE(j == j2);
        VectorClock j3 = j;
        j3.join(j);
        EXPECT_TRUE(j3 == j);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VClockLattice, ::testing::Range(0, 6));

namespace {

/** Two-thread unsynchronized counter increment. */
ir::Program
racyProgram(bool with_lock)
{
    ir::ProgramBuilder pb(with_lock ? "locked" : "racy");
    ir::GlobalId g = pb.global("counter");
    ir::SyncId m = pb.mutex("l");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    if (with_lock)
        w.lock(m);
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    if (with_lock)
        w.unlock(m);
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("w", I(0));
    ir::Reg t2 = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    return pb.build();
}

std::vector<RaceReport>
detect(const ir::Program &p, HbOptions opts = {})
{
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    rt::Interpreter interp(p, eo);
    rt::RotatePolicy rot;
    interp.setPolicy(&rot);
    HbDetector hb(p, opts);
    interp.addSink(&hb);
    EXPECT_EQ(interp.run(), rt::RunOutcome::Exited);
    return hb.races();
}

} // namespace

TEST(HbDetectorTest, ReportsUnsynchronizedConflicts)
{
    auto races = detect(racyProgram(false));
    EXPECT_FALSE(races.empty());
    for (const auto &r : races) {
        EXPECT_NE(r.first.tid, r.second.tid);
        EXPECT_TRUE(r.first.is_write || r.second.is_write);
    }
}

TEST(HbDetectorTest, MutexOrderingSuppressesRaces)
{
    EXPECT_TRUE(detect(racyProgram(true)).empty());
}

TEST(HbDetectorTest, IgnoreMutexesReintroducesRaces)
{
    // The paper's imperfect-detector experiment (§5.2): removing
    // mutex awareness turns protected accesses into reports.
    HbOptions opts;
    opts.ignore_mutexes = true;
    EXPECT_FALSE(detect(racyProgram(true), opts).empty());
}

TEST(HbDetectorTest, ForkJoinEdgesRespected)
{
    // Parent writes before create, child reads; join, then parent
    // reads again: fully ordered, no races.
    ir::ProgramBuilder pb("forkjoin");
    ir::GlobalId g = pb.global("x");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    w.load(g);
    w.store(g, I(0), I(5));
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    mn.store(g, I(0), I(1));
    ir::Reg t = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t));
    mn.load(g);
    mn.halt();
    EXPECT_TRUE(detect(pb.build()).empty());
}

TEST(HbDetectorTest, CondSignalCreatesEdge)
{
    // The classic handshake: writer sets data, signals; waiter
    // (already waiting, mutex-protected while-loop) reads data.
    ir::ProgramBuilder pb("handshake");
    ir::GlobalId data = pb.global("data");
    ir::GlobalId ready = pb.global("ready");
    ir::SyncId m = pb.mutex("l");
    ir::SyncId cv = pb.cond("cv");
    auto &waiter = pb.function("waiter", 1);
    ir::BlockId e = waiter.block("entry");
    ir::BlockId chk = waiter.block("chk");
    ir::BlockId wb = waiter.block("wb");
    ir::BlockId go = waiter.block("go");
    waiter.to(e);
    waiter.lock(m);
    waiter.jmp(chk);
    waiter.to(chk);
    ir::Reg r = waiter.load(ready);
    waiter.br(R(r), go, wb);
    waiter.to(wb);
    waiter.condWait(cv, m);
    waiter.jmp(chk);
    waiter.to(go);
    waiter.unlock(m);
    waiter.load(data); // ordered after the signal via cv + mutex
    waiter.retVoid();
    auto &setter = pb.function("setter", 1);
    setter.to(setter.block("entry"));
    setter.store(data, I(0), I(9));
    setter.lock(m);
    setter.store(ready, I(0), I(1));
    setter.condSignal(cv);
    setter.unlock(m);
    setter.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("waiter", I(0));
    ir::Reg t2 = mn.threadCreate("setter", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    EXPECT_TRUE(detect(pb.build()).empty());
}

TEST(HbDetectorTest, AtomicPairsIgnoredByDefault)
{
    ir::ProgramBuilder pb("atomics");
    ir::GlobalId g = pb.global("stat");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    w.atomicAdd(g, I(0), I(1));
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("w", I(0));
    ir::Reg t2 = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    EXPECT_TRUE(detect(pb.build()).empty());
}

TEST(ClusterTest, GroupsByCellAndPcs)
{
    RaceReport a;
    a.cell = 3;
    a.first.pc = 10;
    a.second.pc = 20;
    RaceReport b = a; // same static race, later occurrence
    b.first.occurrence = 2;
    RaceReport c = a;
    c.second.pc = 21; // different pc: distinct race
    auto clusters = clusterRaces({a, b, c});
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].instances, 2);
    // Latest occurrence becomes the representative.
    EXPECT_EQ(clusters[0].representative.first.occurrence, 2u);
    EXPECT_EQ(clusters[1].instances, 1);
}

TEST(LocksetTest, ReportsEmptyLocksetAccesses)
{
    auto p = racyProgram(false);
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    rt::Interpreter interp(p, eo);
    rt::RotatePolicy rot;
    interp.setPolicy(&rot);
    LocksetDetector ls(p);
    interp.addSink(&ls);
    interp.run();
    EXPECT_FALSE(ls.races().empty());
}

TEST(LocksetTest, FalsePositiveOnForkJoinOrdering)
{
    // Lockset ignores fork/join ordering, unlike happens-before:
    // this is exactly why static-style detectors need Portend.
    ir::ProgramBuilder pb("fp");
    ir::GlobalId g = pb.global("x");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    w.store(g, I(0), I(5));
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    mn.store(g, I(0), I(1));
    ir::Reg t = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t));
    mn.load(g);
    mn.halt();
    auto p = pb.build();

    rt::Interpreter interp(p, rt::ExecOptions{});
    LocksetDetector ls(p);
    HbDetector hb(p);
    interp.addSink(&ls);
    interp.addSink(&hb);
    interp.run();
    EXPECT_FALSE(ls.races().empty()); // lockset: false positive
    EXPECT_TRUE(hb.races().empty());  // happens-before: clean
}

} // namespace
} // namespace portend::race
