/** @file Copy-on-write checkpoint and checkpoint-ladder tests:
 *  fork-then-mutate isolation (writes in a fork never bleed into the
 *  parent or siblings), ladder-resume equivalence (resuming a cached
 *  rung is byte-identical to replaying from step 0), and the
 *  classify-with-ladder == classify-without contract. The whole
 *  suite runs under the TSan CI job. */

#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.h"
#include "ir/program.h"
#include "portend/portend.h"
#include "replay/checkpoint.h"
#include "replay/replayer.h"
#include "rt/interpreter.h"
#include "rt/policy.h"
#include "support/cow.h"
#include "workloads/registry.h"

namespace portend {
namespace {

using namespace portend::rt;

// ---------------------------------------------------------------
// Cow<T> primitive.
// ---------------------------------------------------------------

TEST(CowTest, CopiesShareUntilWritten)
{
    Cow<std::vector<int>> a(std::vector<int>{1, 2, 3});
    Cow<std::vector<int>> b = a;
    EXPECT_TRUE(a.sharedWith(b));
    EXPECT_EQ(b.ro(), a.ro());

    b.rw()[1] = 99; // write barrier: b clones, a untouched
    EXPECT_FALSE(a.sharedWith(b));
    EXPECT_EQ(a.ro()[1], 2);
    EXPECT_EQ(b.ro()[1], 99);
}

TEST(CowTest, ReadsNeverUnshare)
{
    Cow<std::vector<int>> a(std::vector<int>{7});
    Cow<std::vector<int>> b = a;
    EXPECT_EQ(b->size(), 1u);
    EXPECT_EQ((*b)[0], 7);
    EXPECT_EQ(b.ro().at(0), 7);
    EXPECT_TRUE(a.sharedWith(b)); // still shared after reads
}

TEST(CowTest, UniqueWriteMutatesInPlace)
{
    Cow<std::vector<int>> a(std::vector<int>{5});
    const int *payload = a.ro().data();
    a.rw()[0] = 6; // sole owner: no clone
    EXPECT_EQ(a.ro().data(), payload);
    EXPECT_EQ(a.ro()[0], 6);
}

// ---------------------------------------------------------------
// MemImage paging.
// ---------------------------------------------------------------

TEST(MemImageTest, ForkThenWriteIsolation)
{
    MemImage a;
    const std::size_t n = MemImage::kPageCells * 2 + 5; // 3 pages
    for (std::size_t i = 0; i < n; ++i)
        a.append(rt::Value::ofConst(static_cast<std::int64_t>(i)));

    MemImage b = a;
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(a.sharesPage(i, b));

    // Writing one cell of b unshares exactly that page.
    const std::size_t hit = MemImage::kPageCells + 3; // page 1
    b.write(hit, rt::Value::ofConst(-1));
    EXPECT_TRUE(a.sharesPage(0, b));
    EXPECT_FALSE(a.sharesPage(hit, b));
    EXPECT_TRUE(a.sharesPage(MemImage::kPageCells * 2, b));

    EXPECT_EQ(a[hit].constValue(), static_cast<std::int64_t>(hit));
    EXPECT_EQ(b[hit].constValue(), -1);
    // Unwritten cells of the unshared page kept their values.
    EXPECT_EQ(b[hit + 1].constValue(),
              static_cast<std::int64_t>(hit + 1));
}

// ---------------------------------------------------------------
// VmState fork isolation through the interpreter.
// ---------------------------------------------------------------

using ir::I;
using ir::R;
using K = sym::ExprKind;

/** Two threads bumping one global; main reads it last. */
ir::Program
counterProgram()
{
    ir::ProgramBuilder pb("cow_counter");
    ir::GlobalId g = pb.global("g");

    auto &w = pb.function("worker", 1);
    w.to(w.block("entry"));
    for (int i = 0; i < 8; ++i)
        w.store(g, I(0), R(w.bin(K::Add, R(w.load(g)), I(1))));
    w.retVoid();

    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("worker", I(0));
    ir::Reg t2 = mn.threadCreate("worker", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.output("final", R(mn.load(g)));
    mn.halt();
    return pb.build();
}

TEST(VmStateForkTest, ForkThenMutateDoesNotBleedIntoParent)
{
    ir::Program prog = counterProgram();
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    rt::Interpreter interp(prog, eo);

    // Run partway, then checkpoint.
    rt::Interpreter::StopSpec stop;
    stop.after_event = [](const rt::Event &ev) {
        return ev.kind == rt::EventKind::MemWrite;
    };
    interp.run(stop);
    ASSERT_TRUE(interp.stopped());

    const rt::VmState parent = interp.state();
    // An eagerly materialized reference copy of the parent: if COW
    // aliasing ever leaked a write, parent and deep would diverge.
    rt::VmState deep = parent;
    deep.unshareAll();

    // Two siblings forked from the same checkpoint, run to
    // completion under different schedules.
    rt::RotatePolicy rotate;
    rt::Interpreter sib1(prog, eo);
    sib1.setState(parent);
    sib1.setPolicy(&rotate);
    EXPECT_EQ(sib1.run(), rt::RunOutcome::Exited);

    rt::Interpreter sib2(prog, eo);
    sib2.setState(parent);
    EXPECT_EQ(sib2.run(), rt::RunOutcome::Exited); // FIFO default

    // The siblings made progress...
    EXPECT_GT(sib1.state().global_step, parent.global_step);
    EXPECT_GT(sib2.state().global_step, parent.global_step);

    // ...but the parent checkpoint is bit-for-bit what it was.
    ASSERT_EQ(parent.mem.size(), deep.mem.size());
    for (std::size_t i = 0; i < parent.mem.size(); ++i)
        EXPECT_TRUE(parent.mem[i].equals(deep.mem[i])) << "cell " << i;
    ASSERT_EQ(parent.threads.size(), deep.threads.size());
    for (std::size_t t = 0; t < parent.threads.size(); ++t) {
        const auto &pt = parent.threads[t];
        const auto &dt = deep.threads[t];
        EXPECT_EQ(pt.status, dt.status) << "thread " << t;
        ASSERT_EQ(pt.stack->size(), dt.stack->size()) << "thread " << t;
        for (std::size_t f = 0; f < pt.stack->size(); ++f) {
            EXPECT_EQ((*pt.stack)[f].func, (*dt.stack)[f].func);
            EXPECT_EQ((*pt.stack)[f].ip, (*dt.stack)[f].ip);
        }
    }
    EXPECT_EQ(parent.access_counts.ro(), deep.access_counts.ro());
    EXPECT_EQ(parent.global_step, deep.global_step);

    // And the siblings are isolated from each other: both finish
    // with the same deterministic result their own schedule gives,
    // unperturbed by the other's writes.
    ASSERT_EQ(sib1.state().output.size(), 1u);
    ASSERT_EQ(sib2.state().output.size(), 1u);
}

// ---------------------------------------------------------------
// Checkpoint-ladder equivalence.
// ---------------------------------------------------------------

/** Detection result of one registry workload. */
core::DetectionResult
detectOn(const workloads::Workload &w, core::PortendOptions &opts)
{
    opts.semantic_predicates = w.semantic_predicates;
    core::Portend tool(w.program, opts);
    return tool.detect();
}

TEST(CheckpointLadderTest, RungEqualsFromZeroReplay)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    core::PortendOptions opts;
    core::DetectionResult det = detectOn(w, opts);
    ASSERT_FALSE(det.clusters.empty());

    replay::CheckpointLadder ladder = replay::CheckpointLadder::build(
        w.program, det.trace,
        replay::CheckpointLadder::targetsFor(det.clusters),
        core::RaceAnalyzer::replayOptions(opts),
        opts.semantic_predicates);
    ASSERT_GT(ladder.size(), 0u);

    for (const auto &c : det.clusters) {
        const race::RaceReport &race = c.representative;
        const replay::CheckpointLadder::Rung *rung = ladder.find(
            race.first.tid, race.cell, race.first.cell_occurrence);
        if (!rung)
            continue; // replay never reached it: nothing to compare

        // The from-0 replay every analyzer would run.
        rt::ExecOptions eo =
            core::RaceAnalyzer::replayOptions(opts);
        eo.concrete_inputs = det.trace.concreteInputs();
        rt::Interpreter interp(w.program, eo);
        rt::RotatePolicy rotate;
        replay::TracePolicy tp(det.trace,
                               replay::TracePolicy::Mode::Strict,
                               &rotate);
        interp.setPolicy(&tp);
        rt::Interpreter::StopSpec pre;
        pre.before_cell.push_back(
            {race.first.tid, race.cell, race.first.cell_occurrence});
        interp.run(pre);
        ASSERT_TRUE(interp.stopped());
        const rt::VmState &ref = interp.state();

        EXPECT_EQ(rung->state.global_step, ref.global_step);
        EXPECT_EQ(rung->state.current, ref.current);
        EXPECT_EQ(rung->state.stats.preemption_points,
                  ref.stats.preemption_points);
        ASSERT_EQ(rung->state.mem.size(), ref.mem.size());
        for (std::size_t i = 0; i < ref.mem.size(); ++i) {
            EXPECT_TRUE(rung->state.mem[i].equals(ref.mem[i]))
                << "cell " << i;
        }
        EXPECT_EQ(rung->state.access_counts.ro(),
                  ref.access_counts.ro());
        EXPECT_EQ(rung->state.output.concrete_chain.digest(),
                  ref.output.concrete_chain.digest());
        EXPECT_EQ(rung->state.resume_in_segment,
                  ref.resume_in_segment);
    }
}

// The headline contract of the ladder: classification with it is
// byte-identical to classification without it — verdict, detail,
// evidence, and the step ledger — across every registry workload.
TEST(CheckpointLadderTest, ClassifyWithLadderMatchesWithout)
{
    for (const std::string &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        core::PortendOptions opts;
        core::DetectionResult det = detectOn(w, opts);
        if (det.clusters.empty())
            continue;

        replay::CheckpointLadder ladder =
            replay::CheckpointLadder::build(
                w.program, det.trace,
                replay::CheckpointLadder::targetsFor(det.clusters),
                core::RaceAnalyzer::replayOptions(opts),
                opts.semantic_predicates);

        core::RaceAnalyzer analyzer(w.program, opts);
        for (const auto &c : det.clusters) {
            core::Classification plain =
                analyzer.classify(c.representative, det.trace);
            core::Classification laddered = analyzer.classify(
                c.representative, det.trace, &ladder);
            EXPECT_EQ(plain.cls, laddered.cls) << name;
            EXPECT_EQ(plain.viol, laddered.viol) << name;
            EXPECT_EQ(plain.k, laddered.k) << name;
            EXPECT_EQ(plain.detail, laddered.detail) << name;
            EXPECT_EQ(plain.output_diff, laddered.output_diff) << name;
            EXPECT_EQ(plain.evidence_inputs, laddered.evidence_inputs)
                << name;
            EXPECT_EQ(plain.evidence_seed, laddered.evidence_seed)
                << name;
            EXPECT_EQ(plain.states_differ, laddered.states_differ)
                << name;
            // The rung carries the prefix's counters, so even the
            // ledger is identical — the ladder only saves time.
            EXPECT_EQ(plain.stats.steps, laddered.stats.steps) << name;
            EXPECT_EQ(plain.stats.schedules_explored,
                      laddered.stats.schedules_explored)
                << name;
        }
    }
}

// A ladder built over different inputs must be ignored, not used.
TEST(CheckpointLadderTest, MismatchedInputsFallBackToReplay)
{
    workloads::Workload w = workloads::buildWorkload("pbzip2");
    core::PortendOptions opts;
    core::DetectionResult det = detectOn(w, opts);
    ASSERT_FALSE(det.clusters.empty());
    const race::RaceReport &race = det.clusters[0].representative;

    replay::ScheduleTrace skewed = det.trace;
    for (auto &in : skewed.inputs) {
        if (!in.symbolic)
            in.value += 1;
    }
    std::vector<replay::CheckpointLadder::Target> targets{
        replay::CheckpointLadder::targetFor(race)};
    replay::CheckpointLadder skewed_ladder =
        replay::CheckpointLadder::build(
            w.program, skewed, targets,
            core::RaceAnalyzer::replayOptions(opts),
            opts.semantic_predicates);

    core::RaceAnalyzer analyzer(w.program, opts);
    core::Classification plain =
        analyzer.classify(race, det.trace);
    core::Classification guarded =
        analyzer.classify(race, det.trace, &skewed_ladder);
    EXPECT_EQ(plain.cls, guarded.cls);
    EXPECT_EQ(plain.detail, guarded.detail);
    EXPECT_EQ(plain.stats.steps, guarded.stats.steps);
}

} // namespace
} // namespace portend
