/** @file Tests for the POSIX-threads model: mutexes, condition
 *  variables, barriers, and deadlock detection. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rt/interpreter.h"

namespace portend::rt {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

TEST(SyncTest, MutexExcludesConcurrentIncrements)
{
    ir::ProgramBuilder pb("mutex");
    ir::GlobalId g = pb.global("counter");
    ir::SyncId m = pb.mutex("l");
    auto &w = pb.function("inc", 1);
    w.to(w.block("entry"));
    ir::Reg i = w.iconst(10);
    ir::BlockId loop = w.block("loop");
    ir::BlockId out = w.block("out");
    w.jmp(loop);
    w.to(loop);
    w.lock(m);
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.unlock(m);
    w.binInto(i, K::Sub, R(i), I(1));
    w.br(R(w.bin(K::Sgt, R(i), I(0))), loop, out);
    w.to(out);
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("inc", I(0));
    ir::Reg t2 = mn.threadCreate("inc", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.output("counter", R(mn.load(g)));
    mn.halt();
    ir::Program p = pb.build();

    // Under an adversarial rotation schedule the lock still keeps
    // the increments atomic.
    ExecOptions eo;
    eo.preempt_on_memory = true;
    Interpreter interp(p, eo);
    RotatePolicy rot;
    interp.setPolicy(&rot);
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              20);
}

TEST(SyncTest, RecursiveLockIsDeadlock)
{
    ir::ProgramBuilder pb("recursive");
    ir::SyncId m = pb.mutex("l");
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    mn.lock(m);
    mn.lock(m);
    mn.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Deadlock);
    EXPECT_NE(interp.state().outcome_detail.find("recursive"),
              std::string::npos);
}

TEST(SyncTest, UnlockWithoutOwnershipIsError)
{
    ir::ProgramBuilder pb("badunlock");
    ir::SyncId m = pb.mutex("l");
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    mn.unlock(m);
    mn.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::AssertFail);
}

TEST(SyncTest, CrossedLockOrderDeadlocks)
{
    ir::ProgramBuilder pb("abba");
    ir::SyncId a = pb.mutex("a");
    ir::SyncId b = pb.mutex("b");
    auto &w1 = pb.function("w1", 1);
    w1.to(w1.block("entry"));
    w1.lock(a);
    w1.yield();
    w1.lock(b);
    w1.unlock(b);
    w1.unlock(a);
    w1.retVoid();
    auto &w2 = pb.function("w2", 1);
    w2.to(w2.block("entry"));
    w2.lock(b);
    w2.yield();
    w2.lock(a);
    w2.unlock(a);
    w2.unlock(b);
    w2.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("w1", I(0));
    ir::Reg t2 = mn.threadCreate("w2", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    ir::Program p = pb.build();
    // Rotation interleaves the acquisitions: classic ABBA deadlock.
    Interpreter interp(p, ExecOptions{});
    RotatePolicy rot;
    interp.setPolicy(&rot);
    EXPECT_EQ(interp.run(), RunOutcome::Deadlock);
}

TEST(SyncTest, CondWaitWakesAndReacquires)
{
    ir::ProgramBuilder pb("cond2");
    ir::GlobalId ready = pb.global("ready");
    ir::SyncId m = pb.mutex("l");
    ir::SyncId cv = pb.cond("cv");

    auto &waiter = pb.function("waiter", 1);
    ir::BlockId e = waiter.block("entry");
    ir::BlockId check = waiter.block("check");
    ir::BlockId wait_b = waiter.block("wait");
    ir::BlockId go = waiter.block("go");
    waiter.to(e);
    waiter.lock(m);
    waiter.jmp(check);
    waiter.to(check);
    ir::Reg r = waiter.load(ready);
    waiter.br(R(r), go, wait_b);
    waiter.to(wait_b);
    waiter.condWait(cv, m);
    waiter.jmp(check);
    waiter.to(go);
    waiter.unlock(m);
    waiter.outputStr("woken");
    waiter.retVoid();

    auto &setter = pb.function("setter", 1);
    setter.to(setter.block("entry"));
    setter.lock(m);
    setter.store(ready, I(0), I(1));
    setter.condSignal(cv);
    setter.unlock(m);
    setter.retVoid();

    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("waiter", I(0));
    ir::Reg t2 = mn.threadCreate("setter", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
    ASSERT_EQ(interp.state().output.size(), 1u);
    EXPECT_EQ(interp.state().output.records[0].label, "woken");
}

TEST(SyncTest, CondWaitWithoutMutexIsError)
{
    ir::ProgramBuilder pb("condbad");
    ir::SyncId m = pb.mutex("l");
    ir::SyncId cv = pb.cond("cv");
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    mn.condWait(cv, m); // mutex not held
    mn.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::AssertFail);
}

TEST(SyncTest, BarrierReleasesAllTogether)
{
    ir::ProgramBuilder pb("barrier");
    ir::GlobalId before = pb.global("before");
    ir::SyncId bar = pb.barrier("b", 3);
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    ir::Reg v = w.load(before);
    w.store(before, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.barrierWait(bar);
    // After the barrier every thread must observe all 3 increments.
    w.assertTrue(R(w.bin(K::Eq, R(w.load(before)), I(3))),
                 "all arrived");
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("w", I(0));
    ir::Reg t2 = mn.threadCreate("w", I(0));
    ir::Reg t3 = mn.threadCreate("w", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.threadJoin(R(t3));
    mn.halt();
    ir::Program p = pb.build();
    ExecOptions eo;
    eo.preempt_on_memory = true;
    Interpreter interp(p, eo);
    RotatePolicy rot;
    interp.setPolicy(&rot);
    EXPECT_EQ(interp.run(), RunOutcome::Exited);
}

TEST(SyncTest, LostSignalDeadlocks)
{
    // Signal before any waiter: the signal is lost; the waiter
    // blocks forever and the join deadlocks (the SQLite bug shape).
    ir::ProgramBuilder pb("lost");
    ir::SyncId m = pb.mutex("l");
    ir::SyncId cv = pb.cond("cv");
    auto &sig = pb.function("sig", 1);
    sig.to(sig.block("entry"));
    sig.condSignal(cv);
    sig.retVoid();
    auto &waiter = pb.function("waiter", 1);
    waiter.to(waiter.block("entry"));
    waiter.lock(m);
    waiter.condWait(cv, m);
    waiter.unlock(m);
    waiter.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("sig", I(0));
    mn.threadJoin(R(t1)); // signal definitely fires first
    ir::Reg t2 = mn.threadCreate("waiter", I(0));
    mn.threadJoin(R(t2));
    mn.halt();
    ir::Program p = pb.build();
    Interpreter interp(p, ExecOptions{});
    EXPECT_EQ(interp.run(), RunOutcome::Deadlock);
}

} // namespace
} // namespace portend::rt
