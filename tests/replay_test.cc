/** @file Tests for the record/replay engine. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "replay/replayer.h"
#include "replay/trace.h"
#include "rt/interpreter.h"

namespace portend::replay {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

ir::Program
twoThreadProgram()
{
    ir::ProgramBuilder pb("two");
    ir::GlobalId g = pb.global("x");
    auto &w = pb.function("w", 1);
    w.to(w.block("entry"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), R(w.param(0)))));
    w.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg in = mn.input("seed", 0, 9);
    mn.store(g, I(0), R(in));
    ir::Reg t1 = mn.threadCreate("w", I(3));
    ir::Reg t2 = mn.threadCreate("w", I(4));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.output("x", R(mn.load(g)));
    mn.halt();
    return pb.build();
}

TEST(TraceTest, SerializeRoundTrip)
{
    ScheduleTrace t;
    t.decisions.push_back({1, 10, 5});
    t.decisions.push_back({0, 3, 9});
    rt::VmState::EnvRead r1;
    r1.value = 7;
    rt::VmState::EnvRead r2;
    r2.symbolic = true;
    r2.sym_id = 0;
    r2.value = 2;
    t.inputs = {r1, r2};
    auto parsed = ScheduleTrace::deserialize(t.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == t);
}

TEST(TraceTest, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(ScheduleTrace::deserialize("not a trace").has_value());
    EXPECT_FALSE(
        ScheduleTrace::deserialize("trace v1\nz 1 2 3").has_value());
}

TEST(TraceTest, SummaryLooksLikeThePaper)
{
    ScheduleTrace t;
    t.decisions.push_back({0, 9, 0});
    t.decisions.push_back({1, 15, 4});
    std::string s = t.summary();
    EXPECT_NE(s.find("(T0:pc9) -> (T1:pc15)"), std::string::npos);
}

TEST(ReplayTest, RecordThenReplayReproducesOutputs)
{
    ir::Program p = twoThreadProgram();
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.rng_seed = 77;

    ScheduleTrace trace;
    std::uint64_t recorded_digest;
    {
        rt::Interpreter interp(p, eo);
        rt::RandomPolicy rnd;
        RecordingPolicy rec(p, &rnd, &trace);
        interp.setPolicy(&rec);
        EXPECT_EQ(interp.run(), rt::RunOutcome::Exited);
        RecordingPolicy::captureInputs(interp.state(), &trace);
        recorded_digest =
            interp.state().output.concrete_chain.digest();
    }
    EXPECT_FALSE(trace.decisions.empty());

    {
        rt::ExecOptions replay_eo;
        replay_eo.preempt_on_memory = true;
        replay_eo.concrete_inputs = trace.concreteInputs();
        rt::Interpreter interp(p, replay_eo);
        rt::RotatePolicy fallback;
        TracePolicy tp(trace, TracePolicy::Mode::Strict, &fallback);
        interp.setPolicy(&tp);
        EXPECT_EQ(interp.run(), rt::RunOutcome::Exited);
        EXPECT_EQ(tp.divergences(), 0);
        EXPECT_EQ(interp.state().output.concrete_chain.digest(),
                  recorded_digest);
    }
}

TEST(ReplayTest, StrictModeAbortsOnDivergence)
{
    ir::Program p = twoThreadProgram();
    // A bogus trace whose first decision names a thread that cannot
    // be runnable yet.
    ScheduleTrace bogus;
    bogus.decisions.push_back({2, 0, 0});
    rt::Interpreter interp(p, rt::ExecOptions{});
    TracePolicy tp(bogus, TracePolicy::Mode::Strict);
    interp.setPolicy(&tp);
    EXPECT_EQ(interp.run(), rt::RunOutcome::Aborted);
    EXPECT_GT(tp.divergences(), 0);
}

TEST(ReplayTest, TolerantModeFallsBack)
{
    ir::Program p = twoThreadProgram();
    ScheduleTrace bogus;
    bogus.decisions.push_back({2, 0, 0});
    rt::Interpreter interp(p, rt::ExecOptions{});
    rt::FifoPolicy fifo;
    TracePolicy tp(bogus, TracePolicy::Mode::Tolerant, &fifo);
    interp.setPolicy(&tp);
    EXPECT_EQ(interp.run(), rt::RunOutcome::Exited);
    EXPECT_GT(tp.divergences(), 0);
}

TEST(AlternateTest, EnforcesReversedOrdering)
{
    // Writer publishes 5; reader races. Enforce "reader first":
    // the reader must observe the initial 0.
    ir::ProgramBuilder pb("alt");
    ir::GlobalId g = pb.global("x");
    auto &wr = pb.function("wr", 1);
    wr.to(wr.block("entry"));
    wr.store(g, I(0), I(5));
    wr.retVoid();
    auto &rd = pb.function("rd", 1);
    rd.to(rd.block("entry"));
    ir::Reg v = rd.load(g);
    rd.output("saw", R(v));
    rd.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("wr", I(0));
    ir::Reg t2 = mn.threadCreate("rd", I(0));
    mn.threadJoin(R(t1));
    mn.threadJoin(R(t2));
    mn.halt();
    ir::Program p = pb.build();

    race::RaceReport race;
    race.cell = 0;
    race.first.tid = 1;  // writer wrote first originally
    race.second.tid = 2; // reader
    race.first.cell_occurrence = 1;

    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    rt::Interpreter interp(p, eo);
    rt::Interpreter::StopSpec pre;
    pre.before_cell.push_back({1, 0, 1});
    EXPECT_EQ(interp.run(pre), rt::RunOutcome::Running);
    ASSERT_TRUE(interp.stopped());

    interp.state().resume_in_segment = false;
    rt::RotatePolicy post;
    AlternatePolicy alt(race, &post);
    interp.setPolicy(&alt);
    EXPECT_EQ(interp.run(), rt::RunOutcome::Exited);
    EXPECT_TRUE(alt.enforced());
    EXPECT_FALSE(alt.starved());
    ASSERT_EQ(interp.state().output.size(), 1u);
    EXPECT_EQ(interp.state().output.records[0].value->constValue(),
              0); // reader ran before the held writer
}

TEST(AlternateTest, StarvesWhenOnlyHeldThreadRunnable)
{
    ir::ProgramBuilder pb("starve");
    ir::GlobalId g = pb.global("x");
    auto &wr = pb.function("wr", 1);
    wr.to(wr.block("entry"));
    wr.store(g, I(0), I(1));
    wr.retVoid();
    auto &mn = pb.function("main", 0);
    mn.to(mn.block("entry"));
    ir::Reg t1 = mn.threadCreate("wr", I(0));
    mn.threadJoin(R(t1)); // main blocks; writer is the only runner
    mn.load(g);
    mn.halt();
    ir::Program p = pb.build();

    race::RaceReport race;
    race.cell = 0;
    race.first.tid = 1;  // hold the writer
    race.second.tid = 0; // main never gets there while joining
    race.first.cell_occurrence = 1;

    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    rt::Interpreter interp(p, eo);
    rt::Interpreter::StopSpec pre;
    pre.before_cell.push_back({1, 0, 1});
    EXPECT_EQ(interp.run(pre), rt::RunOutcome::Running);
    interp.state().resume_in_segment = false;
    rt::RotatePolicy post;
    AlternatePolicy alt(race, &post);
    interp.setPolicy(&alt);
    EXPECT_EQ(interp.run(), rt::RunOutcome::Aborted);
    EXPECT_TRUE(alt.starved());
}

} // namespace
} // namespace portend::replay
