/**
 * @file
 * On-disk corpus tests: save/load round-trip, replay semantics for
 * regression and disagreement entries, corruption handling, and the
 * end-to-end campaign pipeline (including an injected oracle bug
 * flowing through flag -> minimize -> persist).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "ir/serialize.h"

namespace fs = std::filesystem;

namespace portend::fuzz {
namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("corpus_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A real generated reproducer with its oracle snapshot. */
CorpusEntry
makeRegressionEntry(std::uint64_t index)
{
    GeneratedProgram g =
        generateProgram(42, index, GeneratorOptions{});
    OracleVerdict v = runOracle(g.program, OracleOptions{});
    CorpusEntry e;
    e.name = "sig-test-" + std::to_string(index);
    e.kind = "regression";
    e.fuzz_seed = 42;
    e.index = index;
    e.detection_seed = 1;
    e.signature = v.signature();
    e.recipe_text = g.recipe.serialize();
    e.program_text = ir::serializeProgram(g.program);
    e.trace_text = v.trace_text;
    return e;
}

TEST(FuzzCorpus, SaveLoadRoundTrip)
{
    std::string dir = scratchDir("roundtrip");
    CorpusEntry e = makeRegressionEntry(0);
    e.witness = "cell:n=5";
    std::string error;
    ASSERT_TRUE(saveEntry(dir, e, &error)) << error;

    auto back = loadEntry((fs::path(dir) / e.name).string(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->kind, e.kind);
    EXPECT_EQ(back->fuzz_seed, e.fuzz_seed);
    EXPECT_EQ(back->index, e.index);
    EXPECT_EQ(back->detection_seed, e.detection_seed);
    EXPECT_EQ(back->signature, e.signature);
    EXPECT_EQ(back->witness, e.witness);
    EXPECT_EQ(back->recipe_text, e.recipe_text);
    EXPECT_EQ(back->program_text, e.program_text);
    EXPECT_EQ(back->trace_text, e.trace_text);
}

TEST(FuzzCorpus, RegressionEntryReplaysGreen)
{
    CorpusEntry e = makeRegressionEntry(1);
    ReplayOutcome out = replayEntry(e, OracleOptions{});
    EXPECT_TRUE(out.ok) << out.detail;
}

TEST(FuzzCorpus, ReplayDetectsSignatureDrift)
{
    CorpusEntry e = makeRegressionEntry(2);
    e.signature = "out=exited;races=999;classes=";
    ReplayOutcome out = replayEntry(e, OracleOptions{});
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.detail.find("signature"), std::string::npos);
}

TEST(FuzzCorpus, ReplayRejectsCorruptProgramWithoutCrashing)
{
    CorpusEntry e = makeRegressionEntry(3);
    e.program_text =
        e.program_text.substr(0, e.program_text.size() / 2);
    ReplayOutcome out = replayEntry(e, OracleOptions{});
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.detail.find("parse"), std::string::npos);

    e = makeRegressionEntry(3);
    e.trace_text = "trace v1\nd notanumber";
    out = replayEntry(e, OracleOptions{});
    EXPECT_FALSE(out.ok);
}

TEST(FuzzCorpus, DisagreementEntryIsGreenOnceFixed)
{
    // A disagreement reproducer replays green when the recorded
    // check no longer fails — i.e. after the bug it pinned is fixed.
    CorpusEntry e = makeRegressionEntry(4);
    e.kind = "disagreement";
    e.check = "determinism"; // passes on today's pipeline
    ReplayOutcome out = replayEntry(e, OracleOptions{});
    EXPECT_TRUE(out.ok) << out.detail;
}

TEST(FuzzCorpus, RunCorpusAggregatesAndSorts)
{
    std::string dir = scratchDir("aggregate");
    std::string error;
    ASSERT_TRUE(saveEntry(dir, makeRegressionEntry(5), &error));
    ASSERT_TRUE(saveEntry(dir, makeRegressionEntry(6), &error));

    CorpusRunResult res = runCorpus(dir, OracleOptions{});
    EXPECT_EQ(res.total, 2);
    EXPECT_EQ(res.passed, 2);
    EXPECT_TRUE(res.allGreen());
    ASSERT_EQ(res.outcomes.size(), 2u);
    EXPECT_LT(res.outcomes[0].name, res.outcomes[1].name);
}

TEST(FuzzCorpus, RunCorpusReportsBrokenEntryDirectories)
{
    std::string dir = scratchDir("broken");
    fs::create_directories(fs::path(dir) / "half-entry");
    {
        std::ofstream os(fs::path(dir) / "half-entry" / "meta.txt");
        os << "kind=regression\n";
    } // program.pil and trace.txt missing
    CorpusRunResult res = runCorpus(dir, OracleOptions{});
    EXPECT_EQ(res.total, 1);
    EXPECT_EQ(res.passed, 0);
}

TEST(FuzzCorpus, CampaignWritesReplayableCorpus)
{
    std::string dir = scratchDir("campaign");
    FuzzOptions opts;
    opts.budget = 24;
    opts.fuzz_seed = 42;
    opts.jobs = 2;
    opts.corpus_dir = dir;
    opts.max_new_entries = 6;
    FuzzResult res = runFuzz(opts);
    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.programs, 24);
    EXPECT_GT(res.regression_entries, 0);

    CorpusRunResult replay = runCorpus(dir, OracleOptions{});
    EXPECT_EQ(replay.total, res.regression_entries);
    EXPECT_TRUE(replay.allGreen());
}

TEST(FuzzCorpus, CampaignIsDeterministicAcrossJobsAndRuns)
{
    std::string d1 = scratchDir("det1");
    std::string d2 = scratchDir("det2");
    FuzzOptions opts;
    opts.budget = 16;
    opts.fuzz_seed = 9;
    opts.max_new_entries = 4;

    opts.jobs = 1;
    opts.corpus_dir = d1;
    FuzzResult a = runFuzz(opts);
    opts.jobs = 3;
    opts.corpus_dir = d2;
    FuzzResult b = runFuzz(opts);

    // Summary bytes are identical modulo the corpus path line.
    a.corpus_dir = b.corpus_dir = "";
    EXPECT_EQ(a.summaryText(), b.summaryText());

    // Corpus contents are byte-identical, entry by entry.
    std::vector<std::string> n1 = listEntries(d1);
    std::vector<std::string> n2 = listEntries(d2);
    ASSERT_EQ(n1, n2);
    for (const std::string &name : n1) {
        for (const char *file :
             {"meta.txt", "program.pil", "trace.txt"}) {
            std::ifstream f1(fs::path(d1) / name / file);
            std::ifstream f2(fs::path(d2) / name / file);
            std::stringstream s1, s2;
            s1 << f1.rdbuf();
            s2 << f2.rdbuf();
            EXPECT_EQ(s1.str(), s2.str()) << name << "/" << file;
        }
    }
}

TEST(FuzzCorpus, InjectedOracleBugFlowsToMinimizedDisagreement)
{
    // End-to-end: a judge that falsely "fails" any program containing
    // an overflow-crash pattern must produce minimized findings and
    // disagreement entries on disk.
    std::string dir = scratchDir("injected");
    FuzzOptions opts;
    opts.budget = 12;
    opts.fuzz_seed = 42;
    opts.corpus_dir = dir;
    opts.judge = [](const ir::Program &prog,
                    const OracleOptions &) {
        OracleVerdict v;
        v.outcome = "exited";
        bool guilty = false;
        for (const auto &g : prog.globals)
            guilty = guilty ||
                     g.name.find("_table") != std::string::npos;
        v.checks.push_back({"injected-check", !guilty,
                            guilty ? "program has an overflow table"
                                   : ""});
        return v;
    };
    FuzzResult res = runFuzz(opts);
    ASSERT_GT(res.findings.size(), 0u);
    EXPECT_GT(res.disagreement_entries, 0);
    for (const FuzzFinding &f : res.findings) {
        EXPECT_EQ(f.check, "injected-check");
        // Minimized to the single guilty pattern.
        ASSERT_EQ(f.minimized.patterns.size(), 1u);
        EXPECT_EQ(f.minimized.patterns[0].kind,
                  PatternKind::OverflowCrash);
        EXPECT_FALSE(f.entry_name.empty());
        EXPECT_TRUE(
            fs::exists(fs::path(dir) / f.entry_name / "program.pil"));
    }
}

} // namespace
} // namespace portend::fuzz
