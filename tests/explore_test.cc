/** @file Exhaustive cross-checks for the schedule explorer.
 *
 * For micro programs small enough to enumerate *every* interleaving,
 * the dpor explorer's pruned schedule set must cover every
 * Mazurkiewicz-trace equivalence class, count no class twice, and
 * execute fewer runs than brute-force enumeration. The enumeration
 * itself brute-forces the scheduler decision tree with
 * rt::GuidedPolicy, so ground truth and explorer share one
 * signature function and one execution engine.
 *
 * The exhaustive suites are deliberately exponential; they carry the
 * ctest `slow` label (excluded from the TSan CI job).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "ir/builder.h"
#include "portend/portend.h"
#include "rt/interpreter.h"
#include "rt/policy.h"
#include "workloads/registry.h"

namespace portend {
namespace {

using ir::I;
using ir::R;
using K = sym::ExprKind;

/** Two symmetric writers touching two shared cells in opposite
 *  order: conflicting pairs on both cells, no synchronization. */
ir::Program
crossWriters()
{
    ir::ProgramBuilder pb("cross");
    ir::GlobalId x = pb.global("x");
    ir::GlobalId y = pb.global("y");
    auto &a = pb.function("wa", 1);
    a.to(a.block("e"));
    a.store(x, I(0), I(1));
    a.store(y, I(0), I(2));
    a.retVoid();
    auto &b = pb.function("wb", 1);
    b.to(b.block("e"));
    b.store(y, I(0), I(3));
    b.store(x, I(0), I(4));
    b.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t1 = m.threadCreate("wa", I(0));
    ir::Reg t2 = m.threadCreate("wb", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.halt();
    return pb.build();
}

/** Three writers with staggered private preambles appending to one
 *  shared cell: many classes, heavily skewed random sampling. */
ir::Program
staggeredWriters()
{
    ir::ProgramBuilder pb("staggered");
    ir::GlobalId log = pb.global("log");
    std::vector<std::string> names;
    for (int w = 0; w < 3; ++w) {
        std::string name = "w" + std::to_string(w);
        names.push_back(name);
        ir::GlobalId priv = pb.global(name + "_priv");
        auto &f = pb.function(name, 1);
        f.to(f.block("e"));
        for (int i = 0; i < w; ++i)
            f.store(priv, I(0), I(i)); // private stagger
        ir::Reg lv = f.load(log);
        f.store(log, I(0), R(f.bin(K::Add, R(lv), I(1 << w))));
        f.retVoid();
    }
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    std::vector<ir::Reg> tids;
    for (const auto &n : names)
        tids.push_back(m.threadCreate(n, I(0)));
    for (ir::Reg t : tids)
        m.threadJoin(R(t));
    m.halt();
    return pb.build();
}

/** Two lock-protected writers: the backtrack target is blocked at
 *  the flip point, exercising the persistent-set widening rule. */
ir::Program
lockedWriters()
{
    ir::ProgramBuilder pb("locked");
    ir::GlobalId g = pb.global("g");
    ir::SyncId mx = pb.mutex("m");
    for (int w = 0; w < 2; ++w) {
        auto &f = pb.function("w" + std::to_string(w), 1);
        f.to(f.block("e"));
        f.lock(mx);
        ir::Reg v = f.load(g);
        f.store(g, I(0), R(f.bin(K::Add, R(v), I(w + 1))));
        f.unlock(mx);
        f.retVoid();
    }
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t1 = m.threadCreate("w0", I(0));
    ir::Reg t2 = m.threadCreate("w1", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.halt();
    return pb.build();
}

/** Run the whole program under a guided prefix + rotate fallback
 *  (the same completion the analyzer's guided alternates use). */
rt::ScheduleObservation
runGuided(const ir::Program &p,
          const std::vector<rt::ThreadId> &prefix)
{
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.max_steps = 100000;
    rt::Interpreter interp(p, eo);
    rt::RotatePolicy rotate;
    rt::GuidedPolicy pol(prefix, &rotate);
    interp.setPolicy(&pol);
    rt::RunOutcome oc = interp.run();
    EXPECT_EQ(oc, rt::RunOutcome::Exited);
    return pol.takeObservation();
}

/**
 * Brute-force every interleaving: DFS over the scheduler decision
 * tree, branching at every decision point over every enabled
 * thread. Returns the number of complete schedules executed.
 */
int
enumerateAll(const ir::Program &p, std::set<std::string> &classes,
             std::vector<rt::ThreadId> prefix = {})
{
    rt::ScheduleObservation obs = runGuided(p, prefix);
    classes.insert(explore::signatureHash(obs));
    int runs = 1;
    for (std::size_t i = prefix.size(); i < obs.picks.size(); ++i) {
        for (rt::ThreadId t : obs.enabled[i]) {
            if (t == obs.picks[i])
                continue;
            std::vector<rt::ThreadId> child(obs.picks.begin(),
                                            obs.picks.begin() +
                                                static_cast<long>(i));
            child.push_back(t);
            runs += enumerateAll(p, classes, child);
        }
    }
    return runs;
}

/** Drive a pure-systematic (no random phase) dpor exploration of
 *  the whole program; returns runs executed. */
int
exploreAll(const ir::Program &p, explore::ScheduleExplorer &ex)
{
    int runs = 0;
    while (std::optional<explore::PostSpec> spec = ex.next()) {
        EXPECT_EQ(spec->kind, explore::PostSpec::Kind::Guided);
        ex.record(runGuided(p, spec->prefix));
        runs += 1;
    }
    return runs;
}

explore::ExplorerOptions
exhaustiveOptions()
{
    explore::ExplorerOptions xo;
    xo.mode = explore::ExploreMode::Dpor;
    xo.budget = 1 << 20;       // never the stopping condition
    xo.max_runs = 1 << 20;
    xo.preemption_bound = 64;  // effectively unbounded here
    xo.random_first = false;   // measure pure systematic coverage
    return xo;
}

class ExploreExhaustiveTest : public ::testing::Test
{
  protected:
    void
    crossCheck(const ir::Program &p)
    {
        std::set<std::string> truth;
        int all_runs = enumerateAll(p, truth);
        ASSERT_GT(truth.size(), 1u) << p.name;

        explore::ScheduleExplorer ex(exhaustiveOptions());
        int runs = exploreAll(p, ex);

        // Coverage: every Mazurkiewicz class, no phantom classes
        // (the explorer executes real schedules, so its signatures
        // are a subset by construction), no duplicate counting.
        EXPECT_EQ(ex.signatures(), truth) << p.name;
        EXPECT_EQ(ex.distinct(),
                  static_cast<int>(ex.signatures().size()))
            << p.name;
        EXPECT_TRUE(ex.exhausted()) << p.name;

        // Pruning: strictly fewer executions than brute force.
        EXPECT_LT(runs, all_runs) << p.name;
        EXPECT_EQ(runs, ex.runs()) << p.name;
    }
};

TEST_F(ExploreExhaustiveTest, CrossWritersCoverAllClasses)
{
    crossCheck(crossWriters());
}

TEST_F(ExploreExhaustiveTest, StaggeredWritersCoverAllClasses)
{
    crossCheck(staggeredWriters());
}

TEST_F(ExploreExhaustiveTest, LockedWritersCoverAllClasses)
{
    crossCheck(lockedWriters());
}

// The signature must identify Mazurkiewicz classes: schedules that
// only reorder independent accesses collapse, schedules that
// reorder conflicting accesses do not.
TEST(SignatureTest, IndependentReorderingsCollapse)
{
    rt::ScheduleObservation a;
    // t0 writes site 0, t1 writes site 1 — independent.
    a.accesses = {{0, 0, true, 0}, {1, 1, true, 1}};
    rt::ScheduleObservation b;
    b.accesses = {{1, 1, true, 0}, {0, 0, true, 1}};
    EXPECT_EQ(explore::canonicalSignature(a),
              explore::canonicalSignature(b));
}

TEST(SignatureTest, ConflictingReorderingsStayDistinct)
{
    rt::ScheduleObservation a;
    a.accesses = {{0, 7, true, 0}, {1, 7, true, 1}};
    rt::ScheduleObservation b;
    b.accesses = {{1, 7, true, 0}, {0, 7, true, 1}};
    EXPECT_NE(explore::canonicalSignature(a),
              explore::canonicalSignature(b));
}

TEST(SignatureTest, ReadReadPairsAreIndependent)
{
    rt::ScheduleObservation a;
    a.accesses = {{0, 7, false, 0}, {1, 7, false, 1}};
    rt::ScheduleObservation b;
    b.accesses = {{1, 7, false, 0}, {0, 7, false, 1}};
    EXPECT_EQ(explore::canonicalSignature(a),
              explore::canonicalSignature(b));
}

TEST(SignatureTest, ProgramOrderIsDependence)
{
    // Same thread, different sites: order is program order and must
    // not collapse.
    rt::ScheduleObservation a;
    a.accesses = {{0, 1, true, 0}, {0, 2, true, 1}};
    rt::ScheduleObservation b;
    b.accesses = {{0, 2, true, 0}, {0, 1, true, 1}};
    EXPECT_NE(explore::canonicalSignature(a),
              explore::canonicalSignature(b));
}

TEST(SignatureTest, HashIsStable16Hex)
{
    rt::ScheduleObservation a;
    a.accesses = {{0, 1, true, 0}};
    std::string h = explore::signatureHash(a);
    EXPECT_EQ(h.size(), 16u);
    EXPECT_EQ(h.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(h, explore::signatureHash(a));
}

// Random mode is a pure sampler: exactly `budget` seeded runs, with
// the legacy seed layout, and no systematic candidates.
TEST(ExplorerModeTest, RandomModeIssuesExactlyBudgetSeeds)
{
    explore::ExplorerOptions xo;
    xo.mode = explore::ExploreMode::Random;
    xo.budget = 3;
    xo.seed_base = 16;
    explore::ScheduleExplorer ex(xo);
    for (int j = 1; j <= 3; ++j) {
        std::optional<explore::PostSpec> s = ex.next();
        ASSERT_TRUE(s.has_value());
        EXPECT_EQ(s->kind, explore::PostSpec::Kind::Random);
        EXPECT_EQ(s->seed, 16u + static_cast<std::uint64_t>(j));
        rt::ScheduleObservation obs;
        obs.accesses = {{j, 1, true, 0}}; // all distinct classes
        EXPECT_TRUE(ex.record(obs));
    }
    EXPECT_FALSE(ex.next().has_value());
    EXPECT_EQ(ex.distinct(), 3);
}

// The dpor superset contract: the random phase comes first, with
// the same seeds random mode would use, and stopping conditions do
// not truncate it.
TEST(ExplorerModeTest, DporRunsTheRandomPhaseFirstAndWhole)
{
    explore::ExplorerOptions xo;
    xo.mode = explore::ExploreMode::Dpor;
    xo.budget = 2;
    xo.seed_base = 48;
    explore::ScheduleExplorer ex(xo);

    rt::ScheduleObservation one;
    one.accesses = {{0, 1, true, 0}};
    rt::ScheduleObservation two;
    two.accesses = {{1, 1, true, 0}};

    std::optional<explore::PostSpec> s1 = ex.next();
    ASSERT_TRUE(s1.has_value());
    EXPECT_EQ(s1->kind, explore::PostSpec::Kind::Random);
    EXPECT_EQ(s1->seed, 49u);
    EXPECT_TRUE(ex.record(one));

    // Distinct budget is already met after the next record, yet the
    // second random seed must still be issued before stopping.
    std::optional<explore::PostSpec> s2 = ex.next();
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(s2->kind, explore::PostSpec::Kind::Random);
    EXPECT_EQ(s2->seed, 50u);
    EXPECT_TRUE(ex.record(two));
    EXPECT_EQ(ex.distinct(), 2);

    EXPECT_FALSE(ex.next().has_value());
}

// Duplicate classes are recognized and not double counted.
TEST(ExplorerModeTest, DuplicateSignaturesAreNotDistinct)
{
    explore::ExplorerOptions xo;
    xo.mode = explore::ExploreMode::Random;
    xo.budget = 2;
    explore::ScheduleExplorer ex(xo);
    rt::ScheduleObservation obs;
    obs.accesses = {{0, 1, true, 0}};
    ASSERT_TRUE(ex.next().has_value());
    EXPECT_TRUE(ex.record(obs));
    ASSERT_TRUE(ex.next().has_value());
    EXPECT_FALSE(ex.record(obs));
    EXPECT_EQ(ex.distinct(), 1);
}

} // namespace
} // namespace portend

namespace portend::core {
namespace {

using ir::I;
using ir::R;

/** A benign race anchoring stage 3 on a program whose post-race
 *  schedule space the explorers then have to cover. */
ir::Program
racyStaggered()
{
    ir::ProgramBuilder pb("racy_staggered");
    ir::GlobalId sync = pb.global("sync_cell");
    ir::GlobalId log = pb.global("log_cell");
    using KK = sym::ExprKind;
    std::vector<std::string> names;
    for (int w = 0; w < 3; ++w) {
        std::string name = "w" + std::to_string(w);
        names.push_back(name);
        ir::GlobalId priv = pb.global(name + "_priv");
        auto &f = pb.function(name, 1);
        f.to(f.block("e"));
        f.store(sync, I(0), I(1)); // the anchoring benign race
        for (int i = 0; i < w * 3; ++i) {
            ir::Reg v = f.load(priv);
            f.store(priv, I(0), R(f.bin(KK::Add, R(v), I(1))));
        }
        ir::Reg lv = f.load(log);
        f.store(log, I(0),
                R(f.bin(KK::Add, R(f.bin(KK::Mul, R(lv), I(10))),
                        I(w + 1))));
        f.retVoid();
    }
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    std::vector<ir::Reg> tids;
    for (const auto &n : names)
        tids.push_back(m.threadCreate(n, I(0)));
    for (ir::Reg t : tids)
        m.threadJoin(R(t));
    m.outputStr("done");
    m.halt();
    return pb.build();
}

PortendResult
runExplorer(const ir::Program &p, explore::ExploreMode mode, int ma)
{
    PortendOptions o;
    o.jobs = 1;
    o.ma = ma;
    o.explore = mode;
    Portend tool(p, o);
    return tool.run();
}

// The tentpole's budget claim: at equal Ma, dpor witnesses at least
// as many distinct post-race interleavings as random on every
// cluster, and strictly more in total on a schedule-rich program.
TEST(ExplorePipelineTest, DporBuysMoreDistinctSchedules)
{
    ir::Program p = racyStaggered();
    PortendResult rnd = runExplorer(p, explore::ExploreMode::Random, 6);
    PortendResult dpo = runExplorer(p, explore::ExploreMode::Dpor, 6);
    ASSERT_EQ(rnd.reports.size(), dpo.reports.size());
    ASSERT_FALSE(rnd.reports.empty());

    int rnd_total = 0;
    int dpo_total = 0;
    for (std::size_t i = 0; i < rnd.reports.size(); ++i) {
        const AnalysisStats &a = rnd.reports[i].classification.stats;
        const AnalysisStats &b = dpo.reports[i].classification.stats;
        EXPECT_LE(a.distinct_schedules, a.schedules_explored);
        EXPECT_LE(b.distinct_schedules, b.schedules_explored);
        EXPECT_GE(b.distinct_schedules, a.distinct_schedules)
            << "cluster " << i;
        rnd_total += a.distinct_schedules;
        dpo_total += b.distinct_schedules;
    }
    EXPECT_GT(dpo_total, rnd_total);
    EXPECT_EQ(rnd.scheduling.distinct_schedules, rnd_total);
    EXPECT_EQ(dpo.scheduling.distinct_schedules, dpo_total);
}

// Verdict monotonicity, random -> dpor: dpor runs the random phase
// first, so a decisive random verdict is reproduced identically and
// a k-witness verdict may only upgrade toward a decisive class.
TEST(ExplorePipelineTest, DporNeverLosesDecisiveVerdicts)
{
    for (const std::string &name :
         {std::string("pbzip2"), std::string("bbuf"),
          std::string("ctrace")}) {
        workloads::Workload w = workloads::buildWorkload(name);
        PortendOptions o;
        o.jobs = 1;
        o.semantic_predicates = w.semantic_predicates;
        o.explore = explore::ExploreMode::Random;
        PortendResult rnd = Portend(w.program, o).run();
        o.explore = explore::ExploreMode::Dpor;
        PortendResult dpo = Portend(w.program, o).run();

        ASSERT_EQ(rnd.reports.size(), dpo.reports.size()) << name;
        for (std::size_t i = 0; i < rnd.reports.size(); ++i) {
            const Classification &a = rnd.reports[i].classification;
            const Classification &b = dpo.reports[i].classification;
            if (a.cls == RaceClass::SpecViolated) {
                EXPECT_EQ(b.cls, RaceClass::SpecViolated)
                    << name << " cluster " << i;
                EXPECT_EQ(b.viol, a.viol) << name << " cluster " << i;
            }
            if (a.cls == RaceClass::OutputDiffers) {
                EXPECT_TRUE(b.cls == RaceClass::OutputDiffers ||
                            b.cls == RaceClass::SpecViolated)
                    << name << " cluster " << i;
            }
            // Single-ordering and unclassified verdicts come from
            // stage 1 and never depend on the explorer.
            if (a.cls == RaceClass::SingleOrdering) {
                EXPECT_EQ(b.cls, a.cls) << name << " cluster " << i;
            }
        }
    }
}

// Explorer evidence replays: a dpor-found decisive verdict carries
// a schedule prefix + signature, and replaying it deterministically
// reproduces the behavior class.
TEST(ExplorePipelineTest, GuidedEvidenceReplays)
{
    ir::Program p = racyStaggered();
    PortendOptions o;
    o.jobs = 1;
    o.ma = 6;
    o.explore = explore::ExploreMode::Dpor;
    Portend tool(p, o);
    PortendResult res = tool.run();

    RaceAnalyzer analyzer(p, o);
    int replayed = 0;
    for (const PortendReport &r : res.reports) {
        const Classification &c = r.classification;
        if (c.cls != RaceClass::SpecViolated &&
            c.cls != RaceClass::OutputDiffers) {
            continue;
        }
        RaceAnalyzer::EvidenceReplay er = analyzer.replayEvidence(
            r.cluster.representative, res.detection.trace, c);
        if (c.cls == RaceClass::SpecViolated)
            EXPECT_TRUE(rt::isSpecViolation(er.outcome));
        else
            EXPECT_EQ(er.outcome, rt::RunOutcome::Exited);
        replayed += 1;
    }
    // The program may classify fully harmless; then nothing to
    // replay — still assert the pipeline produced reports.
    EXPECT_FALSE(res.reports.empty());
    (void)replayed;
}

} // namespace
} // namespace portend::core
