#!/usr/bin/env bash
# Regenerate the golden-verdict files pinned under tests/golden/.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
#
# Each golden file is the raw byte output of
#   portend classify <workload> --json
# for one registry workload — the same bytes `classify --all --json`
# emits per array element — and the ctest suite golden_<workload>
# diffs against it byte-for-byte. Regenerating therefore always
# produces a reviewable git diff: goldens only change when verdict
# behavior changes, and that diff is the re-review surface.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
PORTEND="$BUILD/portend"
if [[ ! -x "$PORTEND" ]]; then
    echo "error: $PORTEND not built (cmake --build $BUILD)" >&2
    exit 1
fi

mkdir -p tests/golden
workloads=$("$PORTEND" list | awk 'NR > 1 { print $1 }')
for w in $workloads; do
    "$PORTEND" classify "$w" --json > "tests/golden/$w.json"
    echo "regenerated tests/golden/$w.json"
done

echo
echo "Goldens regenerated. Review the diff before committing:"
git --no-pager diff --stat -- tests/golden || true
