/**
 * @file
 * `portend` command-line driver: runs the full Fig. 2 pipeline
 * (record + detect, then multi-path multi-schedule classification)
 * over any workload registered in the benchmark suite, and renders
 * the verdicts either as the paper's Fig. 6 debugging-aid report or
 * as JSON for downstream tooling.
 *
 * The help text below is kept in sync with docs/CLI.md.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "serve/client.h"
#include "serve/server.h"
#include "explore/explorer.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "ir/serialize.h"
#include "portend/classify.h"
#include "portend/portend.h"
#include "portend/render.h"
#include "rt/interpreter.h"
#include "rt/vmstate.h"
#include "support/observe.h"
#include "support/str.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "workloads/registry.h"

namespace {

using namespace portend;

// Keep this text byte-identical with the Usage section of
// docs/CLI.md.
const char kUsage[] =
    R"(portend - tell data races apart from data race bugs (ASPLOS 2012)

Usage:
  portend list                          list registered workloads
  portend run <workload> [options]      detect and classify every race
  portend run --all [options]           whole registry, one report each
  portend run --file <prog.pil> [options]    same pipeline on a PIL file
  portend classify <workload> [options] classify with an explicit k budget
  portend classify --all [options]      whole registry, compact tables
  portend classify --file <prog.pil> [options]   compact table for a file
  portend campaign run <dir> [options]  persistent classification campaign
                                        over the whole registry: verdicts
                                        are cached by content signature
                                        and journaled under <dir>, so a
                                        killed campaign resumes where it
                                        left off and a warm re-run costs
                                        one cache probe per unit
  portend campaign resume <dir>         continue a campaign exactly as
                                        configured (all analysis flags
                                        come from the stored manifest)
  portend campaign status <dir>         report completed/total units
                                        (exit 0 when complete, 3 when
                                        work remains)
  portend serve <dir> [serve options]   run the sharded triage server:
                                        campaign submissions arrive over
                                        a socket and fan out to forked
                                        worker processes that share one
                                        on-disk verdict cache under <dir>;
                                        a SIGKILLed worker's units are
                                        re-dispatched, so merged verdicts
                                        stay byte-identical to a
                                        single-process `campaign run`
  portend submit [analysis options]     submit the full registry with the
                                        given analysis flags as a campaign
                                        to a running server and print the
                                        merged verdicts; with --status,
                                        --ping, or --shutdown, talk to the
                                        server instead of submitting
  portend fuzz [options]                generate racy PIL programs, cross-
                                        check detectors and classifier,
                                        minimize and store reproducers
  portend corpus run <dir> [--explore <name>] [--quiet]
                                        replay a reproducer corpus
  portend --help                        print this help

Workloads:
  pbzip2  ctrace  memcached  sqlite  ocean  fmm  bbuf  avv  dcl  dbm  rw
  input-sensitive extensions (classify with --sym-input): ibuf  iguard
  (run `portend list` for the Table 1 metadata of each)

Options:
  --k <N>              path x schedule witness budget: sets Mp = N,
                       Ma = 2 when N >= 5 (else 1), and enables
                       multi-path at N > 1, multi-schedule at N >= 5
  --mp <N>             primary paths explored (Mp, default 5)
  --ma <N>             alternate-schedule budget per primary (Ma,
                       default 2): distinct post-race interleavings
                       under the dpor explorer, plain run count
                       under random
  --explore <name>     stage-3 schedule explorer: "dpor" enumerates
                       bounded-preemption interleavings, prunes
                       Mazurkiewicz-equivalent ones, and spends Ma
                       on provably distinct schedules; "random" is
                       the legacy seeded sampler (default dpor)
  --jobs <N>           worker threads for classification, batch mode,
                       and fuzzing (default: one per hardware
                       thread); results are identical for every N
  --seed <N>           detection-run schedule seed (default 1)
  --detector <name>    hb | hb-nomutex | lockset (default hb)
  --class <name>       only report races of this class (paper
                       spelling, e.g. "spec violated")
  --sym-input <name>[=lo..hi]
                       make the named program input symbolic during
                       multi-path analysis (repeatable). Only
                       matching inputs fork paths; a decisive
                       verdict records a solver-concretized witness
                       value per symbolic input, and an explicit
                       lo..hi overrides the input's declared domain
  --no-multi-path      disable multi-path analysis (stage 2)
  --no-multi-schedule  disable multi-schedule analysis (stage 3)
  --no-adhoc           disable ad-hoc synchronization detection
  --json               emit a JSON report instead of the Fig. 6 text
  --stats              append the interpreter ledger of the detection
                       run: dispatch mode, decoded sites, events
                       batched, COW pages unshared, values boxed
  --dispatch <mode>    interpreter dispatch loop for every execution
                       in the process: "threaded" (computed-goto,
                       error where unsupported), "switch" (portable),
                       or "auto" (threaded when available; default).
                       Accepted before any command

Observability options (run, classify, campaign, fuzz, corpus run):
  --trace-out <file>   write a Chrome trace-event JSON timeline of
                       the run: replay, ladder-fork, DPOR-candidate,
                       sym-path-fork, and solver spans with nested
                       parents per thread (open in chrome://tracing
                       or Perfetto)
  --metrics-out <file> write the merged metrics-registry JSON
                       (portend-metrics-v1). Counters, gauges, and
                       histograms only — no timing, no worker
                       counts — so the bytes are identical across
                       --jobs values and across runs
  --progress <mode>    stream JSON-lines telemetry to stderr while
                       the pipeline runs; the only mode is "jsonl"
                       (one event per classified cluster, explored
                       schedule, and fuzz iteration)
  --quiet              suppress the end-of-run metrics summary line
                       of `fuzz` and `corpus run`

Campaign options (portend campaign run/resume):
  --abort-after <N>    stop claiming new units once N have been
                       executed and journaled by this invocation
                       (crash simulation for kill-and-resume
                       testing); exits with code 3 while work
                       remains

Serve options (portend serve):
  --workers <N>        worker processes to pre-fork (default 2)
  --socket <path>      listen on this Unix-domain socket
  --port <N>           listen on loopback TCP instead (0 picks an
                       ephemeral port; the chosen one is printed)
  --max-restarts <N>   worker respawn budget (default 16)
  --attempts <N>       dispatch attempts per unit before the whole
                       submission fails (default 3)
  --unit-timeout <S>   SIGKILL a worker stuck on one unit for S
                       seconds (default: no timeout)
  --kill-after <N>     fault injection: SIGKILL one busy worker once
                       N units have completed (crash-recovery tests)
  --max-submissions <N>  exit after answering N submissions
                       (bounds server lifetime in tests)

Submit options (portend submit):
  --socket <path> | --port <N>   the server endpoint (required)
  --status | --ping | --shutdown query or stop the server instead of
                       submitting a campaign
  --timeout <S>        connect retry budget in seconds (default 10);
                       all analysis options above are accepted and
                       travel in the submitted manifest

Fuzzing options (portend fuzz):
  --budget <N>         programs to generate (default 200); with a
                       fixed --fuzz-seed the campaign is
                       deterministic: summary and corpus bytes are
                       byte-identical on every run and --jobs value
  --seconds <S>        wall-clock box instead of --budget (program
                       count then depends on the host)
  --fuzz-seed <N>      program-generation seed (default 1); --seed
                       stays the detection schedule seed, so the two
                       vary independently
  --corpus <dir>       write minimized reproducers here (replay them
                       with `portend corpus run <dir>`)
  --campaign <dir>     persist the fuzz campaign under <dir>: every
                       generated program's verdict is cached by
                       program fingerprint + oracle config and
                       journaled, so an interrupted campaign resumes
                       where it left off and a duplicate generated
                       program costs one cache probe

Race classes (paper Fig. 1):
  spec violated        an ordering crashes, deadlocks, or hangs
  output differs       orderings can produce different program output
  k-witness harmless   k path x schedule witnesses saw equal output
  single ordering      only one ordering is possible (ad-hoc sync)
)";

/**
 * The shared observability/verbosity flags. Every subcommand parser
 * (run/classify, campaign, fuzz, corpus) consumes these through the
 * one parseObsFlag helper below instead of hand-rolling the same
 * four branches.
 */
struct ObsFlags
{
    std::string trace_out;   ///< --trace-out file ("" = off)
    std::string metrics_out; ///< --metrics-out file ("" = off)
    bool progress_jsonl = false; ///< --progress jsonl
    bool quiet = false;          ///< --quiet (fuzz, corpus run)
};

struct CliOptions
{
    core::PortendOptions opts;
    bool json = false;
    bool stats = false; ///< append the interpreter ledger
    int k = 0; ///< 0 = not given
    std::optional<core::RaceClass> only_class; ///< --class filter
    ObsFlags obs; ///< shared observability flags
};

// ---------------------------------------------------------------------------
// Observability sinks. One set per process: installed from the CLI
// flags before the pipeline runs, drained into files afterwards.
// ---------------------------------------------------------------------------

obs::Collector g_collector;
std::optional<obs::Tracer> g_tracer;
std::optional<obs::Progress> g_progress;

/** Install the process-wide sinks requested by the flags. */
void
installObsSinks(const std::string &trace_out,
                const std::string &metrics_out, bool progress_jsonl,
                bool force_collector)
{
    if (!trace_out.empty()) {
        g_tracer.emplace();
        obs::setTracer(&*g_tracer);
    }
    if (force_collector || !metrics_out.empty())
        obs::setCollector(&g_collector);
    if (progress_jsonl) {
        g_progress.emplace(std::cerr);
        obs::setProgress(&*g_progress);
    }
}

/**
 * Write the observability outputs. `pipeline` carries the shards the
 * pipelines threaded through their result structs (merged in registry
 * order by the caller); the collector contributes everything bumped
 * globally (interpreter runs, solver queries, path forks, ...).
 * Returns 0, or 1 if a file could not be written.
 */
int
writeObsOutputs(const std::string &trace_out,
                const std::string &metrics_out,
                const obs::MetricsShard &pipeline)
{
    int rc = 0;
    if (!metrics_out.empty()) {
        obs::MetricsShard total = pipeline;
        g_collector.drainInto(total);
        std::ofstream f(metrics_out, std::ios::binary);
        if (f)
            f << obs::metricsJson(total);
        if (!f) {
            std::fprintf(stderr, "portend: cannot write %s\n",
                         metrics_out.c_str());
            rc = 1;
        }
    }
    if (!trace_out.empty()) {
        std::string err;
        if (!g_tracer->writeFile(trace_out, &err)) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            rc = 1;
        }
    }
    return rc;
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "portend: %s\n(try `portend --help`)\n",
                 msg.c_str());
    std::exit(2);
}

/** Parse an --explore value; usage error on anything unknown. */
explore::ExploreMode
parseExploreMode(const char *value)
{
    if (!value)
        usageError("--explore needs a value");
    std::string e = value;
    if (e == "dpor")
        return explore::ExploreMode::Dpor;
    if (e == "random")
        return explore::ExploreMode::Random;
    usageError("unknown explorer: " + e +
               " (expected dpor or random)");
}

std::int64_t
parseInt(const char *flag, const char *value)
{
    if (!value)
        usageError(std::string(flag) + " needs a value");
    std::int64_t v = 0;
    // parseI64 checks errno == ERANGE, so an overflowing value like
    // --ma 99999999999999999999 is an error here instead of silently
    // saturating at INT64_MAX.
    if (!parseI64(value, &v))
        usageError(std::string(flag) +
                   ": not a number in the 64-bit range: " + value);
    return v;
}

/** Parse a count/budget flag into an int in [min_value, INT_MAX]. */
int
parseCount(const char *flag, const char *value, int min_value)
{
    const std::int64_t v = parseInt(flag, value);
    if (v < min_value ||
        v > std::numeric_limits<int>::max())
        usageError(std::string(flag) + " must be between " +
                   std::to_string(min_value) + " and " +
                   std::to_string(std::numeric_limits<int>::max()));
    return static_cast<int>(v);
}

/** Parse a seed flag: any non-negative 64-bit value. */
std::uint64_t
parseSeed(const char *flag, const char *value)
{
    const std::int64_t v = parseInt(flag, value);
    if (v < 0)
        usageError(std::string(flag) + " must be >= 0");
    return static_cast<std::uint64_t>(v);
}

/**
 * Consume the shared observability flag at argv[i], if it is one:
 * --trace-out <file>, --metrics-out <file>, --progress <mode>, and —
 * for the commands with a stderr summary line — --quiet. Returns
 * true (with @p i advanced past any value) when the flag was
 * consumed; false means "not ours", so the caller's parser keeps
 * going and unknown-option errors stay per-command.
 */
bool
parseObsFlag(int argc, char **argv, int &i, ObsFlags *out,
             bool allow_quiet)
{
    const std::string a = argv[i];
    const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (a == "--trace-out") {
        if (!next)
            usageError("--trace-out needs a file path");
        out->trace_out = next;
        ++i;
        return true;
    }
    if (a == "--metrics-out") {
        if (!next)
            usageError("--metrics-out needs a file path");
        out->metrics_out = next;
        ++i;
        return true;
    }
    if (a == "--progress") {
        if (!next)
            usageError("--progress needs a mode (jsonl)");
        if (std::string(next) != "jsonl")
            usageError("unknown progress mode: " + std::string(next) +
                       " (expected jsonl)");
        out->progress_jsonl = true;
        ++i;
        return true;
    }
    if (allow_quiet && a == "--quiet") {
        out->quiet = true;
        return true;
    }
    return false;
}

/** Parse a --sym-input value: `name` or `name=lo..hi`. */
rt::SymInputSpec
parseSymInput(const char *value)
{
    if (!value)
        usageError("--sym-input needs a value");
    std::string v = value;
    rt::SymInputSpec s;
    std::size_t eq = v.find('=');
    if (eq == std::string::npos) {
        s.name = v;
    } else {
        s.name = v.substr(0, eq);
        std::string range = v.substr(eq + 1);
        std::size_t dots = range.find("..");
        if (dots == std::string::npos)
            usageError("--sym-input range must be lo..hi: " + v);
        const std::string lo = range.substr(0, dots);
        const std::string hi = range.substr(dots + 2);
        s.has_range = true;
        s.lo = parseInt("--sym-input", lo.c_str());
        s.hi = parseInt("--sym-input", hi.c_str());
        if (s.lo > s.hi)
            usageError("--sym-input: empty range: " + v);
    }
    if (s.name.empty())
        usageError("--sym-input needs an input name");
    return s;
}

/** Parse the shared option tail of `run` / `classify`. */
CliOptions
parseOptions(int argc, char **argv, int start)
{
    CliOptions cli;
    // The CLI defaults to one classification worker per hardware
    // thread (the library default stays sequential for embedders).
    cli.opts.jobs = 0;
    for (int i = start; i < argc; ++i) {
        if (parseObsFlag(argc, argv, i, &cli.obs, false))
            continue;
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--json") {
            cli.json = true;
        } else if (a == "--stats") {
            cli.stats = true;
        } else if (a == "--no-multi-path") {
            cli.opts.multi_path = false;
        } else if (a == "--no-multi-schedule") {
            cli.opts.multi_schedule = false;
        } else if (a == "--no-adhoc") {
            cli.opts.adhoc_detection = false;
        } else if (a == "--k") {
            cli.k = parseCount("--k", next, 1);
            ++i;
        } else if (a == "--mp") {
            cli.opts.mp = parseCount("--mp", next, 1);
            ++i;
        } else if (a == "--ma") {
            cli.opts.ma = parseCount("--ma", next, 1);
            ++i;
        } else if (a == "--sym-input") {
            cli.opts.sym_inputs.push_back(parseSymInput(next));
            ++i;
        } else if (a == "--explore") {
            cli.opts.explore = parseExploreMode(next);
            ++i;
        } else if (a == "--jobs") {
            cli.opts.jobs = parseCount("--jobs", next, 1);
            ++i;
        } else if (a == "--class") {
            if (!next)
                usageError("--class needs a value");
            cli.only_class = core::raceClassFromName(next);
            if (!cli.only_class)
                usageError("unknown race class: " + std::string(next) +
                           " (paper spelling, e.g. \"spec violated\")");
            ++i;
        } else if (a == "--seed") {
            cli.opts.detection_seed = parseSeed("--seed", next);
            ++i;
        } else if (a == "--detector") {
            if (!next)
                usageError("--detector needs a value");
            std::string d = next;
            if (d == "hb")
                cli.opts.detector = core::DetectorKind::HappensBefore;
            else if (d == "hb-nomutex")
                cli.opts.detector =
                    core::DetectorKind::HappensBeforeNoMutex;
            else if (d == "lockset")
                cli.opts.detector = core::DetectorKind::Lockset;
            else
                usageError("unknown detector: " + d);
            ++i;
        } else {
            usageError("unknown option: " + a);
        }
    }
    // The Fig. 10 dial: k maps onto Mp with Ma following.
    if (cli.k > 0) {
        cli.opts.mp = cli.k;
        cli.opts.ma = cli.k >= 5 ? 2 : 1;
        cli.opts.multi_path = cli.k > 1;
        cli.opts.multi_schedule = cli.k >= 5;
    }
    return cli;
}

workloads::Workload
loadWorkload(const std::string &name)
{
    std::vector<std::string> names = workloads::workloadNames();
    for (const auto &n : workloads::extensionWorkloadNames())
        names.push_back(n);
    bool known = false;
    for (const auto &n : names)
        known = known || n == name;
    if (!known)
        usageError("unknown workload: " + name);
    return workloads::buildWorkload(name);
}

/**
 * Wrap a serialized PIL file (a corpus entry's program.pil, a user
 * program) as an ad-hoc workload so it runs through the standard
 * pipeline. Deserialization verifies the program structurally; a
 * malformed file is a usage error, never a crash.
 */
workloads::Workload
loadProgramFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        usageError("cannot open file: " + path);
    std::ostringstream os;
    os << is.rdbuf();
    std::string error;
    std::optional<ir::Program> prog =
        ir::deserializeProgram(os.str(), &error);
    if (!prog)
        usageError(path + ": " + error);
    workloads::Workload w;
    w.name = prog->name.empty() ? path : prog->name;
    w.language = "PIL";
    w.program = std::move(*prog);
    return w;
}

/** Install a workload's semantic predicates (e.g. fmm timestamps). */
void
applyWorkloadConfig(const workloads::Workload &w, core::PortendOptions &o)
{
    o.semantic_predicates = w.semantic_predicates;
}

/** Workload + pipeline result (rendering selects --class itself). */
struct PipelineRun
{
    workloads::Workload workload;
    core::PortendResult result;
};

/** The shared run/classify tail: configure and run. */
PipelineRun
runPipelineOn(workloads::Workload workload, CliOptions &cli)
{
    PipelineRun p;
    p.workload = std::move(workload);
    applyWorkloadConfig(p.workload, cli.opts);
    core::Portend tool(p.workload.program, cli.opts);
    p.result = tool.run();
    return p;
}

/** The shared run/classify preamble: load, configure, run. */
PipelineRun
runPipeline(const std::string &name, CliOptions &cli)
{
    return runPipelineOn(loadWorkload(name), cli);
}

/** The library RenderMode equivalent of the parsed flags. */
core::RenderMode
renderModeOf(const CliOptions &cli, bool classify_mode)
{
    core::RenderMode m;
    m.json = cli.json;
    m.stats = cli.stats;
    m.classify_mode = classify_mode;
    m.only_class = cli.only_class;
    return m;
}

int
cmdList()
{
    std::printf("%-10s %-8s %8s %8s %8s\n", "name", "lang", "loc",
                "threads", "races");
    std::vector<std::string> names = workloads::workloadNames();
    for (const auto &n : workloads::extensionWorkloadNames())
        names.push_back(n);
    for (const std::string &name : names) {
        workloads::Workload w = workloads::buildWorkload(name);
        std::printf("%-10s %-8s %8d %8d %8zu\n", name.c_str(),
                    w.language.c_str(), w.paper_loc, w.forked_threads,
                    w.expected.size());
    }
    return 0;
}

int
cmdRun(const std::string &name, bool classify_mode, CliOptions cli)
{
    installObsSinks(cli.obs.trace_out, cli.obs.metrics_out,
                    cli.obs.progress_jsonl, false);
    PipelineRun p = runPipeline(name, cli);
    std::fputs(core::renderPipelineReport(
                   p.workload.name, p.workload.program, p.result,
                   cli.opts.mp, cli.opts.ma,
                   renderModeOf(cli, classify_mode))
                   .c_str(),
               stdout);
    return writeObsOutputs(cli.obs.trace_out, cli.obs.metrics_out,
                           p.result.metrics);
}

/** `run --file` / `classify --file`: the pipeline over a PIL file. */
int
cmdRunFile(const std::string &path, bool classify_mode,
           CliOptions cli)
{
    installObsSinks(cli.obs.trace_out, cli.obs.metrics_out,
                    cli.obs.progress_jsonl, false);
    PipelineRun p = runPipelineOn(loadProgramFile(path), cli);
    std::fputs(core::renderPipelineReport(
                   p.workload.name, p.workload.program, p.result,
                   cli.opts.mp, cli.opts.ma,
                   renderModeOf(cli, classify_mode))
                   .c_str(),
               stdout);
    return writeObsOutputs(cli.obs.trace_out, cli.obs.metrics_out,
                           p.result.metrics);
}

/** The campaign configuration the parsed flags describe. */
campaign::CampaignConfig
campaignConfigOf(const CliOptions &cli, bool classify_mode)
{
    campaign::CampaignConfig config;
    config.analysis = cli.opts;
    config.render = renderModeOf(cli, classify_mode);
    config.units = campaign::registryUnits();
    return config;
}

/**
 * Batch mode over the full registry — a thin wrapper over the
 * campaign engine since the campaign refactor: an *ephemeral*
 * campaign (no directory, so no journal and no persistent cache)
 * whose unit fan-out, in-order merge, and rendered bytes are exactly
 * the engine's. `portend campaign run <dir>` is the same call with a
 * directory attached.
 */
int
cmdBatch(bool classify_mode, CliOptions cli)
{
    installObsSinks(cli.obs.trace_out, cli.obs.metrics_out,
                    cli.obs.progress_jsonl, false);
    campaign::Campaign engine(campaignConfigOf(cli, classify_mode));
    campaign::CampaignResult res = engine.run(-1, cli.opts.jobs);
    const int obs_rc = writeObsOutputs(
        cli.obs.trace_out, cli.obs.metrics_out, res.metrics);
    if (!res.error.empty()) {
        std::fprintf(stderr, "portend: %s\n", res.error.c_str());
        return 1;
    }
    std::fputs(res.mergedOutput(cli.json).c_str(), stdout);
    return obs_rc;
}

/** `portend campaign run|resume|status <dir>`. */
int
cmdCampaign(int argc, char **argv)
{
    if (argc < 4)
        usageError("usage: portend campaign run|resume|status <dir>");
    const std::string sub = argv[2];
    const std::string dir = argv[3];

    if (sub == "status") {
        if (argc > 4)
            usageError("campaign status takes only <dir>");
        std::string err;
        std::optional<campaign::Campaign> c =
            campaign::Campaign::open(dir, &err);
        if (!c) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            return 2;
        }
        campaign::Campaign::Status st = c->status();
        std::printf("campaign: %s\n", dir.c_str());
        std::printf("  units: %zu/%zu complete\n", st.completed_units,
                    st.total_units);
        std::printf("  cache entries: %zu\n", st.cache_entries);
        if (st.journal_torn)
            std::printf("  journal: %d torn record(s) tolerated\n",
                        st.journal_torn);
        return st.completed_units == st.total_units ? 0 : 3;
    }
    if (sub != "run" && sub != "resume")
        usageError("unknown campaign subcommand: " + sub);

    // --abort-after is campaign-only, so it is peeled off before the
    // remaining flags reach the shared parsers.
    int abort_after = -1;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--abort-after") == 0) {
            abort_after = parseCount(
                "--abort-after",
                i + 1 < argc ? argv[i + 1] : nullptr, 0);
            ++i;
        } else {
            rest.push_back(argv[i]);
        }
    }
    const int rest_argc = static_cast<int>(rest.size());

    std::string err;
    std::optional<campaign::Campaign> c;
    CliOptions cli;
    if (sub == "run") {
        cli = parseOptions(rest_argc, rest.data(), 1);
        c = campaign::Campaign::create(
            dir, campaignConfigOf(cli, true), &err);
    } else {
        // Resume takes no analysis flags: the manifest is the only
        // source of configuration, so a resumed campaign can never
        // drift from the run that started it.
        cli.opts.jobs = 0;
        for (int i = 1; i < rest_argc; ++i) {
            if (parseObsFlag(rest_argc, rest.data(), i, &cli.obs,
                             false))
                continue;
            if (std::strcmp(rest[i], "--jobs") == 0) {
                cli.opts.jobs = parseCount(
                    "--jobs",
                    i + 1 < rest_argc ? rest[i + 1] : nullptr, 1);
                ++i;
            } else {
                usageError("unknown campaign resume option: " +
                           std::string(rest[i]));
            }
        }
        c = campaign::Campaign::open(dir, &err);
    }
    if (!c) {
        std::fprintf(stderr, "portend: %s\n", err.c_str());
        return 2;
    }

    installObsSinks(cli.obs.trace_out, cli.obs.metrics_out,
                    cli.obs.progress_jsonl, false);
    campaign::CampaignResult res = c->run(abort_after, cli.opts.jobs);
    const int obs_rc = writeObsOutputs(
        cli.obs.trace_out, cli.obs.metrics_out, res.metrics);
    if (!res.error.empty()) {
        std::fprintf(stderr, "portend: %s\n", res.error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "campaign: %zu unit(s): %d executed, %d cache "
                 "hit(s), %d resumed from journal\n",
                 res.units.size(), res.executed, res.cache_hits,
                 res.resume_skips);
    if (res.aborted) {
        std::fprintf(stderr,
                     "campaign: aborted by --abort-after; resume "
                     "with `portend campaign resume %s`\n",
                     dir.c_str());
        return 3;
    }
    std::fputs(res.mergedOutput(c->config().render.json).c_str(),
               stdout);
    return obs_rc;
}

/**
 * `portend fuzz`: run a campaign. The deterministic summary goes to
 * stdout (acceptance diffs it byte-for-byte between runs); the
 * wall-clock line goes to stderr so timing never breaks determinism.
 */
int
cmdFuzz(int argc, char **argv)
{
    fuzz::FuzzOptions fo;
    fo.jobs = 0; // CLI default: one worker per hardware thread
    bool budget_given = false;
    ObsFlags obs;
    for (int i = 2; i < argc; ++i) {
        if (parseObsFlag(argc, argv, i, &obs, true))
            continue;
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--budget") {
            fo.budget = parseCount("--budget", next, 1);
            budget_given = true;
            ++i;
        } else if (a == "--seconds") {
            fo.seconds = static_cast<double>(
                parseCount("--seconds", next, 1));
            ++i;
        } else if (a == "--fuzz-seed") {
            fo.fuzz_seed = parseSeed("--fuzz-seed", next);
            ++i;
        } else if (a == "--seed") {
            fo.detection_seed = parseSeed("--seed", next);
            ++i;
        } else if (a == "--jobs") {
            fo.jobs = parseCount("--jobs", next, 1);
            ++i;
        } else if (a == "--corpus") {
            if (!next)
                usageError("--corpus needs a directory");
            fo.corpus_dir = next;
            ++i;
        } else if (a == "--campaign") {
            if (!next)
                usageError("--campaign needs a directory");
            fo.campaign_dir = next;
            ++i;
        } else {
            usageError("unknown fuzz option: " + a);
        }
    }
    if (budget_given && fo.seconds > 0)
        usageError("--budget and --seconds are mutually exclusive");

    // The collector is always on for fuzz (the end-of-run summary
    // reads it); the campaign summary on stdout stays byte-stable, so
    // the metrics line joins the wall-clock line on stderr.
    installObsSinks(obs.trace_out, obs.metrics_out,
                    obs.progress_jsonl, true);
    fuzz::FuzzResult res = fuzz::runFuzz(fo);
    std::fputs(res.summaryText().c_str(), stdout);

    obs::MetricsShard m;
    g_collector.drainInto(m);
    if (!obs.quiet) {
        std::fprintf(
            stderr,
            "metrics: fuzz.programs=%llu fuzz.flagged=%llu "
            "interp.runs=%llu interp.steps=%llu "
            "sym.solver_queries=%llu\n",
            static_cast<unsigned long long>(
                m.counter(obs::Counter::FuzzPrograms)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::FuzzFlagged)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpRuns)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpSteps)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::SolverQueries)));
    }
    const int obs_rc = writeObsOutputs(obs.trace_out, obs.metrics_out,
                                       obs::MetricsShard{});
    std::fprintf(stderr, "wall-clock: %.2fs (%d jobs)\n", res.seconds,
                 ThreadPool::resolveJobs(fo.jobs));
    if (obs_rc != 0)
        return obs_rc;
    return res.clean() ? 0 : 1;
}

/** `portend corpus run <dir>`: replay a reproducer corpus. */
int
cmdCorpusRun(const std::string &dir, fuzz::OracleOptions opts,
             const ObsFlags &obs_flags)
{
    const bool quiet = obs_flags.quiet;
    // Collector on by default: the one-line summary below is the
    // corpus counterpart of the fuzz metrics line (stderr, so the
    // PASS/FAIL stdout stays byte-stable).
    installObsSinks(obs_flags.trace_out, obs_flags.metrics_out,
                    obs_flags.progress_jsonl, true);
    fuzz::CorpusRunResult res = fuzz::runCorpus(dir, opts);
    if (res.total == 0) {
        std::fprintf(stderr,
                     "portend: no corpus entries under %s\n",
                     dir.c_str());
        return 2;
    }
    for (const fuzz::ReplayOutcome &o : res.outcomes) {
        if (o.ok)
            std::printf("PASS %s\n", o.name.c_str());
        else
            std::printf("FAIL %s: %s\n", o.name.c_str(),
                        o.detail.c_str());
    }
    std::printf("corpus: %d/%d green\n", res.passed, res.total);
    obs::MetricsShard corpus_shard;
    corpus_shard.add(obs::Counter::CorpusEntries,
                     static_cast<std::uint64_t>(res.total));
    corpus_shard.add(obs::Counter::CorpusPassed,
                     static_cast<std::uint64_t>(res.passed));
    corpus_shard.add(obs::Counter::CorpusFailed,
                     static_cast<std::uint64_t>(res.total - res.passed));
    if (!quiet) {
        obs::MetricsShard m = corpus_shard;
        g_collector.drainInto(m);
        std::fprintf(
            stderr,
            "metrics: corpus.entries=%llu corpus.passed=%llu "
            "corpus.failed=%llu interp.runs=%llu interp.steps=%llu\n",
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusEntries)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusPassed)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusFailed)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpRuns)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpSteps)));
    }
    const int obs_rc = writeObsOutputs(
        obs_flags.trace_out, obs_flags.metrics_out, corpus_shard);
    if (obs_rc != 0)
        return obs_rc;
    return res.allGreen() ? 0 : 1;
}

/**
 * Strip a leading `--dispatch <mode>` pair (valid before any
 * command) and install the mode process-wide, so every interpreter
 * the pipeline spawns — detection, replay, alternate schedules,
 * symbolic exploration — uses the same loop.
 */
void
applyDispatchFlag(int &argc, char **argv)
{
    if (argc < 3 || std::strcmp(argv[1], "--dispatch") != 0)
        return;
    const std::string mode = argv[2];
    if (mode == "auto") {
        rt::setDefaultDispatchMode(rt::DispatchMode::Auto);
    } else if (mode == "switch") {
        rt::setDefaultDispatchMode(rt::DispatchMode::Switch);
    } else if (mode == "threaded") {
        // Fail loudly: a CI lane asking for the threaded loop must
        // not silently measure the switch fallback.
        if (!rt::threadedDispatchAvailable())
            usageError("--dispatch threaded: computed-goto dispatch "
                       "not compiled in on this toolchain");
        rt::setDefaultDispatchMode(rt::DispatchMode::Threaded);
    } else {
        usageError("unknown dispatch mode: " + mode +
                   " (expected switch, threaded, or auto)");
    }
    for (int i = 3; i <= argc; ++i)
        argv[i - 2] = argv[i]; // includes the trailing nullptr
    argc -= 2;
}

// ---------------------------------------------------------------------------
// serve / submit: the multi-process sharded triage server
// ---------------------------------------------------------------------------

serve::Server *g_serve_server = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (g_serve_server)
        g_serve_server->stop();
}

int
cmdServe(int argc, char **argv)
{
    if (argc < 3 || argv[2][0] == '-')
        usageError("serve needs a state directory");
    serve::ServeOptions so;
    so.dir = argv[2];
    bool endpoint_given = false;
    ObsFlags obs_flags;
    for (int i = 3; i < argc; ++i) {
        if (parseObsFlag(argc, argv, i, &obs_flags, false))
            continue;
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--workers") {
            so.workers = parseCount("--workers", next, 1);
            ++i;
        } else if (a == "--socket") {
            if (!next)
                usageError("--socket needs a path");
            so.socket_path = next;
            endpoint_given = true;
            ++i;
        } else if (a == "--port") {
            so.port = parseCount("--port", next, 0);
            if (so.port > 65535)
                usageError("--port must be <= 65535");
            endpoint_given = true;
            ++i;
        } else if (a == "--max-restarts") {
            so.max_worker_restarts =
                parseCount("--max-restarts", next, 0);
            ++i;
        } else if (a == "--attempts") {
            so.max_unit_attempts = parseCount("--attempts", next, 1);
            ++i;
        } else if (a == "--unit-timeout") {
            so.unit_timeout_seconds = static_cast<double>(
                parseCount("--unit-timeout", next, 1));
            ++i;
        } else if (a == "--kill-after") {
            so.kill_worker_after =
                parseCount("--kill-after", next, 0);
            ++i;
        } else if (a == "--max-submissions") {
            so.max_submissions =
                parseCount("--max-submissions", next, 1);
            ++i;
        } else {
            usageError("unknown serve option: " + a);
        }
    }
    if (!endpoint_given)
        usageError("serve needs --socket <path> or --port <N>");
    if (!so.socket_path.empty() && so.port != 0)
        usageError("--socket and --port are mutually exclusive");

    installObsSinks(obs_flags.trace_out, obs_flags.metrics_out,
                    obs_flags.progress_jsonl, false);
    serve::Server server(so);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "portend: %s\n", err.c_str());
        return 1;
    }
    // Announce the endpoint on stdout so scripts (and the CI smoke)
    // can scrape it, then serve until a shutdown request or signal.
    if (!so.socket_path.empty())
        std::printf("serving on %s\n", so.socket_path.c_str());
    else
        std::printf("serving on port %d\n", server.boundPort());
    std::fflush(stdout);
    g_serve_server = &server;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);
    const int rc = server.loop();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_serve_server = nullptr;
    const int obs_rc =
        writeObsOutputs(obs_flags.trace_out, obs_flags.metrics_out,
                        obs::MetricsShard{});
    return rc != 0 ? rc : obs_rc;
}

int
cmdSubmit(int argc, char **argv)
{
    serve::Endpoint ep;
    enum class Action { Submit, Status, Shutdown, Ping };
    Action action = Action::Submit;
    // Peel endpoint/action flags; everything else is a standard
    // analysis flag and goes into the submitted manifest.
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--socket") {
            if (!next)
                usageError("--socket needs a path");
            ep.socket_path = next;
            ++i;
        } else if (a == "--port") {
            ep.port = parseCount("--port", next, 1);
            if (ep.port > 65535)
                usageError("--port must be <= 65535");
            ++i;
        } else if (a == "--timeout") {
            ep.connect_timeout_seconds = static_cast<double>(
                parseCount("--timeout", next, 1));
            ++i;
        } else if (a == "--status") {
            action = Action::Status;
        } else if (a == "--shutdown") {
            action = Action::Shutdown;
        } else if (a == "--ping") {
            action = Action::Ping;
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (ep.socket_path.empty() && ep.port == 0)
        usageError("submit needs --socket <path> or --port <N>");

    std::string err;
    if (action == Action::Status) {
        std::string json;
        if (!serve::requestStatus(ep, &json, &err)) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            return 1;
        }
        std::printf("%s\n", json.c_str());
        return 0;
    }
    if (action == Action::Shutdown) {
        if (!serve::requestShutdown(ep, &err)) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            return 1;
        }
        return 0;
    }
    if (action == Action::Ping) {
        if (!serve::ping(ep, &err)) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }

    CliOptions cli = parseOptions(static_cast<int>(rest.size()),
                                  rest.data(), 1);
    const std::string manifest =
        campaign::manifestText(campaignConfigOf(cli, true));
    std::string out;
    if (!serve::submit(ep, manifest, &out, &err)) {
        std::fprintf(stderr, "portend: %s\n", err.c_str());
        return 1;
    }
    std::fputs(out.c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    applyDispatchFlag(argc, argv);
    if (argc < 2) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (cmd == "list") {
        if (argc > 2)
            usageError("list takes no arguments");
        return cmdList();
    }
    if (cmd == "run" || cmd == "classify") {
        const bool classify_mode = cmd == "classify";
        if (argc >= 3 && std::strcmp(argv[2], "--all") == 0) {
            CliOptions cli = parseOptions(argc, argv, 3);
            return cmdBatch(classify_mode, cli);
        }
        if (argc >= 3 && std::strcmp(argv[2], "--file") == 0) {
            if (argc < 4 || argv[3][0] == '-')
                usageError("--file needs a path to a .pil program");
            CliOptions cli = parseOptions(argc, argv, 4);
            return cmdRunFile(argv[3], classify_mode, cli);
        }
        if (argc < 3 || argv[2][0] == '-')
            usageError(cmd +
                       " needs a workload name (or --all, --file)");
        CliOptions cli = parseOptions(argc, argv, 3);
        return cmdRun(argv[2], classify_mode, cli);
    }
    if (cmd == "campaign")
        return cmdCampaign(argc, argv);
    if (cmd == "serve")
        return cmdServe(argc, argv);
    if (cmd == "submit")
        return cmdSubmit(argc, argv);
    if (cmd == "fuzz")
        return cmdFuzz(argc, argv);
    if (cmd == "corpus") {
        if (argc < 4 || std::strcmp(argv[2], "run") != 0)
            usageError("usage: portend corpus run <dir>");
        fuzz::OracleOptions opts;
        ObsFlags obs_flags;
        for (int i = 4; i < argc; ++i) {
            if (parseObsFlag(argc, argv, i, &obs_flags, true))
                continue;
            std::string a = argv[i];
            if (a == "--explore") {
                opts.explore = parseExploreMode(
                    i + 1 < argc ? argv[i + 1] : nullptr);
                ++i;
            } else {
                usageError("unknown corpus option: " + a);
            }
        }
        return cmdCorpusRun(argv[3], opts, obs_flags);
    }
    usageError("unknown command: " + cmd);
}
