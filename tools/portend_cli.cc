/**
 * @file
 * `portend` command-line driver: runs the full Fig. 2 pipeline
 * (record + detect, then multi-path multi-schedule classification)
 * over any workload registered in the benchmark suite, and renders
 * the verdicts either as the paper's Fig. 6 debugging-aid report or
 * as JSON for downstream tooling.
 *
 * The help text below is kept in sync with docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "portend/classify.h"
#include "portend/portend.h"
#include "rt/vmstate.h"
#include "support/str.h"
#include "workloads/registry.h"

namespace {

using namespace portend;

// Keep this text byte-identical with the Usage section of
// docs/CLI.md.
const char kUsage[] =
    R"(portend - tell data races apart from data race bugs (ASPLOS 2012)

Usage:
  portend list                          list registered workloads
  portend run <workload> [options]      detect and classify every race
  portend classify <workload> [options] classify with an explicit k budget
  portend --help                        print this help

Workloads:
  pbzip2  ctrace  memcached  sqlite  ocean  fmm  bbuf  avv  dcl  dbm  rw
  (run `portend list` for the Table 1 metadata of each)

Options:
  --k <N>              path x schedule witness budget: sets Mp = N,
                       Ma = 2 when N >= 5 (else 1), and enables
                       multi-path at N > 1, multi-schedule at N >= 5
  --mp <N>             primary paths explored (Mp, default 5)
  --ma <N>             alternate schedules per primary (Ma, default 2)
  --seed <N>           detection-run schedule seed (default 1)
  --detector <name>    hb | hb-nomutex | lockset (default hb)
  --class <name>       only report races of this class (paper
                       spelling, e.g. "spec violated")
  --no-multi-path      disable multi-path analysis (stage 2)
  --no-multi-schedule  disable multi-schedule analysis (stage 3)
  --no-adhoc           disable ad-hoc synchronization detection
  --json               emit a JSON report instead of the Fig. 6 text

Race classes (paper Fig. 1):
  spec violated        an ordering crashes, deadlocks, or hangs
  output differs       orderings can produce different program output
  k-witness harmless   k path x schedule witnesses saw equal output
  single ordering      only one ordering is possible (ad-hoc sync)
)";

struct CliOptions
{
    core::PortendOptions opts;
    bool json = false;
    int k = 0; ///< 0 = not given
    std::optional<core::RaceClass> only_class; ///< --class filter
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "portend: %s\n(try `portend --help`)\n",
                 msg.c_str());
    std::exit(2);
}

std::int64_t
parseInt(const char *flag, const char *value)
{
    if (!value)
        usageError(std::string(flag) + " needs a value");
    char *end = nullptr;
    long long v = std::strtoll(value, &end, 10);
    if (!end || end == value || *end != '\0')
        usageError(std::string(flag) + ": not a number: " + value);
    return v;
}

/** Parse the shared option tail of `run` / `classify`. */
CliOptions
parseOptions(int argc, char **argv, int start)
{
    CliOptions cli;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--json") {
            cli.json = true;
        } else if (a == "--no-multi-path") {
            cli.opts.multi_path = false;
        } else if (a == "--no-multi-schedule") {
            cli.opts.multi_schedule = false;
        } else if (a == "--no-adhoc") {
            cli.opts.adhoc_detection = false;
        } else if (a == "--k") {
            cli.k = static_cast<int>(parseInt("--k", next));
            if (cli.k < 1)
                usageError("--k must be >= 1");
            ++i;
        } else if (a == "--mp") {
            cli.opts.mp = static_cast<int>(parseInt("--mp", next));
            if (cli.opts.mp < 1)
                usageError("--mp must be >= 1");
            ++i;
        } else if (a == "--ma") {
            cli.opts.ma = static_cast<int>(parseInt("--ma", next));
            if (cli.opts.ma < 1)
                usageError("--ma must be >= 1");
            ++i;
        } else if (a == "--class") {
            if (!next)
                usageError("--class needs a value");
            cli.only_class = core::raceClassFromName(next);
            if (!cli.only_class)
                usageError("unknown race class: " + std::string(next) +
                           " (paper spelling, e.g. \"spec violated\")");
            ++i;
        } else if (a == "--seed") {
            cli.opts.detection_seed =
                static_cast<std::uint64_t>(parseInt("--seed", next));
            ++i;
        } else if (a == "--detector") {
            if (!next)
                usageError("--detector needs a value");
            std::string d = next;
            if (d == "hb")
                cli.opts.detector = core::DetectorKind::HappensBefore;
            else if (d == "hb-nomutex")
                cli.opts.detector =
                    core::DetectorKind::HappensBeforeNoMutex;
            else if (d == "lockset")
                cli.opts.detector = core::DetectorKind::Lockset;
            else
                usageError("unknown detector: " + d);
            ++i;
        } else {
            usageError("unknown option: " + a);
        }
    }
    // The Fig. 10 dial: k maps onto Mp with Ma following.
    if (cli.k > 0) {
        cli.opts.mp = cli.k;
        cli.opts.ma = cli.k >= 5 ? 2 : 1;
        cli.opts.multi_path = cli.k > 1;
        cli.opts.multi_schedule = cli.k >= 5;
    }
    return cli;
}

workloads::Workload
loadWorkload(const std::string &name)
{
    std::vector<std::string> names = workloads::workloadNames();
    bool known = false;
    for (const auto &n : names)
        known = known || n == name;
    if (!known)
        usageError("unknown workload: " + name);
    return workloads::buildWorkload(name);
}

/** Install a workload's semantic predicates (e.g. fmm timestamps). */
void
applyWorkloadConfig(const workloads::Workload &w, core::PortendOptions &o)
{
    o.semantic_predicates = w.semantic_predicates;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Workload + pipeline result + the reports passing --class. */
struct PipelineRun
{
    workloads::Workload workload;
    core::PortendResult result;
    std::vector<const core::PortendReport *> selected;
};

/** The shared run/classify preamble: load, configure, run, filter. */
PipelineRun
runPipeline(const std::string &name, CliOptions &cli)
{
    PipelineRun p;
    p.workload = loadWorkload(name);
    applyWorkloadConfig(p.workload, cli.opts);
    core::Portend tool(p.workload.program, cli.opts);
    p.result = tool.run();
    for (const core::PortendReport &r : p.result.reports)
        if (!cli.only_class || r.classification.cls == *cli.only_class)
            p.selected.push_back(&r);
    return p;
}

void
printJson(const workloads::Workload &w, const core::PortendResult &res,
          const std::vector<const core::PortendReport *> &reports)
{
    std::printf("{\n  \"workload\": \"%s\",\n",
                jsonEscape(w.name).c_str());
    std::printf("  \"detection\": {\n");
    std::printf("    \"outcome\": \"%s\",\n",
                rt::runOutcomeName(res.detection.outcome));
    std::printf("    \"dynamic_races\": %zu,\n",
                res.detection.dynamic_races);
    std::printf("    \"distinct_races\": %zu,\n",
                res.detection.clusters.size());
    std::printf("    \"steps\": %llu\n",
                static_cast<unsigned long long>(res.detection.steps));
    std::printf("  },\n  \"reports\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const core::PortendReport &r = *reports[i];
        const core::Classification &c = r.classification;
        std::printf("    {\n");
        std::printf("      \"cell\": \"%s\",\n",
                    jsonEscape(w.program.cellName(
                                   r.cluster.representative.cell))
                        .c_str());
        std::printf("      \"instances\": %d,\n", r.cluster.instances);
        std::printf("      \"class\": \"%s\",\n",
                    core::raceClassName(c.cls));
        std::printf("      \"violation\": \"%s\",\n",
                    core::violationKindName(c.viol));
        std::printf("      \"k\": %d,\n", c.k);
        std::printf("      \"states_differ\": %s,\n",
                    c.states_differ ? "true" : "false");
        std::printf("      \"detail\": \"%s\"\n",
                    jsonEscape(c.detail).c_str());
        std::printf("    }%s\n", i + 1 < reports.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
printSummary(const core::PortendResult &res)
{
    std::printf("summary: %zu distinct race(s), %zu dynamic "
                "instance(s)\n",
                res.detection.clusters.size(),
                res.detection.dynamic_races);
    for (core::RaceClass c : core::kAllRaceClasses) {
        std::size_t n = res.byClass(c).size();
        if (n)
            std::printf("  %-20s %zu\n", core::raceClassName(c), n);
    }
}

int
cmdList()
{
    std::printf("%-10s %-8s %8s %8s %8s\n", "name", "lang", "loc",
                "threads", "races");
    for (const std::string &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        std::printf("%-10s %-8s %8d %8d %8zu\n", name.c_str(),
                    w.language.c_str(), w.paper_loc, w.forked_threads,
                    w.expected.size());
    }
    return 0;
}

int
cmdRun(const std::string &name, CliOptions cli)
{
    PipelineRun p = runPipeline(name, cli);
    if (cli.json) {
        printJson(p.workload, p.result, p.selected);
        return 0;
    }
    std::printf("== portend run: %s ==\n", p.workload.name.c_str());
    for (const core::PortendReport *r : p.selected)
        std::printf("%s\n",
                    core::formatReport(p.workload.program, *r).c_str());
    printSummary(p.result);
    return 0;
}

int
cmdClassify(const std::string &name, CliOptions cli)
{
    PipelineRun p = runPipeline(name, cli);
    if (cli.json) {
        printJson(p.workload, p.result, p.selected);
        return 0;
    }
    std::printf("== portend classify: %s (Mp=%d, Ma=%d) ==\n",
                p.workload.name.c_str(), cli.opts.mp, cli.opts.ma);
    std::printf("%-24s %-20s %6s %10s\n", "cell", "class", "k",
                "instances");
    for (const core::PortendReport *r : p.selected) {
        std::printf("%-24s %-20s %6d %10d\n",
                    p.workload.program
                        .cellName(r->cluster.representative.cell)
                        .c_str(),
                    core::raceClassName(r->classification.cls),
                    r->classification.k, r->cluster.instances);
    }
    printSummary(p.result);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (cmd == "list") {
        if (argc > 2)
            usageError("list takes no arguments");
        return cmdList();
    }
    if (cmd == "run" || cmd == "classify") {
        if (argc < 3 || argv[2][0] == '-')
            usageError(cmd + " needs a workload name");
        CliOptions cli = parseOptions(argc, argv, 3);
        return cmd == "run" ? cmdRun(argv[2], cli)
                            : cmdClassify(argv[2], cli);
    }
    usageError("unknown command: " + cmd);
}
