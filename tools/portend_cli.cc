/**
 * @file
 * `portend` command-line driver: runs the full Fig. 2 pipeline
 * (record + detect, then multi-path multi-schedule classification)
 * over any workload registered in the benchmark suite, and renders
 * the verdicts either as the paper's Fig. 6 debugging-aid report or
 * as JSON for downstream tooling.
 *
 * The help text below is kept in sync with docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "ir/serialize.h"
#include "portend/classify.h"
#include "portend/portend.h"
#include "rt/interpreter.h"
#include "rt/vmstate.h"
#include "support/observe.h"
#include "support/str.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "workloads/registry.h"

namespace {

using namespace portend;

// Keep this text byte-identical with the Usage section of
// docs/CLI.md.
const char kUsage[] =
    R"(portend - tell data races apart from data race bugs (ASPLOS 2012)

Usage:
  portend list                          list registered workloads
  portend run <workload> [options]      detect and classify every race
  portend run --all [options]           whole registry, one report each
  portend run --file <prog.pil> [options]    same pipeline on a PIL file
  portend classify <workload> [options] classify with an explicit k budget
  portend classify --all [options]      whole registry, compact tables
  portend classify --file <prog.pil> [options]   compact table for a file
  portend fuzz [options]                generate racy PIL programs, cross-
                                        check detectors and classifier,
                                        minimize and store reproducers
  portend corpus run <dir> [--explore <name>] [--quiet]
                                        replay a reproducer corpus
  portend --help                        print this help

Workloads:
  pbzip2  ctrace  memcached  sqlite  ocean  fmm  bbuf  avv  dcl  dbm  rw
  input-sensitive extensions (classify with --sym-input): ibuf  iguard
  (run `portend list` for the Table 1 metadata of each)

Options:
  --k <N>              path x schedule witness budget: sets Mp = N,
                       Ma = 2 when N >= 5 (else 1), and enables
                       multi-path at N > 1, multi-schedule at N >= 5
  --mp <N>             primary paths explored (Mp, default 5)
  --ma <N>             alternate-schedule budget per primary (Ma,
                       default 2): distinct post-race interleavings
                       under the dpor explorer, plain run count
                       under random
  --explore <name>     stage-3 schedule explorer: "dpor" enumerates
                       bounded-preemption interleavings, prunes
                       Mazurkiewicz-equivalent ones, and spends Ma
                       on provably distinct schedules; "random" is
                       the legacy seeded sampler (default dpor)
  --jobs <N>           worker threads for classification, batch mode,
                       and fuzzing (default: one per hardware
                       thread); results are identical for every N
  --seed <N>           detection-run schedule seed (default 1)
  --detector <name>    hb | hb-nomutex | lockset (default hb)
  --class <name>       only report races of this class (paper
                       spelling, e.g. "spec violated")
  --sym-input <name>[=lo..hi]
                       make the named program input symbolic during
                       multi-path analysis (repeatable). Only
                       matching inputs fork paths; a decisive
                       verdict records a solver-concretized witness
                       value per symbolic input, and an explicit
                       lo..hi overrides the input's declared domain
  --no-multi-path      disable multi-path analysis (stage 2)
  --no-multi-schedule  disable multi-schedule analysis (stage 3)
  --no-adhoc           disable ad-hoc synchronization detection
  --json               emit a JSON report instead of the Fig. 6 text
  --stats              append the interpreter ledger of the detection
                       run: dispatch mode, decoded sites, events
                       batched, COW pages unshared, values boxed
  --dispatch <mode>    interpreter dispatch loop for every execution
                       in the process: "threaded" (computed-goto,
                       error where unsupported), "switch" (portable),
                       or "auto" (threaded when available; default).
                       Accepted before any command

Observability options (run, classify, fuzz):
  --trace-out <file>   write a Chrome trace-event JSON timeline of
                       the run: replay, ladder-fork, DPOR-candidate,
                       sym-path-fork, and solver spans with nested
                       parents per thread (open in chrome://tracing
                       or Perfetto)
  --metrics-out <file> write the merged metrics-registry JSON
                       (portend-metrics-v1). Counters, gauges, and
                       histograms only — no timing, no worker
                       counts — so the bytes are identical across
                       --jobs values and across runs
  --progress <mode>    stream JSON-lines telemetry to stderr while
                       the pipeline runs; the only mode is "jsonl"
                       (one event per classified cluster, explored
                       schedule, and fuzz iteration)
  --quiet              suppress the end-of-run metrics summary line
                       of `fuzz` and `corpus run`

Fuzzing options (portend fuzz):
  --budget <N>         programs to generate (default 200); with a
                       fixed --fuzz-seed the campaign is
                       deterministic: summary and corpus bytes are
                       byte-identical on every run and --jobs value
  --seconds <S>        wall-clock box instead of --budget (program
                       count then depends on the host)
  --fuzz-seed <N>      program-generation seed (default 1); --seed
                       stays the detection schedule seed, so the two
                       vary independently
  --corpus <dir>       write minimized reproducers here (replay them
                       with `portend corpus run <dir>`)

Race classes (paper Fig. 1):
  spec violated        an ordering crashes, deadlocks, or hangs
  output differs       orderings can produce different program output
  k-witness harmless   k path x schedule witnesses saw equal output
  single ordering      only one ordering is possible (ad-hoc sync)
)";

struct CliOptions
{
    core::PortendOptions opts;
    bool json = false;
    bool stats = false; ///< append the interpreter ledger
    int k = 0; ///< 0 = not given
    std::optional<core::RaceClass> only_class; ///< --class filter
    std::string trace_out;   ///< --trace-out file ("" = off)
    std::string metrics_out; ///< --metrics-out file ("" = off)
    bool progress_jsonl = false; ///< --progress jsonl
};

// ---------------------------------------------------------------------------
// Observability sinks. One set per process: installed from the CLI
// flags before the pipeline runs, drained into files afterwards.
// ---------------------------------------------------------------------------

obs::Collector g_collector;
std::optional<obs::Tracer> g_tracer;
std::optional<obs::Progress> g_progress;

/** Install the process-wide sinks requested by the flags. */
void
installObsSinks(const std::string &trace_out,
                const std::string &metrics_out, bool progress_jsonl,
                bool force_collector)
{
    if (!trace_out.empty()) {
        g_tracer.emplace();
        obs::setTracer(&*g_tracer);
    }
    if (force_collector || !metrics_out.empty())
        obs::setCollector(&g_collector);
    if (progress_jsonl) {
        g_progress.emplace(std::cerr);
        obs::setProgress(&*g_progress);
    }
}

/**
 * Write the observability outputs. `pipeline` carries the shards the
 * pipelines threaded through their result structs (merged in registry
 * order by the caller); the collector contributes everything bumped
 * globally (interpreter runs, solver queries, path forks, ...).
 * Returns 0, or 1 if a file could not be written.
 */
int
writeObsOutputs(const std::string &trace_out,
                const std::string &metrics_out,
                const obs::MetricsShard &pipeline)
{
    int rc = 0;
    if (!metrics_out.empty()) {
        obs::MetricsShard total = pipeline;
        g_collector.drainInto(total);
        std::ofstream f(metrics_out, std::ios::binary);
        if (f)
            f << obs::metricsJson(total);
        if (!f) {
            std::fprintf(stderr, "portend: cannot write %s\n",
                         metrics_out.c_str());
            rc = 1;
        }
    }
    if (!trace_out.empty()) {
        std::string err;
        if (!g_tracer->writeFile(trace_out, &err)) {
            std::fprintf(stderr, "portend: %s\n", err.c_str());
            rc = 1;
        }
    }
    return rc;
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "portend: %s\n(try `portend --help`)\n",
                 msg.c_str());
    std::exit(2);
}

/** Parse an --explore value; usage error on anything unknown. */
explore::ExploreMode
parseExploreMode(const char *value)
{
    if (!value)
        usageError("--explore needs a value");
    std::string e = value;
    if (e == "dpor")
        return explore::ExploreMode::Dpor;
    if (e == "random")
        return explore::ExploreMode::Random;
    usageError("unknown explorer: " + e +
               " (expected dpor or random)");
}

std::int64_t
parseInt(const char *flag, const char *value)
{
    if (!value)
        usageError(std::string(flag) + " needs a value");
    char *end = nullptr;
    long long v = std::strtoll(value, &end, 10);
    if (!end || end == value || *end != '\0')
        usageError(std::string(flag) + ": not a number: " + value);
    return v;
}

/** Parse a --sym-input value: `name` or `name=lo..hi`. */
rt::SymInputSpec
parseSymInput(const char *value)
{
    if (!value)
        usageError("--sym-input needs a value");
    std::string v = value;
    rt::SymInputSpec s;
    std::size_t eq = v.find('=');
    if (eq == std::string::npos) {
        s.name = v;
    } else {
        s.name = v.substr(0, eq);
        std::string range = v.substr(eq + 1);
        std::size_t dots = range.find("..");
        if (dots == std::string::npos)
            usageError("--sym-input range must be lo..hi: " + v);
        const std::string lo = range.substr(0, dots);
        const std::string hi = range.substr(dots + 2);
        s.has_range = true;
        s.lo = parseInt("--sym-input", lo.c_str());
        s.hi = parseInt("--sym-input", hi.c_str());
        if (s.lo > s.hi)
            usageError("--sym-input: empty range: " + v);
    }
    if (s.name.empty())
        usageError("--sym-input needs an input name");
    return s;
}

/** Parse the shared option tail of `run` / `classify`. */
CliOptions
parseOptions(int argc, char **argv, int start)
{
    CliOptions cli;
    // The CLI defaults to one classification worker per hardware
    // thread (the library default stays sequential for embedders).
    cli.opts.jobs = 0;
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--json") {
            cli.json = true;
        } else if (a == "--stats") {
            cli.stats = true;
        } else if (a == "--no-multi-path") {
            cli.opts.multi_path = false;
        } else if (a == "--no-multi-schedule") {
            cli.opts.multi_schedule = false;
        } else if (a == "--no-adhoc") {
            cli.opts.adhoc_detection = false;
        } else if (a == "--k") {
            cli.k = static_cast<int>(parseInt("--k", next));
            if (cli.k < 1)
                usageError("--k must be >= 1");
            ++i;
        } else if (a == "--mp") {
            cli.opts.mp = static_cast<int>(parseInt("--mp", next));
            if (cli.opts.mp < 1)
                usageError("--mp must be >= 1");
            ++i;
        } else if (a == "--ma") {
            cli.opts.ma = static_cast<int>(parseInt("--ma", next));
            if (cli.opts.ma < 1)
                usageError("--ma must be >= 1");
            ++i;
        } else if (a == "--sym-input") {
            cli.opts.sym_inputs.push_back(parseSymInput(next));
            ++i;
        } else if (a == "--explore") {
            cli.opts.explore = parseExploreMode(next);
            ++i;
        } else if (a == "--jobs") {
            cli.opts.jobs =
                static_cast<int>(parseInt("--jobs", next));
            if (cli.opts.jobs < 1)
                usageError("--jobs must be >= 1");
            ++i;
        } else if (a == "--class") {
            if (!next)
                usageError("--class needs a value");
            cli.only_class = core::raceClassFromName(next);
            if (!cli.only_class)
                usageError("unknown race class: " + std::string(next) +
                           " (paper spelling, e.g. \"spec violated\")");
            ++i;
        } else if (a == "--seed") {
            cli.opts.detection_seed =
                static_cast<std::uint64_t>(parseInt("--seed", next));
            ++i;
        } else if (a == "--trace-out") {
            if (!next)
                usageError("--trace-out needs a file path");
            cli.trace_out = next;
            ++i;
        } else if (a == "--metrics-out") {
            if (!next)
                usageError("--metrics-out needs a file path");
            cli.metrics_out = next;
            ++i;
        } else if (a == "--progress") {
            if (!next)
                usageError("--progress needs a mode (jsonl)");
            if (std::string(next) != "jsonl")
                usageError("unknown progress mode: " +
                           std::string(next) + " (expected jsonl)");
            cli.progress_jsonl = true;
            ++i;
        } else if (a == "--detector") {
            if (!next)
                usageError("--detector needs a value");
            std::string d = next;
            if (d == "hb")
                cli.opts.detector = core::DetectorKind::HappensBefore;
            else if (d == "hb-nomutex")
                cli.opts.detector =
                    core::DetectorKind::HappensBeforeNoMutex;
            else if (d == "lockset")
                cli.opts.detector = core::DetectorKind::Lockset;
            else
                usageError("unknown detector: " + d);
            ++i;
        } else {
            usageError("unknown option: " + a);
        }
    }
    // The Fig. 10 dial: k maps onto Mp with Ma following.
    if (cli.k > 0) {
        cli.opts.mp = cli.k;
        cli.opts.ma = cli.k >= 5 ? 2 : 1;
        cli.opts.multi_path = cli.k > 1;
        cli.opts.multi_schedule = cli.k >= 5;
    }
    return cli;
}

workloads::Workload
loadWorkload(const std::string &name)
{
    std::vector<std::string> names = workloads::workloadNames();
    for (const auto &n : workloads::extensionWorkloadNames())
        names.push_back(n);
    bool known = false;
    for (const auto &n : names)
        known = known || n == name;
    if (!known)
        usageError("unknown workload: " + name);
    return workloads::buildWorkload(name);
}

/**
 * Wrap a serialized PIL file (a corpus entry's program.pil, a user
 * program) as an ad-hoc workload so it runs through the standard
 * pipeline. Deserialization verifies the program structurally; a
 * malformed file is a usage error, never a crash.
 */
workloads::Workload
loadProgramFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        usageError("cannot open file: " + path);
    std::ostringstream os;
    os << is.rdbuf();
    std::string error;
    std::optional<ir::Program> prog =
        ir::deserializeProgram(os.str(), &error);
    if (!prog)
        usageError(path + ": " + error);
    workloads::Workload w;
    w.name = prog->name.empty() ? path : prog->name;
    w.language = "PIL";
    w.program = std::move(*prog);
    return w;
}

/** Install a workload's semantic predicates (e.g. fmm timestamps). */
void
applyWorkloadConfig(const workloads::Workload &w, core::PortendOptions &o)
{
    o.semantic_predicates = w.semantic_predicates;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Workload + pipeline result + the reports passing --class. */
struct PipelineRun
{
    workloads::Workload workload;
    core::PortendResult result;
    std::vector<const core::PortendReport *> selected;
};

/** The shared run/classify tail: configure, run, filter. */
PipelineRun
runPipelineOn(workloads::Workload workload, CliOptions &cli)
{
    PipelineRun p;
    p.workload = std::move(workload);
    applyWorkloadConfig(p.workload, cli.opts);
    core::Portend tool(p.workload.program, cli.opts);
    p.result = tool.run();
    for (const core::PortendReport &r : p.result.reports)
        if (!cli.only_class || r.classification.cls == *cli.only_class)
            p.selected.push_back(&r);
    return p;
}

/** The shared run/classify preamble: load, configure, run, filter. */
PipelineRun
runPipeline(const std::string &name, CliOptions &cli)
{
    return runPipelineOn(loadWorkload(name), cli);
}

/**
 * One workload's JSON object (no trailing newline, so batch mode
 * can join objects into an array).
 */
std::string
jsonReport(const workloads::Workload &w, const core::PortendResult &res,
           const std::vector<const core::PortendReport *> &reports,
           bool stats)
{
    std::ostringstream os;
    os << "{\n  \"workload\": \"" << jsonEscape(w.name) << "\",\n";
    os << "  \"detection\": {\n";
    os << "    \"outcome\": \""
       << rt::runOutcomeName(res.detection.outcome) << "\",\n";
    os << "    \"dynamic_races\": " << res.detection.dynamic_races
       << ",\n";
    os << "    \"distinct_races\": " << res.detection.clusters.size()
       << ",\n";
    os << "    \"steps\": " << res.detection.steps;
    // Opt-in so the golden classify --json bytes stay stable. Since
    // PR 8 the numbers are the detection run's registry view, not the
    // raw VmStats fields — same values, one source of truth.
    if (stats) {
        const core::DetectionResult &d = res.detection;
        const obs::MetricsShard &m = d.metrics;
        os << ",\n    \"interp\": {\"dispatch\": \"" << d.dispatch
           << "\", \"decoded_sites\": "
           << m.gauge(obs::Gauge::DecodedSites)
           << ", \"events_batched\": "
           << m.counter(obs::Counter::DetectEventsBatched)
           << ", \"pages_unshared\": "
           << m.counter(obs::Counter::DetectPagesUnshared)
           << ", \"values_boxed\": "
           << m.counter(obs::Counter::DetectValuesBoxed) << "}";
    }
    os << "\n  },\n  \"reports\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const core::PortendReport &r = *reports[i];
        const core::Classification &c = r.classification;
        os << "    {\n";
        os << "      \"cell\": \""
           << jsonEscape(
                  w.program.cellName(r.cluster.representative.cell))
           << "\",\n";
        os << "      \"instances\": " << r.cluster.instances << ",\n";
        os << "      \"class\": \"" << core::raceClassName(c.cls)
           << "\",\n";
        os << "      \"violation\": \""
           << core::violationKindName(c.viol) << "\",\n";
        os << "      \"k\": " << c.k << ",\n";
        os << "      \"states_differ\": "
           << (c.states_differ ? "true" : "false") << ",\n";
        os << "      \"witness\": [";
        for (std::size_t j = 0; j < c.evidence_witness.size(); ++j) {
            const core::WitnessInput &wi = c.evidence_witness[j];
            os << (j ? ", " : "") << "{\"name\": \""
               << jsonEscape(wi.name) << "\", \"value\": " << wi.value
               << "}";
        }
        os << "],\n";
        os << "      \"distinct_schedules\": "
           << c.stats.distinct_schedules << ",\n";
        os << "      \"signature\": \""
           << jsonEscape(c.evidence_signature) << "\",\n";
        os << "      \"detail\": \"" << jsonEscape(c.detail)
           << "\"\n";
        os << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "  ]\n}";
    return os.str();
}

/** The --stats interpreter ledger of the detection run (a view over
 *  the registry shard; dispatch mode is the one non-metric field). */
std::string
statsText(const core::DetectionResult &d)
{
    const obs::MetricsShard &m = d.metrics;
    std::ostringstream os;
    os << "interpreter: dispatch=" << d.dispatch
       << " decoded_sites=" << m.gauge(obs::Gauge::DecodedSites)
       << " events_batched="
       << m.counter(obs::Counter::DetectEventsBatched)
       << " pages_unshared="
       << m.counter(obs::Counter::DetectPagesUnshared)
       << " values_boxed="
       << m.counter(obs::Counter::DetectValuesBoxed) << "\n";
    return os.str();
}

std::string
summaryText(const core::PortendResult &res)
{
    std::ostringstream os;
    os << "summary: " << res.detection.clusters.size()
       << " distinct race(s), " << res.detection.dynamic_races
       << " dynamic instance(s)\n";
    for (core::RaceClass c : core::kAllRaceClasses) {
        std::size_t n = res.byClass(c).size();
        if (n) {
            os << "  " << std::left << std::setw(20)
               << core::raceClassName(c) << ' ' << n << "\n";
        }
    }
    return os.str();
}

/** The Fig. 6 text rendering of one `portend run` pipeline. */
std::string
runText(const PipelineRun &p)
{
    std::ostringstream os;
    os << "== portend run: " << p.workload.name << " ==\n";
    for (const core::PortendReport *r : p.selected)
        os << core::formatReport(p.workload.program, *r) << "\n";
    os << summaryText(p.result);
    return os.str();
}

/** The compact table rendering of one `portend classify` pipeline. */
std::string
classifyText(const PipelineRun &p, const CliOptions &cli)
{
    std::ostringstream os;
    os << "== portend classify: " << p.workload.name << " (Mp="
       << cli.opts.mp << ", Ma=" << cli.opts.ma << ") ==\n";
    os << std::left << std::setw(24) << "cell" << ' ' << std::setw(20)
       << "class" << ' ' << std::right << std::setw(6) << "k" << ' '
       << std::setw(10) << "instances" << "\n";
    for (const core::PortendReport *r : p.selected) {
        os << std::left << std::setw(24)
           << p.workload.program.cellName(
                  r->cluster.representative.cell)
           << ' ' << std::setw(20)
           << core::raceClassName(r->classification.cls) << ' '
           << std::right << std::setw(6) << r->classification.k
           << ' ' << std::setw(10) << r->cluster.instances << "\n";
    }
    os << summaryText(p.result);
    return os.str();
}

int
cmdList()
{
    std::printf("%-10s %-8s %8s %8s %8s\n", "name", "lang", "loc",
                "threads", "races");
    std::vector<std::string> names = workloads::workloadNames();
    for (const auto &n : workloads::extensionWorkloadNames())
        names.push_back(n);
    for (const std::string &name : names) {
        workloads::Workload w = workloads::buildWorkload(name);
        std::printf("%-10s %-8s %8d %8d %8zu\n", name.c_str(),
                    w.language.c_str(), w.paper_loc, w.forked_threads,
                    w.expected.size());
    }
    return 0;
}

/** Render one workload's pipeline under the chosen mode. The
 *  pipeline's metrics shard is handed back through `metrics` so the
 *  caller can merge shards in a deterministic order for
 *  --metrics-out (rendering order and merge order must both be
 *  registry order, never completion order). */
std::string
renderPipeline(const std::string &name, bool classify_mode,
               const CliOptions &cli, obs::MetricsShard *metrics)
{
    CliOptions mine = cli; // workload predicates are per-task state
    PipelineRun p = runPipeline(name, mine);
    if (metrics)
        *metrics = p.result.metrics;
    if (mine.json)
        return jsonReport(p.workload, p.result, p.selected,
                          mine.stats) +
               "\n";
    std::string out = classify_mode ? classifyText(p, mine)
                                    : runText(p);
    if (mine.stats)
        out += statsText(p.result.detection);
    return out;
}

int
cmdRun(const std::string &name, bool classify_mode, CliOptions cli)
{
    installObsSinks(cli.trace_out, cli.metrics_out,
                    cli.progress_jsonl, false);
    obs::MetricsShard metrics;
    std::fputs(
        renderPipeline(name, classify_mode, cli, &metrics).c_str(),
        stdout);
    return writeObsOutputs(cli.trace_out, cli.metrics_out, metrics);
}

/** `run --file` / `classify --file`: the pipeline over a PIL file. */
int
cmdRunFile(const std::string &path, bool classify_mode,
           CliOptions cli)
{
    installObsSinks(cli.trace_out, cli.metrics_out,
                    cli.progress_jsonl, false);
    PipelineRun p = runPipelineOn(loadProgramFile(path), cli);
    std::string out = cli.json
                          ? jsonReport(p.workload, p.result,
                                       p.selected, cli.stats) +
                                "\n"
                          : (classify_mode ? classifyText(p, cli)
                                           : runText(p));
    if (!cli.json && cli.stats)
        out += statsText(p.result.detection);
    std::fputs(out.c_str(), stdout);
    return writeObsOutputs(cli.trace_out, cli.metrics_out,
                           p.result.metrics);
}

/**
 * Batch mode over the full registry: whole workload pipelines are
 * the scheduler's unit of parallelism here (each inner pipeline runs
 * its clusters sequentially to avoid oversubscription), and every
 * rendered report is buffered and printed in registry order, so the
 * bytes on stdout never depend on --jobs.
 */
int
cmdBatch(bool classify_mode, CliOptions cli)
{
    installObsSinks(cli.trace_out, cli.metrics_out,
                    cli.progress_jsonl, false);
    const std::vector<std::string> names = workloads::workloadNames();
    const int jobs = ThreadPool::resolveJobs(cli.opts.jobs);
    CliOptions inner = cli;
    inner.opts.jobs = 1;

    std::vector<std::string> rendered(names.size());
    std::vector<obs::MetricsShard> shards(names.size());
    ThreadPool::parallelFor(jobs, names.size(), [&] {
        return [&](std::size_t i) {
            rendered[i] = renderPipeline(names[i], classify_mode,
                                         inner, &shards[i]);
        };
    });
    // Merge in registry order after the join, so --metrics-out bytes
    // never depend on which worker finished first.
    obs::MetricsShard metrics;
    for (const obs::MetricsShard &s : shards)
        metrics.merge(s);
    const int obs_rc =
        writeObsOutputs(cli.trace_out, cli.metrics_out, metrics);

    if (cli.json) {
        std::fputs("[\n", stdout);
        for (std::size_t i = 0; i < rendered.size(); ++i) {
            // Strip the object's trailing newline to place the comma.
            std::string obj = rendered[i];
            if (!obj.empty() && obj.back() == '\n')
                obj.pop_back();
            std::fputs(obj.c_str(), stdout);
            std::fputs(i + 1 < rendered.size() ? ",\n" : "\n",
                       stdout);
        }
        std::fputs("]\n", stdout);
        return obs_rc;
    }
    for (std::size_t i = 0; i < rendered.size(); ++i) {
        if (i)
            std::fputs("\n", stdout);
        std::fputs(rendered[i].c_str(), stdout);
    }
    return obs_rc;
}

/**
 * `portend fuzz`: run a campaign. The deterministic summary goes to
 * stdout (acceptance diffs it byte-for-byte between runs); the
 * wall-clock line goes to stderr so timing never breaks determinism.
 */
int
cmdFuzz(int argc, char **argv)
{
    fuzz::FuzzOptions fo;
    fo.jobs = 0; // CLI default: one worker per hardware thread
    bool budget_given = false;
    std::string trace_out;
    std::string metrics_out;
    bool progress_jsonl = false;
    bool quiet = false;
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--trace-out") {
            if (!next)
                usageError("--trace-out needs a file path");
            trace_out = next;
            ++i;
        } else if (a == "--metrics-out") {
            if (!next)
                usageError("--metrics-out needs a file path");
            metrics_out = next;
            ++i;
        } else if (a == "--progress") {
            if (!next || std::string(next) != "jsonl")
                usageError("--progress needs the mode jsonl");
            progress_jsonl = true;
            ++i;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--budget") {
            fo.budget = static_cast<int>(parseInt("--budget", next));
            if (fo.budget < 1)
                usageError("--budget must be >= 1");
            budget_given = true;
            ++i;
        } else if (a == "--seconds") {
            fo.seconds =
                static_cast<double>(parseInt("--seconds", next));
            if (fo.seconds <= 0)
                usageError("--seconds must be >= 1");
            ++i;
        } else if (a == "--fuzz-seed") {
            fo.fuzz_seed = static_cast<std::uint64_t>(
                parseInt("--fuzz-seed", next));
            ++i;
        } else if (a == "--seed") {
            fo.detection_seed =
                static_cast<std::uint64_t>(parseInt("--seed", next));
            ++i;
        } else if (a == "--jobs") {
            fo.jobs = static_cast<int>(parseInt("--jobs", next));
            if (fo.jobs < 1)
                usageError("--jobs must be >= 1");
            ++i;
        } else if (a == "--corpus") {
            if (!next)
                usageError("--corpus needs a directory");
            fo.corpus_dir = next;
            ++i;
        } else {
            usageError("unknown fuzz option: " + a);
        }
    }
    if (budget_given && fo.seconds > 0)
        usageError("--budget and --seconds are mutually exclusive");

    // The collector is always on for fuzz (the end-of-run summary
    // reads it); the campaign summary on stdout stays byte-stable, so
    // the metrics line joins the wall-clock line on stderr.
    installObsSinks(trace_out, metrics_out, progress_jsonl, true);
    fuzz::FuzzResult res = fuzz::runFuzz(fo);
    std::fputs(res.summaryText().c_str(), stdout);

    obs::MetricsShard m;
    g_collector.drainInto(m);
    if (!quiet) {
        std::fprintf(
            stderr,
            "metrics: fuzz.programs=%llu fuzz.flagged=%llu "
            "interp.runs=%llu interp.steps=%llu "
            "sym.solver_queries=%llu\n",
            static_cast<unsigned long long>(
                m.counter(obs::Counter::FuzzPrograms)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::FuzzFlagged)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpRuns)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpSteps)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::SolverQueries)));
    }
    const int obs_rc =
        writeObsOutputs(trace_out, metrics_out, obs::MetricsShard{});
    std::fprintf(stderr, "wall-clock: %.2fs (%d jobs)\n", res.seconds,
                 ThreadPool::resolveJobs(fo.jobs));
    if (obs_rc != 0)
        return obs_rc;
    return res.clean() ? 0 : 1;
}

/** `portend corpus run <dir>`: replay a reproducer corpus. */
int
cmdCorpusRun(const std::string &dir, fuzz::OracleOptions opts,
             bool quiet)
{
    // Collector on by default: the one-line summary below is the
    // corpus counterpart of the fuzz metrics line (stderr, so the
    // PASS/FAIL stdout stays byte-stable).
    obs::setCollector(&g_collector);
    fuzz::CorpusRunResult res = fuzz::runCorpus(dir, opts);
    if (res.total == 0) {
        std::fprintf(stderr,
                     "portend: no corpus entries under %s\n",
                     dir.c_str());
        return 2;
    }
    for (const fuzz::ReplayOutcome &o : res.outcomes) {
        if (o.ok)
            std::printf("PASS %s\n", o.name.c_str());
        else
            std::printf("FAIL %s: %s\n", o.name.c_str(),
                        o.detail.c_str());
    }
    std::printf("corpus: %d/%d green\n", res.passed, res.total);
    if (!quiet) {
        obs::MetricsShard m;
        m.add(obs::Counter::CorpusEntries,
              static_cast<std::uint64_t>(res.total));
        m.add(obs::Counter::CorpusPassed,
              static_cast<std::uint64_t>(res.passed));
        m.add(obs::Counter::CorpusFailed,
              static_cast<std::uint64_t>(res.total - res.passed));
        g_collector.drainInto(m);
        std::fprintf(
            stderr,
            "metrics: corpus.entries=%llu corpus.passed=%llu "
            "corpus.failed=%llu interp.runs=%llu interp.steps=%llu\n",
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusEntries)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusPassed)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::CorpusFailed)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpRuns)),
            static_cast<unsigned long long>(
                m.counter(obs::Counter::InterpSteps)));
    }
    return res.allGreen() ? 0 : 1;
}

/**
 * Strip a leading `--dispatch <mode>` pair (valid before any
 * command) and install the mode process-wide, so every interpreter
 * the pipeline spawns — detection, replay, alternate schedules,
 * symbolic exploration — uses the same loop.
 */
void
applyDispatchFlag(int &argc, char **argv)
{
    if (argc < 3 || std::strcmp(argv[1], "--dispatch") != 0)
        return;
    const std::string mode = argv[2];
    if (mode == "auto") {
        rt::setDefaultDispatchMode(rt::DispatchMode::Auto);
    } else if (mode == "switch") {
        rt::setDefaultDispatchMode(rt::DispatchMode::Switch);
    } else if (mode == "threaded") {
        // Fail loudly: a CI lane asking for the threaded loop must
        // not silently measure the switch fallback.
        if (!rt::threadedDispatchAvailable())
            usageError("--dispatch threaded: computed-goto dispatch "
                       "not compiled in on this toolchain");
        rt::setDefaultDispatchMode(rt::DispatchMode::Threaded);
    } else {
        usageError("unknown dispatch mode: " + mode +
                   " (expected switch, threaded, or auto)");
    }
    for (int i = 3; i <= argc; ++i)
        argv[i - 2] = argv[i]; // includes the trailing nullptr
    argc -= 2;
}

} // namespace

int
main(int argc, char **argv)
{
    applyDispatchFlag(argc, argv);
    if (argc < 2) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (cmd == "list") {
        if (argc > 2)
            usageError("list takes no arguments");
        return cmdList();
    }
    if (cmd == "run" || cmd == "classify") {
        const bool classify_mode = cmd == "classify";
        if (argc >= 3 && std::strcmp(argv[2], "--all") == 0) {
            CliOptions cli = parseOptions(argc, argv, 3);
            return cmdBatch(classify_mode, cli);
        }
        if (argc >= 3 && std::strcmp(argv[2], "--file") == 0) {
            if (argc < 4 || argv[3][0] == '-')
                usageError("--file needs a path to a .pil program");
            CliOptions cli = parseOptions(argc, argv, 4);
            return cmdRunFile(argv[3], classify_mode, cli);
        }
        if (argc < 3 || argv[2][0] == '-')
            usageError(cmd +
                       " needs a workload name (or --all, --file)");
        CliOptions cli = parseOptions(argc, argv, 3);
        return cmdRun(argv[2], classify_mode, cli);
    }
    if (cmd == "fuzz")
        return cmdFuzz(argc, argv);
    if (cmd == "corpus") {
        if (argc < 4 || std::strcmp(argv[2], "run") != 0)
            usageError("usage: portend corpus run <dir>");
        fuzz::OracleOptions opts;
        bool quiet = false;
        for (int i = 4; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--explore") {
                opts.explore = parseExploreMode(
                    i + 1 < argc ? argv[i + 1] : nullptr);
                ++i;
            } else if (a == "--quiet") {
                quiet = true;
            } else {
                usageError("unknown corpus option: " + a);
            }
        }
        return cmdCorpusRun(argv[3], opts, quiet);
    }
    usageError("unknown command: " + cmd);
}
