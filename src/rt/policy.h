/**
 * @file
 * Thread scheduling policies.
 *
 * The interpreter is a single-processor cooperative scheduler (paper
 * §3.1/§6): at every preemption point it asks its SchedulePolicy
 * which runnable thread runs next. Policies also observe the event
 * stream, which is how the replayer enforces racy-access orderings.
 */

#ifndef PORTEND_RT_POLICY_H
#define PORTEND_RT_POLICY_H

#include <cstdint>
#include <utility>
#include <vector>

#include "rt/events.h"
#include "rt/vmstate.h"

namespace portend::rt {

/**
 * Scheduling decision provider.
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /**
     * Choose the next thread to run.
     *
     * @param state     current VM state
     * @param runnable  non-empty ascending list of runnable tids
     * @return a tid from @p runnable, or -1 to abort the execution
     *         (reported as RunOutcome::Aborted)
     */
    virtual ThreadId pick(const VmState &state,
                          const std::vector<ThreadId> &runnable) = 0;

    /** Observe an event (default: ignore). */
    virtual void onEvent(const Event &ev) { (void)ev; }
};

/**
 * Run the current thread as long as possible; otherwise the lowest
 * runnable tid. Deterministic; the default for plain execution.
 */
class FifoPolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        for (ThreadId t : runnable) {
            if (t == state.current)
                return t;
        }
        return runnable.front();
    }
};

/**
 * Uniformly random choice at every preemption point, from the seeded
 * RNG carried in the VM state (so forks replay deterministically).
 */
class RandomPolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        // The RNG lives in the state; pick() is conceptually part of
        // the execution, so we cast away the observer constness here
        // deliberately (documented exception).
        auto &rng = const_cast<VmState &>(state).rng;
        return runnable[rng.below(runnable.size())];
    }
};

/**
 * Round-robin rotation at every preemption point: always yields to
 * the next runnable thread after the current one. Maximizes
 * interleaving for race *detection* runs.
 */
class RotatePolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        for (ThreadId t : runnable) {
            if (t > state.current)
                return t;
        }
        return runnable.front();
    }
};

/**
 * What one guided (or observed) execution actually did: the raw
 * material for dependence analysis between schedules. Every
 * scheduling decision is recorded with the runnable set it chose
 * from, and every observable event is mapped onto a *site* — the
 * accessed cell for memory events, a pseudo-site for sync objects,
 * thread lifecycle, and outputs — so two events conflict iff they
 * touch the same site and at least one writes it (or share a
 * thread, i.e. program order).
 */
struct ScheduleObservation
{
    /** One observed event, reduced to its dependence footprint. */
    struct Access
    {
        ThreadId tid = -1;
        int site = 0;     ///< cell id, or a negative pseudo-site
        bool write = false;
        int pick = -1;    ///< index of the decision that scheduled
                          ///< the segment containing this event
                          ///< (-1: before the first observed pick)
    };

    std::vector<Access> accesses;

    /** Chosen thread per decision point, in decision order. */
    std::vector<ThreadId> picks;

    /** Runnable set offered at each decision point. */
    std::vector<std::vector<ThreadId>> enabled;

    bool empty() const { return accesses.empty() && picks.empty(); }

    /** Dependence footprint of one event (see struct comment). */
    static Access
    accessOf(const Event &ev, int pick)
    {
        Access a;
        a.tid = ev.tid;
        a.pick = pick;
        switch (ev.kind) {
          case EventKind::MemRead:
            a.site = ev.cell;
            a.write = false;
            break;
          case EventKind::MemWrite:
            a.site = ev.cell;
            a.write = true;
            break;
          case EventKind::MutexLock:
          case EventKind::MutexUnlock:
          case EventKind::CondWait:
          case EventKind::CondSignal:
          case EventKind::BarrierWait:
            // All operations on one sync object conflict.
            a.site = -(2 + ev.sid);
            a.write = true;
            break;
          case EventKind::ThreadCreate:
          case EventKind::ThreadJoin:
            // Lifecycle events order against the peer thread.
            a.site = -(100000 + ev.other);
            a.write = true;
            break;
          case EventKind::ThreadStart:
          case EventKind::ThreadExit:
            a.site = -(100000 + ev.tid);
            a.write = true;
            break;
          case EventKind::Output:
            // One console: cross-thread output order is observable.
            a.site = -1;
            a.write = true;
            break;
        }
        return a;
    }

    /** True when two accesses may not be reordered. */
    static bool
    dependent(const Access &a, const Access &b)
    {
        return a.tid == b.tid ||
               (a.site == b.site && (a.write || b.write));
    }
};

/**
 * Replays an explorer-issued schedule: consumes an explicit list of
 * thread choices at successive preemption points, then delegates to
 * a fallback policy, recording everything it saw either way. A
 * guided run is fully deterministic (deterministic fallback assumed;
 * a seeded RandomPolicy fallback is deterministic per seed), so any
 * schedule the explorer found interesting replays from its prefix
 * alone — this is what makes explorer evidence replayable.
 *
 * The prefix is consumed by this policy instance's own cursor, not
 * the VM state, so construct a fresh GuidedPolicy per run.
 */
class GuidedPolicy : public SchedulePolicy
{
  public:
    /**
     * @param prefix   thread to schedule at the first, second, ...
     *                 decision point this policy is consulted for
     * @param fallback decision maker past the prefix (non-owning);
     *                 also consulted when a prefix thread is not
     *                 runnable (a diverged replay)
     */
    GuidedPolicy(std::vector<ThreadId> prefix, SchedulePolicy *fallback)
        : prefix(std::move(prefix)), fallback(fallback)
    {}

    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        const std::size_t idx = obs.picks.size();
        ThreadId chosen = -2;
        if (idx < prefix.size()) {
            for (ThreadId t : runnable) {
                if (t == prefix[idx])
                    chosen = t;
            }
        }
        if (chosen == -2)
            chosen = fallback->pick(state, runnable);
        obs.enabled.push_back(runnable);
        obs.picks.push_back(chosen);
        return chosen;
    }

    void
    onEvent(const Event &ev) override
    {
        obs.accesses.push_back(ScheduleObservation::accessOf(
            ev, static_cast<int>(obs.picks.size()) - 1));
        fallback->onEvent(ev);
    }

    /** Everything this run did, for explorer feedback. */
    const ScheduleObservation &observation() const { return obs; }

    /** Move the observation out (the policy is dead afterwards). */
    ScheduleObservation takeObservation() { return std::move(obs); }

  private:
    std::vector<ThreadId> prefix;
    SchedulePolicy *fallback;
    ScheduleObservation obs;
};

} // namespace portend::rt

#endif // PORTEND_RT_POLICY_H
