/**
 * @file
 * Thread scheduling policies.
 *
 * The interpreter is a single-processor cooperative scheduler (paper
 * §3.1/§6): at every preemption point it asks its SchedulePolicy
 * which runnable thread runs next. Policies also observe the event
 * stream, which is how the replayer enforces racy-access orderings.
 */

#ifndef PORTEND_RT_POLICY_H
#define PORTEND_RT_POLICY_H

#include <vector>

#include "rt/events.h"
#include "rt/vmstate.h"

namespace portend::rt {

/**
 * Scheduling decision provider.
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /**
     * Choose the next thread to run.
     *
     * @param state     current VM state
     * @param runnable  non-empty ascending list of runnable tids
     * @return a tid from @p runnable, or -1 to abort the execution
     *         (reported as RunOutcome::Aborted)
     */
    virtual ThreadId pick(const VmState &state,
                          const std::vector<ThreadId> &runnable) = 0;

    /** Observe an event (default: ignore). */
    virtual void onEvent(const Event &ev) { (void)ev; }
};

/**
 * Run the current thread as long as possible; otherwise the lowest
 * runnable tid. Deterministic; the default for plain execution.
 */
class FifoPolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        for (ThreadId t : runnable) {
            if (t == state.current)
                return t;
        }
        return runnable.front();
    }
};

/**
 * Uniformly random choice at every preemption point, from the seeded
 * RNG carried in the VM state (so forks replay deterministically).
 */
class RandomPolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        // The RNG lives in the state; pick() is conceptually part of
        // the execution, so we cast away the observer constness here
        // deliberately (documented exception).
        auto &rng = const_cast<VmState &>(state).rng;
        return runnable[rng.below(runnable.size())];
    }
};

/**
 * Round-robin rotation at every preemption point: always yields to
 * the next runnable thread after the current one. Maximizes
 * interleaving for race *detection* runs.
 */
class RotatePolicy : public SchedulePolicy
{
  public:
    ThreadId
    pick(const VmState &state,
         const std::vector<ThreadId> &runnable) override
    {
        for (ThreadId t : runnable) {
            if (t > state.current)
                return t;
        }
        return runnable.front();
    }
};

} // namespace portend::rt

#endif // PORTEND_RT_POLICY_H
