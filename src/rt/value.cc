#include "rt/value.h"

namespace portend::rt {

namespace {
thread_local std::uint64_t g_values_boxed = 0;
} // namespace

std::uint64_t
valuesBoxed()
{
    return g_values_boxed;
}

namespace detail {

void
noteBoxed()
{
    g_values_boxed += 1;
}

} // namespace detail

} // namespace portend::rt
