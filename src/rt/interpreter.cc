#include "rt/interpreter.h"

#include "support/logging.h"
#include "sym/simplify.h"

namespace portend::rt {

Interpreter::Interpreter(const ir::Program &p, ExecOptions opts)
    : prog(p), opts(std::move(opts))
{
    PORTEND_ASSERT(p.finalized(), "program must be finalized");
    reset();
}

void
Interpreter::reset()
{
    st = VmState();
    st.rng = Rng(opts.rng_seed);

    // Memory image.
    for (const auto &g : prog.globals) {
        for (int i = 0; i < g.size; ++i) {
            std::int64_t init =
                i < static_cast<int>(g.init.size()) ? g.init[i] : 0;
            st.mem.append(sym::Expr::constant(init));
        }
    }

    st.mutexes.assign(prog.mutex_names.size(), MutexState{});
    st.conds.assign(prog.cond_names.size(), CondState{});
    BarrierState empty_barrier;
    st.barriers.assign(prog.barrier_names.size(), empty_barrier);

    // Main thread.
    ThreadState main;
    main.tid = 0;
    Frame f;
    f.func = prog.entry;
    f.regs.assign(prog.function(prog.entry).num_regs,
                  sym::Expr::constant(0));
    main.stack.rw().push_back(std::move(f));
    st.threads.push_back(std::move(main));
}

sym::ExprPtr
Interpreter::evalOperand(const ThreadState &t, const ir::Operand &o) const
{
    if (o.isImm())
        return sym::Expr::constant(o.imm);
    PORTEND_ASSERT(o.isReg(), "evaluating absent operand");
    const Frame &f = t.stack->back();
    PORTEND_ASSERT(o.reg >= 0 &&
                       o.reg < static_cast<int>(f.regs.size()),
                   "register out of range");
    return f.regs[o.reg];
}

const ir::Inst &
Interpreter::fetch(const ThreadState &t) const
{
    const Frame &f = t.stack->back();
    return prog.function(f.func).blocks[f.block].insts[f.inst];
}

bool
Interpreter::isPreemptionPoint(const ThreadState &t,
                               const ir::Inst &inst) const
{
    switch (inst.op) {
      case ir::Op::MutexLock:
      case ir::Op::MutexUnlock:
      case ir::Op::CondWait:
      case ir::Op::CondSignal:
      case ir::Op::CondBroadcast:
      case ir::Op::BarrierWait:
      case ir::Op::ThreadCreate:
      case ir::Op::ThreadJoin:
      case ir::Op::Yield:
      case ir::Op::Sleep:
        return true;
      case ir::Op::Output:
      case ir::Op::OutputStr:
        return opts.preempt_on_output;
      case ir::Op::Load:
      case ir::Op::Store:
      case ir::Op::AtomicRmW: {
        if (opts.preempt_on_memory)
            return true;
        if (opts.watched_cells.empty())
            return false;
        sym::ExprPtr idx = evalOperand(t, inst.a);
        if (!idx->isConcrete()) {
            // Symbolic index: conservatively a preemption point when
            // any cell of this global is watched.
            for (int i = 0; i < prog.global(inst.gid).size; ++i) {
                if (opts.watched_cells.count(
                        prog.cellId(inst.gid, i))) {
                    return true;
                }
            }
            return false;
        }
        std::int64_t v = idx->constValue();
        if (v < 0 || v >= prog.global(inst.gid).size)
            return false; // the crash is reported at execution
        return opts.watched_cells.count(
                   prog.cellId(inst.gid, static_cast<int>(v))) > 0;
      }
      default:
        return false;
    }
}

void
Interpreter::publish(Event ev)
{
    ev.step = st.global_step;
    for (EventSink *s : sinks)
        s->onEvent(ev);
    if (policy)
        policy->onEvent(ev);
    if (active_stop && active_stop->after_event &&
        active_stop->after_event(ev)) {
        stop_event_fired = true;
    }
}

void
Interpreter::finish(RunOutcome o, ThreadId tid, int pc,
                    const std::string &detail)
{
    st.outcome = o;
    st.outcome_tid = tid;
    st.outcome_pc = pc;
    st.outcome_detail = detail;
}

bool
Interpreter::decideCondition(const sym::ExprPtr &cond, DecisionKind kind)
{
    st.stats.symbolic_branches += 1;
    bool take;
    if (!st.forced_decisions.empty()) {
        take = st.forced_decisions.front();
        st.forced_decisions.pop_front();
    } else if (hook) {
        take = hook->decide(*this, cond, kind);
    } else {
        PORTEND_FATAL("symbolic decision (", static_cast<int>(kind),
                      ") reached without a fork hook; run with "
                      "concrete inputs or install exec::Executor");
    }
    st.path.add(take ? cond : sym::negate(cond));
    return take;
}

bool
Interpreter::resolveIndex(ThreadId tid, const ir::Inst &inst,
                          const sym::ExprPtr &idx, int size,
                          std::int64_t &out)
{
    if (idx->isConcrete()) {
        std::int64_t v = idx->constValue();
        if (v < 0 || v >= size) {
            finish(RunOutcome::CrashOob, tid, inst.pc,
                   "index " + std::to_string(v) + " out of bounds of " +
                       prog.global(inst.gid).name + "[" +
                       std::to_string(size) + "] at " +
                       inst.loc.toString());
            return false;
        }
        out = v;
        return true;
    }

    sym::ExprPtr in_bounds = sym::Expr::binary(
        sym::ExprKind::LAnd,
        sym::mkSle(sym::mkConst(0), idx),
        sym::mkSlt(idx, sym::mkConst(size)));
    if (!decideCondition(in_bounds, DecisionKind::Bounds)) {
        finish(RunOutcome::CrashOob, tid, inst.pc,
               "symbolic index out of bounds of " +
                   prog.global(inst.gid).name + " at " +
                   inst.loc.toString());
        return false;
    }
    PORTEND_ASSERT(hook, "bounds decision without hook");
    std::int64_t v = hook->concretize(*this, idx);
    PORTEND_ASSERT(v >= 0 && v < size, "concretized index escaped");
    st.path.add(sym::mkEq(idx, sym::mkConst(v)));
    out = v;
    return true;
}

void
Interpreter::advance(ThreadState &t)
{
    t.stack.rw().back().inst += 1;
}

bool
Interpreter::tryLock(ThreadId tid, ir::SyncId m)
{
    MutexState &mu = st.mutexes.at(m);
    if (mu.owner == -1) {
        mu.owner = tid;
        return true;
    }
    if (mu.owner == tid) {
        finish(RunOutcome::Deadlock, tid, fetch(st.thread(tid)).pc,
               "recursive acquisition of mutex " + prog.mutex_names[m]);
        return false;
    }
    ThreadState &t = st.thread(tid);
    t.status = ThreadStatus::BlockedMutex;
    t.wait_sync = m;
    for (ThreadId w : mu.waiters) {
        if (w == tid)
            return false;
    }
    mu.waiters.push_back(tid);
    return false;
}

void
Interpreter::unlockMutex(ThreadId tid, ir::SyncId m, int pc,
                         const ir::SourceLoc &loc)
{
    MutexState &mu = st.mutexes.at(m);
    if (mu.owner != tid) {
        finish(RunOutcome::AssertFail, tid, pc,
               "unlock of mutex " + prog.mutex_names[m] +
                   " not owned by thread");
        return;
    }
    mu.owner = -1;
    if (!mu.waiters.empty()) {
        // Barging semantics: wake the first waiter; it re-attempts
        // the acquisition when scheduled and may lose the race.
        ThreadId w = mu.waiters.front();
        mu.waiters.erase(mu.waiters.begin());
        ThreadState &wt = st.thread(w);
        wt.status = ThreadStatus::Runnable;
        wt.wait_sync = -1;
    }
    Event ev;
    ev.kind = EventKind::MutexUnlock;
    ev.tid = tid;
    ev.pc = pc;
    ev.sid = m;
    ev.loc = loc;
    publish(ev);
}

void
Interpreter::exitThread(ThreadId tid)
{
    ThreadState &t = st.thread(tid);
    t.status = ThreadStatus::Exited;

    Event ev;
    ev.kind = EventKind::ThreadExit;
    ev.tid = tid;
    publish(ev);

    // Wake joiners; their pending ThreadJoin completes now.
    for (auto &joiner : st.threads) {
        if (joiner.status == ThreadStatus::BlockedJoin &&
            joiner.wait_tid == tid) {
            joiner.status = ThreadStatus::Runnable;
            joiner.wait_tid = -1;
            const ir::Inst &ji = fetch(joiner);
            advance(joiner);
            Event je;
            je.kind = EventKind::ThreadJoin;
            je.tid = joiner.tid;
            je.other = tid;
            je.pc = ji.pc;
            je.loc = ji.loc;
            publish(je);
        }
    }

    // Returning from main terminates the program (C semantics).
    if (tid == 0 && !st.finished())
        finish(RunOutcome::Exited, tid, -1, "main returned");
}

void
Interpreter::execute(ThreadId tid, const ir::Inst &inst)
{
    st.global_step += 1;
    st.stats.steps += 1;
    st.thread(tid).steps += 1;
    st.thread(tid).last_step = st.global_step;

    switch (inst.op) {
      case ir::Op::Nop:
        advance(st.thread(tid));
        break;

      case ir::Op::ConstOp: {
        ThreadState &t = st.thread(tid);
        t.stack.rw().back().regs[inst.dst] =
            sym::Expr::constant(inst.a.imm);
        advance(t);
        break;
      }

      case ir::Op::Mov: {
        ThreadState &t = st.thread(tid);
        t.stack.rw().back().regs[inst.dst] = evalOperand(t, inst.a);
        advance(t);
        break;
      }

      case ir::Op::Bin: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr a = evalOperand(t, inst.a);
        sym::ExprPtr b = evalOperand(t, inst.b);
        if (inst.kind == sym::ExprKind::SDiv ||
            inst.kind == sym::ExprKind::SRem) {
            if (b->isConcrete()) {
                if (b->constValue() == 0) {
                    finish(RunOutcome::CrashDivZero, tid, inst.pc,
                           "division by zero at " +
                               inst.loc.toString());
                    return;
                }
            } else {
                sym::ExprPtr nz =
                    sym::mkNe(b, sym::mkConst(0, b->width()));
                if (!decideCondition(nz, DecisionKind::DivZero)) {
                    finish(RunOutcome::CrashDivZero, tid, inst.pc,
                           "symbolic division by zero at " +
                               inst.loc.toString());
                    return;
                }
            }
        }
        ThreadState &t2 = st.thread(tid);
        t2.stack.rw().back().regs[inst.dst] =
            sym::Expr::binary(inst.kind, a, b);
        advance(t2);
        break;
      }

      case ir::Op::Un: {
        ThreadState &t = st.thread(tid);
        t.stack.rw().back().regs[inst.dst] =
            sym::Expr::unary(inst.kind, evalOperand(t, inst.a));
        advance(t);
        break;
      }

      case ir::Op::Select: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr c = evalOperand(t, inst.a);
        sym::ExprPtr cond =
            sym::mkNe(c, sym::mkConst(0, c->width()));
        t.stack.rw().back().regs[inst.dst] =
            sym::Expr::ite(cond, evalOperand(t, inst.b),
                           evalOperand(t, inst.c));
        advance(t);
        break;
      }

      case ir::Op::Load: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr idx = evalOperand(t, inst.a);
        std::int64_t i = 0;
        if (!resolveIndex(tid, inst, idx,
                          prog.global(inst.gid).size, i)) {
            return;
        }
        int cell = prog.cellId(inst.gid, static_cast<int>(i));
        ThreadState &t2 = st.thread(tid);
        t2.stack.rw().back().regs[inst.dst] = st.mem[cell];
        st.access_counts.rw()[{tid, inst.pc}] += 1;
        st.cell_access_counts.rw()[{tid, cell}] += 1;
        t2.recent_reads.push_back(cell);
        if (static_cast<int>(t2.recent_reads.size()) >
            opts.spin_window) {
            t2.recent_reads.erase(t2.recent_reads.begin());
        }
        advance(t2);
        Event ev;
        ev.kind = EventKind::MemRead;
        ev.tid = tid;
        ev.pc = inst.pc;
        ev.cell = cell;
        ev.occurrence = st.access_counts.ro().at({tid, inst.pc});
        ev.cell_occurrence = st.cell_access_counts.ro().at({tid, cell});
        ev.loc = inst.loc;
        publish(ev);
        break;
      }

      case ir::Op::Store: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr idx = evalOperand(t, inst.a);
        std::int64_t i = 0;
        if (!resolveIndex(tid, inst, idx,
                          prog.global(inst.gid).size, i)) {
            return;
        }
        int cell = prog.cellId(inst.gid, static_cast<int>(i));
        sym::ExprPtr val = evalOperand(st.thread(tid), inst.b);
        st.mem.write(cell, val);
        st.access_counts.rw()[{tid, inst.pc}] += 1;
        st.cell_access_counts.rw()[{tid, cell}] += 1;
        advance(st.thread(tid));
        Event ev;
        ev.kind = EventKind::MemWrite;
        ev.tid = tid;
        ev.pc = inst.pc;
        ev.cell = cell;
        ev.occurrence = st.access_counts.ro().at({tid, inst.pc});
        ev.cell_occurrence = st.cell_access_counts.ro().at({tid, cell});
        ev.loc = inst.loc;
        publish(ev);
        break;
      }

      case ir::Op::AtomicRmW: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr idx = evalOperand(t, inst.a);
        std::int64_t i = 0;
        if (!resolveIndex(tid, inst, idx,
                          prog.global(inst.gid).size, i)) {
            return;
        }
        int cell = prog.cellId(inst.gid, static_cast<int>(i));
        sym::ExprPtr delta = evalOperand(st.thread(tid), inst.b);
        sym::ExprPtr old = st.mem[cell];
        st.mem.write(cell, sym::mkAdd(old, delta));
        ThreadState &t2 = st.thread(tid);
        if (inst.dst >= 0)
            t2.stack.rw().back().regs[inst.dst] = old;
        st.access_counts.rw()[{tid, inst.pc}] += 1;
        st.cell_access_counts.rw()[{tid, cell}] += 1;
        advance(t2);
        Event r;
        r.kind = EventKind::MemRead;
        r.tid = tid;
        r.pc = inst.pc;
        r.cell = cell;
        r.atomic = true;
        r.occurrence = st.access_counts.ro().at({tid, inst.pc});
        r.cell_occurrence = st.cell_access_counts.ro().at({tid, cell});
        r.loc = inst.loc;
        publish(r);
        Event w = r;
        w.kind = EventKind::MemWrite;
        publish(w);
        break;
      }

      case ir::Op::Br: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr c = evalOperand(t, inst.a);
        bool take;
        if (c->isConcrete()) {
            take = c->constValue() != 0;
        } else {
            sym::ExprPtr cond =
                sym::mkNe(c, sym::mkConst(0, c->width()));
            take = decideCondition(cond, DecisionKind::Branch);
            if (st.finished())
                return;
        }
        ThreadState &t2 = st.thread(tid);
        Frame &f = t2.stack.rw().back();
        f.block = take ? inst.then_block : inst.else_block;
        f.inst = 0;
        break;
      }

      case ir::Op::Jmp: {
        Frame &f = st.thread(tid).stack.rw().back();
        f.block = inst.then_block;
        f.inst = 0;
        break;
      }

      case ir::Op::Call: {
        ThreadState &t = st.thread(tid);
        const ir::Function &callee = prog.function(inst.fid);
        Frame nf;
        nf.func = inst.fid;
        nf.regs.assign(callee.num_regs, sym::Expr::constant(0));
        nf.ret_dst = inst.dst;
        const ir::Operand *args[3] = {&inst.a, &inst.b, &inst.c};
        for (int i = 0; i < callee.num_params && i < 3; ++i) {
            if (args[i]->present())
                nf.regs[i] = evalOperand(t, *args[i]);
        }
        advance(t); // return resumes after the call
        t.stack.rw().push_back(std::move(nf));
        break;
      }

      case ir::Op::Ret: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr rv =
            inst.a.present() ? evalOperand(t, inst.a) : nullptr;
        ir::Reg dst = t.stack->back().ret_dst;
        t.stack.rw().pop_back();
        if (t.stack->empty()) {
            exitThread(tid);
        } else if (rv && dst >= 0) {
            t.stack.rw().back().regs[dst] = rv;
        }
        break;
      }

      case ir::Op::Halt:
        finish(RunOutcome::Exited, tid, inst.pc, "halt");
        break;

      case ir::Op::ThreadCreate: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr arg = evalOperand(t, inst.a);
        advance(t);

        ThreadState child;
        child.tid = static_cast<ThreadId>(st.threads.size());
        Frame cf;
        cf.func = inst.fid;
        cf.regs.assign(prog.function(inst.fid).num_regs,
                       sym::Expr::constant(0));
        if (prog.function(inst.fid).num_params > 0)
            cf.regs[0] = arg;
        child.stack.rw().push_back(std::move(cf));
        ThreadId child_tid = child.tid;
        st.threads.push_back(std::move(child));

        // Reacquire after the push_back (vector may reallocate).
        ThreadState &t2 = st.thread(tid);
        if (inst.dst >= 0) {
            t2.stack.rw().back().regs[inst.dst] =
                sym::Expr::constant(child_tid);
        }
        Event ev;
        ev.kind = EventKind::ThreadCreate;
        ev.tid = tid;
        ev.pc = inst.pc;
        ev.other = child_tid;
        ev.loc = inst.loc;
        publish(ev);
        break;
      }

      case ir::Op::ThreadJoin: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr targ = evalOperand(t, inst.a);
        std::int64_t target;
        if (targ->isConcrete()) {
            target = targ->constValue();
        } else {
            PORTEND_ASSERT(hook, "symbolic join target without hook");
            target = hook->concretize(*this, targ);
            st.path.add(sym::mkEq(targ, sym::mkConst(target)));
        }
        if (target < 0 ||
            target >= static_cast<std::int64_t>(st.threads.size())) {
            finish(RunOutcome::AssertFail, tid, inst.pc,
                   "join of invalid thread id " +
                       std::to_string(target));
            return;
        }
        ThreadState &t2 = st.thread(tid);
        if (st.thread(static_cast<ThreadId>(target)).status ==
            ThreadStatus::Exited) {
            advance(t2);
            Event ev;
            ev.kind = EventKind::ThreadJoin;
            ev.tid = tid;
            ev.pc = inst.pc;
            ev.other = static_cast<ThreadId>(target);
            ev.loc = inst.loc;
            publish(ev);
        } else {
            t2.status = ThreadStatus::BlockedJoin;
            t2.wait_tid = static_cast<ThreadId>(target);
        }
        break;
      }

      case ir::Op::MutexLock: {
        if (tryLock(tid, inst.sid)) {
            ThreadState &t = st.thread(tid);
            advance(t);
            Event ev;
            ev.kind = EventKind::MutexLock;
            ev.tid = tid;
            ev.pc = inst.pc;
            ev.sid = inst.sid;
            ev.loc = inst.loc;
            publish(ev);
        }
        break;
      }

      case ir::Op::MutexUnlock:
        unlockMutex(tid, inst.sid, inst.pc, inst.loc);
        if (!st.finished())
            advance(st.thread(tid));
        break;

      case ir::Op::CondWait: {
        ThreadState &t = st.thread(tid);
        if (!t.cond_relock) {
            if (st.mutexes.at(inst.sid2).owner != tid) {
                finish(RunOutcome::AssertFail, tid, inst.pc,
                       "cond_wait without holding mutex " +
                           prog.mutex_names[inst.sid2]);
                return;
            }
            unlockMutex(tid, inst.sid2, inst.pc, inst.loc);
            if (st.finished())
                return;
            ThreadState &t2 = st.thread(tid);
            t2.status = ThreadStatus::BlockedCond;
            t2.wait_sync = inst.sid;
            st.conds.at(inst.sid).waiters.push_back(tid);
        } else {
            // Woken by signal/broadcast; re-acquire the mutex.
            if (tryLock(tid, inst.sid2)) {
                ThreadState &t2 = st.thread(tid);
                t2.cond_relock = false;
                advance(t2);
                // The re-acquisition is a real lock operation: emit
                // it so happens-before edges through the mutex hold.
                Event lk;
                lk.kind = EventKind::MutexLock;
                lk.tid = tid;
                lk.pc = inst.pc;
                lk.sid = inst.sid2;
                lk.loc = inst.loc;
                publish(lk);
                Event ev;
                ev.kind = EventKind::CondWait;
                ev.tid = tid;
                ev.pc = inst.pc;
                ev.sid = inst.sid;
                ev.loc = inst.loc;
                publish(ev);
            }
        }
        break;
      }

      case ir::Op::CondSignal:
      case ir::Op::CondBroadcast: {
        CondState &cv = st.conds.at(inst.sid);
        std::size_t wake =
            inst.op == ir::Op::CondSignal
                ? (cv.waiters.empty() ? 0 : 1)
                : cv.waiters.size();
        for (std::size_t i = 0; i < wake; ++i) {
            ThreadId w = cv.waiters.front();
            cv.waiters.erase(cv.waiters.begin());
            ThreadState &wt = st.thread(w);
            wt.status = ThreadStatus::Runnable;
            wt.wait_sync = -1;
            wt.cond_relock = true;
        }
        advance(st.thread(tid));
        Event ev;
        ev.kind = EventKind::CondSignal;
        ev.tid = tid;
        ev.pc = inst.pc;
        ev.sid = inst.sid;
        ev.loc = inst.loc;
        publish(ev);
        break;
      }

      case ir::Op::BarrierWait: {
        BarrierState &bar = st.barriers.at(inst.sid);
        bar.arrived += 1;
        if (bar.arrived <
            prog.barrier_counts[inst.sid]) {
            ThreadState &t = st.thread(tid);
            t.status = ThreadStatus::BlockedBarrier;
            t.wait_sync = inst.sid;
            bar.waiting.push_back(tid);
        } else {
            // Release everyone, including the arriving thread.
            std::vector<ThreadId> all = bar.waiting;
            bar.waiting.clear();
            bar.arrived = 0;
            for (ThreadId w : all) {
                ThreadState &wt = st.thread(w);
                wt.status = ThreadStatus::Runnable;
                wt.wait_sync = -1;
                const ir::Inst &wi = fetch(wt);
                advance(wt);
                Event ev;
                ev.kind = EventKind::BarrierWait;
                ev.tid = w;
                ev.pc = wi.pc;
                ev.sid = inst.sid;
                ev.loc = wi.loc;
                publish(ev);
            }
            ThreadState &t = st.thread(tid);
            advance(t);
            Event ev;
            ev.kind = EventKind::BarrierWait;
            ev.tid = tid;
            ev.pc = inst.pc;
            ev.sid = inst.sid;
            ev.loc = inst.loc;
            publish(ev);
        }
        break;
      }

      case ir::Op::Yield:
        advance(st.thread(tid));
        break;

      case ir::Op::Sleep: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr ticks = evalOperand(t, inst.a);
        st.virtual_time +=
            ticks->isConcrete() ? ticks->constValue() : 1;
        advance(t);
        break;
      }

      case ir::Op::Input: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr v;
        VmState::EnvRead read;
        read.name = inst.text;
        // Named selection: when sym_inputs is set, only matching
        // labels become symbolic (positional cap ignored); an entry
        // with a range overrides the instruction's declared domain.
        const SymInputSpec *spec = nullptr;
        bool make_symbolic = false;
        if (opts.input_mode == InputMode::Symbolic) {
            if (!opts.sym_inputs.empty()) {
                for (const auto &s : opts.sym_inputs) {
                    if (s.name == inst.text) {
                        spec = &s;
                        break;
                    }
                }
                make_symbolic = spec != nullptr;
            } else {
                make_symbolic =
                    st.next_symbol < opts.max_symbolic_inputs;
            }
        }
        if (make_symbolic) {
            std::int64_t lo =
                spec && spec->has_range ? spec->lo : inst.lo;
            std::int64_t hi =
                spec && spec->has_range ? spec->hi : inst.hi;
            int id = st.next_symbol++;
            v = sym::Expr::symbol(inst.text, id, sym::Width::I64,
                                  lo, hi);
            read.symbolic = true;
            read.sym_id = id;
            read.lo = lo;
        } else {
            std::size_t cursor = st.env_log.size();
            std::int64_t cv =
                cursor < opts.concrete_inputs.size()
                    ? opts.concrete_inputs[cursor]
                    : inst.lo;
            v = sym::Expr::constant(cv);
            read.value = cv;
        }
        st.env_log.push_back(read);
        t.stack.rw().back().regs[inst.dst] = v;
        advance(t);
        break;
      }

      case ir::Op::GetTime: {
        ThreadState &t = st.thread(tid);
        std::size_t cursor = st.env_log.size();
        std::int64_t cv;
        if (opts.input_mode != InputMode::Symbolic &&
            cursor < opts.concrete_inputs.size()) {
            cv = opts.concrete_inputs[cursor];
        } else {
            cv = st.virtual_time;
        }
        st.virtual_time += 1;
        VmState::EnvRead read;
        read.value = cv;
        st.env_log.push_back(read);
        t.stack.rw().back().regs[inst.dst] = sym::Expr::constant(cv);
        advance(t);
        break;
      }

      case ir::Op::Output:
      case ir::Op::OutputStr: {
        ThreadState &t = st.thread(tid);
        OutputRecord rec;
        rec.label = inst.text;
        if (inst.op == ir::Op::Output)
            rec.value = evalOperand(t, inst.a);
        rec.tid = tid;
        rec.pc = inst.pc;
        rec.loc = inst.loc;
        st.output.append(std::move(rec));
        advance(t);
        Event ev;
        ev.kind = EventKind::Output;
        ev.tid = tid;
        ev.pc = inst.pc;
        ev.loc = inst.loc;
        publish(ev);
        break;
      }

      case ir::Op::Assert: {
        ThreadState &t = st.thread(tid);
        sym::ExprPtr c = evalOperand(t, inst.a);
        bool holds;
        if (c->isConcrete()) {
            holds = c->constValue() != 0;
        } else {
            sym::ExprPtr cond =
                sym::mkNe(c, sym::mkConst(0, c->width()));
            holds = decideCondition(cond, DecisionKind::Assert);
            if (st.finished())
                return;
        }
        if (!holds) {
            finish(RunOutcome::AssertFail, tid, inst.pc,
                   "assertion '" + inst.text + "' failed at " +
                       inst.loc.toString());
            return;
        }
        advance(st.thread(tid));
        break;
      }
    }
}

RunOutcome
Interpreter::run()
{
    return run(StopSpec{});
}

RunOutcome
Interpreter::run(const StopSpec &stop)
{
    active_stop = stop.empty() ? nullptr : &stop;
    stopped_at_spec = false;
    stop_event_fired = false;
    fired_before_cell.clear();
    SchedulePolicy *pol = policy ? policy : &default_policy;

    while (!st.finished()) {
        if (st.global_step >= opts.max_steps) {
            finish(RunOutcome::TimedOut, st.current, -1,
                   "step budget exhausted");
            break;
        }
        std::vector<ThreadId> runnable = st.runnableThreads();
        if (runnable.empty()) {
            if (st.allExited()) {
                finish(RunOutcome::Exited, -1, -1, "all threads done");
            } else {
                finish(RunOutcome::Deadlock, -1, -1,
                       "all live threads blocked");
            }
            break;
        }

        ThreadId tid;
        bool first;
        if (st.resume_in_segment && st.current >= 0 &&
            st.current < static_cast<ThreadId>(st.threads.size()) &&
            st.thread(st.current).runnable()) {
            // Continue the interrupted segment without a scheduling
            // decision, keeping trace cursors aligned.
            tid = st.current;
            first = st.resume_first;
            st.resume_in_segment = false;
        } else {
            st.resume_in_segment = false;
            tid = pol->pick(st, runnable);
            if (tid < 0) {
                finish(RunOutcome::Aborted, -1, -1,
                       "schedule policy aborted");
                break;
            }
            PORTEND_ASSERT(st.thread(tid).runnable(),
                           "policy picked non-runnable thread ", tid);
            st.current = tid;
            st.stats.preemption_points += 1;
            first = true;
        }
        while (!st.finished() && st.thread(tid).runnable()) {
            if (st.global_step >= opts.max_steps) {
                finish(RunOutcome::TimedOut, tid, -1,
                       "step budget exhausted");
                break;
            }
            const ir::Inst &inst = fetch(st.thread(tid));

            if (active_stop) {
                // Every matching point is recorded (not just the
                // first): the checkpoint ladder stops one shared
                // replay at many clusters' pre-race points and must
                // learn which of them this stop satisfies.
                bool hit = false;
                for (const auto &p : active_stop->before) {
                    if (p.tid == tid && p.pc == inst.pc) {
                        auto it = st.access_counts->find({tid, inst.pc});
                        std::uint64_t seen =
                            it == st.access_counts->end() ? 0
                                                         : it->second;
                        if (seen + 1 == p.occurrence)
                            hit = true;
                    }
                }
                if (!active_stop->before_cell.empty() &&
                    (inst.op == ir::Op::Load ||
                     inst.op == ir::Op::Store ||
                     inst.op == ir::Op::AtomicRmW)) {
                    sym::ExprPtr idx =
                        evalOperand(st.thread(tid), inst.a);
                    if (idx->isConcrete()) {
                        std::int64_t iv = idx->constValue();
                        if (iv >= 0 &&
                            iv < prog.global(inst.gid).size) {
                            int cell = prog.cellId(
                                inst.gid, static_cast<int>(iv));
                            for (std::size_t pi = 0;
                                 pi < active_stop->before_cell.size();
                                 ++pi) {
                                const auto &p =
                                    active_stop->before_cell[pi];
                                if (p.tid != tid || p.cell != cell)
                                    continue;
                                auto it = st.cell_access_counts->find(
                                    {tid, cell});
                                std::uint64_t seen =
                                    it == st.cell_access_counts->end()
                                        ? 0
                                        : it->second;
                                if (seen + 1 == p.occurrence) {
                                    hit = true;
                                    fired_before_cell.push_back(pi);
                                }
                            }
                        }
                    }
                }
                if (hit) {
                    st.resume_in_segment = true;
                    st.resume_first = first;
                    stopped_at_spec = true;
                    active_stop = nullptr;
                    return RunOutcome::Running;
                }
            }

            if (!first && isPreemptionPoint(st.thread(tid), inst))
                break;

            execute(tid, inst);
            first = false;

            if (stop_event_fired) {
                st.resume_in_segment = true;
                st.resume_first = false;
                stopped_at_spec = true;
                active_stop = nullptr;
                return RunOutcome::Running;
            }
        }
    }

    active_stop = nullptr;
    return st.outcome;
}

} // namespace portend::rt
