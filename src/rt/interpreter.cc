#include "rt/interpreter.h"

#include <atomic>
#include <map>
#include <mutex>

#include "support/logging.h"
#include "support/observe.h"
#include "support/trace.h"
#include "sym/simplify.h"

// Threaded dispatch needs the GNU computed-goto extension; builds can
// force the portable switch loop with -DPORTEND_THREADED_DISPATCH=0
// (CMake option PORTEND_THREADED_DISPATCH).
#ifndef PORTEND_THREADED_DISPATCH
#define PORTEND_THREADED_DISPATCH 1
#endif
#if defined(__GNUC__) && PORTEND_THREADED_DISPATCH
#define PORTEND_HAVE_CGOTO 1
#else
#define PORTEND_HAVE_CGOTO 0
#endif

// Every opcode, in ir::Op declaration order (the computed-goto jump
// table is indexed by the raw enum value).
#define PORTEND_OP_LIST(X)                                            \
    X(Nop) X(ConstOp) X(Mov) X(Bin) X(Un) X(Select) X(Load) X(Store)  \
    X(Br) X(Jmp) X(Call) X(Ret) X(Halt) X(ThreadCreate)               \
    X(ThreadJoin) X(MutexLock) X(MutexUnlock) X(CondWait)             \
    X(CondSignal) X(CondBroadcast) X(BarrierWait) X(AtomicRmW)        \
    X(Yield) X(Sleep) X(Input) X(GetTime) X(Output) X(OutputStr)      \
    X(Assert)

namespace portend::rt {

static_assert(static_cast<int>(ir::Op::Assert) == 28,
              "PORTEND_OP_LIST is out of sync with ir::Op");

namespace {

/** Flush threshold of the event staging buffer. */
constexpr std::size_t kEventBatchCap = 256;

std::atomic<DispatchMode> g_default_dispatch{DispatchMode::Threaded};

} // namespace

bool
threadedDispatchAvailable()
{
    return PORTEND_HAVE_CGOTO != 0;
}

void
setDefaultDispatchMode(DispatchMode m)
{
    g_default_dispatch.store(m, std::memory_order_relaxed);
}

DispatchMode
defaultDispatchMode()
{
    DispatchMode m = g_default_dispatch.load(std::memory_order_relaxed);
    return m == DispatchMode::Auto ? DispatchMode::Threaded : m;
}

const char *
dispatchModeName(DispatchMode m)
{
    switch (m) {
      case DispatchMode::Auto: return "auto";
      case DispatchMode::Switch: return "switch";
      case DispatchMode::Threaded: return "threaded";
    }
    return "?";
}

Interpreter::Interpreter(const ir::Program &p, ExecOptions o)
    : prog(p), dec(decodeProgram(p)), opts(std::move(o))
{
    PORTEND_ASSERT(p.finalized(), "program must be finalized");
    const DispatchMode m = opts.dispatch == DispatchMode::Auto
                               ? defaultDispatchMode()
                               : opts.dispatch;
    use_threaded =
        m == DispatchMode::Threaded && threadedDispatchAvailable();
    reset();
}

namespace {

/**
 * Registry of pristine (pre-first-step) VmStates, one per decoded
 * program. Analyses build thousands of interpreters for the same
 * program; resetting by COW-copying a cached state replaces the
 * per-construction memory/thread/counter build with refcount bumps.
 * Keyed by the DecodedProgram address and validated with a weak_ptr
 * so a recycled address can never resurrect a stale state.
 */
struct PristineEntry
{
    std::weak_ptr<const DecodedProgram> key;
    std::shared_ptr<const VmState> state;
};

std::mutex g_pristine_mu;
std::map<const DecodedProgram *, PristineEntry> g_pristine;

} // namespace

VmState
Interpreter::buildPristine() const
{
    VmState fresh;

    // Memory image: assemble all cells locally, build pages in bulk.
    std::vector<Value> cells;
    cells.reserve(static_cast<std::size_t>(dec->num_cells));
    for (const auto &g : prog.globals) {
        for (int i = 0; i < g.size; ++i) {
            std::int64_t init =
                i < static_cast<int>(g.init.size()) ? g.init[i] : 0;
            cells.push_back(Value::ofConst(init));
        }
    }
    fresh.mem = MemImage(std::move(cells));

    fresh.mutexes.assign(prog.mutex_names.size(), MutexState{});
    fresh.conds.assign(prog.cond_names.size(), CondState{});
    BarrierState empty_barrier;
    fresh.barriers.assign(prog.barrier_names.size(), empty_barrier);

    // Main thread.
    ThreadState main;
    main.tid = 0;
    Frame f;
    f.func = prog.entry;
    f.ip = 0;
    f.reg_base = 0;
    main.stack.rw().push_back(f);
    main.regs.rw().resize(
        static_cast<std::size_t>(prog.function(prog.entry).num_regs));
    fresh.threads.push_back(std::move(main));
    fresh.counter_stride = dec->num_insts;
    fresh.access_counts.rw().emplace_back(
        static_cast<std::size_t>(dec->num_insts + dec->num_cells), 0);
    return fresh;
}

void
Interpreter::reset()
{
    {
        std::lock_guard<std::mutex> lock(g_pristine_mu);
        auto it = g_pristine.find(dec.get());
        if (it != g_pristine.end() && it->second.key.lock() == dec) {
            st = *it->second.state;
            st.rng = Rng(opts.rng_seed);
            return;
        }
    }
    st = buildPristine();
    st.rng = Rng(opts.rng_seed);
    {
        std::lock_guard<std::mutex> lock(g_pristine_mu);
        // Sweep entries whose program died so the registry stays
        // bounded under fuzzing's churn of short-lived programs.
        if (g_pristine.size() >= 64) {
            for (auto it = g_pristine.begin();
                 it != g_pristine.end();) {
                if (it->second.key.expired())
                    it = g_pristine.erase(it);
                else
                    ++it;
            }
        }
        auto pristine = std::make_shared<VmState>(st);
        pristine->rng = Rng();
        g_pristine[dec.get()] = {dec, std::move(pristine)};
    }
}

void
Interpreter::addCounterRows()
{
    st.access_counts.rw().emplace_back(
        static_cast<std::size_t>(dec->num_insts + dec->num_cells), 0);
}

Value
Interpreter::evalValue(const ThreadState &t, const ir::Operand &o) const
{
    if (o.isImm())
        return Value::ofConst(o.imm);
    PORTEND_ASSERT(o.isReg(), "evaluating absent operand");
    const Frame &f = t.stack->back();
    const int idx = f.reg_base + o.reg;
    PORTEND_ASSERT(o.reg >= 0 &&
                       idx < static_cast<int>(t.regs->size()),
                   "register out of range");
    return (*t.regs)[static_cast<std::size_t>(idx)];
}

sym::ExprPtr
Interpreter::evalOperand(const ThreadState &t, const ir::Operand &o) const
{
    return evalValue(t, o).toExpr();
}

bool
Interpreter::isPreemptionPoint(const ThreadState &t,
                               const DecodedInst &di) const
{
    switch (di.preempt) {
      case PreemptClass::Never:
        return false;
      case PreemptClass::Always:
        return true;
      case PreemptClass::Output:
        return opts.preempt_on_output;
      case PreemptClass::Memory: {
        if (opts.preempt_on_memory)
            return true;
        if (opts.watched_cells.empty())
            return false;
        Value idx = readOperand(t, t.stack->back().reg_base, di.a,
                                di.a_imm);
        if (!idx.isConcrete()) {
            // Symbolic index: conservatively a preemption point when
            // any cell of this global is watched.
            for (int i = 0; i < di.gsize; ++i) {
                if (opts.watched_cells.count(di.cell_base + i))
                    return true;
            }
            return false;
        }
        std::int64_t v = idx.constValue();
        if (v < 0 || v >= di.gsize)
            return false; // the crash is reported at execution
        return opts.watched_cells.count(
                   di.cell_base + static_cast<int>(v)) > 0;
      }
    }
    return false;
}

void
Interpreter::publish(Event ev)
{
    ev.step = st.global_step;
    for (EventSink *s : immediate_sinks)
        s->onEvent(ev);
    if (active_stop && active_stop->after_event &&
        active_stop->after_event(ev)) {
        stop_event_fired = true;
    }
    if (!batched_sinks.empty() || policy) {
        st.stats.events_batched += 1;
        event_buf.push_back(std::move(ev));
        if (event_buf.size() >= kEventBatchCap)
            flushEvents();
    }
}

void
Interpreter::flushEvents()
{
    if (event_buf.empty())
        return;
    for (const Event &ev : event_buf) {
        for (EventSink *s : batched_sinks)
            s->onEvent(ev);
        if (policy)
            policy->onEvent(ev);
    }
    event_buf.clear();
}

void
Interpreter::finish(RunOutcome o, ThreadId tid, int pc,
                    const std::string &detail)
{
    st.outcome = o;
    st.outcome_tid = tid;
    st.outcome_pc = pc;
    st.outcome_detail = detail;
}

bool
Interpreter::decideCondition(const sym::ExprPtr &cond, DecisionKind kind)
{
    st.stats.symbolic_branches += 1;
    bool take;
    if (st.hasForcedDecision()) {
        take = st.takeForcedDecision();
    } else if (hook) {
        take = hook->decide(*this, cond, kind);
    } else {
        PORTEND_FATAL("symbolic decision (", static_cast<int>(kind),
                      ") reached without a fork hook; run with "
                      "concrete inputs or install exec::Executor");
    }
    st.path.add(take ? cond : sym::negate(cond));
    return take;
}

bool
Interpreter::resolveIndex(ThreadId tid, const DecodedInst &di,
                          const Value &idx, int size, std::int64_t &out)
{
    if (idx.isConcrete()) {
        std::int64_t v = idx.constValue();
        if (v < 0 || v >= size) {
            finish(RunOutcome::CrashOob, tid, di.pc,
                   "index " + std::to_string(v) + " out of bounds of " +
                       prog.global(di.gid).name + "[" +
                       std::to_string(size) + "] at " +
                       di.loc.toString());
            return false;
        }
        out = v;
        return true;
    }

    const sym::ExprPtr &idxE = idx.expr();
    sym::ExprPtr in_bounds = sym::Expr::binary(
        sym::ExprKind::LAnd,
        sym::mkSle(sym::mkConst(0), idxE),
        sym::mkSlt(idxE, sym::mkConst(size)));
    if (!decideCondition(in_bounds, DecisionKind::Bounds)) {
        finish(RunOutcome::CrashOob, tid, di.pc,
               "symbolic index out of bounds of " +
                   prog.global(di.gid).name + " at " +
                   di.loc.toString());
        return false;
    }
    PORTEND_ASSERT(hook, "bounds decision without hook");
    std::int64_t v = hook->concretize(*this, idxE);
    PORTEND_ASSERT(v >= 0 && v < size, "concretized index escaped");
    st.path.add(sym::mkEq(idxE, sym::mkConst(v)));
    out = v;
    return true;
}

void
Interpreter::advance(ThreadState &t)
{
    t.stack.rw().back().ip += 1;
}

bool
Interpreter::tryLock(ThreadId tid, ir::SyncId m)
{
    MutexState &mu = st.mutexes.at(static_cast<std::size_t>(m));
    if (mu.owner == -1) {
        mu.owner = tid;
        return true;
    }
    if (mu.owner == tid) {
        finish(RunOutcome::Deadlock, tid, fetchD(st.thread(tid)).pc,
               "recursive acquisition of mutex " + prog.mutex_names[m]);
        return false;
    }
    ThreadState &t = st.thread(tid);
    t.status = ThreadStatus::BlockedMutex;
    t.wait_sync = m;
    for (ThreadId w : mu.waiters) {
        if (w == tid)
            return false;
    }
    mu.waiters.push_back(tid);
    return false;
}

void
Interpreter::unlockMutex(ThreadId tid, ir::SyncId m, int pc,
                         const ir::SourceLoc &loc)
{
    MutexState &mu = st.mutexes.at(static_cast<std::size_t>(m));
    if (mu.owner != tid) {
        finish(RunOutcome::AssertFail, tid, pc,
               "unlock of mutex " + prog.mutex_names[m] +
                   " not owned by thread");
        return;
    }
    mu.owner = -1;
    if (!mu.waiters.empty()) {
        // Barging semantics: wake the first waiter; it re-attempts
        // the acquisition when scheduled and may lose the race.
        ThreadId w = mu.waiters.front();
        mu.waiters.erase(mu.waiters.begin());
        ThreadState &wt = st.thread(w);
        wt.status = ThreadStatus::Runnable;
        wt.wait_sync = -1;
    }
    if (record_events) {
        Event ev;
        ev.kind = EventKind::MutexUnlock;
        ev.tid = tid;
        ev.pc = pc;
        ev.sid = m;
        ev.loc = loc;
        publish(std::move(ev));
    }
}

void
Interpreter::exitThread(ThreadId tid)
{
    ThreadState &t = st.thread(tid);
    t.status = ThreadStatus::Exited;

    if (record_events) {
        Event ev;
        ev.kind = EventKind::ThreadExit;
        ev.tid = tid;
        publish(std::move(ev));
    }

    // Wake joiners; their pending ThreadJoin completes now.
    for (auto &joiner : st.threads) {
        if (joiner.status == ThreadStatus::BlockedJoin &&
            joiner.wait_tid == tid) {
            joiner.status = ThreadStatus::Runnable;
            joiner.wait_tid = -1;
            const DecodedInst &ji = fetchD(joiner);
            advance(joiner);
            if (record_events) {
                Event je;
                je.kind = EventKind::ThreadJoin;
                je.tid = joiner.tid;
                je.other = tid;
                je.pc = ji.pc;
                je.loc = ji.loc;
                publish(std::move(je));
            }
        }
    }

    // Returning from main terminates the program (C semantics).
    if (tid == 0 && !st.finished())
        finish(RunOutcome::Exited, tid, -1, "main returned");
}

bool
Interpreter::checkStops(ThreadId tid, const DecodedInst &di)
{
    // Every matching point is recorded (not just the first): the
    // checkpoint ladder stops one shared replay at many clusters'
    // pre-race points and must learn which of them this stop
    // satisfies.
    bool hit = false;
    for (const auto &p : active_stop->before) {
        if (p.tid == tid && p.pc == di.pc &&
            st.accessCount(tid, di.pc) + 1 == p.occurrence)
            hit = true;
    }
    if (!active_stop->before_cell.empty() &&
        (di.op == ir::Op::Load || di.op == ir::Op::Store ||
         di.op == ir::Op::AtomicRmW)) {
        const ThreadState &t = st.thread(tid);
        Value idx = readOperand(t, t.stack->back().reg_base, di.a,
                                di.a_imm);
        if (idx.isConcrete()) {
            std::int64_t iv = idx.constValue();
            if (iv >= 0 && iv < di.gsize) {
                int cell = di.cell_base + static_cast<int>(iv);
                for (std::size_t pi = 0;
                     pi < active_stop->before_cell.size(); ++pi) {
                    const auto &p = active_stop->before_cell[pi];
                    if (p.tid != tid || p.cell != cell)
                        continue;
                    if (st.cellAccessCount(tid, cell) + 1 ==
                        p.occurrence) {
                        hit = true;
                        fired_before_cell.push_back(pi);
                    }
                }
            }
        }
    }
    return hit;
}

void
Interpreter::executeSlow(ThreadId tid, const DecodedInst &di)
{
    switch (di.op) {
      case ir::Op::ThreadCreate: {
        ThreadState &t = st.thread(tid);
        Value arg = readOperand(t, t.stack->back().reg_base, di.a,
                                di.a_imm);
        advance(t);

        ThreadState child;
        child.tid = static_cast<ThreadId>(st.threads.size());
        Frame cf;
        cf.func = di.fid;
        cf.ip = 0;
        cf.reg_base = 0;
        child.stack.rw().push_back(cf);
        child.regs.rw().resize(
            static_cast<std::size_t>(di.callee_regs));
        if (di.callee_params > 0)
            child.regs.rw()[0] = std::move(arg);
        ThreadId child_tid = child.tid;
        st.threads.push_back(std::move(child));
        addCounterRows();

        // Reacquire after the push_back (vector may reallocate).
        ThreadState &t2 = st.thread(tid);
        if (di.dst >= 0) {
            t2.regs.rw()[static_cast<std::size_t>(
                t2.stack->back().reg_base + di.dst)] =
                Value::ofConst(child_tid);
        }
        if (record_events) {
            Event ev;
            ev.kind = EventKind::ThreadCreate;
            ev.tid = tid;
            ev.pc = di.pc;
            ev.other = child_tid;
            ev.loc = di.loc;
            publish(std::move(ev));
        }
        break;
      }

      case ir::Op::ThreadJoin: {
        ThreadState &t = st.thread(tid);
        Value targ = readOperand(t, t.stack->back().reg_base, di.a,
                                 di.a_imm);
        std::int64_t target;
        if (targ.isConcrete()) {
            target = targ.constValue();
        } else {
            PORTEND_ASSERT(hook, "symbolic join target without hook");
            const sym::ExprPtr &te = targ.expr();
            target = hook->concretize(*this, te);
            st.path.add(sym::mkEq(te, sym::mkConst(target)));
        }
        if (target < 0 ||
            target >= static_cast<std::int64_t>(st.threads.size())) {
            finish(RunOutcome::AssertFail, tid, di.pc,
                   "join of invalid thread id " +
                       std::to_string(target));
            return;
        }
        ThreadState &t2 = st.thread(tid);
        if (st.thread(static_cast<ThreadId>(target)).status ==
            ThreadStatus::Exited) {
            advance(t2);
            if (record_events) {
                Event ev;
                ev.kind = EventKind::ThreadJoin;
                ev.tid = tid;
                ev.pc = di.pc;
                ev.other = static_cast<ThreadId>(target);
                ev.loc = di.loc;
                publish(std::move(ev));
            }
        } else {
            t2.status = ThreadStatus::BlockedJoin;
            t2.wait_tid = static_cast<ThreadId>(target);
        }
        break;
      }

      case ir::Op::MutexLock: {
        if (tryLock(tid, di.sid)) {
            ThreadState &t = st.thread(tid);
            advance(t);
            if (record_events) {
                Event ev;
                ev.kind = EventKind::MutexLock;
                ev.tid = tid;
                ev.pc = di.pc;
                ev.sid = di.sid;
                ev.loc = di.loc;
                publish(std::move(ev));
            }
        }
        break;
      }

      case ir::Op::MutexUnlock:
        unlockMutex(tid, di.sid, di.pc, di.loc);
        if (!st.finished())
            advance(st.thread(tid));
        break;

      case ir::Op::CondWait: {
        ThreadState &t = st.thread(tid);
        if (!t.cond_relock) {
            if (st.mutexes.at(static_cast<std::size_t>(di.sid2))
                    .owner != tid) {
                finish(RunOutcome::AssertFail, tid, di.pc,
                       "cond_wait without holding mutex " +
                           prog.mutex_names[di.sid2]);
                return;
            }
            unlockMutex(tid, di.sid2, di.pc, di.loc);
            if (st.finished())
                return;
            ThreadState &t2 = st.thread(tid);
            t2.status = ThreadStatus::BlockedCond;
            t2.wait_sync = di.sid;
            st.conds.at(static_cast<std::size_t>(di.sid))
                .waiters.push_back(tid);
        } else {
            // Woken by signal/broadcast; re-acquire the mutex.
            if (tryLock(tid, di.sid2)) {
                ThreadState &t2 = st.thread(tid);
                t2.cond_relock = false;
                advance(t2);
                // The re-acquisition is a real lock operation: emit
                // it so happens-before edges through the mutex hold.
                if (record_events) {
                    Event lk;
                    lk.kind = EventKind::MutexLock;
                    lk.tid = tid;
                    lk.pc = di.pc;
                    lk.sid = di.sid2;
                    lk.loc = di.loc;
                    publish(std::move(lk));
                    Event ev;
                    ev.kind = EventKind::CondWait;
                    ev.tid = tid;
                    ev.pc = di.pc;
                    ev.sid = di.sid;
                    ev.loc = di.loc;
                    publish(std::move(ev));
                }
            }
        }
        break;
      }

      case ir::Op::CondSignal:
      case ir::Op::CondBroadcast: {
        CondState &cv = st.conds.at(static_cast<std::size_t>(di.sid));
        std::size_t wake =
            di.op == ir::Op::CondSignal
                ? (cv.waiters.empty() ? 0 : 1)
                : cv.waiters.size();
        for (std::size_t i = 0; i < wake; ++i) {
            ThreadId w = cv.waiters.front();
            cv.waiters.erase(cv.waiters.begin());
            ThreadState &wt = st.thread(w);
            wt.status = ThreadStatus::Runnable;
            wt.wait_sync = -1;
            wt.cond_relock = true;
        }
        advance(st.thread(tid));
        if (record_events) {
            Event ev;
            ev.kind = EventKind::CondSignal;
            ev.tid = tid;
            ev.pc = di.pc;
            ev.sid = di.sid;
            ev.loc = di.loc;
            publish(std::move(ev));
        }
        break;
      }

      case ir::Op::BarrierWait: {
        BarrierState &bar =
            st.barriers.at(static_cast<std::size_t>(di.sid));
        bar.arrived += 1;
        if (bar.arrived < prog.barrier_counts[di.sid]) {
            ThreadState &t = st.thread(tid);
            t.status = ThreadStatus::BlockedBarrier;
            t.wait_sync = di.sid;
            bar.waiting.push_back(tid);
        } else {
            // Release everyone, including the arriving thread.
            std::vector<ThreadId> all = bar.waiting;
            bar.waiting.clear();
            bar.arrived = 0;
            for (ThreadId w : all) {
                ThreadState &wt = st.thread(w);
                wt.status = ThreadStatus::Runnable;
                wt.wait_sync = -1;
                const DecodedInst &wi = fetchD(wt);
                advance(wt);
                if (record_events) {
                    Event ev;
                    ev.kind = EventKind::BarrierWait;
                    ev.tid = w;
                    ev.pc = wi.pc;
                    ev.sid = di.sid;
                    ev.loc = wi.loc;
                    publish(std::move(ev));
                }
            }
            ThreadState &t = st.thread(tid);
            advance(t);
            if (record_events) {
                Event ev;
                ev.kind = EventKind::BarrierWait;
                ev.tid = tid;
                ev.pc = di.pc;
                ev.sid = di.sid;
                ev.loc = di.loc;
                publish(std::move(ev));
            }
        }
        break;
      }

      case ir::Op::Sleep: {
        ThreadState &t = st.thread(tid);
        Value ticks = readOperand(t, t.stack->back().reg_base, di.a,
                                  di.a_imm);
        st.virtual_time +=
            ticks.isConcrete() ? ticks.constValue() : 1;
        advance(t);
        break;
      }

      case ir::Op::Input: {
        ThreadState &t = st.thread(tid);
        const int rb = t.stack->back().reg_base;
        Value v;
        VmState::EnvRead read;
        read.name = di.text;
        // Named selection: when sym_inputs is set, only matching
        // labels become symbolic (positional cap ignored); an entry
        // with a range overrides the instruction's declared domain.
        const SymInputSpec *spec = nullptr;
        bool make_symbolic = false;
        if (opts.input_mode == InputMode::Symbolic) {
            if (!opts.sym_inputs.empty()) {
                for (const auto &s : opts.sym_inputs) {
                    if (s.name == di.text) {
                        spec = &s;
                        break;
                    }
                }
                make_symbolic = spec != nullptr;
            } else {
                make_symbolic =
                    st.next_symbol < opts.max_symbolic_inputs;
            }
        }
        if (make_symbolic) {
            std::int64_t lo =
                spec && spec->has_range ? spec->lo : di.lo;
            std::int64_t hi =
                spec && spec->has_range ? spec->hi : di.hi;
            int id = st.next_symbol++;
            v = Value(sym::Expr::symbol(di.text, id, sym::Width::I64,
                                        lo, hi));
            read.symbolic = true;
            read.sym_id = id;
            read.lo = lo;
        } else {
            std::size_t cursor = st.env_log.size();
            std::int64_t cv =
                cursor < opts.concrete_inputs.size()
                    ? opts.concrete_inputs[cursor]
                    : di.lo;
            v = Value::ofConst(cv);
            read.value = cv;
        }
        st.env_log.push_back(read);
        t.regs.rw()[static_cast<std::size_t>(rb + di.dst)] =
            std::move(v);
        advance(t);
        break;
      }

      case ir::Op::GetTime: {
        ThreadState &t = st.thread(tid);
        const int rb = t.stack->back().reg_base;
        std::size_t cursor = st.env_log.size();
        std::int64_t cv;
        if (opts.input_mode != InputMode::Symbolic &&
            cursor < opts.concrete_inputs.size()) {
            cv = opts.concrete_inputs[cursor];
        } else {
            cv = st.virtual_time;
        }
        st.virtual_time += 1;
        VmState::EnvRead read;
        read.value = cv;
        st.env_log.push_back(read);
        t.regs.rw()[static_cast<std::size_t>(rb + di.dst)] =
            Value::ofConst(cv);
        advance(t);
        break;
      }

      case ir::Op::Output:
      case ir::Op::OutputStr: {
        ThreadState &t = st.thread(tid);
        OutputRecord rec;
        rec.label = di.text;
        if (di.op == ir::Op::Output) {
            rec.value = readOperand(t, t.stack->back().reg_base,
                                    di.a, di.a_imm)
                            .toExpr();
        }
        rec.tid = tid;
        rec.pc = di.pc;
        rec.loc = di.loc;
        st.output.append(std::move(rec));
        advance(t);
        if (record_events) {
            Event ev;
            ev.kind = EventKind::Output;
            ev.tid = tid;
            ev.pc = di.pc;
            ev.loc = di.loc;
            publish(std::move(ev));
        }
        break;
      }

      case ir::Op::Assert: {
        ThreadState &t = st.thread(tid);
        Value c = readOperand(t, t.stack->back().reg_base, di.a,
                              di.a_imm);
        bool holds;
        if (c.isConcrete()) {
            holds = c.constValue() != 0;
        } else {
            sym::ExprPtr cond =
                sym::mkNe(c.expr(), sym::mkConst(0, c.width()));
            holds = decideCondition(cond, DecisionKind::Assert);
            if (st.finished())
                return;
        }
        if (!holds) {
            finish(RunOutcome::AssertFail, tid, di.pc,
                   "assertion '" + di.text + "' failed at " +
                       di.loc.toString());
            return;
        }
        advance(st.thread(tid));
        break;
      }

      default:
        PORTEND_FATAL("hot opcode ", static_cast<int>(di.op),
                      " routed to executeSlow");
    }
}

RunOutcome
Interpreter::run()
{
    return run(StopSpec{});
}

RunOutcome
Interpreter::run(const StopSpec &stop)
{
    active_stop = stop.empty() ? nullptr : &stop;
    stopped_at_spec = false;
    stop_event_fired = false;
    fired_before_cell.clear();
    SchedulePolicy *pol = policy ? policy : &default_policy;

    // Partition sinks once per run; when nothing consumes events the
    // hot loop skips Event construction entirely.
    immediate_sinks.clear();
    batched_sinks.clear();
    for (EventSink *s : sinks)
        (s->immediate() ? immediate_sinks : batched_sinks).push_back(s);
    record_events = !sinks.empty() || policy != nullptr ||
                    (active_stop && active_stop->after_event != nullptr);
    event_buf.clear();

    const std::uint64_t boxed0 = valuesBoxed();

    // Observability: one span per run plus a delta flush of the
    // VmStats ledger into the process collector at run exit. The hot
    // segment loop is untouched — it keeps bumping plain VmStats
    // counters — so with no sinks installed this is two relaxed
    // pointer loads per run() call.
    obs::Span run_span("interp", "run");
    const VmStats entry_stats = st.stats;
    const auto flush_observability = [&] {
        const std::uint64_t dsteps = st.stats.steps - entry_stats.steps;
        run_span.arg("steps", static_cast<std::int64_t>(dsteps));
        if (obs::Collector *c = obs::collector()) {
            c->add(obs::Counter::InterpRuns, 1);
            c->add(obs::Counter::InterpSteps, dsteps);
            c->add(obs::Counter::InterpPreemptions,
                   st.stats.preemption_points -
                       entry_stats.preemption_points);
            c->add(obs::Counter::InterpSymBranches,
                   st.stats.symbolic_branches -
                       entry_stats.symbolic_branches);
            c->add(obs::Counter::InterpEventsBatched,
                   st.stats.events_batched - entry_stats.events_batched);
            c->add(obs::Counter::InterpValuesBoxed,
                   st.stats.values_boxed - entry_stats.values_boxed);
            c->observe(obs::Hist::InterpRunSteps, dsteps);
        }
    };

    while (!st.finished()) {
        if (st.global_step >= opts.max_steps) {
            finish(RunOutcome::TimedOut, st.current, -1,
                   "step budget exhausted");
            break;
        }
        st.runnableInto(runnable_scratch);
        if (runnable_scratch.empty()) {
            if (st.allExited()) {
                finish(RunOutcome::Exited, -1, -1, "all threads done");
            } else {
                finish(RunOutcome::Deadlock, -1, -1,
                       "all live threads blocked");
            }
            break;
        }

        ThreadId tid;
        bool first;
        if (st.resume_in_segment && st.current >= 0 &&
            st.current < static_cast<ThreadId>(st.threads.size()) &&
            st.thread(st.current).runnable()) {
            // Continue the interrupted segment without a scheduling
            // decision, keeping trace cursors aligned.
            tid = st.current;
            first = st.resume_first;
            st.resume_in_segment = false;
        } else {
            st.resume_in_segment = false;
            // Batched consumers catch up before every scheduling
            // decision, so policies observe the same prefix they saw
            // under per-event delivery.
            flushEvents();
            tid = pol->pick(st, runnable_scratch);
            if (tid < 0) {
                finish(RunOutcome::Aborted, -1, -1,
                       "schedule policy aborted");
                break;
            }
            PORTEND_ASSERT(st.thread(tid).runnable(),
                           "policy picked non-runnable thread ", tid);
            st.current = tid;
            st.stats.preemption_points += 1;
            first = true;
        }

        const SegExit ex = use_threaded ? segmentThreaded(tid, first)
                                        : segmentSwitch(tid, first);
        if (ex == SegExit::StopBefore || ex == SegExit::StopEvent) {
            stopped_at_spec = true;
            active_stop = nullptr;
            flushEvents();
            st.stats.values_boxed += valuesBoxed() - boxed0;
            st.stats.pages_unshared = st.mem.unsharedCount();
            flush_observability();
            return RunOutcome::Running;
        }
    }

    active_stop = nullptr;
    flushEvents();
    st.stats.values_boxed += valuesBoxed() - boxed0;
    st.stats.pages_unshared = st.mem.unsharedCount();
    flush_observability();
    return st.outcome;
}

// The segment loop body is written once (rt/interp_loop.inc) and
// compiled twice: with a jump-table switch dispatcher, and — when the
// compiler has computed goto — with direct-threaded dispatch.
#define PORTEND_SEGMENT_FN segmentSwitch
#define PORTEND_SEGMENT_CGOTO 0
#include "rt/interp_loop.inc"
#undef PORTEND_SEGMENT_FN
#undef PORTEND_SEGMENT_CGOTO

#if PORTEND_HAVE_CGOTO
#define PORTEND_SEGMENT_FN segmentThreaded
#define PORTEND_SEGMENT_CGOTO 1
#include "rt/interp_loop.inc"
#undef PORTEND_SEGMENT_FN
#undef PORTEND_SEGMENT_CGOTO
#else
Interpreter::SegExit
Interpreter::segmentThreaded(ThreadId tid, bool first)
{
    // Unreachable in practice: use_threaded is false without
    // computed goto. Fall back to the portable loop anyway.
    return segmentSwitch(tid, first);
}
#endif

} // namespace portend::rt
