#include "rt/staticinfo.h"

namespace portend::rt {

StaticInfo::StaticInfo(const ir::Program &p) : prog(p)
{
    const std::size_t n = p.functions.size();
    may_write.assign(n, {});
    std::vector<std::set<ir::FuncId>> callees(n);

    for (std::size_t f = 0; f < n; ++f) {
        for (const auto &b : p.functions[f].blocks) {
            for (const auto &inst : b.insts) {
                switch (inst.op) {
                  case ir::Op::Store:
                  case ir::Op::AtomicRmW:
                    may_write[f].insert(inst.gid);
                    break;
                  case ir::Op::Call:
                  case ir::Op::ThreadCreate:
                    callees[f].insert(inst.fid);
                    break;
                  case ir::Op::Br:
                    num_branches += 1;
                    break;
                  case ir::Op::MutexLock:
                  case ir::Op::MutexUnlock:
                  case ir::Op::CondWait:
                  case ir::Op::CondSignal:
                  case ir::Op::CondBroadcast:
                  case ir::Op::BarrierWait:
                  case ir::Op::ThreadJoin:
                  case ir::Op::Yield:
                    num_preemption_points += 1;
                    break;
                  default:
                    break;
                }
            }
        }
    }

    // Transitive closure by fixpoint; programs are small, so the
    // quadratic loop is fine.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < n; ++f) {
            for (ir::FuncId callee : callees[f]) {
                for (ir::GlobalId g : may_write[callee]) {
                    if (may_write[f].insert(g).second)
                        changed = true;
                }
            }
        }
    }
}

const std::set<ir::GlobalId> &
StaticInfo::mayWrite(ir::FuncId f) const
{
    return may_write.at(f);
}

std::set<ir::GlobalId>
StaticInfo::mayWriteOnStack(const VmState &state, ThreadId tid) const
{
    std::set<ir::GlobalId> out;
    for (const auto &frame : *state.thread(tid).stack) {
        const auto &mw = mayWrite(frame.func);
        out.insert(mw.begin(), mw.end());
    }
    return out;
}

} // namespace portend::rt
