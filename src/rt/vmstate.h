/**
 * @file
 * Value-semantic virtual machine state with copy-on-write internals.
 *
 * Everything the interpreter mutates lives in VmState, and VmState is
 * plainly copyable: copying it is Portend's checkpoint primitive
 * (pre-race / post-race checkpoints of Algorithm 1) and the fork
 * primitive of multi-path exploration. The heavy containers — the
 * paged memory image, per-thread frame stacks, and the dynamic
 * access-count maps — are structurally shared between copies
 * (support/cow.h): a checkpoint costs O(pages + threads), and a
 * resumed fork pays per touched page/stack/map, never for the whole
 * state. Expression nodes were always immutable and shared.
 */

#ifndef PORTEND_RT_VMSTATE_H
#define PORTEND_RT_VMSTATE_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"
#include "rt/events.h"
#include "rt/value.h"
#include "support/cow.h"
#include "support/hash.h"
#include "support/rng.h"
#include "sym/solver.h"

namespace portend::rt {

/**
 * The flat global-memory image, split into fixed-size pages that
 * copies share until written (the checkpoint write barrier lives in
 * write()). Reads never unshare.
 */
class MemImage
{
  public:
    /** Cells per page: small enough that a barrier copy is cheap,
     *  large enough that the page vector stays short. */
    static constexpr std::size_t kPageCells = 64;

    MemImage() = default;

    /**
     * Bulk-build the image from initial cell values. Pages are
     * assembled locally and moved in whole, so construction is
     * O(cells) with no per-cell write barriers (appending cell by
     * cell paid an rw() share check per cell).
     */
    explicit MemImage(std::vector<Value> cells);

    /** Number of cells. */
    std::size_t size() const { return n; }

    /** Read cell @p i (never unshares). */
    const Value &
    operator[](std::size_t i) const
    {
        return pages[i / kPageCells].ro()[i % kPageCells];
    }

    /** Write cell @p i, cloning its page first when shared. */
    void
    write(std::size_t i, Value v)
    {
        auto &pg = pages[i / kPageCells];
        if (!pg.unique())
            unshared_ += 1;
        pg.rw()[i % kPageCells] = std::move(v);
    }

    /** Append a cell during incremental construction (tests). */
    void
    append(Value v)
    {
        if (n % kPageCells == 0)
            pages.emplace_back();
        pages.back().rw().push_back(std::move(v));
        n += 1;
    }

    /** Pages cloned by the write barrier over this image's lifetime
     *  (stats ledger; copies inherit the parent's count). */
    std::uint64_t unsharedCount() const { return unshared_; }

    /**
     * True when the page holding cell @p i is structurally shared
     * with @p o's (then every cell of the page compares equal, so
     * state diffing can hop to pageEnd(i) without reading cells).
     */
    bool
    sharesPage(std::size_t i, const MemImage &o) const
    {
        const std::size_t pg = i / kPageCells;
        return pg < o.pages.size() &&
               pages[pg].sharedWith(o.pages[pg]);
    }

    /** First cell index past the page holding cell @p i. */
    std::size_t
    pageEnd(std::size_t i) const
    {
        return std::min(n, (i / kPageCells + 1) * kPageCells);
    }

    /** Force-unshare every page (deep-copy baseline for benches). */
    void
    unshareAll()
    {
        for (auto &p : pages)
            p.rw();
    }

  private:
    std::size_t n = 0;
    std::uint64_t unshared_ = 0;
    std::vector<Cow<std::vector<Value>>> pages;
};

/** Scheduling status of one thread. */
enum class ThreadStatus : std::uint8_t {
    Runnable,
    BlockedMutex,   ///< waiting to acquire a mutex
    BlockedCond,    ///< waiting on a condition variable
    BlockedJoin,    ///< waiting for another thread to exit
    BlockedBarrier, ///< waiting at a barrier
    Exited,
};

/** Printable status name. */
const char *threadStatusName(ThreadStatus s);

/**
 * One stack frame of a thread.
 *
 * Frames no longer own their registers: a thread's frames share one
 * register arena (ThreadState::regs), each frame claiming the slice
 * [reg_base, reg_base + num_regs) of it. Call grows the arena, Ret
 * shrinks it — no per-frame vector allocation. The instruction
 * pointer is flat within the function (see rt/decode.h); block
 * boundaries are recovered through DecodedFunction::block_start when
 * needed.
 */
struct Frame
{
    ir::FuncId func = -1;
    int ip = 0;                ///< flat next-instruction pointer
    ir::Reg ret_dst = -1;      ///< caller register receiving the result
    int reg_base = 0;          ///< first register slot in the arena
};

/** One thread of execution. */
struct ThreadState
{
    ThreadId tid = -1;
    ThreadStatus status = ThreadStatus::Runnable;

    /**
     * Frame stack, copy-on-write: checkpoint copies share it, and a
     * forked thread unshares on its first executed instruction
     * (threads never scheduled after a fork stay shared). Read via
     * stack-> / *stack, mutate via stack.rw().
     */
    Cow<std::vector<Frame>> stack;

    /**
     * Register arena shared by all frames of this thread's stack
     * (copy-on-write like the stack). Frame f's register r lives at
     * regs[f.reg_base + r].
     */
    Cow<std::vector<Value>> regs;

    ir::SyncId wait_sync = -1;   ///< sync object blocked on
    ThreadId wait_tid = -1;      ///< thread blocked on (join)
    bool cond_relock = false;    ///< woken from cond, waiting on mutex

    std::uint64_t steps = 0;     ///< instructions executed
    std::uint64_t last_step = 0; ///< global step of last execution
    std::int64_t spawn_arg = 0;  ///< argument passed at creation

    /** Recent read cells (ring) for spin-loop diagnosis. */
    std::vector<int> recent_reads;

    /** True when the thread can be scheduled. */
    bool runnable() const { return status == ThreadStatus::Runnable; }
};

/** Mutex runtime state. */
struct MutexState
{
    ThreadId owner = -1;
    std::vector<ThreadId> waiters;
};

/** Condition variable runtime state. */
struct CondState
{
    std::vector<ThreadId> waiters;
};

/** Barrier runtime state. */
struct BarrierState
{
    int arrived = 0;
    std::vector<ThreadId> waiting;
};

/** One output system call. */
struct OutputRecord
{
    std::string label;          ///< format label ("stats: %d")
    sym::ExprPtr value;         ///< possibly-symbolic payload (may be null
                                ///< for pure string outputs)
    ThreadId tid = -1;
    int pc = -1;
    ir::SourceLoc loc;

    /** Render with a concrete payload (diagnostics). */
    std::string toString() const;
};

/** Aggregated program output: records plus a concrete hash chain. */
struct OutputLog
{
    std::vector<OutputRecord> records;
    HashChain concrete_chain; ///< folded over fully-concrete records

    /** Append a record, folding concrete payloads into the chain. */
    void append(OutputRecord rec);

    std::size_t size() const { return records.size(); }
};

/** Why execution stopped. */
enum class RunOutcome : std::uint8_t {
    Running,      ///< not stopped yet
    Exited,       ///< normal termination
    CrashOob,     ///< out-of-bounds memory access
    CrashDivZero, ///< division/remainder by zero
    AssertFail,   ///< semantic predicate violated
    Deadlock,     ///< all live threads blocked
    TimedOut,     ///< step budget exhausted
    Aborted,      ///< schedule policy gave up (replay divergence)
};

/** Printable outcome name. */
const char *runOutcomeName(RunOutcome o);

/** True for outcomes the paper calls "basic" spec violations. */
bool isSpecViolation(RunOutcome o);

/** Execution statistics used by the evaluation harnesses. */
struct VmStats
{
    std::uint64_t steps = 0;             ///< instructions executed
    std::uint64_t preemption_points = 0; ///< scheduling decisions taken
    std::uint64_t symbolic_branches = 0; ///< forks offered to the hook
    std::uint64_t values_boxed = 0;      ///< Value→ExprPtr conversions
    std::uint64_t events_batched = 0;    ///< events staged in the buffer
    std::uint64_t pages_unshared = 0;    ///< COW page clones in mem
};

/**
 * Complete interpreter state; copy to checkpoint or fork.
 */
struct VmState
{
    /** Flat memory cells across all globals (paged, copy-on-write). */
    MemImage mem;

    std::vector<ThreadState> threads;
    std::vector<MutexState> mutexes;
    std::vector<CondState> conds;
    std::vector<BarrierState> barriers;

    /** Currently scheduled thread; -1 before first pick. */
    ThreadId current = -1;

    /** Path condition accumulated from symbolic decisions. */
    sym::PathCondition path;

    /** Program output so far. */
    OutputLog output;

    /**
     * One environment read (Input or GetTime instruction).
     *
     * Symbolic reads record the symbol id; concrete reads record the
     * value. The log is the paper's "log of system call inputs": a
     * replay run reproduces it by passing the same values back in
     * order (after substituting solver-model values for symbols).
     */
    struct EnvRead
    {
        bool symbolic = false;
        int sym_id = -1;
        std::int64_t value = 0;
        std::int64_t lo = 0;  ///< domain lower bound (symbolic reads)
        std::string name;     ///< input label (evidence witnesses)
    };

    /** Environment reads in consumption order. */
    std::vector<EnvRead> env_log;

    /**
     * Dynamic access counters, one dense row per thread. The first
     * `counter_stride` entries count instruction executions by pc
     * (pcs are dense decoded-site ids); the rest count accesses by
     * flat cell id at `counter_stride + cell`. Race identity is
     * cell-based because a divergent path may perform the racing
     * access at a different program counter (paper §3.3, Fig. 4),
     * while replay stop conditions index by pc; one row serves both.
     * Copy-on-write like the memory image: checkpoints share the
     * table; the first post-fork access clones it once.
     */
    Cow<std::vector<std::vector<std::uint64_t>>> access_counts;

    /** Row width of the pc-indexed prefix of access_counts rows. */
    std::int32_t counter_stride = 0;

    /** Dynamic count of (thread @p t, pc @p pc) executions (0 when
     *  out of range). */
    std::uint64_t
    accessCount(ThreadId t, int pc) const
    {
        const auto &rows = access_counts.ro();
        if (t < 0 || static_cast<std::size_t>(t) >= rows.size())
            return 0;
        if (pc < 0 || pc >= counter_stride)
            return 0;
        return rows[static_cast<std::size_t>(t)]
                   [static_cast<std::size_t>(pc)];
    }

    /** Dynamic count of (thread @p t, cell @p cell) accesses (0 when
     *  out of range). */
    std::uint64_t
    cellAccessCount(ThreadId t, int cell) const
    {
        const auto &rows = access_counts.ro();
        if (t < 0 || static_cast<std::size_t>(t) >= rows.size())
            return 0;
        const auto &row = rows[static_cast<std::size_t>(t)];
        const std::size_t i =
            static_cast<std::size_t>(counter_stride) +
            static_cast<std::size_t>(cell);
        if (cell < 0 || i >= row.size())
            return 0;
        return row[i];
    }

    /**
     * Forced outcomes of pending symbolic decisions (set on fork),
     * consumed front-to-back via `forced_cursor` (a deque would
     * allocate on every state copy even when empty — the common
     * case).
     */
    std::vector<char> forced_decisions;
    std::size_t forced_cursor = 0;

    /** True when a forced decision is pending. */
    bool
    hasForcedDecision() const
    {
        return forced_cursor < forced_decisions.size();
    }

    /** Consume the next forced decision (requires one pending). */
    bool
    takeForcedDecision()
    {
        return forced_decisions[forced_cursor++] != 0;
    }

    /**
     * True when the state was captured mid-scheduling-segment (a
     * stop condition fired, or a fork was taken). Resuming such a
     * state continues the current thread without consulting the
     * scheduler, so replayed schedules stay aligned with recordings.
     */
    bool resume_in_segment = false;

    /** Segment-start flag to restore on resume (see Interpreter). */
    bool resume_first = true;

    /** Next fresh symbol id for symbolic inputs. */
    int next_symbol = 0;

    std::uint64_t global_step = 0;
    std::int64_t virtual_time = 0;

    RunOutcome outcome = RunOutcome::Running;
    std::string outcome_detail;
    int outcome_pc = -1;
    ThreadId outcome_tid = -1;

    VmStats stats;

    /** Deterministic RNG carried with the state (schedule decisions). */
    Rng rng;

    /** Thread by id (checked). */
    ThreadState &thread(ThreadId t) { return threads.at(t); }
    const ThreadState &thread(ThreadId t) const { return threads.at(t); }

    /** Ids of currently runnable threads, ascending. */
    std::vector<ThreadId> runnableThreads() const;

    /** Fill @p out with runnable thread ids, ascending (reuses the
     *  caller's buffer; the scheduler loop's allocation-free path). */
    void runnableInto(std::vector<ThreadId> &out) const;

    /** True when every thread has exited. */
    bool allExited() const;

    /** True once outcome is final. */
    bool finished() const { return outcome != RunOutcome::Running; }

    /**
     * Force-unshare every copy-on-write container (memory pages,
     * thread stacks, access-count maps), materializing a full deep
     * copy. Only benches and tests call this: it is the deep-copy
     * baseline that checkpoint_bench compares the structural-sharing
     * copy against, and the isolation probe of rt_checkpoint_test.
     */
    void unshareAll();
};

} // namespace portend::rt

#endif // PORTEND_RT_VMSTATE_H
