/**
 * @file
 * Value-semantic virtual machine state with copy-on-write internals.
 *
 * Everything the interpreter mutates lives in VmState, and VmState is
 * plainly copyable: copying it is Portend's checkpoint primitive
 * (pre-race / post-race checkpoints of Algorithm 1) and the fork
 * primitive of multi-path exploration. The heavy containers — the
 * paged memory image, per-thread frame stacks, and the dynamic
 * access-count maps — are structurally shared between copies
 * (support/cow.h): a checkpoint costs O(pages + threads), and a
 * resumed fork pays per touched page/stack/map, never for the whole
 * state. Expression nodes were always immutable and shared.
 */

#ifndef PORTEND_RT_VMSTATE_H
#define PORTEND_RT_VMSTATE_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"
#include "rt/events.h"
#include "support/cow.h"
#include "support/hash.h"
#include "support/rng.h"
#include "sym/solver.h"

namespace portend::rt {

/**
 * The flat global-memory image, split into fixed-size pages that
 * copies share until written (the checkpoint write barrier lives in
 * write()). Reads never unshare.
 */
class MemImage
{
  public:
    /** Cells per page: small enough that a barrier copy is cheap,
     *  large enough that the page vector stays short. */
    static constexpr std::size_t kPageCells = 64;

    /** Number of cells. */
    std::size_t size() const { return n; }

    /** Read cell @p i (never unshares). */
    const sym::ExprPtr &
    operator[](std::size_t i) const
    {
        return pages[i / kPageCells].ro()[i % kPageCells];
    }

    /** Write cell @p i, cloning its page first when shared. */
    void
    write(std::size_t i, sym::ExprPtr v)
    {
        pages[i / kPageCells].rw()[i % kPageCells] = std::move(v);
    }

    /** Append a cell during image construction. */
    void
    append(sym::ExprPtr v)
    {
        if (n % kPageCells == 0)
            pages.emplace_back();
        pages.back().rw().push_back(std::move(v));
        n += 1;
    }

    /**
     * True when the page holding cell @p i is structurally shared
     * with @p o's (then every cell of the page compares equal, so
     * state diffing can hop to pageEnd(i) without reading cells).
     */
    bool
    sharesPage(std::size_t i, const MemImage &o) const
    {
        const std::size_t pg = i / kPageCells;
        return pg < o.pages.size() &&
               pages[pg].sharedWith(o.pages[pg]);
    }

    /** First cell index past the page holding cell @p i. */
    std::size_t
    pageEnd(std::size_t i) const
    {
        return std::min(n, (i / kPageCells + 1) * kPageCells);
    }

    /** Force-unshare every page (deep-copy baseline for benches). */
    void
    unshareAll()
    {
        for (auto &p : pages)
            p.rw();
    }

  private:
    std::size_t n = 0;
    std::vector<Cow<std::vector<sym::ExprPtr>>> pages;
};

/** Scheduling status of one thread. */
enum class ThreadStatus : std::uint8_t {
    Runnable,
    BlockedMutex,   ///< waiting to acquire a mutex
    BlockedCond,    ///< waiting on a condition variable
    BlockedJoin,    ///< waiting for another thread to exit
    BlockedBarrier, ///< waiting at a barrier
    Exited,
};

/** Printable status name. */
const char *threadStatusName(ThreadStatus s);

/** One stack frame of a thread. */
struct Frame
{
    ir::FuncId func = -1;
    ir::BlockId block = 0;
    int inst = 0;              ///< next instruction index in block
    std::vector<sym::ExprPtr> regs;
    ir::Reg ret_dst = -1;      ///< caller register receiving the result
};

/** One thread of execution. */
struct ThreadState
{
    ThreadId tid = -1;
    ThreadStatus status = ThreadStatus::Runnable;

    /**
     * Frame stack, copy-on-write: checkpoint copies share it, and a
     * forked thread unshares on its first executed instruction
     * (threads never scheduled after a fork stay shared). Read via
     * stack-> / *stack, mutate via stack.rw().
     */
    Cow<std::vector<Frame>> stack;

    ir::SyncId wait_sync = -1;   ///< sync object blocked on
    ThreadId wait_tid = -1;      ///< thread blocked on (join)
    bool cond_relock = false;    ///< woken from cond, waiting on mutex

    std::uint64_t steps = 0;     ///< instructions executed
    std::uint64_t last_step = 0; ///< global step of last execution
    std::int64_t spawn_arg = 0;  ///< argument passed at creation

    /** Recent read cells (ring) for spin-loop diagnosis. */
    std::vector<int> recent_reads;

    /** True when the thread can be scheduled. */
    bool runnable() const { return status == ThreadStatus::Runnable; }
};

/** Mutex runtime state. */
struct MutexState
{
    ThreadId owner = -1;
    std::vector<ThreadId> waiters;
};

/** Condition variable runtime state. */
struct CondState
{
    std::vector<ThreadId> waiters;
};

/** Barrier runtime state. */
struct BarrierState
{
    int arrived = 0;
    std::vector<ThreadId> waiting;
};

/** One output system call. */
struct OutputRecord
{
    std::string label;          ///< format label ("stats: %d")
    sym::ExprPtr value;         ///< possibly-symbolic payload (may be null
                                ///< for pure string outputs)
    ThreadId tid = -1;
    int pc = -1;
    ir::SourceLoc loc;

    /** Render with a concrete payload (diagnostics). */
    std::string toString() const;
};

/** Aggregated program output: records plus a concrete hash chain. */
struct OutputLog
{
    std::vector<OutputRecord> records;
    HashChain concrete_chain; ///< folded over fully-concrete records

    /** Append a record, folding concrete payloads into the chain. */
    void append(OutputRecord rec);

    std::size_t size() const { return records.size(); }
};

/** Why execution stopped. */
enum class RunOutcome : std::uint8_t {
    Running,      ///< not stopped yet
    Exited,       ///< normal termination
    CrashOob,     ///< out-of-bounds memory access
    CrashDivZero, ///< division/remainder by zero
    AssertFail,   ///< semantic predicate violated
    Deadlock,     ///< all live threads blocked
    TimedOut,     ///< step budget exhausted
    Aborted,      ///< schedule policy gave up (replay divergence)
};

/** Printable outcome name. */
const char *runOutcomeName(RunOutcome o);

/** True for outcomes the paper calls "basic" spec violations. */
bool isSpecViolation(RunOutcome o);

/** Execution statistics used by the evaluation harnesses. */
struct VmStats
{
    std::uint64_t steps = 0;             ///< instructions executed
    std::uint64_t preemption_points = 0; ///< scheduling decisions taken
    std::uint64_t symbolic_branches = 0; ///< forks offered to the hook
};

/**
 * Complete interpreter state; copy to checkpoint or fork.
 */
struct VmState
{
    /** Flat memory cells across all globals (paged, copy-on-write). */
    MemImage mem;

    std::vector<ThreadState> threads;
    std::vector<MutexState> mutexes;
    std::vector<CondState> conds;
    std::vector<BarrierState> barriers;

    /** Currently scheduled thread; -1 before first pick. */
    ThreadId current = -1;

    /** Path condition accumulated from symbolic decisions. */
    sym::PathCondition path;

    /** Program output so far. */
    OutputLog output;

    /**
     * One environment read (Input or GetTime instruction).
     *
     * Symbolic reads record the symbol id; concrete reads record the
     * value. The log is the paper's "log of system call inputs": a
     * replay run reproduces it by passing the same values back in
     * order (after substituting solver-model values for symbols).
     */
    struct EnvRead
    {
        bool symbolic = false;
        int sym_id = -1;
        std::int64_t value = 0;
        std::int64_t lo = 0;  ///< domain lower bound (symbolic reads)
        std::string name;     ///< input label (evidence witnesses)
    };

    /** Environment reads in consumption order. */
    std::vector<EnvRead> env_log;

    /**
     * Dynamic execution counts of memory-access instructions.
     * Copy-on-write like the memory image: checkpoints share the
     * map; the first post-fork access clones it once.
     */
    Cow<std::map<std::pair<ThreadId, int>, std::uint64_t>> access_counts;

    /**
     * Per (thread, cell) access counts. Race identity is cell-based
     * because a divergent path may perform the racing access at a
     * different program counter (paper §3.3, Fig. 4).
     */
    Cow<std::map<std::pair<ThreadId, int>, std::uint64_t>>
        cell_access_counts;

    /** Forced outcomes of pending symbolic decisions (set on fork). */
    std::deque<bool> forced_decisions;

    /**
     * True when the state was captured mid-scheduling-segment (a
     * stop condition fired, or a fork was taken). Resuming such a
     * state continues the current thread without consulting the
     * scheduler, so replayed schedules stay aligned with recordings.
     */
    bool resume_in_segment = false;

    /** Segment-start flag to restore on resume (see Interpreter). */
    bool resume_first = true;

    /** Next fresh symbol id for symbolic inputs. */
    int next_symbol = 0;

    std::uint64_t global_step = 0;
    std::int64_t virtual_time = 0;

    RunOutcome outcome = RunOutcome::Running;
    std::string outcome_detail;
    int outcome_pc = -1;
    ThreadId outcome_tid = -1;

    VmStats stats;

    /** Deterministic RNG carried with the state (schedule decisions). */
    Rng rng;

    /** Thread by id (checked). */
    ThreadState &thread(ThreadId t) { return threads.at(t); }
    const ThreadState &thread(ThreadId t) const { return threads.at(t); }

    /** Ids of currently runnable threads, ascending. */
    std::vector<ThreadId> runnableThreads() const;

    /** True when every thread has exited. */
    bool allExited() const;

    /** True once outcome is final. */
    bool finished() const { return outcome != RunOutcome::Running; }

    /**
     * Force-unshare every copy-on-write container (memory pages,
     * thread stacks, access-count maps), materializing a full deep
     * copy. Only benches and tests call this: it is the deep-copy
     * baseline that checkpoint_bench compares the structural-sharing
     * copy against, and the isolation probe of rt_checkpoint_test.
     */
    void unshareAll();
};

} // namespace portend::rt

#endif // PORTEND_RT_VMSTATE_H
