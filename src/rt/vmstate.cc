#include "rt/vmstate.h"

#include <sstream>

namespace portend::rt {

MemImage::MemImage(std::vector<Value> cells)
{
    n = cells.size();
    pages.reserve((n + kPageCells - 1) / kPageCells);
    for (std::size_t at = 0; at < n; at += kPageCells) {
        const std::size_t end = std::min(n, at + kPageCells);
        std::vector<Value> page;
        page.reserve(end - at);
        for (std::size_t i = at; i < end; ++i)
            page.push_back(std::move(cells[i]));
        pages.emplace_back(Cow<std::vector<Value>>(std::move(page)));
    }
}

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::MemRead: return "mem_read";
      case EventKind::MemWrite: return "mem_write";
      case EventKind::MutexLock: return "mutex_lock";
      case EventKind::MutexUnlock: return "mutex_unlock";
      case EventKind::CondWait: return "cond_wait";
      case EventKind::CondSignal: return "cond_signal";
      case EventKind::BarrierWait: return "barrier_wait";
      case EventKind::ThreadCreate: return "thread_create";
      case EventKind::ThreadJoin: return "thread_join";
      case EventKind::ThreadStart: return "thread_start";
      case EventKind::ThreadExit: return "thread_exit";
      case EventKind::Output: return "output";
    }
    return "?";
}

const char *
threadStatusName(ThreadStatus s)
{
    switch (s) {
      case ThreadStatus::Runnable: return "runnable";
      case ThreadStatus::BlockedMutex: return "blocked-mutex";
      case ThreadStatus::BlockedCond: return "blocked-cond";
      case ThreadStatus::BlockedJoin: return "blocked-join";
      case ThreadStatus::BlockedBarrier: return "blocked-barrier";
      case ThreadStatus::Exited: return "exited";
    }
    return "?";
}

const char *
runOutcomeName(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Running: return "running";
      case RunOutcome::Exited: return "exited";
      case RunOutcome::CrashOob: return "crash-oob";
      case RunOutcome::CrashDivZero: return "crash-div-zero";
      case RunOutcome::AssertFail: return "assert-fail";
      case RunOutcome::Deadlock: return "deadlock";
      case RunOutcome::TimedOut: return "timed-out";
      case RunOutcome::Aborted: return "aborted";
    }
    return "?";
}

bool
isSpecViolation(RunOutcome o)
{
    switch (o) {
      case RunOutcome::CrashOob:
      case RunOutcome::CrashDivZero:
      case RunOutcome::AssertFail:
      case RunOutcome::Deadlock:
        return true;
      default:
        return false;
    }
}

std::string
OutputRecord::toString() const
{
    std::ostringstream os;
    os << label;
    if (value) {
        os << "=";
        if (value->isConcrete())
            os << value->constValue();
        else
            os << value->toString();
    }
    return os.str();
}

void
OutputLog::append(OutputRecord rec)
{
    if (!rec.value || rec.value->isConcrete()) {
        concrete_chain.append(rec.label);
        if (rec.value)
            concrete_chain.append(
                static_cast<std::uint64_t>(rec.value->constValue()));
    }
    records.push_back(std::move(rec));
}

std::vector<ThreadId>
VmState::runnableThreads() const
{
    std::vector<ThreadId> out;
    runnableInto(out);
    return out;
}

void
VmState::runnableInto(std::vector<ThreadId> &out) const
{
    out.clear();
    for (const auto &t : threads) {
        if (t.runnable())
            out.push_back(t.tid);
    }
}

bool
VmState::allExited() const
{
    for (const auto &t : threads) {
        if (t.status != ThreadStatus::Exited)
            return false;
    }
    return true;
}

void
VmState::unshareAll()
{
    mem.unshareAll();
    for (auto &t : threads) {
        t.stack.rw();
        t.regs.rw();
    }
    access_counts.rw();
}

} // namespace portend::rt
