/**
 * @file
 * Semantic predicates and their event-stream monitor.
 *
 * A semantic predicate is the paper's "high level" specification
 * (§3.5): a callback invoked on every event of an analysis run that
 * returns a non-empty violation description when the property is
 * broken (e.g. "fmm timestamps must not go backwards"). The scratch
 * map is private to one execution, letting predicates express
 * stateful properties like monotonicity without leaking state across
 * replays.
 *
 * This lives in rt/ (not portend/) because the replay layer's
 * checkpoint ladder must snapshot and restore monitor state: a run
 * resumed from a cached mid-execution checkpoint has to behave as if
 * its monitor had observed the whole prefix, so the ladder stores a
 * SemanticSnapshot per rung and the resuming analyzer seeds its
 * monitor from it.
 */

#ifndef PORTEND_RT_SEMANTICS_H
#define PORTEND_RT_SEMANTICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rt/events.h"

namespace portend::rt {

class Interpreter;

/**
 * One semantic predicate: returns a non-empty violation description
 * when the specification is broken at this event.
 */
using SemanticPredicate = std::function<std::string(
    const Interpreter &, const Event &,
    std::map<std::string, std::int64_t> &scratch)>;

/**
 * Everything a SemanticMonitor accumulates over a run; captured at
 * checkpoint-ladder rungs and restored on resume.
 */
struct SemanticSnapshot
{
    std::map<std::string, std::int64_t> scratch;
    std::string violation;
    int violation_cell = -1;
};

/**
 * Event sink evaluating semantic predicates during a run.
 */
class SemanticMonitor : public EventSink
{
  public:
    SemanticMonitor(const Interpreter &interp,
                    const std::vector<SemanticPredicate> &preds)
        : interp(interp), preds(preds)
    {}

    /** Predicates sample live interpreter state (memory cells), so
     *  batching would show them post-segment values; opt out. */
    bool immediate() const override { return true; }

    void
    onEvent(const Event &ev) override
    {
        if (!state_.violation.empty())
            return;
        for (const auto &p : preds) {
            std::string msg = p(interp, ev, state_.scratch);
            if (!msg.empty()) {
                state_.violation = msg;
                state_.violation_cell = ev.cell;
                return;
            }
        }
    }

    /** Non-empty when a predicate was violated. */
    const std::string &violation() const { return state_.violation; }

    /** Cell of the violating event (-1 when not cell-related). */
    int violationCell() const { return state_.violation_cell; }

    /** Accumulated monitor state (checkpoint capture). */
    const SemanticSnapshot &snapshot() const { return state_; }

    /**
     * Adopt the monitor state a prefix run accumulated; the monitor
     * then observes a resumed execution exactly as if it had watched
     * the prefix itself.
     */
    void restore(const SemanticSnapshot &s) { state_ = s; }

  private:
    const Interpreter &interp;
    const std::vector<SemanticPredicate> &preds;
    SemanticSnapshot state_;
};

} // namespace portend::rt

#endif // PORTEND_RT_SEMANTICS_H
