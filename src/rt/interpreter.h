/**
 * @file
 * The PIL interpreter — this repository's Cloud9.
 *
 * A deterministic single-processor cooperative interpreter for
 * multi-threaded PIL programs. Preemption points are synchronization
 * operations, thread operations, yields, and memory accesses to
 * watched (racy) cells; at each one the schedule policy picks the
 * next runnable thread (paper §3.1). Values are symbolic expressions;
 * a ForkHook (implemented by exec::Executor) resolves symbolic
 * control decisions, enabling KLEE-style state forking.
 *
 * The interpreter detects the paper's "basic" specification
 * violations natively: out-of-bounds accesses, division by zero,
 * deadlocks (all live threads blocked, including self-deadlock),
 * failed semantic assertions, and step-budget timeouts (the raw
 * material for infinite-loop vs ad-hoc-synchronization diagnosis).
 */

#ifndef PORTEND_RT_INTERPRETER_H
#define PORTEND_RT_INTERPRETER_H

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ir/program.h"
#include "rt/decode.h"
#include "rt/events.h"
#include "rt/policy.h"
#include "rt/vmstate.h"

namespace portend::rt {

class Interpreter;

/**
 * Instruction dispatch strategy of the step loop. Threaded dispatch
 * (computed goto, a GNU extension) is the fast path; Switch is the
 * portable fallback; Auto resolves to the process-wide default (see
 * setDefaultDispatchMode), which is Threaded when available.
 */
enum class DispatchMode : std::uint8_t { Auto, Switch, Threaded };

/** True when this build can execute with threaded dispatch. */
bool threadedDispatchAvailable();

/** Set the process-wide dispatch default that Auto resolves to
 *  (CLI --dispatch; differential tests flip it per run). */
void setDefaultDispatchMode(DispatchMode m);

/** The current process-wide dispatch default. */
DispatchMode defaultDispatchMode();

/** Printable mode name ("threaded" / "switch" / "auto"). */
const char *dispatchModeName(DispatchMode m);

/** Where a symbolic decision arose. */
enum class DecisionKind : std::uint8_t {
    Branch,   ///< conditional branch on symbolic data
    Bounds,   ///< in-bounds check of a symbolic index
    DivZero,  ///< divisor-is-nonzero check
    Assert,   ///< semantic predicate
};

/**
 * Resolver for symbolic control decisions.
 *
 * When the interpreter must decide a symbolic I1 condition, it asks
 * the hook which way *this* execution goes; the hook may clone the
 * interpreter's state beforehand to explore the other way (forking).
 * The interpreter then records the matching path constraint itself.
 */
class ForkHook
{
  public:
    virtual ~ForkHook() = default;

    /**
     * Decide symbolic condition @p cond.
     *
     * @return true when this execution should proceed as if the
     *         condition held
     */
    virtual bool decide(Interpreter &interp, const sym::ExprPtr &cond,
                        DecisionKind kind) = 0;

    /**
     * Choose a concrete value for symbolic @p val (KLEE-style
     * address concretization); the interpreter adds val == result
     * to the path condition.
     */
    virtual std::int64_t concretize(Interpreter &interp,
                                    const sym::ExprPtr &val) = 0;
};

/** How Input instructions produce values. */
enum class InputMode : std::uint8_t {
    Concrete, ///< fixed values (explicit list, else the domain lo)
    Replay,   ///< replay the recorded input log
    Symbolic, ///< fresh symbols with the declared domains
};

/**
 * One named symbolic-input request (see ExecOptions::sym_inputs).
 * Matches Input instructions by their declared label; an optional
 * range overrides the instruction's declared domain.
 */
struct SymInputSpec
{
    std::string name;
    bool has_range = false; ///< when set, [lo, hi] replaces the decl
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

/** Interpreter configuration. */
struct ExecOptions
{
    InputMode input_mode = InputMode::Concrete;

    /** Values consumed in order by Input in Concrete mode. */
    std::vector<std::int64_t> concrete_inputs;

    /** Step budget; exceeding it sets RunOutcome::TimedOut. */
    std::uint64_t max_steps = 2000000;

    /** Cells whose accesses become preemption points. */
    std::set<int> watched_cells;

    /**
     * Make every global-memory access a preemption point. Portend
     * uses this for detection and analysis runs so that recorded
     * schedule traces align decision-for-decision with replays
     * regardless of which cells are racy.
     */
    bool preempt_on_memory = false;

    /**
     * How many Input instructions become symbolic in Symbolic mode;
     * later inputs take their concrete domain lower bound (the
     * paper's "number of symbolic inputs" dial, §3.3). Ignored when
     * sym_inputs selects inputs by name.
     */
    int max_symbolic_inputs = INT32_MAX;

    /**
     * Named symbolic-input selection. When non-empty (and input_mode
     * is Symbolic), an Input instruction becomes symbolic iff its
     * label matches an entry here — the positional
     * max_symbolic_inputs cap does not apply — and an entry with
     * has_range overrides the instruction's declared domain. When
     * empty, the legacy positional rule applies unchanged.
     */
    std::vector<SymInputSpec> sym_inputs;

    /** Make every Output instruction a preemption point. */
    bool preempt_on_output = false;

    /** Seed for the state-carried RNG. */
    std::uint64_t rng_seed = 1;

    /** Ring size of per-thread recent reads (spin diagnosis). */
    int spin_window = 64;

    /** Step-loop dispatch strategy (Auto = process default). */
    DispatchMode dispatch = DispatchMode::Auto;
};

/**
 * Drives a VmState over a finalized PIL program.
 *
 * The interpreter itself holds no analysis logic; detectors and
 * recorders observe the event stream, and the schedule policy and
 * fork hook steer execution.
 */
class Interpreter
{
  public:
    /** Stop conditions for partial runs (checkpoint placement). */
    struct StopSpec
    {
        /** Stop *before* the given dynamic instruction execution. */
        struct Point
        {
            ThreadId tid;
            int pc;
            std::uint64_t occurrence; ///< 1-based per (tid, pc)
        };

        std::vector<Point> before;

        /**
         * Stop *before* the given (thread, cell) access. Cell-based
         * stops are robust against path divergence moving the racing
         * access to a different pc (paper §3.3, Fig. 4).
         */
        struct CellPoint
        {
            ThreadId tid;
            int cell;
            std::uint64_t occurrence; ///< 1-based per (tid, cell)
        };

        std::vector<CellPoint> before_cell;

        /** Stop once an emitted event satisfies this predicate. */
        std::function<bool(const Event &)> after_event;

        bool
        empty() const
        {
            return before.empty() && before_cell.empty() &&
                   !after_event;
        }
    };

    /**
     * @param p     finalized program (kept by reference)
     * @param opts  execution configuration
     */
    Interpreter(const ir::Program &p, ExecOptions opts);

    /** Rebuild the initial state (main thread ready at entry). */
    void reset();

    /** Mutable access to the current state (checkpoint = copy). */
    VmState &state() { return st; }
    const VmState &state() const { return st; }

    /** Replace the state (restore a checkpoint / adopt a fork). */
    void setState(VmState s) { st = std::move(s); }

    /** Install the scheduling policy (non-owning; default FIFO). */
    void setPolicy(SchedulePolicy *p) { policy = p; }

    /** Install the symbolic-decision hook (non-owning). */
    void setForkHook(ForkHook *h) { hook = h; }

    /** Attach an event sink (non-owning). */
    void addSink(EventSink *s) { sinks.push_back(s); }

    /** Detach all event sinks. */
    void clearSinks() { sinks.clear(); }

    /** Run to completion (or budget/abort). */
    RunOutcome run();

    /**
     * Run until a stop condition fires or execution finishes.
     *
     * @return the outcome; RunOutcome::Running means a stop
     *         condition fired and the state is resumable
     */
    RunOutcome run(const StopSpec &stop);

    /** True when the last run() returned because a stop fired. */
    bool stopped() const { return stopped_at_spec; }

    /**
     * Indices into the last StopSpec's before_cell list that matched
     * when the run stopped (empty unless stopped() and the stop came
     * from a cell point). Checkpoint-ladder construction uses this
     * to learn which of many requested pre-race points a shared
     * replay just reached.
     */
    const std::vector<std::size_t> &
    firedCellStops() const
    {
        return fired_before_cell;
    }

    /** The program being executed. */
    const ir::Program &program() const { return prog; }

    /** The decoded form of the program (shared across interpreters). */
    const DecodedProgram &decoded() const { return *dec; }

    /** Number of decoded instruction sites (stats ledger). */
    int decodedSites() const { return dec->num_insts; }

    /** The dispatch mode this interpreter executes with. */
    DispatchMode dispatchMode() const
    { return use_threaded ? DispatchMode::Threaded
                          : DispatchMode::Switch; }

    /** The execution options. */
    const ExecOptions &options() const { return opts; }
    ExecOptions &options() { return opts; }

    /**
     * Evaluate an operand in a thread's top frame (pure; boxes
     * concrete values — analysis-side convenience, not the hot path).
     */
    sym::ExprPtr evalOperand(const ThreadState &t,
                             const ir::Operand &o) const;

    /** Evaluate an operand in a thread's top frame as a Value. */
    Value evalValue(const ThreadState &t, const ir::Operand &o) const;

  private:
    /** How one scheduling segment ended. */
    enum class SegExit : std::uint8_t {
        Blocked,    ///< thread blocked/exited/finished/budget
        Preempt,    ///< hit a preemption point (scheduler's turn)
        StopBefore, ///< a before/before_cell stop point matched
        StopEvent,  ///< the after_event predicate fired
    };

    /** Run thread @p tid until its segment ends (switch dispatch). */
    SegExit segmentSwitch(ThreadId tid, bool first);

    /** Run thread @p tid until its segment ends (threaded dispatch;
     *  compiled only when the GNU computed-goto extension exists). */
    SegExit segmentThreaded(ThreadId tid, bool first);

    /** Decoded next instruction of thread @p t. */
    const DecodedInst &
    fetchD(const ThreadState &t) const
    {
        const Frame &f = t.stack->back();
        return dec->funcs[static_cast<std::size_t>(f.func)]
            .insts[static_cast<std::size_t>(f.ip)];
    }

    /** Evaluate decoded operand (@p slot, @p imm) in @p t's frame. */
    Value
    readOperand(const ThreadState &t, int reg_base, std::int32_t slot,
                std::int64_t imm) const
    {
        if (slot >= 0)
            return (*t.regs)[static_cast<std::size_t>(reg_base + slot)];
        return Value::ofConst(imm);
    }

    /** True when @p di is a preemption point for @p t. */
    bool isPreemptionPoint(const ThreadState &t,
                           const DecodedInst &di) const;

    /** Stop-spec check before executing @p di; true when a point
     *  matched (resume state must then be saved). */
    bool checkStops(ThreadId tid, const DecodedInst &di);

    /** Execute one cold (sync/thread/env) instruction. */
    void executeSlow(ThreadId tid, const DecodedInst &di);

    /** Advance past the current instruction of @p t. */
    void advance(ThreadState &t);

    /** Stage @p ev: deliver to immediate sinks and the after_event
     *  stop predicate now, buffer for batched sinks and the policy. */
    void publish(Event ev);

    /** Drain the event buffer to batched sinks and the policy. */
    void flushEvents();

    /** Resolve a symbolic I1 decision (hook / forced queue). */
    bool decideCondition(const sym::ExprPtr &cond, DecisionKind kind);

    /** Resolve a possibly-symbolic index to a concrete value. */
    bool resolveIndex(ThreadId tid, const DecodedInst &di,
                      const Value &idx, int size, std::int64_t &out);

    /** Set a final outcome. */
    void finish(RunOutcome o, ThreadId tid, int pc,
                const std::string &detail);

    /** Mutex acquisition step; true when acquired. */
    bool tryLock(ThreadId tid, ir::SyncId m);

    /** Release @p m, waking one waiter (barging semantics). */
    void unlockMutex(ThreadId tid, ir::SyncId m, int pc,
                     const ir::SourceLoc &loc);

    /** Thread exit bookkeeping: wake joiners, maybe end program. */
    void exitThread(ThreadId tid);

    /** Add zeroed counter rows for a newly created thread. */
    void addCounterRows();
    VmState buildPristine() const;

    const ir::Program &prog;
    std::shared_ptr<const DecodedProgram> dec;
    ExecOptions opts;
    VmState st;
    bool use_threaded = false;

    SchedulePolicy *policy = nullptr;
    FifoPolicy default_policy;
    ForkHook *hook = nullptr;
    std::vector<EventSink *> sinks;

    const StopSpec *active_stop = nullptr;
    bool stopped_at_spec = false;
    bool stop_event_fired = false;
    std::vector<std::size_t> fired_before_cell;

    /** True while any consumer wants events this run (sinks, an
     *  installed policy, or an after_event stop); when false the hot
     *  loop skips Event construction entirely. */
    bool record_events = false;
    std::vector<EventSink *> immediate_sinks;
    std::vector<EventSink *> batched_sinks;
    /** Reusable staging buffer for batched event delivery. */
    std::vector<Event> event_buf;
    /** Reusable runnable-thread scratch for the scheduler loop. */
    std::vector<ThreadId> runnable_scratch;
};

} // namespace portend::rt

#endif // PORTEND_RT_INTERPRETER_H
