/**
 * @file
 * Execution event stream.
 *
 * The interpreter publishes one event per observable action: memory
 * accesses, synchronization operations, thread lifecycle, outputs.
 * Race detection, trace recording, and schedule enforcement are all
 * event consumers, mirroring how Portend's detector and record/replay
 * engine hook the Cloud9 interpreter.
 */

#ifndef PORTEND_RT_EVENTS_H
#define PORTEND_RT_EVENTS_H

#include <cstdint>
#include <string>

#include "ir/inst.h"

namespace portend::rt {

/** Thread identifier (dense, starting at 0 for main). */
using ThreadId = int;

/** Kinds of observable events. */
enum class EventKind : std::uint8_t {
    MemRead,       ///< load from a global cell
    MemWrite,      ///< store to a global cell
    MutexLock,     ///< mutex acquired
    MutexUnlock,   ///< mutex released
    CondWait,      ///< wait completed (mutex re-acquired)
    CondSignal,    ///< signal/broadcast issued
    BarrierWait,   ///< barrier passed
    ThreadCreate,  ///< child spawned (other = child tid)
    ThreadJoin,    ///< join completed (other = joined tid)
    ThreadStart,   ///< first scheduling of a thread
    ThreadExit,    ///< thread finished
    Output,        ///< output system call performed
};

/** Printable event-kind name. */
const char *eventKindName(EventKind k);

/** One observable action. */
struct Event
{
    EventKind kind;
    ThreadId tid = -1;      ///< acting thread
    int pc = -1;            ///< program counter of the instruction
    std::uint64_t step = 0; ///< global step index at emission

    int cell = -1;          ///< flat cell id (memory events)
    bool atomic = false;    ///< access from AtomicRmW
    std::uint64_t occurrence = 0; ///< nth dynamic execution of (tid, pc)
    std::uint64_t cell_occurrence = 0; ///< nth access of (tid, cell)
    ir::SyncId sid = -1;    ///< sync object (sync events)
    ThreadId other = -1;    ///< peer thread (create/join)
    ir::SourceLoc loc;      ///< pseudo source location
};

/**
 * Event consumer interface.
 *
 * Sinks attach to an Interpreter; they are observers and must not
 * mutate execution state.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Called for every event, in program order. */
    virtual void onEvent(const Event &ev) = 0;

    /**
     * True when the sink must observe each event at the instruction
     * that produced it, before the interpreter executes anything
     * else. The interpreter batches events for ordinary sinks
     * (delivering at segment boundaries, still in program order);
     * sinks whose onEvent reads live interpreter state — e.g. a
     * semantic monitor sampling memory cells — override this.
     */
    virtual bool immediate() const { return false; }
};

} // namespace portend::rt

#endif // PORTEND_RT_EVENTS_H
