/**
 * @file
 * Static may-write analysis over PIL programs.
 *
 * Computes, per function, the set of globals the function (or any
 * function it may transitively call or spawn) can write. Portend's
 * timeout diagnosis uses this to tell an infinite loop (the spin
 * condition can never change: no live thread may write the cells the
 * spinner reads) from ad-hoc synchronization (another thread could
 * write them — only the enforced ordering prevents it), mirroring
 * the loop-invariant exit-condition analysis of the paper (§3.2).
 */

#ifndef PORTEND_RT_STATICINFO_H
#define PORTEND_RT_STATICINFO_H

#include <set>
#include <vector>

#include "ir/program.h"
#include "rt/vmstate.h"

namespace portend::rt {

/**
 * Per-program static facts; compute once, share across analyses.
 */
class StaticInfo
{
  public:
    /** Run the fixpoint analysis on @p p. */
    explicit StaticInfo(const ir::Program &p);

    /** Globals function @p f may write, transitively (gid set). */
    const std::set<ir::GlobalId> &mayWrite(ir::FuncId f) const;

    /**
     * Globals thread @p tid of @p state may still write, from any
     * function on its current call stack.
     */
    std::set<ir::GlobalId> mayWriteOnStack(const VmState &state,
                                           ThreadId tid) const;

    /** Number of branch instructions in the whole program. */
    int numBranches() const { return num_branches; }

    /** Number of potential preemption-point instructions. */
    int numPreemptionPoints() const { return num_preemption_points; }

  private:
    const ir::Program &prog;
    std::vector<std::set<ir::GlobalId>> may_write;
    int num_branches = 0;
    int num_preemption_points = 0;
};

} // namespace portend::rt

#endif // PORTEND_RT_STATICINFO_H
