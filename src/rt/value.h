/**
 * @file
 * Tagged runtime value: concrete int64 inline, ExprPtr only when
 * symbolic.
 *
 * Before this header every register and memory cell held a
 * sym::ExprPtr, so a fully concrete run paid a heap allocation and
 * two atomic refcount bumps per produced value. rt::Value keeps the
 * common case — a concrete integer with a width — in 16 inline bytes
 * and only boxes an expression node when the value actually mentions
 * a symbol. The boxing boundary is exact: because the expression
 * factories fold constants (an expression with no symbols is always a
 * single Const node), a Value is symbolic iff its expression is
 * non-Const, and converting back and forth is lossless.
 *
 * Arithmetic on Values must be bit-for-bit identical to arithmetic on
 * expressions: valueBinary/valueUnary reproduce Expr::binary/unary's
 * width rules (operand width = wider operand; comparisons and the
 * logical connectives produce I1; LNot produces I1) and delegate to
 * the very same Expr::applyBinary/applyUnary folds. The algebraic
 * identity rewrites in sym/simplify.cc only fire when at least one
 * operand is symbolic, so the concrete fast path skipping them cannot
 * change any result.
 */

#ifndef PORTEND_RT_VALUE_H
#define PORTEND_RT_VALUE_H

#include <cstdint>
#include <utility>

#include "support/logging.h"
#include "sym/expr.h"

namespace portend::rt {

/** Count of Value→ExprPtr boxing conversions on this thread since
 *  process start (interpreter stats ledger). */
std::uint64_t valuesBoxed();

namespace detail {
void noteBoxed();
} // namespace detail

/**
 * A runtime value: either a concrete (int64, width) pair stored
 * inline, or a boxed symbolic expression. Default-constructed Values
 * are concrete 0 of width I64, matching Expr::constant(0).
 */
class Value
{
  public:
    Value() = default;

    /** Wrap an expression, unboxing Const nodes to the inline form. */
    explicit Value(const sym::ExprPtr &e)
    {
        PORTEND_ASSERT(e, "null expression wrapped in Value");
        if (e->isConcrete()) {
            c_ = e->constValue();
            w_ = e->width();
        } else {
            w_ = e->width();
            e_ = e;
        }
    }

    explicit Value(sym::ExprPtr &&e)
    {
        PORTEND_ASSERT(e, "null expression wrapped in Value");
        if (e->isConcrete()) {
            c_ = e->constValue();
            w_ = e->width();
        } else {
            w_ = e->width();
            e_ = std::move(e);
        }
    }

    /** Concrete literal, truncated (sign-extending) to @p w exactly
     *  like Expr::constant. */
    static Value
    ofConst(std::int64_t v, sym::Width w = sym::Width::I64)
    {
        Value out;
        out.c_ = sym::Expr::truncate(v, w);
        out.w_ = w;
        return out;
    }

    /** True when the value mentions no symbols. */
    bool isConcrete() const { return e_ == nullptr; }

    /** Concrete payload; only valid when isConcrete(). */
    std::int64_t
    constValue() const
    {
        PORTEND_ASSERT(isConcrete(), "constValue of symbolic value");
        return c_;
    }

    /** Bit width (concrete or symbolic). */
    sym::Width width() const { return w_; }

    /** The boxed expression; only valid when symbolic. */
    const sym::ExprPtr &
    expr() const
    {
        PORTEND_ASSERT(!isConcrete(), "expr() of concrete value");
        return e_;
    }

    /**
     * Expression view of the value, boxing a Const node for concrete
     * values. This is the only allocation point in the Value API; it
     * feeds the values-boxed ledger entry.
     */
    sym::ExprPtr
    toExpr() const
    {
        if (e_)
            return e_;
        detail::noteBoxed();
        return sym::Expr::constant(c_, w_);
    }

    /**
     * Structural equality, matching Expr::equals on the boxed forms:
     * two concrete values are equal iff width and payload agree (a
     * Const node's identity), and a concrete value never equals a
     * symbolic one (their kinds differ).
     */
    bool
    equals(const Value &o) const
    {
        if (isConcrete() != o.isConcrete())
            return false;
        if (isConcrete())
            return w_ == o.w_ && c_ == o.c_;
        return e_->equals(*o.e_);
    }

    /** Evaluate under @p m (concrete values are their own result). */
    std::int64_t
    evaluate(const sym::Model &m) const
    {
        return e_ ? e_->evaluate(m) : c_;
    }

  private:
    std::int64_t c_ = 0;
    sym::Width w_ = sym::Width::I64;
    sym::ExprPtr e_;
};

namespace detail {

/** Result width of a binary op, mirroring Expr::binary. */
inline sym::Width
binaryResultWidth(sym::ExprKind k, sym::Width opw)
{
    switch (k) {
      case sym::ExprKind::Eq:
      case sym::ExprKind::Ne:
      case sym::ExprKind::Slt:
      case sym::ExprKind::Sle:
      case sym::ExprKind::Sgt:
      case sym::ExprKind::Sge:
      case sym::ExprKind::LAnd:
      case sym::ExprKind::LOr:
        return sym::Width::I1;
      default:
        return opw;
    }
}

} // namespace detail

/**
 * Binary operation over Values. Concrete operands fold inline via
 * Expr::applyBinary under Expr::binary's exact width rules; a
 * symbolic operand falls back to the expression factory (whose
 * rewrites then apply, as before).
 */
inline Value
valueBinary(sym::ExprKind k, const Value &a, const Value &b)
{
    if (a.isConcrete() && b.isConcrete()) {
        const sym::Width opw =
            sym::widthBits(a.width()) >= sym::widthBits(b.width())
                ? a.width()
                : b.width();
        return Value::ofConst(
            sym::Expr::applyBinary(k, a.constValue(), b.constValue(),
                                   opw),
            detail::binaryResultWidth(k, opw));
    }
    return Value(sym::Expr::binary(k, a.toExpr(), b.toExpr()));
}

/** Unary operation over Values; see valueBinary. */
inline Value
valueUnary(sym::ExprKind k, const Value &a)
{
    if (a.isConcrete()) {
        const sym::Width w =
            k == sym::ExprKind::LNot ? sym::Width::I1 : a.width();
        return Value::ofConst(
            sym::Expr::applyUnary(k, a.constValue(), w), w);
    }
    return Value(sym::Expr::unary(k, a.toExpr()));
}

} // namespace portend::rt

#endif // PORTEND_RT_VALUE_H
