#include "rt/decode.h"

#include <map>
#include <mutex>

#include "support/hash.h"
#include "support/logging.h"

namespace portend::rt {

namespace {

PreemptClass
preemptClassOf(ir::Op op)
{
    switch (op) {
      case ir::Op::MutexLock:
      case ir::Op::MutexUnlock:
      case ir::Op::CondWait:
      case ir::Op::CondSignal:
      case ir::Op::CondBroadcast:
      case ir::Op::BarrierWait:
      case ir::Op::ThreadCreate:
      case ir::Op::ThreadJoin:
      case ir::Op::Yield:
      case ir::Op::Sleep:
        return PreemptClass::Always;
      case ir::Op::Output:
      case ir::Op::OutputStr:
        return PreemptClass::Output;
      case ir::Op::Load:
      case ir::Op::Store:
      case ir::Op::AtomicRmW:
        return PreemptClass::Memory;
      default:
        return PreemptClass::Never;
    }
}

void
decodeOperand(const ir::Operand &o, std::int32_t &slot,
              std::int64_t &imm)
{
    if (o.isReg()) {
        slot = o.reg;
    } else if (o.isImm()) {
        slot = kOpImm;
        imm = o.imm;
    } else {
        slot = kOpAbsent;
    }
}

/** Accumulator for programFingerprint. */
struct Fp
{
    std::uint64_t h = kFnvOffset;
    void add(std::uint64_t v) { h = hashCombine(h, v); }
    void addI(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }
    void add(const std::string &s) { h = fnv1a(s, h); add(s.size()); }
};

} // namespace

std::uint64_t
programFingerprint(const ir::Program &p)
{
    Fp fp;
    fp.add(p.name);
    fp.addI(p.entry);
    fp.add(p.globals.size());
    for (const auto &g : p.globals) {
        fp.add(g.name);
        fp.addI(g.size);
        fp.add(g.init.size());
        for (std::int64_t v : g.init)
            fp.addI(v);
    }
    for (const auto &names :
         {p.mutex_names, p.cond_names, p.barrier_names}) {
        fp.add(names.size());
        for (const auto &n : names)
            fp.add(n);
    }
    fp.add(p.barrier_counts.size());
    for (int c : p.barrier_counts)
        fp.addI(c);
    fp.add(p.inputs.size());
    for (const auto &in : p.inputs) {
        fp.add(in.name);
        fp.addI(in.lo);
        fp.addI(in.hi);
    }
    fp.add(p.functions.size());
    for (const auto &fn : p.functions) {
        fp.add(fn.name);
        fp.addI(fn.num_params);
        fp.addI(fn.num_regs);
        fp.add(fn.blocks.size());
        for (const auto &bb : fn.blocks) {
            fp.add(bb.name);
            fp.add(bb.insts.size());
            for (const auto &in : bb.insts) {
                fp.addI(static_cast<int>(in.op));
                fp.addI(in.dst);
                for (const ir::Operand *o : {&in.a, &in.b, &in.c}) {
                    fp.addI(static_cast<int>(o->kind));
                    fp.addI(o->reg);
                    fp.addI(o->imm);
                }
                fp.addI(static_cast<int>(in.kind));
                fp.addI(static_cast<int>(in.width));
                fp.addI(in.gid);
                fp.addI(in.sid);
                fp.addI(in.sid2);
                fp.addI(in.fid);
                fp.addI(in.then_block);
                fp.addI(in.else_block);
                fp.add(in.text);
                fp.addI(in.lo);
                fp.addI(in.hi);
                fp.add(in.loc.file);
                fp.addI(in.loc.line);
                fp.addI(in.pc);
            }
        }
    }
    return fp.h;
}

namespace {

std::shared_ptr<const DecodedProgram>
buildDecoded(const ir::Program &p)
{
    auto dp = std::make_shared<DecodedProgram>();
    dp->num_insts = p.numInsts();
    dp->num_cells = p.numCells();
    dp->entry = p.entry;
    dp->funcs.reserve(p.functions.size());

    for (const auto &fn : p.functions) {
        DecodedFunction df;
        df.num_regs = fn.num_regs;
        df.num_params = fn.num_params;
        df.block_start.reserve(fn.blocks.size());
        std::int32_t ip = 0;
        for (const auto &bb : fn.blocks) {
            df.block_start.push_back(ip);
            ip += static_cast<std::int32_t>(bb.insts.size());
        }
        df.insts.reserve(static_cast<std::size_t>(ip));
        for (const auto &bb : fn.blocks) {
            for (const auto &in : bb.insts) {
                DecodedInst di;
                di.op = in.op;
                di.preempt = preemptClassOf(in.op);
                di.kind = in.kind;
                di.width = in.width;
                di.dst = in.dst;
                decodeOperand(in.a, di.a, di.a_imm);
                decodeOperand(in.b, di.b, di.b_imm);
                decodeOperand(in.c, di.c, di.c_imm);
                di.pc = in.pc;
                di.gid = in.gid;
                if (in.gid >= 0) {
                    di.cell_base = p.cellId(in.gid, 0);
                    di.gsize = p.global(in.gid).size;
                }
                di.sid = in.sid;
                di.sid2 = in.sid2;
                di.fid = in.fid;
                if (in.then_block >= 0)
                    di.then_ip = df.block_start[static_cast<
                        std::size_t>(in.then_block)];
                if (in.else_block >= 0)
                    di.else_ip = df.block_start[static_cast<
                        std::size_t>(in.else_block)];
                if (in.fid >= 0) {
                    const ir::Function &callee = p.function(in.fid);
                    di.callee_regs = callee.num_regs;
                    di.callee_params = callee.num_params;
                }
                di.lo = in.lo;
                di.hi = in.hi;
                di.text = in.text;
                di.loc = in.loc;
                df.insts.push_back(std::move(di));
            }
        }
        dp->funcs.push_back(std::move(df));
    }
    return dp;
}

/** True when a cached decode plausibly belongs to @p p (guards the
 *  astronomically unlikely fingerprint collision with cheap shape
 *  checks). */
bool
matchesShape(const DecodedProgram &d, const ir::Program &p)
{
    return d.num_insts == p.numInsts() && d.num_cells == p.numCells() &&
           d.entry == p.entry && d.funcs.size() == p.functions.size();
}

} // namespace

std::shared_ptr<const DecodedProgram>
decodeProgram(const ir::Program &p)
{
    PORTEND_ASSERT(p.finalized(), "decoding a non-finalized program");

    static std::mutex mu;
    static std::map<std::uint64_t,
                    std::weak_ptr<const DecodedProgram>>
        cache;

    // Per-instance fast path: the program object carries its own
    // decode after the first call, skipping the fingerprint hash
    // entirely (interpreters are built per analysis run, thousands
    // of times per program).
    {
        std::lock_guard<std::mutex> lock(mu);
        if (p.runtime_cache) {
            auto sp = std::static_pointer_cast<const DecodedProgram>(
                p.runtime_cache);
            if (matchesShape(*sp, p))
                return sp;
        }
    }

    const std::uint64_t fp = programFingerprint(p);
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(fp);
        if (it != cache.end()) {
            if (auto sp = it->second.lock();
                sp && matchesShape(*sp, p)) {
                p.runtime_cache = sp;
                return sp;
            }
        }
    }

    auto fresh = buildDecoded(p);
    {
        std::lock_guard<std::mutex> lock(mu);
        // The fuzzer decodes thousands of short-lived programs; sweep
        // expired entries so the cache stays bounded.
        if (cache.size() >= 1024) {
            for (auto it = cache.begin(); it != cache.end();) {
                if (it->second.expired())
                    it = cache.erase(it);
                else
                    ++it;
            }
        }
        cache[fp] = fresh;
        p.runtime_cache = fresh;
    }
    return fresh;
}

int
framePc(const ir::Function &fn, int ip)
{
    for (const auto &bb : fn.blocks) {
        if (ip < static_cast<int>(bb.insts.size()))
            return bb.insts[static_cast<std::size_t>(ip)].pc;
        ip -= static_cast<int>(bb.insts.size());
    }
    return -1;
}

} // namespace portend::rt
