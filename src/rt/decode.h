/**
 * @file
 * One-time instruction decode pass for the interpreter hot loop.
 *
 * The original step loop re-derived everything per instruction: it
 * indexed function → block → instruction, re-classified the opcode as
 * a preemption point, materialized immediates as Const expression
 * nodes, and chased `then_block`/`else_block` through the block
 * table. The decode pass (valgrind's translate-to-ucode idiom) does
 * that work once per program: each function's blocks are flattened
 * into one DecodedInst array addressed by a flat instruction pointer,
 * with operands pre-classified (register index vs inline immediate),
 * branch targets resolved to flat ips, call linkage (callee register
 * and parameter counts) cached, and the preemption class precomputed.
 *
 * Decoded programs are immutable and shared: a fingerprint-keyed
 * registry hands the same DecodedProgram to every interpreter running
 * the same program (the parallel classifier builds many interpreters
 * per program). DecodedInst is fully self-contained — it copies the
 * text/loc fields it needs and holds no pointers into the source
 * ir::Program — so a cached entry can outlive the Program object it
 * was decoded from.
 */

#ifndef PORTEND_RT_DECODE_H
#define PORTEND_RT_DECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace portend::rt {

/** Preemption classification of an opcode (see
 *  Interpreter::isPreemptionPoint for the dynamic part). */
enum class PreemptClass : std::uint8_t {
    Never,  ///< plain computation
    Always, ///< sync / thread ops, yield, sleep
    Output, ///< preemption point iff preempt_on_output
    Memory, ///< depends on preempt_on_memory / watched cells
};

/** Operand encoding in a DecodedInst: a register index is >= 0. */
constexpr std::int32_t kOpImm = -1;    ///< inline immediate operand
constexpr std::int32_t kOpAbsent = -2; ///< operand not present

/**
 * One decoded instruction. Field meanings follow ir::Inst, with
 * block-relative targets replaced by flat instruction pointers and
 * memory/call metadata resolved.
 */
struct DecodedInst
{
    ir::Op op = ir::Op::Nop;
    PreemptClass preempt = PreemptClass::Never;
    sym::ExprKind kind = sym::ExprKind::Add;
    sym::Width width = sym::Width::I64;

    ir::Reg dst = -1;

    /** Operand a/b/c: register index, kOpImm, or kOpAbsent. */
    std::int32_t a = kOpAbsent;
    std::int32_t b = kOpAbsent;
    std::int32_t c = kOpAbsent;
    std::int64_t a_imm = 0;
    std::int64_t b_imm = 0;
    std::int64_t c_imm = 0;

    /** Global program counter (decoded-site id; dense 0..n-1). */
    std::int32_t pc = -1;

    /** Memory ops: global id, flat id of its cell 0, and its size. */
    ir::GlobalId gid = -1;
    std::int32_t cell_base = -1;
    std::int32_t gsize = 0;

    ir::SyncId sid = -1;
    ir::SyncId sid2 = -1;
    ir::FuncId fid = -1;

    /** Br/Jmp targets as flat ips within the function. */
    std::int32_t then_ip = -1;
    std::int32_t else_ip = -1;

    /** Call/ThreadCreate: callee frame shape. */
    std::int32_t callee_regs = 0;
    std::int32_t callee_params = 0;

    std::int64_t lo = INT64_MIN;
    std::int64_t hi = INT64_MAX;

    std::string text;
    ir::SourceLoc loc;
};

/** One function, blocks concatenated in declaration order. */
struct DecodedFunction
{
    std::vector<DecodedInst> insts;
    /** Flat ip of each block's first instruction. */
    std::vector<std::int32_t> block_start;
    std::int32_t num_regs = 0;
    std::int32_t num_params = 0;
};

/** A fully decoded program. */
struct DecodedProgram
{
    std::vector<DecodedFunction> funcs;
    int num_insts = 0; ///< dense pc space size
    int num_cells = 0; ///< flat memory cell count
    ir::FuncId entry = 0;

    const DecodedFunction &
    function(ir::FuncId f) const
    {
        return funcs[static_cast<std::size_t>(f)];
    }
};

/**
 * Decode @p p, or return the cached decode of a fingerprint-equal
 * program. @p p must be finalized. Thread-safe.
 */
std::shared_ptr<const DecodedProgram> decodeProgram(const ir::Program &p);

/**
 * Semantic fingerprint of a finalized program (stable across
 * processes); the decode-cache key.
 */
std::uint64_t programFingerprint(const ir::Program &p);

/**
 * Map a flat instruction pointer within @p fn back to the dense
 * global pc, walking the block table (replay recording uses this to
 * name the next instruction of a suspended frame).
 */
int framePc(const ir::Function &fn, int ip);

} // namespace portend::rt

#endif // PORTEND_RT_DECODE_H
