/**
 * @file
 * Multi-path symbolic exploration (this repository's KLEE/Cloud9
 * exploration layer).
 *
 * The Executor implements the interpreter's ForkHook: when execution
 * reaches a control decision on symbolic data, it checks which sides
 * are feasible under the path condition and forks the VM state for
 * the untaken side (Fig. 5's execution tree). Exploration is bounded
 * by Mp, the number of completed paths to collect (paper §3.3's
 * "upper bound on the number of primary paths").
 *
 * Fork cost: a worklist entry is a copy-on-write VmState checkpoint
 * (rt/vmstate.h) — the fork copies page/stack/map pointers, O(pages)
 * not O(state), and stays immutable while queued. The running
 * interpreter's write barriers unshare only what it touches, and a
 * resumed state pays the same way; states that are pruned or never
 * adopted cost nothing beyond their pointer copies.
 */

#ifndef PORTEND_EXEC_EXECUTOR_H
#define PORTEND_EXEC_EXECUTOR_H

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "rt/interpreter.h"
#include "sym/solver.h"

namespace portend::exec {

/** Exploration limits. */
struct ExecutorOptions
{
    /** Mp: stop after collecting this many accepted paths. */
    int max_paths = 5;

    /** Safety bound on total states ever enqueued. */
    int max_states = 512;

    /**
     * Fork-depth budget: stop forking once a path has accumulated
     * this many constraints. Deep forks correspond to branches far
     * from the race window (each feasible fork appends one
     * constraint), so the bound keeps exploration near the race the
     * way Portend's analysis window does.
     */
    int max_fork_depth = 32;

    /** Solver limits. */
    sym::SolverOptions solver;
};

/** One completed execution path. */
struct PathResult
{
    rt::VmState state;  ///< finished state (outcome set)
    sym::Model model;   ///< satisfying assignment of its path condition
};

/**
 * Bounded multi-path explorer.
 *
 * Usage: configure an Interpreter with symbolic inputs, then call
 * explore() with a policy factory (a fresh policy per resumed state;
 * policies must derive any cursor state from the VmState) and an
 * acceptance predicate (e.g., "the racing cell was touched by both
 * threads").
 */
class Executor : public rt::ForkHook
{
  public:
    explicit Executor(ExecutorOptions opts = {});

    /** Fresh-policy factory, invoked once per resumed state. */
    using PolicyFactory =
        std::function<std::unique_ptr<rt::SchedulePolicy>()>;

    /** Path acceptance predicate. */
    using Accept = std::function<bool(const rt::VmState &)>;

    /**
     * Explore from @p interp's current state until max_paths
     * accepted paths are collected or the state space is exhausted.
     *
     * @param interp       interpreter whose state seeds exploration
     * @param make_policy  produces the schedule policy per segment
     * @param accept       filters completed paths
     * @return accepted paths with satisfying models
     */
    std::vector<PathResult> explore(rt::Interpreter &interp,
                                    const PolicyFactory &make_policy,
                                    const Accept &accept);

    /** @name ForkHook interface
     * @{
     */
    bool decide(rt::Interpreter &interp, const sym::ExprPtr &cond,
                rt::DecisionKind kind) override;
    std::int64_t concretize(rt::Interpreter &interp,
                            const sym::ExprPtr &val) override;
    /** @} */

    /** The underlying solver (exposed for output comparison). */
    sym::Solver &solver() { return solver_; }

    /** Total states enqueued over the lifetime of this executor. */
    int statesCreated() const { return states_created; }

  private:
    ExecutorOptions opts;
    sym::Solver solver_;
    std::deque<rt::VmState> worklist;
    int states_created = 0;
};

/**
 * Complete a model so that every symbol of @p e is bound; unbound
 * symbols get their domain lower bound.
 */
void completeModel(const sym::ExprPtr &e, sym::Model &m);

} // namespace portend::exec

#endif // PORTEND_EXEC_EXECUTOR_H
