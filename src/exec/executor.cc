#include "exec/executor.h"

#include "support/logging.h"
#include "support/observe.h"
#include "support/trace.h"
#include "sym/simplify.h"

namespace portend::exec {

Executor::Executor(ExecutorOptions opts)
    : opts(opts), solver_(opts.solver)
{}

void
completeModel(const sym::ExprPtr &e, sym::Model &m)
{
    std::map<int, sym::ExprPtr> symbols;
    e->collectSymbolNodes(symbols);
    for (const auto &[id, node] : symbols) {
        if (!m.values.count(id))
            m.values[id] = node->symbolLo();
    }
}

bool
Executor::decide(rt::Interpreter &interp, const sym::ExprPtr &cond,
                 rt::DecisionKind kind)
{
    (void)kind;
    const auto &pc = interp.state().path.constraints();

    sym::SatResult true_side = solver_.checkSat(
        [&] {
            auto q = pc;
            q.push_back(cond);
            return q;
        }(),
        nullptr);
    sym::SatResult false_side = solver_.checkSat(
        [&] {
            auto q = pc;
            q.push_back(sym::negate(cond));
            return q;
        }(),
        nullptr);

    const bool t_ok = true_side != sym::SatResult::Unsat;
    const bool f_ok = false_side != sym::SatResult::Unsat;

    if (t_ok && f_ok) {
        // Fork the false side if we still have state and fork-depth
        // budget; the clone re-executes the deciding instruction and
        // consumes the forced decision instead of calling back here.
        // The clone is a COW checkpoint: cheap to take, and immutable
        // on the worklist until adopted.
        if (states_created < opts.max_states &&
            static_cast<int>(pc.size()) < opts.max_fork_depth) {
            OBS_SPAN("sym", "path-fork");
            if (obs::Collector *c = obs::collector())
                c->add(obs::Counter::SymPathForks, 1);
            rt::VmState clone = interp.state();
            clone.forced_decisions.push_back(false);
            // The clone re-executes the deciding instruction inside
            // the same scheduling segment; no scheduler pick must
            // happen in between or trace cursors would shift.
            clone.resume_in_segment = true;
            clone.resume_first = true;
            worklist.push_back(std::move(clone));
            states_created += 1;
        }
        return true;
    }
    if (t_ok)
        return true;
    if (f_ok)
        return false;
    // Both sides unsatisfiable: the path condition itself is
    // infeasible (should have been pruned earlier); take true and
    // let the final model check discard the path.
    PORTEND_WARN("decision with infeasible path condition");
    return true;
}

std::int64_t
Executor::concretize(rt::Interpreter &interp, const sym::ExprPtr &val)
{
    sym::Model m;
    sym::SatResult r =
        solver_.checkSat(interp.state().path.constraints(), &m);
    if (r == sym::SatResult::Unsat)
        PORTEND_WARN("concretizing under infeasible path condition");
    completeModel(val, m);
    return val->evaluate(m);
}

std::vector<PathResult>
Executor::explore(rt::Interpreter &interp,
                  const PolicyFactory &make_policy, const Accept &accept)
{
    std::vector<PathResult> results;
    worklist.clear();
    worklist.push_back(interp.state());
    states_created += 1;

    while (!worklist.empty() &&
           static_cast<int>(results.size()) < opts.max_paths) {
        rt::VmState state = std::move(worklist.front());
        worklist.pop_front();

        interp.setState(std::move(state));
        std::unique_ptr<rt::SchedulePolicy> policy = make_policy();
        interp.setPolicy(policy.get());
        interp.setForkHook(this);

        rt::RunOutcome outcome = interp.run();
        interp.setPolicy(nullptr);

        if (outcome == rt::RunOutcome::Aborted)
            continue; // pruned: schedule diverged from the trace
        if (!accept(interp.state()))
            continue;

        sym::Model model;
        sym::SatResult sat = solver_.checkSat(
            interp.state().path.constraints(), &model);
        if (sat == sym::SatResult::Unsat)
            continue; // infeasible leftovers of unknown decisions

        PathResult pr;
        pr.state = interp.state();
        pr.model = std::move(model);
        results.push_back(std::move(pr));
    }
    return results;
}

} // namespace portend::exec
