#include "portend/analyzer.h"

#include <cstdio>

#include "portend/outputcmp.h"
#include "support/logging.h"
#include "support/observe.h"
#include "support/stats.h"
#include "support/trace.h"

namespace portend::core {

namespace {

/** Concrete input vector for a symbolic env log under a model. */
std::vector<std::int64_t>
concretizeEnvLog(const std::vector<rt::VmState::EnvRead> &log,
                 const sym::Model &model)
{
    std::vector<std::int64_t> out;
    out.reserve(log.size());
    for (const auto &r : log) {
        if (!r.symbolic) {
            out.push_back(r.value);
        } else if (model.values.count(r.sym_id)) {
            out.push_back(model.values.at(r.sym_id));
        } else {
            // Unconstrained symbol: any domain value works; use the
            // lower bound for determinism.
            out.push_back(r.lo);
        }
    }
    return out;
}

/**
 * Named witness bindings for the symbolic entries of an env log,
 * using the same model/fallback rule as concretizeEnvLog so the
 * witness names exactly the values replay will consume.
 */
std::vector<WitnessInput>
witnessOf(const std::vector<rt::VmState::EnvRead> &log,
          const sym::Model &model)
{
    std::vector<WitnessInput> out;
    for (const auto &r : log) {
        if (!r.symbolic)
            continue;
        WitnessInput w;
        w.name = r.name.empty() ? "sym" + std::to_string(r.sym_id)
                                : r.name;
        w.value = model.values.count(r.sym_id)
                      ? model.values.at(r.sym_id)
                      : r.lo;
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace

bool
PrimarySearchPolicy::racePassed(const rt::VmState &state,
                                const race::RaceReport &race)
{
    if (state.cellAccessCount(race.first.tid, race.cell) <
        race.first.cell_occurrence) {
        return false;
    }
    return state.cellAccessCount(race.second.tid, race.cell) >=
           race.second.cell_occurrence;
}

rt::ThreadId
PrimarySearchPolicy::pick(const rt::VmState &state,
                          const std::vector<rt::ThreadId> &runnable)
{
    const std::uint64_t idx = state.stats.preemption_points;
    const bool passed = racePassed(state, race);

    if (idx < trace.decisions.size()) {
        const replay::SchedDecision &d = trace.decisions[idx];
        for (rt::ThreadId t : runnable) {
            if (t == d.tid)
                return t;
        }
        if (!passed)
            return -1; // strict pre-race: prune divergent path
    } else if (!passed) {
        return -1; // trace exhausted without reaching the race
    }

    // Tolerant post-race: rotate through runnable threads so that
    // busy-wait phases keep making progress (a keep-current policy
    // would spin one thread forever).
    for (rt::ThreadId t : runnable) {
        if (t > state.current)
            return t;
    }
    return runnable.front();
}

RaceAnalyzer::RaceAnalyzer(const ir::Program &prog,
                           const PortendOptions &opts)
    : prog(prog), opts(opts),
      owned_static(std::make_unique<rt::StaticInfo>(prog)),
      static_info(*owned_static)
{}

RaceAnalyzer::RaceAnalyzer(const ir::Program &prog,
                           const PortendOptions &opts,
                           const rt::StaticInfo &shared_static)
    : prog(prog), opts(opts), static_info(shared_static)
{}

rt::ExecOptions
RaceAnalyzer::replayOptions(const PortendOptions &opts)
{
    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.max_steps = opts.max_steps;
    return eo;
}

rt::ExecOptions
RaceAnalyzer::baseOptions() const
{
    return replayOptions(opts);
}

const replay::CheckpointLadder::Rung *
RaceAnalyzer::usableRung(const replay::CheckpointLadder *ladder,
                         const race::RaceReport &race,
                         const std::vector<std::int64_t> &inputs) const
{
    if (!ladder || ladder->inputs() != inputs)
        return nullptr;
    const replay::CheckpointLadder::Rung *rung = ladder->find(
        race.first.tid, race.cell, race.first.cell_occurrence);
    // A rung past this analyzer's budget is unusable: a from-0
    // replay under the (possibly tighter, sliced) budget would have
    // timed out before reaching it, and the ladder must never change
    // verdicts.
    if (rung && rung->state.global_step >= opts.max_steps)
        return nullptr;
    return rung;
}

ViolationKind
RaceAnalyzer::violationOf(rt::RunOutcome o) const
{
    switch (o) {
      case rt::RunOutcome::CrashOob:
      case rt::RunOutcome::CrashDivZero:
        return ViolationKind::Crash;
      case rt::RunOutcome::Deadlock:
        return ViolationKind::Deadlock;
      case rt::RunOutcome::AssertFail:
        return ViolationKind::SemanticAssert;
      case rt::RunOutcome::TimedOut:
        return ViolationKind::InfiniteLoop;
      default:
        return ViolationKind::None;
    }
}

bool
RaceAnalyzer::diagnoseInfiniteLoop(const rt::VmState &state) const
{
    // A timed-out execution spins in its runnable threads. If some
    // other live thread may still write a global the spinner reads,
    // the loop is ad-hoc synchronization held back by the enforced
    // schedule; otherwise the exit condition is invariant and this
    // is an infinite loop (paper §3.2, [60]).
    // Only threads that executed recently are spinners; threads the
    // enforcement policy held back are runnable but idle, and their
    // (empty) read sets must not be mistaken for invariant loops.
    const std::uint64_t activity_cutoff = 512;
    for (const auto &spinner : state.threads) {
        if (!spinner.runnable())
            continue;
        if (spinner.last_step + activity_cutoff < state.global_step)
            continue;
        std::set<ir::GlobalId> read_globals;
        for (int cell : spinner.recent_reads) {
            ir::GlobalId g = prog.cellGlobal(cell);
            if (g >= 0)
                read_globals.insert(g);
        }
        bool someone_can_write = false;
        for (const auto &other : state.threads) {
            if (other.tid == spinner.tid ||
                other.status == rt::ThreadStatus::Exited) {
                continue;
            }
            std::set<ir::GlobalId> writes =
                static_info.mayWriteOnStack(state, other.tid);
            for (ir::GlobalId g : read_globals) {
                if (writes.count(g)) {
                    someone_can_write = true;
                    break;
                }
            }
            if (someone_can_write)
                break;
        }
        if (!someone_can_write)
            return true; // invariant exit condition
    }
    return false;
}

namespace {

/** Collect globals loaded into the defining chain of @p reg. */
void
collectChainLoads(const std::vector<ir::Inst> &insts, int from,
                  ir::Reg reg, std::set<ir::GlobalId> &out,
                  int depth = 0)
{
    if (depth > 16 || reg < 0)
        return;
    for (int i = from; i >= 0; --i) {
        const ir::Inst &inst = insts[i];
        if (inst.dst != reg)
            continue;
        if (inst.op == ir::Op::Load || inst.op == ir::Op::AtomicRmW) {
            out.insert(inst.gid);
            return;
        }
        for (const ir::Operand *o : {&inst.a, &inst.b, &inst.c}) {
            if (o->isReg()) {
                collectChainLoads(insts, i - 1, o->reg, out,
                                  depth + 1);
            }
        }
        return;
    }
}

} // namespace

bool
RaceAnalyzer::crashInvolvesRaceCell(const rt::VmState &final_state,
                                    const race::RaceReport &race) const
{
    const int pc = final_state.outcome_pc;
    if (pc < 0 || pc >= prog.numInsts())
        return true; // no faulting site: attribute conservatively
    ir::GlobalId race_global = prog.cellGlobal(race.cell);
    ir::Program::PcLoc loc = prog.pcLoc(pc);
    const auto &insts =
        prog.functions[loc.func].blocks[loc.block].insts;
    const ir::Inst &fault = insts[loc.index];

    // Direct access to the racing global at the faulting site.
    if ((fault.op == ir::Op::Load || fault.op == ir::Op::Store ||
         fault.op == ir::Op::AtomicRmW) &&
        fault.gid == race_global) {
        return true;
    }

    std::set<ir::GlobalId> chain;
    for (const ir::Operand *o : {&fault.a, &fault.b, &fault.c}) {
        if (o->isReg())
            collectChainLoads(insts, loc.index - 1, o->reg, chain);
    }
    if (chain.empty())
        return true; // nothing to pin the crash on: attribute
    return chain.count(race_global) > 0;
}

bool
RaceAnalyzer::statesEqual(const rt::VmState &a, const rt::VmState &b)
{
    // The Record/Replay-Analyzer criterion [45]: the *memory image*
    // immediately after the race. Thread scheduling positions are
    // deliberately excluded — the alternate ordering trivially
    // perturbs them, and [45] diffs memory/registers, not schedules.
    if (a.mem.size() != b.mem.size())
        return false;
    for (std::size_t i = 0; i < a.mem.size();) {
        // Pages the two images still share are equal by construction.
        if (a.mem.sharesPage(i, b.mem)) {
            i = a.mem.pageEnd(i);
            continue;
        }
        if (!a.mem[i].equals(b.mem[i]))
            return false;
        ++i;
    }
    return true;
}

void
RaceAnalyzer::absorbStats(AnalysisStats &stats, const rt::VmState &s)
{
    stats.preemptions += s.stats.preemption_points;
    stats.sym_branches += s.stats.symbolic_branches;
    stats.steps += s.stats.steps;
}

/**
 * Enforce the alternate ordering from a pre-race state and observe
 * the consequences. Returns OutSame with the alternate's outputs
 * when the alternate completed normally (the caller compares
 * outputs), or the violating/blocking verdict otherwise.
 */
RaceAnalyzer::SingleResult
RaceAnalyzer::runAlternateFromState(
    const rt::VmState &pre, const race::RaceReport &race,
    const std::vector<std::int64_t> &inputs,
    const explore::PostSpec &post,
    std::uint64_t primary_total_steps,
    const rt::VmState *post_primary,
    const replay::ScheduleTrace *post_trace,
    std::uint64_t primary_second_count, AnalysisStats &stats) const
{
    SingleResult r;

    rt::ExecOptions eo = baseOptions();
    eo.concrete_inputs = inputs;
    rt::Interpreter alt(prog, eo);
    alt.setState(pre);
    // The checkpoint was taken mid-segment of the held thread; the
    // alternate must start with a fresh scheduling decision so the
    // enforcement policy can exclude that thread.
    alt.state().resume_in_segment = false;
    if (post.kind == explore::PostSpec::Kind::Random)
        alt.state().rng = Rng(post.seed * 0x9e3779b97f4a7c15ull + 1);

    const std::uint64_t pre_steps = pre.global_step;
    const std::uint64_t body =
        primary_total_steps > pre_steps
            ? primary_total_steps - pre_steps
            : 1000;
    alt.options().max_steps =
        pre_steps + opts.timeout_factor * body + 2000;

    SemanticMonitor sem(alt, opts.semantic_predicates);
    alt.addSink(&sem);

    // Post-race scheduling per the spec: the Trace kind keeps
    // following the original trace after enforcement (stage 1's
    // deterministic alternate, preserving orderings unrelated to
    // the race, with rotation past the trace so spin loops
    // progress); Random samples from the reseeded state RNG; Guided
    // applies an explorer-issued decision prefix and completes with
    // deterministic rotation. Random and Guided runs are observed
    // through a GuidedPolicy so the explorer learns the schedule
    // they actually realized.
    rt::RotatePolicy rotate;
    rt::RandomPolicy rnd;
    const bool observed = post.kind != explore::PostSpec::Kind::Trace;
    rt::GuidedPolicy guided(
        post.prefix,
        post.kind == explore::PostSpec::Kind::Random
            ? static_cast<rt::SchedulePolicy *>(&rnd)
            : static_cast<rt::SchedulePolicy *>(&rotate));
    rt::SchedulePolicy *postp =
        observed ? static_cast<rt::SchedulePolicy *>(&guided)
                 : static_cast<rt::SchedulePolicy *>(&rotate);
    replay::AlternatePolicy pol(race, postp,
                                observed ? nullptr : post_trace);
    alt.setPolicy(&pol);

    // Snapshot the state right after both racing accesses completed
    // in the alternate order (second accessor, then first).
    int stage = 0;
    rt::Interpreter::StopSpec spec;
    const auto kind_of = [](bool is_write) {
        return is_write ? rt::EventKind::MemWrite
                        : rt::EventKind::MemRead;
    };
    spec.after_event = [&](const rt::Event &ev) {
        if (ev.cell != race.cell)
            return false;
        if (stage == 0 && ev.tid == race.second.tid &&
            ev.kind == kind_of(race.second.is_write)) {
            stage = 1;
            return false;
        }
        return stage == 1 && ev.tid == race.first.tid &&
               ev.kind == kind_of(race.first.is_write);
    };

    rt::RunOutcome oc = alt.run(spec);
    if (alt.stopped()) {
        if (post_primary) {
            // Compare the memory the racing threads can reach; other
            // threads' private progress is scheduling noise, not
            // race effect. Fall back to the full image when a racing
            // thread is not alive at the checkpoint.
            const auto nthreads =
                static_cast<rt::ThreadId>(pre.threads.size());
            bool scoped = race.first.tid < nthreads &&
                          race.second.tid < nthreads;
            std::set<ir::GlobalId> scope;
            if (scoped) {
                scope = static_info.mayWriteOnStack(pre,
                                                    race.first.tid);
                std::set<ir::GlobalId> more =
                    static_info.mayWriteOnStack(pre,
                                                race.second.tid);
                scope.insert(more.begin(), more.end());
            }
            bool differ = false;
            for (std::size_t i = 0;
                 i < post_primary->mem.size() && !differ; ++i) {
                if (scoped &&
                    !scope.count(
                        prog.cellGlobal(static_cast<int>(i)))) {
                    continue;
                }
                differ = !post_primary->mem[i].equals(
                    alt.state().mem[i]);
            }
            r.states_differ = differ;
        }
        oc = alt.run();
    }
    absorbStats(stats, alt.state());
    // Every return below carries the explorer feedback: the schedule
    // this run realized (post-race only; the enforcement phase is
    // not a scheduling choice) and whether enforcement succeeded at
    // all — a starved alternate witnessed no post-race schedule.
    r.alternate_enforced = pol.enforced();
    if (observed)
        r.observation = guided.takeObservation();

    if (!sem.violation().empty()) {
        // Attribute only when the violated property concerns the
        // racing global (unrelated violations are queued separately).
        if (sem.violationCell() < 0 ||
            prog.cellGlobal(sem.violationCell()) ==
                prog.cellGlobal(race.cell)) {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = ViolationKind::SemanticAssert;
            r.detail = sem.violation();
            return r;
        }
        r.kind = SingleResult::Kind::Skipped;
        r.detail = "unrelated semantic violation during alternate: " +
                   sem.violation();
        return r;
    }

    switch (oc) {
      case rt::RunOutcome::Aborted:
        if (pol.starved()) {
            // Paper case (b): the second accessor cannot reach its
            // access while the first is held — synchronization
            // enforces a single ordering.
            if (opts.adhoc_detection) {
                r.kind = SingleResult::Kind::SingleOrd;
                r.detail = "alternate starved: ordering enforced by "
                           "synchronization";
            } else {
                r.kind = SingleResult::Kind::SpecViol;
                r.viol = ViolationKind::ReplayFailure;
                r.detail = "replay failure (alternate starved)";
            }
        } else {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = ViolationKind::ReplayFailure;
            r.detail = "alternate schedule aborted";
        }
        return r;

      case rt::RunOutcome::TimedOut:
        if (diagnoseInfiniteLoop(alt.state())) {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = ViolationKind::InfiniteLoop;
            r.detail = "loop with invariant exit condition in "
                       "alternate execution";
        } else if (opts.adhoc_detection) {
            r.kind = SingleResult::Kind::SingleOrd;
            r.detail = "busy-wait ad-hoc synchronization prevents the "
                       "alternate ordering";
        } else {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = ViolationKind::ReplayFailure;
            r.detail = "replay failure (alternate timed out)";
        }
        return r;

      case rt::RunOutcome::Deadlock:
        r.kind = SingleResult::Kind::SpecViol;
        r.viol = ViolationKind::Deadlock;
        r.detail = alt.state().outcome_detail;
        return r;

      case rt::RunOutcome::CrashOob:
      case rt::RunOutcome::CrashDivZero:
        if (!crashInvolvesRaceCell(alt.state(), race)) {
            // An unrelated bug surfaced by the perturbed schedule;
            // the paper queues such discoveries as separate reports.
            r.kind = SingleResult::Kind::Skipped;
            r.detail = "unrelated failure during alternate (queued "
                       "as separate report): " +
                       alt.state().outcome_detail;
            return r;
        }
        r.kind = SingleResult::Kind::SpecViol;
        r.viol = ViolationKind::Crash;
        r.detail = alt.state().outcome_detail;
        return r;

      case rt::RunOutcome::AssertFail:
        r.kind = SingleResult::Kind::SpecViol;
        r.viol = ViolationKind::SemanticAssert;
        r.detail = alt.state().outcome_detail;
        return r;

      case rt::RunOutcome::Exited: {
        if (!pol.enforced()) {
            // The second accessor never touched the cell on this
            // path: nothing was tested.
            r.kind = SingleResult::Kind::Skipped;
            r.detail = "alternate ordering not exercised on this path";
            return r;
        }
        // Busy-wait signature: the second thread re-executed its
        // racing access more often than the primary did — it looped
        // back through the read waiting for the held writer, so the
        // two accesses admit only one real ordering.
        if (primary_second_count > 0) {
            std::uint64_t alt_count = alt.state().accessCount(
                race.second.tid, race.second.pc);
            if (alt_count > primary_second_count) {
                if (opts.adhoc_detection) {
                    r.kind = SingleResult::Kind::SingleOrd;
                    r.detail =
                        "second accessor retried its racing access "
                        "(busy-wait ad-hoc synchronization)";
                } else {
                    r.kind = SingleResult::Kind::SpecViol;
                    r.viol = ViolationKind::ReplayFailure;
                    r.detail = "replay diverged (access re-executed)";
                }
                return r;
            }
        }
        r.kind = SingleResult::Kind::OutSame;
        r.alternate_out = alt.state().output;
        return r;
      }

      default:
        r.kind = SingleResult::Kind::Skipped;
        r.detail = "alternate run ended in unexpected state";
        return r;
    }
}

RaceAnalyzer::SingleResult
RaceAnalyzer::singleClassify(const race::RaceReport &race,
                             const replay::ScheduleTrace &trace,
                             const std::vector<std::int64_t> &inputs,
                             const explore::PostSpec &post,
                             const replay::CheckpointLadder *ladder,
                             AnalysisStats &stats) const
{
    SingleResult r;

    rt::ExecOptions eo = baseOptions();
    eo.concrete_inputs = inputs;
    rt::Interpreter interp(prog, eo);
    SemanticMonitor sem(interp, opts.semantic_predicates);
    interp.addSink(&sem);

    rt::RotatePolicy rotate;
    replay::TracePolicy tp(trace, replay::TracePolicy::Mode::Strict,
                           &rotate);
    interp.setPolicy(&tp);

    const replay::CheckpointLadder::Rung *rung =
        usableRung(ladder, race, inputs);
    if (rung) {
        // Fork from the cached pre-race checkpoint instead of
        // replaying the prefix; the rung state carries the prefix's
        // step counters (so the ledger stays identical) and the
        // monitor adopts the prefix's predicate state.
        OBS_SPAN("ladder", "fork");
        if (obs::Collector *col = obs::collector())
            col->add(obs::Counter::LadderForks, 1);
        interp.setState(rung->state);
        sem.restore(rung->semantics);
    } else {
        rt::Interpreter::StopSpec pre;
        pre.before_cell.push_back(
            {race.first.tid, race.cell, race.first.cell_occurrence});
        rt::RunOutcome pre_oc = interp.run(pre);

        if (!interp.stopped()) {
            absorbStats(stats, interp.state());
            if (rt::isSpecViolation(pre_oc)) {
                r.kind = SingleResult::Kind::SpecViol;
                r.viol = violationOf(pre_oc);
                r.detail = interp.state().outcome_detail;
            } else {
                r.kind = SingleResult::Kind::NotReached;
                r.detail = "race point not reached during replay";
            }
            return r;
        }
    }

    rt::VmState pre_ckpt = interp.state();
    rt::RunOutcome oc = rt::RunOutcome::Running;

    // Post-race primary snapshot: first accessor, then second.
    int stage = 0;
    rt::Interpreter::StopSpec post_stop;
    const auto kind_of = [](bool is_write) {
        return is_write ? rt::EventKind::MemWrite
                        : rt::EventKind::MemRead;
    };
    post_stop.after_event = [&](const rt::Event &ev) {
        if (ev.cell != race.cell)
            return false;
        if (stage == 0 && ev.tid == race.first.tid &&
            ev.kind == kind_of(race.first.is_write)) {
            stage = 1;
            return false;
        }
        return stage == 1 && ev.tid == race.second.tid &&
               ev.kind == kind_of(race.second.is_write);
    };
    oc = interp.run(post_stop);
    const bool have_post_primary = interp.stopped();
    rt::VmState post_primary;
    if (have_post_primary)
        post_primary = interp.state();

    if (!interp.state().finished())
        oc = interp.run();
    absorbStats(stats, interp.state());

    if (!sem.violation().empty()) {
        r.kind = SingleResult::Kind::SpecViol;
        r.viol = ViolationKind::SemanticAssert;
        r.detail = sem.violation();
        return r;
    }
    if (rt::isSpecViolation(oc)) {
        const bool crash = oc == rt::RunOutcome::CrashOob ||
                           oc == rt::RunOutcome::CrashDivZero;
        if (!crash || crashInvolvesRaceCell(interp.state(), race)) {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = violationOf(oc);
            r.detail = interp.state().outcome_detail;
            return r;
        }
        // The primary replay died of a bug unrelated to this race
        // (e.g. another race in the same recording crashed first);
        // the paper queues such finds as separate reports instead of
        // blaming the race under analysis. The alternate ordering is
        // still probed from the pre-race checkpoint — it can reveal
        // ad-hoc synchronization or an attributable crash — but the
        // primary's truncated output admits no output comparison.
        std::uint64_t primary_second_count =
            interp.state().accessCount(race.second.tid,
                                       race.second.pc);
        // The crash truncated the primary, so its step count is a
        // useless yardstick for the alternate's timeout budget (an
        // alternate that avoids the crash legitimately runs much
        // longer). Hand the alternate the full step budget instead,
        // so only a genuine busy-wait can time out.
        SingleResult a = runAlternateFromState(
            pre_ckpt, race, inputs, post, opts.max_steps, nullptr,
            &trace, primary_second_count, stats);
        if (a.kind == SingleResult::Kind::SpecViol ||
            a.kind == SingleResult::Kind::SingleOrd) {
            return a;
        }
        r.kind = SingleResult::Kind::Skipped;
        r.detail = "unrelated failure during primary replay (queued "
                   "as separate report): " +
                   interp.state().outcome_detail;
        return r;
    }
    if (oc != rt::RunOutcome::Exited) {
        r.kind = SingleResult::Kind::NotReached;
        r.detail = std::string("primary replay ended with ") +
                   rt::runOutcomeName(oc);
        return r;
    }

    r.primary_out = interp.state().output;
    r.primary_steps = interp.state().global_step;
    std::uint64_t primary_second_count = interp.state().accessCount(
        race.second.tid, race.second.pc);

    SingleResult a = runAlternateFromState(
        pre_ckpt, race, inputs, post, r.primary_steps,
        have_post_primary ? &post_primary : nullptr, &trace,
        primary_second_count, stats);
    r.states_differ = a.states_differ;
    if (a.kind != SingleResult::Kind::OutSame) {
        a.states_differ = r.states_differ;
        a.primary_out = r.primary_out;
        a.primary_steps = r.primary_steps;
        return a;
    }

    r.alternate_enforced = a.alternate_enforced;
    r.observation = std::move(a.observation);
    r.alternate_out = a.alternate_out;
    OutputComparison cmp = compareConcreteOutputs(
        r.primary_out, a.alternate_out, race.first.tid,
        race.second.tid);
    if (!cmp.match) {
        r.kind = SingleResult::Kind::OutDiff;
        r.output_diff = cmp.diff;
    } else {
        r.kind = SingleResult::Kind::OutSame;
    }
    return r;
}

RaceAnalyzer::SingleResult
RaceAnalyzer::runAlternate(const race::RaceReport &race,
                           const replay::ScheduleTrace &trace,
                           const std::vector<std::int64_t> &inputs,
                           const explore::PostSpec &post,
                           std::uint64_t budget_steps,
                           const replay::CheckpointLadder *ladder,
                           AnalysisStats &stats) const
{
    // The rung is valid here too: on the faithful pre-race prefix
    // the PrimarySearchPolicy follows the trace decision-for-
    // decision exactly like the ladder's strict TracePolicy did.
    if (const replay::CheckpointLadder::Rung *rung =
            usableRung(ladder, race, inputs)) {
        OBS_SPAN("ladder", "fork");
        if (obs::Collector *col = obs::collector())
            col->add(obs::Counter::LadderForks, 1);
        absorbStats(stats, rung->state);
        return runAlternateFromState(rung->state, race, inputs, post,
                                     budget_steps, nullptr, &trace, 0,
                                     stats);
    }

    rt::ExecOptions eo = baseOptions();
    eo.concrete_inputs = inputs;
    rt::Interpreter interp(prog, eo);
    PrimarySearchPolicy pol(trace, race);
    interp.setPolicy(&pol);

    rt::Interpreter::StopSpec pre;
    pre.before_cell.push_back(
        {race.first.tid, race.cell, race.first.cell_occurrence});
    rt::RunOutcome oc = interp.run(pre);
    absorbStats(stats, interp.state());

    SingleResult r;
    if (!interp.stopped()) {
        if (rt::isSpecViolation(oc)) {
            r.kind = SingleResult::Kind::SpecViol;
            r.viol = violationOf(oc);
            r.detail = interp.state().outcome_detail;
        } else {
            r.kind = SingleResult::Kind::Skipped;
            r.detail = "pre-race replay did not reach the race";
        }
        return r;
    }
    return runAlternateFromState(interp.state(), race, inputs, post,
                                 budget_steps, nullptr, &trace, 0,
                                 stats);
}

RaceAnalyzer::EvidenceReplay
RaceAnalyzer::replayEvidence(const race::RaceReport &race,
                             const replay::ScheduleTrace &trace,
                             const Classification &verdict) const
{
    EvidenceReplay out;
    AnalysisStats scratch;
    const std::vector<std::int64_t> inputs =
        verdict.evidence_inputs.empty() ? trace.concreteInputs()
                                        : verdict.evidence_inputs;

    if (!verdict.evidence_alternate) {
        // The primary ordering itself is the evidence: replay it.
        rt::ExecOptions eo = baseOptions();
        eo.concrete_inputs = inputs;
        rt::Interpreter interp(prog, eo);
        PrimarySearchPolicy pol(trace, race);
        interp.setPolicy(&pol);
        out.outcome = interp.run();
        out.detail = interp.state().outcome_detail;
        out.output = interp.state().output;
        return out;
    }

    const std::uint64_t budget =
        trace.decisions.empty() ? opts.max_steps
                                : trace.decisions.back().step + 1;
    // Rebuild the post-race schedule the evidence names: an
    // explorer-issued decision prefix replays exactly (guided runs
    // are prefix + deterministic fallback), a seed replays the
    // random sampler, and neither means the stage-1 trace-following
    // alternate.
    explore::PostSpec spec;
    if (!verdict.evidence_schedule.empty()) {
        spec = explore::PostSpec::guided(
            {verdict.evidence_schedule.begin(),
             verdict.evidence_schedule.end()});
    } else if (verdict.evidence_seed != 0) {
        spec = explore::PostSpec::random(verdict.evidence_seed);
    } else {
        spec = explore::PostSpec::trace();
    }
    SingleResult r = runAlternate(race, trace, inputs, spec, budget,
                                  nullptr, scratch);
    switch (r.kind) {
      case SingleResult::Kind::SpecViol:
        // Reconstruct the concrete outcome class from the verdict.
        out.outcome =
            r.viol == ViolationKind::Deadlock
                ? rt::RunOutcome::Deadlock
                : r.viol == ViolationKind::InfiniteLoop
                      ? rt::RunOutcome::TimedOut
                      : r.viol == ViolationKind::SemanticAssert
                            ? rt::RunOutcome::AssertFail
                            : rt::RunOutcome::CrashOob;
        break;
      default:
        out.outcome = rt::RunOutcome::Exited;
        break;
    }
    out.detail = r.detail;
    out.output = r.alternate_out;
    return out;
}

namespace {

const char *
postSpecKind(const explore::PostSpec &s)
{
    switch (s.kind) {
      case explore::PostSpec::Kind::Trace:
        return "trace";
      case explore::PostSpec::Kind::Random:
        return "random";
      case explore::PostSpec::Kind::Guided:
        return "guided";
    }
    return "?";
}

/** `--progress jsonl`: one line per explored post-race schedule. */
void
emitScheduleEvent(const explore::PostSpec &spec, int path, bool fresh,
                  int distinct, int schedules)
{
    if (!obs::progress())
        return;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"event\": \"schedule\", \"kind\": \"%s\", "
                  "\"path\": %d, \"fresh\": %s, \"distinct\": %d, "
                  "\"schedules_explored\": %d}",
                  postSpecKind(spec), path, fresh ? "true" : "false",
                  distinct, schedules);
    obs::progressLine(buf);
}

} // namespace

Classification
RaceAnalyzer::classify(const race::RaceReport &race,
                       const replay::ScheduleTrace &trace,
                       const replay::CheckpointLadder *ladder) const
{
    obs::Span cls_span("classify", "classify-race");
    cls_span.arg("cell", race.cell);
    Stopwatch sw;
    Classification c;
    const std::vector<std::int64_t> inputs0 = trace.concreteInputs();

    // ---- Stage 1: single-pre/single-post (Algorithm 1). ----
    SingleResult s1;
    {
        OBS_SPAN("classify", "stage1");
        s1 = singleClassify(race, trace, inputs0,
                            explore::PostSpec::trace(), ladder, c.stats);
    }
    c.states_differ = s1.states_differ;

    bool done = true;
    switch (s1.kind) {
      case SingleResult::Kind::SpecViol:
        c.cls = RaceClass::SpecViolated;
        c.viol = s1.viol;
        c.detail = s1.detail;
        c.evidence_inputs = inputs0;
        c.evidence_alternate = true;
        break;
      case SingleResult::Kind::SingleOrd:
        c.cls = RaceClass::SingleOrdering;
        c.detail = s1.detail;
        break;
      case SingleResult::Kind::OutDiff:
        c.cls = RaceClass::OutputDiffers;
        c.detail = s1.detail;
        c.output_diff = s1.output_diff;
        c.evidence_inputs = inputs0;
        c.evidence_alternate = true;
        break;
      case SingleResult::Kind::NotReached:
      case SingleResult::Kind::Skipped:
        c.cls = RaceClass::Unclassified;
        c.detail = s1.detail;
        break;
      case SingleResult::Kind::OutSame:
        done = false;
        break;
    }
    if (done) {
        c.stats.seconds = sw.seconds();
        return c;
    }

    int witnesses = 1; // stage 1 matched
    c.stats.schedules_explored = 1;

    // ---- Stage 2+3: multi-path, multi-schedule. ----
    if (opts.multi_path) {
        rt::ExecOptions eo = baseOptions();
        eo.input_mode = rt::InputMode::Symbolic;
        eo.max_symbolic_inputs = opts.max_symbolic_inputs;
        eo.sym_inputs = opts.sym_inputs;
        rt::Interpreter sym_interp(prog, eo);

        exec::ExecutorOptions xo;
        xo.max_paths = opts.mp;
        xo.max_states = opts.executor_max_states;
        xo.solver = opts.solver;
        exec::Executor ex(xo);
        // Whether decisive verdicts carry a named input witness.
        const bool named = !opts.sym_inputs.empty();

        SemanticMonitor sem(sym_interp, opts.semantic_predicates);
        sym_interp.addSink(&sem);

        std::vector<exec::PathResult> paths;
        {
            OBS_SPAN("sym", "explore-paths");
            paths = ex.explore(
                sym_interp,
                [&] {
                    return std::make_unique<PrimarySearchPolicy>(trace,
                                                                 race);
                },
                [&](const rt::VmState &s) {
                    return PrimarySearchPolicy::racePassed(s, race);
                });
        }
        c.stats.paths_explored = static_cast<int>(paths.size());
        c.stats.states_created = ex.statesCreated();
        absorbStats(c.stats, sym_interp.state());
        // Keep the solver ledger current at every exit point: output
        // comparison below issues further queries.
        auto noteSolver = [&] {
            c.stats.solver_queries = ex.solver().stats().queries;
        };
        noteSolver();

        // A primary path itself violating the specification is
        // direct evidence of harm (when attributable to this race).
        for (const auto &p : paths) {
            if (rt::isSpecViolation(p.state.outcome)) {
                if ((p.state.outcome == rt::RunOutcome::CrashOob ||
                     p.state.outcome ==
                         rt::RunOutcome::CrashDivZero) &&
                    !crashInvolvesRaceCell(p.state, race)) {
                    continue;
                }
                c.cls = RaceClass::SpecViolated;
                c.viol = violationOf(p.state.outcome);
                c.detail = p.state.outcome_detail;
                c.evidence_inputs =
                    concretizeEnvLog(p.state.env_log, p.model);
                if (named)
                    c.evidence_witness =
                        witnessOf(p.state.env_log, p.model);
                c.evidence_alternate = false;
                noteSolver();
                c.stats.seconds = sw.seconds();
                return c;
            }
        }
        if (!sem.violation().empty()) {
            c.cls = RaceClass::SpecViolated;
            c.viol = ViolationKind::SemanticAssert;
            c.detail = sem.violation();
            noteSolver();
            c.stats.seconds = sw.seconds();
            return c;
        }

        const std::uint64_t budget =
            trace.decisions.empty() ? opts.max_steps
                                    : trace.decisions.back().step + 1;

        // Under named symbolic inputs the distinct-schedule budget
        // is shared: each path's explorer inherits the interleaving
        // classes earlier paths witnessed (per-path budgeting).
        std::set<std::string> known_sigs;

        int path_index = 0;
        for (const auto &p : paths) {
            path_index += 1;
            // Only cleanly-completed primaries have comparable
            // output streams (crashed ones were handled above).
            if (p.state.outcome != rt::RunOutcome::Exited)
                continue;
            std::vector<std::int64_t> inputs_p =
                concretizeEnvLog(p.state.env_log, p.model);

            if (!opts.multi_schedule) {
                // Single deterministic alternate per path. Evidence
                // seed stays 0: the verdict came from the
                // trace-following schedule, and replayEvidence must
                // rebuild exactly that (a nonzero seed would replay
                // a random post-race schedule instead).
                c.stats.schedules_explored += 1;
                SingleResult a = runAlternate(
                    race, trace, inputs_p, explore::PostSpec::trace(),
                    budget, ladder, c.stats);
                switch (a.kind) {
                  case SingleResult::Kind::SpecViol:
                    c.cls = RaceClass::SpecViolated;
                    c.viol = a.viol;
                    c.detail = a.detail;
                    c.evidence_inputs = inputs_p;
                    if (named)
                        c.evidence_witness =
                            witnessOf(p.state.env_log, p.model);
                    c.evidence_alternate = true;
                    noteSolver();
                    c.stats.seconds = sw.seconds();
                    return c;
                  case SingleResult::Kind::OutSame: {
                    OutputComparison cmp = compareSymbolicOutputs(
                        p.state.output, p.state.path.constraints(),
                        a.alternate_out, ex.solver(),
                        race.first.tid, race.second.tid);
                    if (!cmp.match) {
                        c.cls = RaceClass::OutputDiffers;
                        c.output_diff = cmp.diff;
                        c.detail = "outputs diverge on an explored "
                                   "path/schedule";
                        c.evidence_inputs = inputs_p;
                        if (named)
                            c.evidence_witness =
                                witnessOf(p.state.env_log, p.model);
                        c.evidence_alternate = true;
                        noteSolver();
                        c.stats.seconds = sw.seconds();
                        return c;
                    }
                    witnesses += 1;
                    break;
                  }
                  default:
                    break; // no witness from this combination
                }
                continue;
            }

            // Multi-schedule: the explorer issues this path's
            // post-race schedules — Ma seeded samples under
            // `random`, the same samples plus systematic
            // bounded-preemption backtracking until Ma *distinct*
            // interleaving classes under `dpor`.
            explore::ExplorerOptions xopts;
            xopts.mode = opts.explore;
            xopts.budget = opts.ma;
            xopts.preemption_bound = opts.preemption_bound;
            // Legacy seed layout: seed j of path p is p * 16 + j.
            xopts.seed_base =
                static_cast<std::uint64_t>(path_index) * 16;
            if (named)
                xopts.known = known_sigs;
            explore::ScheduleExplorer sched_ex(xopts);
            while (std::optional<explore::PostSpec> spec =
                       sched_ex.next()) {
                obs::Span cand_span("explore", "dpor-candidate");
                cand_span.arg("path", path_index);
                c.stats.schedules_explored += 1;
                SingleResult a =
                    runAlternate(race, trace, inputs_p, *spec, budget,
                                 ladder, c.stats);
                // Only an enforced alternate witnessed a post-race
                // schedule; everything else teaches the explorer
                // nothing.
                const bool fresh =
                    a.alternate_enforced &&
                    sched_ex.record(a.observation);
                emitScheduleEvent(*spec, path_index, fresh,
                                  sched_ex.distinct(),
                                  c.stats.schedules_explored);
                switch (a.kind) {
                  case SingleResult::Kind::SpecViol:
                    c.cls = RaceClass::SpecViolated;
                    c.viol = a.viol;
                    c.detail = a.detail;
                    c.evidence_inputs = inputs_p;
                    if (named)
                        c.evidence_witness =
                            witnessOf(p.state.env_log, p.model);
                    c.evidence_seed = spec->seed;
                    c.evidence_schedule.assign(spec->prefix.begin(),
                                               spec->prefix.end());
                    if (a.alternate_enforced)
                        c.evidence_signature =
                            sched_ex.lastSignature();
                    c.evidence_alternate = true;
                    c.stats.distinct_schedules += sched_ex.distinct();
                    noteSolver();
                    c.stats.seconds = sw.seconds();
                    return c;
                  case SingleResult::Kind::OutSame: {
                    OutputComparison cmp = compareSymbolicOutputs(
                        p.state.output, p.state.path.constraints(),
                        a.alternate_out, ex.solver(),
                        race.first.tid, race.second.tid);
                    if (!cmp.match) {
                        c.cls = RaceClass::OutputDiffers;
                        c.output_diff = cmp.diff;
                        c.detail = "outputs diverge on an explored "
                                   "path/schedule";
                        c.evidence_inputs = inputs_p;
                        if (named)
                            c.evidence_witness = witnessOf(
                                p.state.env_log, p.model);
                        c.evidence_seed = spec->seed;
                        c.evidence_schedule.assign(
                            spec->prefix.begin(), spec->prefix.end());
                        c.evidence_signature =
                            sched_ex.lastSignature();
                        c.evidence_alternate = true;
                        c.stats.distinct_schedules +=
                            sched_ex.distinct();
                        noteSolver();
                        c.stats.seconds = sw.seconds();
                        return c;
                    }
                    // Under dpor a witness is a *distinct*
                    // interleaving class; the random sampler keeps
                    // its legacy run counting.
                    if (opts.explore == explore::ExploreMode::Random ||
                        fresh) {
                        witnesses += 1;
                    }
                    break;
                  }
                  case SingleResult::Kind::SingleOrd:
                  case SingleResult::Kind::Skipped:
                  case SingleResult::Kind::NotReached:
                    break; // no witness from this combination
                  case SingleResult::Kind::OutDiff:
                    PORTEND_PANIC("alternate runner cannot produce "
                                  "OutDiff directly");
                }
            }
            c.stats.distinct_schedules += sched_ex.distinct();
            if (named)
                known_sigs = sched_ex.signatures();
        }
        noteSolver();
    } else if (opts.multi_schedule) {
        // Multi-schedule without multi-path: rerun Algorithm 1 on
        // the original inputs with explorer-issued post-race
        // schedules (legacy seeds 1..Ma under `random`).
        explore::ExplorerOptions xopts;
        xopts.mode = opts.explore;
        xopts.budget = opts.ma;
        xopts.preemption_bound = opts.preemption_bound;
        xopts.seed_base = 0;
        explore::ScheduleExplorer sched_ex(xopts);
        while (std::optional<explore::PostSpec> spec =
                   sched_ex.next()) {
            obs::Span cand_span("explore", "dpor-candidate");
            c.stats.schedules_explored += 1;
            SingleResult s = singleClassify(race, trace, inputs0,
                                            *spec, ladder, c.stats);
            const bool fresh = s.alternate_enforced &&
                               sched_ex.record(s.observation);
            emitScheduleEvent(*spec, 0, fresh, sched_ex.distinct(),
                              c.stats.schedules_explored);
            if (s.kind == SingleResult::Kind::SpecViol) {
                c.cls = RaceClass::SpecViolated;
                c.viol = s.viol;
                c.detail = s.detail;
                c.evidence_inputs = inputs0;
                c.evidence_seed = spec->seed;
                c.evidence_schedule.assign(spec->prefix.begin(),
                                           spec->prefix.end());
                if (s.alternate_enforced)
                    c.evidence_signature = sched_ex.lastSignature();
                c.evidence_alternate = true;
                c.stats.distinct_schedules += sched_ex.distinct();
                c.stats.seconds = sw.seconds();
                return c;
            }
            if (s.kind == SingleResult::Kind::OutDiff) {
                c.cls = RaceClass::OutputDiffers;
                c.output_diff = s.output_diff;
                c.evidence_inputs = inputs0;
                c.evidence_seed = spec->seed;
                c.evidence_schedule.assign(spec->prefix.begin(),
                                           spec->prefix.end());
                c.evidence_signature = sched_ex.lastSignature();
                c.evidence_alternate = true;
                c.stats.distinct_schedules += sched_ex.distinct();
                c.stats.seconds = sw.seconds();
                return c;
            }
            if (s.kind == SingleResult::Kind::OutSame &&
                (opts.explore == explore::ExploreMode::Random ||
                 fresh)) {
                witnesses += 1;
            }
        }
        c.stats.distinct_schedules += sched_ex.distinct();
    }

    c.cls = RaceClass::KWitnessHarmless;
    c.k = witnesses;
    c.detail = "outputs equivalent across " +
               std::to_string(witnesses) +
               " path-schedule combinations";
    c.stats.seconds = sw.seconds();
    return c;
}

} // namespace portend::core
