/**
 * @file
 * Portend's race analysis engine.
 *
 * Implements the paper's analysis pipeline per race:
 *
 *  1. Single-pre/single-post analysis (Algorithm 1): replay the
 *     recorded trace to just before the first racing access, take
 *     the pre-race checkpoint, finish the primary, then enforce the
 *     alternate ordering from the checkpoint and observe the
 *     consequences (crash, deadlock, hang/ad-hoc sync, output
 *     difference).
 *  2. Multi-path analysis (Algorithm 2): explore up to Mp primary
 *     paths that still satisfy the schedule trace but take different
 *     input-dependent branches (symbolic inputs), recording
 *     symbolic outputs.
 *  3. Multi-schedule analysis: for each primary, run Ma alternate
 *     executions with randomized post-race schedules and compare
 *     their concrete outputs against the primary's symbolic outputs.
 *
 * The verdict is one of the four taxonomy categories; "k-witness
 * harmless" verdicts carry k, the number of successful path x
 * schedule witnesses.
 */

#ifndef PORTEND_PORTEND_ANALYZER_H
#define PORTEND_PORTEND_ANALYZER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "explore/explorer.h"
#include "ir/program.h"
#include "portend/classify.h"
#include "race/report.h"
#include "replay/checkpoint.h"
#include "replay/replayer.h"
#include "replay/trace.h"
#include "rt/interpreter.h"
#include "rt/semantics.h"
#include "rt/staticinfo.h"

namespace portend::core {

/**
 * A semantic predicate: invoked on every event of an analysis run;
 * returns a non-empty violation description when the "high level"
 * specification is broken (paper §3.5, e.g. "fmm timestamps must
 * not go backwards"). Defined in rt/semantics.h (with its monitor)
 * so the replay layer's checkpoint ladder can snapshot and restore
 * monitor state; aliased here for the public API.
 */
using SemanticPredicate = rt::SemanticPredicate;

/** Which race detector feeds the classifier. */
enum class DetectorKind : std::uint8_t {
    HappensBefore,        ///< vector-clock detector (default)
    HappensBeforeNoMutex, ///< HB blind to mutexes (imperfect detector)
    Lockset,              ///< Eraser-style lockset detector
};

/** Portend configuration (the paper's dials). */
struct PortendOptions
{
    int mp = 5;                 ///< primary paths (Mp)

    /**
     * Alternate schedules per primary (Ma). Under the dpor explorer
     * this is a *distinct-schedule* budget: stage 3 keeps issuing
     * schedules until Ma Mazurkiewicz-inequivalent post-race
     * interleavings were witnessed (or the space/run cap is
     * exhausted); under the random explorer it is the legacy run
     * count, duplicates and all.
     */
    int ma = 2;
    bool adhoc_detection = true;   ///< classify hangs as single ordering
    bool multi_path = true;        ///< enable stage 2
    bool multi_schedule = true;    ///< enable stage 3
    int max_symbolic_inputs = 2;   ///< inputs made symbolic in stage 2

    /**
     * Named symbolic-input selection for stage 2 (CLI --sym-input).
     * When non-empty, only Input instructions whose label matches an
     * entry become symbolic (max_symbolic_inputs is ignored), stage
     * 3's distinct-schedule budget is shared across primary paths,
     * and decisive verdicts record a named witness
     * (Classification::evidence_witness). Empty = legacy positional
     * selection.
     */
    std::vector<rt::SymInputSpec> sym_inputs;
    std::uint64_t timeout_factor = 5; ///< alternate budget multiplier
    std::uint64_t max_steps = 2000000; ///< absolute step budget
    std::uint64_t detection_seed = 1;  ///< seed for detection run
    DetectorKind detector = DetectorKind::HappensBefore;

    /** Stage-3 post-race schedule explorer (CLI --explore). */
    explore::ExploreMode explore = explore::ExploreMode::Dpor;

    /**
     * Preemption bound of the dpor explorer: systematic candidates
     * carrying more injected preemptions than this are not generated
     * (CHESS-style bounding; the random phase is unbounded).
     */
    int preemption_bound = 4;

    std::vector<SemanticPredicate> semantic_predicates;
    sym::SolverOptions solver;
    int executor_max_states = 512;

    /**
     * Classification worker threads used by the scheduler
     * (0 = one per hardware thread). Purely a throughput dial:
     * verdicts are byte-identical for every value.
     */
    int jobs = 1;

    /**
     * Run-global symbolic-state budget shared by every cluster of
     * one classification batch. The scheduler slices it into fixed
     * per-cluster caps (cluster count known up front, so slices are
     * independent of worker interleaving and results stay
     * deterministic); a slice never exceeds executor_max_states but
     * also never drops below 1, so with more clusters than budget
     * the aggregate may exceed the nominal total (every cluster is
     * always allowed to make progress). 0 = no global cap: each
     * cluster gets executor_max_states.
     */
    int total_state_budget = 0;

    /**
     * Run-global interpreter-step budget across all clusters of one
     * batch, sliced per cluster like total_state_budget (against
     * max_steps, same floor of 1). 0 = no global cap.
     */
    std::uint64_t total_step_budget = 0;
};

/** Event sink evaluating semantic predicates (see rt/semantics.h). */
using SemanticMonitor = rt::SemanticMonitor;

/**
 * Schedule policy for multi-path primary exploration: follows the
 * recorded trace strictly until the racing accesses have happened
 * (pruning divergent paths, Fig. 5), then tolerantly.
 */
class PrimarySearchPolicy : public rt::SchedulePolicy
{
  public:
    PrimarySearchPolicy(const replay::ScheduleTrace &trace,
                        const race::RaceReport &race)
        : trace(trace), race(race)
    {}

    rt::ThreadId pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable) override;

    /** True once both racing accesses reached their occurrence. */
    static bool racePassed(const rt::VmState &state,
                           const race::RaceReport &race);

  private:
    const replay::ScheduleTrace &trace;
    const race::RaceReport &race;
};

/**
 * Classifies one race at a time; construct once per program (or one
 * per scheduler worker, sharing one StaticInfo).
 *
 * Thread compatibility: classify() is const and touches only the
 * (immutable) program, the shared read-only StaticInfo, and
 * analyzer-local interpreters/solvers, so distinct RaceAnalyzer
 * instances may classify concurrently on different threads.
 */
class RaceAnalyzer
{
  public:
    /** Own a freshly computed StaticInfo (single-analyzer use). */
    RaceAnalyzer(const ir::Program &prog, const PortendOptions &opts);

    /**
     * Share an already-computed StaticInfo (scheduler workers):
     * @p shared_static must outlive the analyzer and is only read.
     */
    RaceAnalyzer(const ir::Program &prog, const PortendOptions &opts,
                 const rt::StaticInfo &shared_static);

    /**
     * Classify @p race given the recorded @p trace of the execution
     * that exposed it.
     *
     * @param ladder optional shared replay-prefix checkpoint ladder
     *        built over the same (program, trace, options); the
     *        analyzer forks pre-race states from its rung instead of
     *        replaying the prefix from step 0. Verdicts and ledger
     *        stats are byte-identical with or without a ladder —
     *        only wall-clock time changes.
     */
    Classification
    classify(const race::RaceReport &race,
             const replay::ScheduleTrace &trace,
             const replay::CheckpointLadder *ladder = nullptr) const;

    /**
     * The interpreter options every replay-based analysis run uses
     * (and a CheckpointLadder build must match): preempt on every
     * memory access, @p opts' step budget, default RNG seed.
     */
    static rt::ExecOptions replayOptions(const PortendOptions &opts);

    /** Result of replaying a classification's evidence (§3.6). */
    struct EvidenceReplay
    {
        rt::RunOutcome outcome = rt::RunOutcome::Running;
        std::string detail;
        rt::OutputLog output;
    };

    /**
     * Deterministically re-execute the interleaving a verdict's
     * evidence describes (inputs + enforced alternate ordering +
     * post-race schedule seed). For a "spec violated" verdict the
     * replay reproduces the crash/deadlock/hang; this is the
     * replayable trace the paper hands to the developer's debugger.
     */
    EvidenceReplay replayEvidence(const race::RaceReport &race,
                                  const replay::ScheduleTrace &trace,
                                  const Classification &verdict) const;

  private:
    /** Outcome of one primary/alternate pair (Algorithm 1). */
    struct SingleResult
    {
        enum class Kind {
            SpecViol,
            OutDiff,
            OutSame,
            SingleOrd,
            NotReached, ///< replay did not reach the race
            Skipped,    ///< alternate unenforceable on this path
        };

        Kind kind = Kind::NotReached;
        ViolationKind viol = ViolationKind::None;
        std::string detail;
        std::string output_diff;
        bool states_differ = false;
        std::uint64_t primary_steps = 0;
        rt::OutputLog primary_out;
        rt::OutputLog alternate_out;

        /**
         * What the alternate did after enforcement (Random/Guided
         * post specs only): the explorer's feedback. Valid only when
         * alternate_enforced — a starved or never-exercised alternate
         * witnessed no post-race schedule and must not be recorded.
         */
        rt::ScheduleObservation observation;
        bool alternate_enforced = false;
    };

    /** Full Algorithm 1 on concrete inputs. */
    SingleResult singleClassify(const race::RaceReport &race,
                                const replay::ScheduleTrace &trace,
                                const std::vector<std::int64_t> &inputs,
                                const explore::PostSpec &post,
                                const replay::CheckpointLadder *ladder,
                                AnalysisStats &stats) const;

    /**
     * Alternate-only analysis for a multi-path primary: replays
     * concretized inputs to the pre-race point, enforces the
     * alternate ordering, and returns its outcome and outputs.
     * The post-race schedule is whatever @p post prescribes —
     * stage 3 feeds explorer-issued specs through here.
     */
    SingleResult runAlternate(const race::RaceReport &race,
                              const replay::ScheduleTrace &trace,
                              const std::vector<std::int64_t> &inputs,
                              const explore::PostSpec &post,
                              std::uint64_t budget_steps,
                              const replay::CheckpointLadder *ladder,
                              AnalysisStats &stats) const;

    /**
     * The ladder rung for @p race's pre-race point, or nullptr when
     * @p ladder is absent, was built over different inputs, or its
     * rung lies beyond this analyzer's step budget (a tighter budget
     * must time out exactly as a from-0 replay would).
     */
    const replay::CheckpointLadder::Rung *
    usableRung(const replay::CheckpointLadder *ladder,
               const race::RaceReport &race,
               const std::vector<std::int64_t> &inputs) const;

    /**
     * Core of Algorithm 1 lines 5-22: enforce the alternate ordering
     * from a pre-race state and observe the consequences.
     *
     * @param pre            state stopped just before the first
     *                       racing access
     * @param post_primary   primary's post-race snapshot for the
     *                       state-diff criterion (may be null)
     * @param post_trace     original trace for deterministic
     *                       post-race scheduling (null = policy only)
     * @param primary_second_count  dynamic executions of the second
     *                       racing instruction in the primary; when
     *                       non-zero and the alternate re-executes
     *                       it more often, the second thread looped
     *                       back through its racing access — the
     *                       busy-wait signature of ad-hoc
     *                       synchronization ("single ordering")
     */
    SingleResult runAlternateFromState(
        const rt::VmState &pre, const race::RaceReport &race,
        const std::vector<std::int64_t> &inputs,
        const explore::PostSpec &post,
        std::uint64_t primary_total_steps,
        const rt::VmState *post_primary,
        const replay::ScheduleTrace *post_trace,
        std::uint64_t primary_second_count, AnalysisStats &stats) const;

    /** Base interpreter options for analysis runs. */
    rt::ExecOptions baseOptions() const;

    /**
     * Infinite-loop vs ad-hoc-sync diagnosis at a timeout: true when
     * no live thread can write the cells the spinners read.
     */
    bool diagnoseInfiniteLoop(const rt::VmState &state) const;

    /** Map a final run outcome to a violation kind. */
    ViolationKind violationOf(rt::RunOutcome o) const;

    /**
     * Attribution check: does the crash at the final state's
     * outcome pc involve the racing cell's global in the value
     * chains of its operands? A crash whose faulting data has
     * nothing to do with the analyzed race is an *unrelated* bug
     * surfaced by schedule perturbation; the paper queues such
     * finds as separate reports (§6) rather than blaming the race
     * under analysis. Deadlocks and hangs are global conditions and
     * are always attributed.
     */
    bool crashInvolvesRaceCell(const rt::VmState &final_state,
                               const race::RaceReport &race) const;

    /** Concrete post-race state comparison (RR-Analyzer criterion). */
    static bool statesEqual(const rt::VmState &a, const rt::VmState &b);

    /** Fold a run's counters into @p stats. */
    static void absorbStats(AnalysisStats &stats, const rt::VmState &s);

    const ir::Program &prog;
    PortendOptions opts;

    /** Set by the owning constructor only; workers leave it null. */
    std::unique_ptr<rt::StaticInfo> owned_static;

    /** The may-write facts consulted during classification
     *  (read-only; points at owned_static or the shared copy). */
    const rt::StaticInfo &static_info;
};

} // namespace portend::core

#endif // PORTEND_PORTEND_ANALYZER_H
