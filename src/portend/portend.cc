#include "portend/portend.h"

#include <sstream>

#include "race/hb.h"
#include "race/lockset.h"
#include "replay/replayer.h"
#include "rt/interpreter.h"
#include "support/stats.h"
#include "support/trace.h"

namespace portend::core {

std::vector<const PortendReport *>
PortendResult::byClass(RaceClass c) const
{
    std::vector<const PortendReport *> out;
    for (const auto &r : reports) {
        if (r.classification.cls == c)
            out.push_back(&r);
    }
    return out;
}

Portend::Portend(const ir::Program &prog, PortendOptions opts)
    : prog(prog), opts(std::move(opts))
{}

const rt::StaticInfo &
Portend::staticInfo()
{
    if (!static_info)
        static_info = std::make_unique<rt::StaticInfo>(prog);
    return *static_info;
}

DetectionResult
Portend::detect()
{
    obs::Span span("pipeline", "detect");
    Stopwatch sw;
    DetectionResult result;

    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.max_steps = opts.max_steps;
    eo.rng_seed = opts.detection_seed;
    rt::Interpreter interp(prog, eo);

    // Rotate through runnable threads at every preemption point to
    // exercise many interleavings in a single deterministic run.
    rt::RotatePolicy rotate;
    replay::RecordingPolicy recorder(prog, &rotate, &result.trace);
    interp.setPolicy(&recorder);

    race::HbDetector hb(prog,
                        race::HbOptions{
                            opts.detector ==
                                DetectorKind::HappensBeforeNoMutex,
                            true, 4096});
    race::LocksetDetector lockset(prog);
    if (opts.detector == DetectorKind::Lockset)
        interp.addSink(&lockset);
    else
        interp.addSink(&hb);

    result.outcome = interp.run();
    replay::RecordingPolicy::captureInputs(interp.state(),
                                           &result.trace);
    result.steps = interp.state().global_step;

    const std::vector<race::RaceReport> &found =
        opts.detector == DetectorKind::Lockset ? lockset.races()
                                               : hb.races();
    result.dynamic_races = found.size();
    result.clusters = race::clusterRaces(found);
    result.vm = interp.state().stats;
    result.decoded_sites = interp.decodedSites();
    result.dispatch = rt::dispatchModeName(interp.dispatchMode());

    // The detection run's registry view (the --stats block reads
    // these instead of the raw VmStats fields). Pure function of the
    // deterministic detection run, so shard-safe.
    using obs::Counter;
    result.metrics.add(Counter::DetectRuns, 1);
    result.metrics.add(Counter::DetectSteps, result.steps);
    result.metrics.add(Counter::DetectDynamicRaces,
                       result.dynamic_races);
    result.metrics.add(Counter::DetectClusters, result.clusters.size());
    result.metrics.add(Counter::DetectEventsBatched,
                       result.vm.events_batched);
    result.metrics.add(Counter::DetectPagesUnshared,
                       result.vm.pages_unshared);
    result.metrics.add(Counter::DetectValuesBoxed,
                       result.vm.values_boxed);
    result.metrics.level(obs::Gauge::DecodedSites,
                         static_cast<std::uint64_t>(result.decoded_sites));

    span.arg("clusters", static_cast<std::int64_t>(result.clusters.size()));
    result.seconds = sw.seconds();
    return result;
}

Classification
Portend::classifyRace(const race::RaceReport &race,
                      const replay::ScheduleTrace &trace)
{
    if (!analyzer) {
        analyzer = std::make_unique<RaceAnalyzer>(prog, opts,
                                                  staticInfo());
    }
    return analyzer->classify(race, trace);
}

PortendResult
Portend::run()
{
    return runFrom(detect());
}

PortendResult
Portend::runFrom(DetectionResult detection)
{
    obs::Span span("pipeline", "run");
    PortendResult result;
    result.detection = std::move(detection);

    ClassificationScheduler scheduler(prog, opts, staticInfo());
    result.reports = scheduler.classifyAll(result.detection.clusters,
                                           result.detection.trace);
    result.scheduling = scheduler.stats();

    // Pipeline shard: detection first, then the batch — a fixed
    // merge order, like everything else feeding --metrics-out.
    result.metrics.add(obs::Counter::PipelineWorkloads, 1);
    result.metrics.merge(result.detection.metrics);
    result.metrics.merge(scheduler.metrics());
    return result;
}

std::string
formatReport(const ir::Program &prog, const PortendReport &report)
{
    const race::RaceReport &race = report.cluster.representative;
    const Classification &c = report.classification;

    std::ostringstream os;
    os << race.describe(prog);
    os << "  instances observed: " << report.cluster.instances << "\n";
    os << "  classification: " << raceClassName(c.cls);
    if (c.cls == RaceClass::SpecViolated)
        os << " (" << violationKindName(c.viol) << ")";
    if (c.cls == RaceClass::KWitnessHarmless)
        os << " (k = " << c.k << ")";
    os << "\n";
    if (!c.detail.empty())
        os << "  detail: " << c.detail << "\n";
    if (!c.output_diff.empty())
        os << "  output difference: " << c.output_diff << "\n";
    if (c.cls == RaceClass::SpecViolated ||
        c.cls == RaceClass::OutputDiffers) {
        os << "  evidence inputs:";
        if (c.evidence_inputs.empty()) {
            os << " (none required)";
        } else {
            for (std::int64_t v : c.evidence_inputs)
                os << " " << v;
        }
        os << "\n";
        if (!c.evidence_witness.empty()) {
            os << "  witness input:";
            for (const auto &w : c.evidence_witness)
                os << " " << w.name << "=" << w.value;
            os << "\n";
        }
        os << "  evidence ordering: "
           << (c.evidence_alternate ? "alternate" : "primary");
        if (!c.evidence_schedule.empty()) {
            os << ", post-race schedule prefix";
            for (int t : c.evidence_schedule)
                os << " " << t;
        } else {
            os << ", post-race schedule seed " << c.evidence_seed;
        }
        os << "\n";
        if (!c.evidence_signature.empty()) {
            os << "  schedule signature: " << c.evidence_signature
               << "\n";
        }
    }
    os << "  post-race concrete states: "
       << (c.states_differ ? "differ" : "same") << "\n";
    return os.str();
}

} // namespace portend::core
