/**
 * @file
 * Portend public API.
 *
 * The facade runs the full pipeline from the paper's Fig. 2: execute
 * the program under the dynamic race detector while recording a
 * schedule trace, cluster the reported races, then classify each
 * cluster's representative with multi-path multi-schedule analysis
 * and symbolic output comparison.
 *
 * Typical use:
 * @code
 *   core::Portend portend(program);
 *   core::PortendResult result = portend.run();
 *   for (const core::PortendReport &r : result.reports)
 *       std::cout << core::formatReport(program, r);
 * @endcode
 */

#ifndef PORTEND_PORTEND_PORTEND_H
#define PORTEND_PORTEND_PORTEND_H

#include <memory>
#include <string>
#include <vector>

#include "portend/analyzer.h"
#include "portend/scheduler.h"
#include "race/report.h"
#include "replay/trace.h"

namespace portend::core {

/** Result of a detection run. */
struct DetectionResult
{
    std::vector<race::RaceCluster> clusters; ///< distinct races
    std::size_t dynamic_races = 0;           ///< total instances
    replay::ScheduleTrace trace;             ///< recorded schedule
    rt::RunOutcome outcome = rt::RunOutcome::Running;
    std::uint64_t steps = 0;                 ///< instructions run
    double seconds = 0.0;

    /** Interpreter hot-path ledger for the detection run (the CLI
     *  renders it under --stats, reading the registry view below). */
    rt::VmStats vm;
    int decoded_sites = 0;       ///< dense decoded pc space size
    const char *dispatch = "";   ///< dispatch mode actually used

    /** Registry view of this detection run: the counters above plus
     *  cluster/race tallies, as one deterministic shard. */
    obs::MetricsShard metrics;
};

/** Result of the full pipeline. */
struct PortendResult
{
    DetectionResult detection;
    std::vector<PortendReport> reports;

    /** Classification-batch accounting (worker count, totals). */
    SchedulerStats scheduling;

    /**
     * The whole pipeline's metrics: detection shard merged with the
     * classification batch shard (in that fixed order). This is what
     * the CLI's `--metrics-out` renders — byte-identical across
     * --jobs values and runs by construction.
     */
    obs::MetricsShard metrics;

    /** Reports of a given class. */
    std::vector<const PortendReport *> byClass(RaceClass c) const;
};

/**
 * The Portend tool: detector + classifier over one program.
 */
class Portend
{
  public:
    /**
     * @param prog finalized program under test (kept by reference)
     * @param opts analysis configuration
     */
    explicit Portend(const ir::Program &prog, PortendOptions opts = {});

    /**
     * Run the detection phase only: execute the program with the
     * configured detector attached, recording the schedule trace.
     */
    DetectionResult detect();

    /**
     * Classify one race against a recorded trace. Repeated calls
     * reuse the facade's analyzer, so the static may-write analysis
     * is computed once per Portend instance, not once per race.
     */
    Classification classifyRace(const race::RaceReport &race,
                                const replay::ScheduleTrace &trace);

    /**
     * Full pipeline: detect, then classify every cluster through
     * the ClassificationScheduler (opts.jobs workers; verdicts are
     * byte-identical for every worker count).
     */
    PortendResult run();

    /**
     * Classification half of run(): consume an already-finished
     * detection phase. The campaign engine splits the pipeline here —
     * the recorded trace's hash completes the verdict-cache key, so
     * a cache probe sits between detect() and runFrom() and a hit
     * skips classification entirely. run() == runFrom(detect()).
     */
    PortendResult runFrom(DetectionResult detection);

    /** The options in effect. */
    const PortendOptions &options() const { return opts; }

    /**
     * The shared static analysis: computed on first use (detection
     * never needs it), then reused by every analyzer/worker.
     */
    const rt::StaticInfo &staticInfo();

  private:
    const ir::Program &prog;
    PortendOptions opts;

    /** Lazily computed; shared read-only once it exists. */
    std::unique_ptr<rt::StaticInfo> static_info;

    /** Reused by classifyRace (worker analyzers are per-thread). */
    std::unique_ptr<RaceAnalyzer> analyzer;
};

/**
 * Render a classified race in the style of the paper's Fig. 6
 * debugging-aid report.
 */
std::string formatReport(const ir::Program &prog,
                         const PortendReport &report);

} // namespace portend::core

#endif // PORTEND_PORTEND_PORTEND_H
