/**
 * @file
 * Report rendering for one pipeline run.
 *
 * The Fig. 6 text, compact classify table, and JSON renderings used
 * to live inside the CLI; the campaign engine needs the exact same
 * bytes (cached verdict payloads are compared byte-for-byte against
 * fresh runs), so the formatting is library code now and the CLI and
 * engine are both thin callers. Byte stability here is load-bearing:
 * goldens pin `classify <w> --json`, and the campaign cache's
 * soundness argument is "equal signature implies equal bytes".
 */

#ifndef PORTEND_PORTEND_RENDER_H
#define PORTEND_PORTEND_RENDER_H

#include <optional>
#include <string>
#include <vector>

#include "portend/portend.h"

namespace portend::core {

/** How one pipeline's result should be rendered. */
struct RenderMode
{
    bool json = false;          ///< JSON object instead of text
    bool stats = false;         ///< append the interpreter ledger
    bool classify_mode = false; ///< compact table instead of Fig. 6
    std::optional<RaceClass> only_class; ///< --class filter
};

/** JSON string escaping shared by every JSON-emitting layer. */
std::string jsonEscape(const std::string &s);

/** The `summary:` block shared by run and classify text modes. */
std::string summaryText(const PortendResult &res);

/** The --stats interpreter ledger of the detection run (a view over
 *  the registry shard; dispatch mode is the one non-metric field). */
std::string statsText(const DetectionResult &d);

/**
 * One pipeline's JSON object (no trailing newline, so batch mode
 * can join objects into an array). @p reports is the post---class
 * selection, in cluster order.
 */
std::string
jsonReport(const std::string &name, const ir::Program &prog,
           const PortendResult &res,
           const std::vector<const PortendReport *> &reports,
           bool stats);

/** The Fig. 6 text rendering of one `portend run` pipeline. */
std::string
runText(const std::string &name, const ir::Program &prog,
        const PortendResult &res,
        const std::vector<const PortendReport *> &reports);

/** The compact table rendering of one `portend classify` pipeline. */
std::string
classifyText(const std::string &name, const ir::Program &prog,
             const PortendResult &res,
             const std::vector<const PortendReport *> &reports,
             int mp, int ma);

/**
 * The full rendering of one pipeline under @p mode: applies the
 * --class filter, picks the JSON/run/classify shape, and appends the
 * --stats ledger in text mode. Returns exactly the bytes the CLI
 * prints for one workload (JSON output carries its trailing
 * newline). @p mp/@p ma feed the classify-table header.
 */
std::string renderPipelineReport(const std::string &name,
                                 const ir::Program &prog,
                                 const PortendResult &res, int mp,
                                 int ma, const RenderMode &mode);

} // namespace portend::core

#endif // PORTEND_PORTEND_RENDER_H
