#include "portend/outputcmp.h"

#include <map>
#include <sstream>

#include "sym/simplify.h"

namespace portend::core {

namespace {

std::string
describeRecord(const rt::OutputRecord &r, std::size_t i)
{
    std::ostringstream os;
    os << "output[" << i << "] at " << r.loc.toString() << " (T"
       << r.tid << "): " << r.toString();
    return os.str();
}

/**
 * Group records by emitting thread, preserving per-thread order.
 *
 * Comparison is per-thread: the interleaving of records from
 * different threads varies with scheduling even between equivalent
 * executions (the enforcement itself perturbs it); what a race can
 * corrupt is the *content and order of each thread's own output*.
 */
std::map<int, std::vector<const rt::OutputRecord *>>
byThread(const rt::OutputLog &log)
{
    std::map<int, std::vector<const rt::OutputRecord *>> out;
    for (const auto &r : log.records)
        out[r.tid].push_back(&r);
    return out;
}

/** Compare one pair of records; returns empty string on match. */
std::string
compareRecords(const rt::OutputRecord &ra, const rt::OutputRecord &rb,
               std::size_t i)
{
    if (ra.label != rb.label) {
        return "labels differ: " + describeRecord(ra, i) + " vs " +
               describeRecord(rb, i);
    }
    const bool has_a = ra.value != nullptr;
    const bool has_b = rb.value != nullptr;
    if (has_a != has_b)
        return "payload presence differs at " + describeRecord(ra, i);
    if (has_a && ra.value->isConcrete() && rb.value->isConcrete() &&
        ra.value->constValue() != rb.value->constValue()) {
        return "values differ: " + describeRecord(ra, i) + " vs " +
               describeRecord(rb, i);
    }
    return "";
}


/**
 * Relative order of the two racing threads' records in the global
 * stream; reordering them is the race's observable effect.
 */
std::vector<int>
pairOrder(const rt::OutputLog &log, int tid1, int tid2)
{
    std::vector<int> order;
    for (const auto &r : log.records) {
        if (r.tid == tid1 || r.tid == tid2)
            order.push_back(r.tid);
    }
    return order;
}

} // namespace

OutputComparison
compareConcreteOutputs(const rt::OutputLog &a, const rt::OutputLog &b,
                       int tid1, int tid2)
{
    if (tid1 >= 0 && tid2 >= 0 && tid1 != tid2 &&
        pairOrder(a, tid1, tid2) != pairOrder(b, tid1, tid2)) {
        OutputComparison cmp;
        cmp.diff = "racing threads' output records interleave "
                   "differently";
        return cmp;
    }
    OutputComparison cmp;
    if (a.size() != b.size()) {
        std::ostringstream os;
        os << "output operation counts differ: " << a.size() << " vs "
           << b.size();
        cmp.diff = os.str();
        return cmp;
    }
    // Fast path: identical concrete streams.
    if (a.concrete_chain == b.concrete_chain &&
        a.concrete_chain.count() == a.size()) {
        cmp.match = true;
        return cmp;
    }

    auto ta = byThread(a);
    auto tb = byThread(b);
    if (ta.size() != tb.size()) {
        cmp.diff = "sets of output-producing threads differ";
        return cmp;
    }
    for (const auto &[tid, recs_a] : ta) {
        auto it = tb.find(tid);
        if (it == tb.end()) {
            cmp.diff = "thread " + std::to_string(tid) +
                       " produced output in only one execution";
            return cmp;
        }
        const auto &recs_b = it->second;
        if (recs_a.size() != recs_b.size()) {
            cmp.diff = "thread " + std::to_string(tid) +
                       " output counts differ: " +
                       std::to_string(recs_a.size()) + " vs " +
                       std::to_string(recs_b.size());
            return cmp;
        }
        for (std::size_t i = 0; i < recs_a.size(); ++i) {
            std::string d =
                compareRecords(*recs_a[i], *recs_b[i], i);
            if (!d.empty()) {
                cmp.diff = d;
                return cmp;
            }
            // Fully-concrete comparison requires value equality.
            const rt::OutputRecord &ra = *recs_a[i];
            const rt::OutputRecord &rb = *recs_b[i];
            if (ra.value && !ra.value->isConcrete() &&
                !ra.value->equals(*rb.value)) {
                cmp.diff = "symbolic values differ structurally at " +
                           describeRecord(ra, i);
                return cmp;
            }
        }
    }
    cmp.match = true;
    return cmp;
}

OutputComparison
compareSymbolicOutputs(const rt::OutputLog &primary,
                       const std::vector<sym::ExprPtr> &path_condition,
                       const rt::OutputLog &alternate,
                       sym::Solver &solver, int tid1, int tid2)
{
    OutputComparison cmp;
    if (tid1 >= 0 && tid2 >= 0 && tid1 != tid2 &&
        pairOrder(primary, tid1, tid2) !=
            pairOrder(alternate, tid1, tid2)) {
        cmp.diff = "racing threads' output records interleave "
                   "differently";
        return cmp;
    }
    if (primary.size() != alternate.size()) {
        std::ostringstream os;
        os << "output operation counts differ: " << primary.size()
           << " vs " << alternate.size();
        cmp.diff = os.str();
        return cmp;
    }

    auto tp = byThread(primary);
    auto ta = byThread(alternate);
    if (tp.size() != ta.size()) {
        cmp.diff = "sets of output-producing threads differ";
        return cmp;
    }

    std::vector<sym::ExprPtr> query = path_condition;
    for (const auto &[tid, recs_p] : tp) {
        auto it = ta.find(tid);
        if (it == ta.end()) {
            cmp.diff = "thread " + std::to_string(tid) +
                       " produced output in only one execution";
            return cmp;
        }
        const auto &recs_a = it->second;
        if (recs_p.size() != recs_a.size()) {
            cmp.diff = "thread " + std::to_string(tid) +
                       " output counts differ: " +
                       std::to_string(recs_p.size()) + " vs " +
                       std::to_string(recs_a.size());
            return cmp;
        }
        for (std::size_t i = 0; i < recs_p.size(); ++i) {
            const rt::OutputRecord &rp = *recs_p[i];
            const rt::OutputRecord &ra = *recs_a[i];
            if (rp.label != ra.label) {
                cmp.diff = "labels differ: " + describeRecord(rp, i) +
                           " vs " + describeRecord(ra, i);
                return cmp;
            }
            const bool has_p = rp.value != nullptr;
            const bool has_a = ra.value != nullptr;
            if (has_p != has_a) {
                cmp.diff = "payload presence differs at " +
                           describeRecord(rp, i);
                return cmp;
            }
            if (!has_p)
                continue;
            if (!ra.value->isConcrete()) {
                cmp.diff = "alternate output not concrete at " +
                           describeRecord(ra, i);
                return cmp;
            }
            if (rp.value->isConcrete()) {
                if (rp.value->constValue() != ra.value->constValue()) {
                    cmp.diff = "values differ: " +
                               describeRecord(rp, i) + " vs " +
                               describeRecord(ra, i);
                    return cmp;
                }
                continue;
            }
            query.push_back(sym::mkEq(rp.value, ra.value));
        }
    }

    // The concrete outputs must be admissible under the primary's
    // constraints: one satisfiability query over the conjunction.
    sym::SatResult r = solver.checkSat(query, nullptr);
    if (r == sym::SatResult::Sat) {
        cmp.match = true;
        return cmp;
    }
    cmp.diff = r == sym::SatResult::Unsat
                   ? "alternate outputs violate primary constraints"
                   : "solver could not validate output equivalence";
    return cmp;
}

} // namespace portend::core
