/**
 * @file
 * Portend's four-category race taxonomy (paper §2.3, Fig. 1).
 *
 * True races are classified as:
 *  - "spec violated":      some ordering crashes, deadlocks, hangs,
 *                          or violates a semantic predicate;
 *  - "output differs":     the orderings can produce different
 *                          program output;
 *  - "k-witness harmless": k path x schedule combinations witnessed
 *                          equivalent (symbolically compared) output;
 *  - "single ordering":    only one ordering is possible (ad-hoc
 *                          synchronization), including false-positive
 *                          reports from imperfect detectors.
 */

#ifndef PORTEND_PORTEND_CLASSIFY_H
#define PORTEND_PORTEND_CLASSIFY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/observe.h"

namespace portend::core {

/** Top-level classification category. */
enum class RaceClass : std::uint8_t {
    SpecViolated,
    OutputDiffers,
    KWitnessHarmless,
    SingleOrdering,
    Unclassified, ///< analysis could not reproduce the race
};

/** Every RaceClass value, in paper order (Unclassified last). */
inline constexpr RaceClass kAllRaceClasses[] = {
    RaceClass::SpecViolated,     RaceClass::OutputDiffers,
    RaceClass::KWitnessHarmless, RaceClass::SingleOrdering,
    RaceClass::Unclassified,
};

/** Printable category name (paper spelling). */
const char *raceClassName(RaceClass c);

/**
 * Inverse of raceClassName: parse a paper-spelling category name.
 * Returns std::nullopt for unknown names.
 */
std::optional<RaceClass> raceClassFromName(const std::string &name);

/** What kind of specification violation was observed. */
enum class ViolationKind : std::uint8_t {
    None,
    Crash,          ///< memory error / division by zero
    Deadlock,
    InfiniteLoop,   ///< loop with an invariant exit condition
    SemanticAssert, ///< developer-provided predicate violated
    ReplayFailure,  ///< alternate not enforceable and ad-hoc
                    ///< detection disabled (baseline behaviour)
};

/** Printable violation-kind name. */
const char *violationKindName(ViolationKind v);

/**
 * Work performed during one race's classification (Fig. 9 data).
 *
 * `seconds` is the cluster's own wall-clock analysis time and
 * `queue_seconds` the time the cluster's job waited for a scheduler
 * worker; both vary run to run and are therefore never printed in
 * verdict reports (which must be byte-identical across --jobs).
 */
struct AnalysisStats
{
    std::uint64_t preemptions = 0;     ///< scheduling decisions taken
    std::uint64_t sym_branches = 0;    ///< symbolic decisions seen
    std::uint64_t steps = 0;           ///< instructions interpreted
    int paths_explored = 0;            ///< primary paths analyzed
    int schedules_explored = 0;        ///< alternate schedules run

    /**
     * Mazurkiewicz-inequivalent post-race interleavings witnessed
     * during stage 3 (canonical-signature distinct; see explore/).
     * Always <= schedules_explored; the gap is budget the random
     * explorer burned on equivalent schedules.
     */
    int distinct_schedules = 0;

    int states_created = 0;            ///< symbolic states forked
    std::uint64_t solver_queries = 0;  ///< checkSat calls issued
    double seconds = 0.0;              ///< monotonic analysis time
    double queue_seconds = 0.0;        ///< wait for a free worker

    /**
     * Fold the deterministic counters into a metrics shard (the
     * registry view of this ledger). The two duration fields stay
     * out on purpose: shards feed `--metrics-out`, which must be
     * byte-identical across --jobs values and runs.
     */
    void foldInto(obs::MetricsShard &shard) const;
};

/** One named input binding of an evidence witness. */
struct WitnessInput
{
    std::string name;
    std::int64_t value = 0;

    bool
    operator==(const WitnessInput &o) const
    {
        return name == o.name && value == o.value;
    }
};

/** The verdict for one race, with evidence (paper §3.6). */
struct Classification
{
    RaceClass cls = RaceClass::Unclassified;
    ViolationKind viol = ViolationKind::None;

    /** Number of path x schedule witnesses (k-witness verdicts). */
    int k = 0;

    /**
     * Whether the concrete post-race states of primary and
     * alternate differed (the Record/Replay-Analyzer criterion;
     * Table 3's "states same/differ" columns).
     */
    bool states_differ = false;

    /** Human-readable explanation of the verdict. */
    std::string detail;

    /** For "output differs": where and how the outputs diverged. */
    std::string output_diff;

    /** Inputs reproducing the harmful/divergent behaviour. */
    std::vector<std::int64_t> evidence_inputs;

    /**
     * Solver-concretized named input witness: the bindings for the
     * inputs that were symbolic on the evidence path. Non-empty only
     * when the verdict came from multi-path analysis with named
     * symbolic inputs; the same values appear (with all other env
     * reads) inside evidence_inputs, which replay consumes.
     */
    std::vector<WitnessInput> evidence_witness;

    /** Post-race schedule seed reproducing the behaviour. */
    std::uint64_t evidence_seed = 0;

    /**
     * Explorer-issued post-race decision prefix reproducing the
     * behaviour (rt::GuidedPolicy input). Non-empty only for
     * verdicts found by a dpor-guided schedule; then evidence_seed
     * is 0 and replay is prefix + deterministic fallback.
     */
    std::vector<int> evidence_schedule;

    /**
     * Canonical signature hash of the post-race interleaving behind
     * the verdict (explore::signatureHash): names *which* equivalence
     * class of schedules exhibits the behaviour. Empty for verdicts
     * whose evidence is the stage-1 trace-following alternate or a
     * primary-ordering violation.
     */
    std::string evidence_signature;

    /** True when the harmful ordering is the alternate one. */
    bool evidence_alternate = false;

    AnalysisStats stats;

    /** True for verdicts the paper counts as harmful. */
    bool
    harmful() const
    {
        return cls == RaceClass::SpecViolated;
    }
};

/**
 * Registry view of one finished verdict: the AnalysisStats ledger
 * plus the verdict-class tally and k-witness count, folded into a
 * per-cluster shard (merged in cluster order by the scheduler).
 */
void foldVerdict(const Classification &c, obs::MetricsShard &shard);

} // namespace portend::core

#endif // PORTEND_PORTEND_CLASSIFY_H
