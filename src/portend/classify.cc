#include "portend/classify.h"

namespace portend::core {

const char *
raceClassName(RaceClass c)
{
    switch (c) {
      case RaceClass::SpecViolated: return "spec violated";
      case RaceClass::OutputDiffers: return "output differs";
      case RaceClass::KWitnessHarmless: return "k-witness harmless";
      case RaceClass::SingleOrdering: return "single ordering";
      case RaceClass::Unclassified: return "unclassified";
    }
    return "?";
}

std::optional<RaceClass>
raceClassFromName(const std::string &name)
{
    for (RaceClass c : kAllRaceClasses)
        if (name == raceClassName(c))
            return c;
    return std::nullopt;
}

const char *
violationKindName(ViolationKind v)
{
    switch (v) {
      case ViolationKind::None: return "none";
      case ViolationKind::Crash: return "crash";
      case ViolationKind::Deadlock: return "deadlock";
      case ViolationKind::InfiniteLoop: return "infinite-loop";
      case ViolationKind::SemanticAssert: return "semantic";
      case ViolationKind::ReplayFailure: return "replay-failure";
    }
    return "?";
}

} // namespace portend::core
