#include "portend/classify.h"

namespace portend::core {

const char *
raceClassName(RaceClass c)
{
    switch (c) {
      case RaceClass::SpecViolated: return "spec violated";
      case RaceClass::OutputDiffers: return "output differs";
      case RaceClass::KWitnessHarmless: return "k-witness harmless";
      case RaceClass::SingleOrdering: return "single ordering";
      case RaceClass::Unclassified: return "unclassified";
    }
    return "?";
}

std::optional<RaceClass>
raceClassFromName(const std::string &name)
{
    for (RaceClass c : kAllRaceClasses)
        if (name == raceClassName(c))
            return c;
    return std::nullopt;
}

void
AnalysisStats::foldInto(obs::MetricsShard &shard) const
{
    using obs::Counter;
    using obs::Hist;
    shard.add(Counter::ClassifySteps, steps);
    shard.add(Counter::ClassifyPreemptions, preemptions);
    shard.add(Counter::ClassifySymBranches, sym_branches);
    shard.add(Counter::ClassifyPaths,
              static_cast<std::uint64_t>(paths_explored));
    shard.add(Counter::ClassifySchedules,
              static_cast<std::uint64_t>(schedules_explored));
    shard.add(Counter::ClassifyDistinctSchedules,
              static_cast<std::uint64_t>(distinct_schedules));
    shard.add(Counter::ClassifyStatesCreated,
              static_cast<std::uint64_t>(states_created));
    shard.add(Counter::ClassifySolverQueries, solver_queries);
    shard.observe(Hist::ClusterSteps, steps);
    shard.observe(Hist::ClusterDistinct,
                  static_cast<std::uint64_t>(distinct_schedules));
}

void
foldVerdict(const Classification &c, obs::MetricsShard &shard)
{
    using obs::Counter;
    c.stats.foldInto(shard);
    shard.add(Counter::ClassifyClusters, 1);
    shard.add(Counter::ClassifyKWitnesses,
              static_cast<std::uint64_t>(c.k));
    switch (c.cls) {
      case RaceClass::SpecViolated:
        shard.add(Counter::VerdictSpecViolated, 1);
        break;
      case RaceClass::OutputDiffers:
        shard.add(Counter::VerdictOutputDiffers, 1);
        break;
      case RaceClass::KWitnessHarmless:
        shard.add(Counter::VerdictKWitnessHarmless, 1);
        break;
      case RaceClass::SingleOrdering:
        shard.add(Counter::VerdictSingleOrdering, 1);
        break;
      case RaceClass::Unclassified:
        shard.add(Counter::VerdictUnclassified, 1);
        break;
    }
}

const char *
violationKindName(ViolationKind v)
{
    switch (v) {
      case ViolationKind::None: return "none";
      case ViolationKind::Crash: return "crash";
      case ViolationKind::Deadlock: return "deadlock";
      case ViolationKind::InfiniteLoop: return "infinite-loop";
      case ViolationKind::SemanticAssert: return "semantic";
      case ViolationKind::ReplayFailure: return "replay-failure";
    }
    return "?";
}

} // namespace portend::core
