/**
 * @file
 * Program-output comparison (paper §3.3.1).
 *
 * Two comparison modes:
 *
 *  - Concrete: record-by-record equality of two fully-concrete
 *    output logs (used by single-pre/single-post analysis).
 *  - Symbolic: the primary's outputs are symbolic formulae under a
 *    path condition; the alternate's are concrete values. The
 *    alternate matches if the conjunction of the path condition with
 *    per-record equalities is satisfiable — i.e., the concrete
 *    outputs lie in the set of values the primary's constraints
 *    allow. This generalizes one comparison over the whole input
 *    equivalence class of the primary path.
 */

#ifndef PORTEND_PORTEND_OUTPUTCMP_H
#define PORTEND_PORTEND_OUTPUTCMP_H

#include <string>

#include "rt/vmstate.h"
#include "sym/solver.h"

namespace portend::core {

/** Result of an output comparison. */
struct OutputComparison
{
    bool match = false;
    std::string diff; ///< description of the first difference
};

/**
 * Compare two fully-concrete output logs.
 *
 * Records are compared per-thread; in addition, the *relative
 * global order* of records from the two racing threads (@p tid1,
 * @p tid2, pass -1 to disable) is compared, since reordering those
 * is precisely the observable effect a race can have. Other
 * threads' interleavings are scheduler noise.
 */
OutputComparison compareConcreteOutputs(const rt::OutputLog &a,
                                        const rt::OutputLog &b,
                                        int tid1 = -1, int tid2 = -1);

/**
 * Check whether concrete @p alternate outputs satisfy the symbolic
 * @p primary outputs under @p path_condition.
 *
 * @param primary        output log possibly containing symbolic values
 * @param path_condition constraints of the primary execution
 * @param alternate      fully-concrete output log
 * @param solver         solver used for the satisfiability query
 * @param tid1,tid2      racing threads whose records are also
 *                       order-compared globally (-1 to disable)
 */
OutputComparison
compareSymbolicOutputs(const rt::OutputLog &primary,
                       const std::vector<sym::ExprPtr> &path_condition,
                       const rt::OutputLog &alternate,
                       sym::Solver &solver, int tid1 = -1,
                       int tid2 = -1);

} // namespace portend::core

#endif // PORTEND_PORTEND_OUTPUTCMP_H
