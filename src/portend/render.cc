#include "portend/render.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "rt/interpreter.h"
#include "support/observe.h"

namespace portend::core {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
summaryText(const PortendResult &res)
{
    std::ostringstream os;
    os << "summary: " << res.detection.clusters.size()
       << " distinct race(s), " << res.detection.dynamic_races
       << " dynamic instance(s)\n";
    for (RaceClass c : kAllRaceClasses) {
        std::size_t n = res.byClass(c).size();
        if (n) {
            os << "  " << std::left << std::setw(20)
               << raceClassName(c) << ' ' << n << "\n";
        }
    }
    return os.str();
}

std::string
statsText(const DetectionResult &d)
{
    const obs::MetricsShard &m = d.metrics;
    std::ostringstream os;
    os << "interpreter: dispatch=" << d.dispatch
       << " decoded_sites=" << m.gauge(obs::Gauge::DecodedSites)
       << " events_batched="
       << m.counter(obs::Counter::DetectEventsBatched)
       << " pages_unshared="
       << m.counter(obs::Counter::DetectPagesUnshared)
       << " values_boxed="
       << m.counter(obs::Counter::DetectValuesBoxed) << "\n";
    return os.str();
}

std::string
jsonReport(const std::string &name, const ir::Program &prog,
           const PortendResult &res,
           const std::vector<const PortendReport *> &reports,
           bool stats)
{
    std::ostringstream os;
    os << "{\n  \"workload\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"detection\": {\n";
    os << "    \"outcome\": \""
       << rt::runOutcomeName(res.detection.outcome) << "\",\n";
    os << "    \"dynamic_races\": " << res.detection.dynamic_races
       << ",\n";
    os << "    \"distinct_races\": " << res.detection.clusters.size()
       << ",\n";
    os << "    \"steps\": " << res.detection.steps;
    // Opt-in so the golden classify --json bytes stay stable. Since
    // PR 8 the numbers are the detection run's registry view, not the
    // raw VmStats fields — same values, one source of truth.
    if (stats) {
        const DetectionResult &d = res.detection;
        const obs::MetricsShard &m = d.metrics;
        os << ",\n    \"interp\": {\"dispatch\": \"" << d.dispatch
           << "\", \"decoded_sites\": "
           << m.gauge(obs::Gauge::DecodedSites)
           << ", \"events_batched\": "
           << m.counter(obs::Counter::DetectEventsBatched)
           << ", \"pages_unshared\": "
           << m.counter(obs::Counter::DetectPagesUnshared)
           << ", \"values_boxed\": "
           << m.counter(obs::Counter::DetectValuesBoxed) << "}";
    }
    os << "\n  },\n  \"reports\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const PortendReport &r = *reports[i];
        const Classification &c = r.classification;
        os << "    {\n";
        os << "      \"cell\": \""
           << jsonEscape(
                  prog.cellName(r.cluster.representative.cell))
           << "\",\n";
        os << "      \"instances\": " << r.cluster.instances << ",\n";
        os << "      \"class\": \"" << raceClassName(c.cls)
           << "\",\n";
        os << "      \"violation\": \""
           << violationKindName(c.viol) << "\",\n";
        os << "      \"k\": " << c.k << ",\n";
        os << "      \"states_differ\": "
           << (c.states_differ ? "true" : "false") << ",\n";
        os << "      \"witness\": [";
        for (std::size_t j = 0; j < c.evidence_witness.size(); ++j) {
            const WitnessInput &wi = c.evidence_witness[j];
            os << (j ? ", " : "") << "{\"name\": \""
               << jsonEscape(wi.name) << "\", \"value\": " << wi.value
               << "}";
        }
        os << "],\n";
        os << "      \"distinct_schedules\": "
           << c.stats.distinct_schedules << ",\n";
        os << "      \"signature\": \""
           << jsonEscape(c.evidence_signature) << "\",\n";
        os << "      \"detail\": \"" << jsonEscape(c.detail)
           << "\"\n";
        os << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "  ]\n}";
    return os.str();
}

std::string
runText(const std::string &name, const ir::Program &prog,
        const PortendResult &res,
        const std::vector<const PortendReport *> &reports)
{
    std::ostringstream os;
    os << "== portend run: " << name << " ==\n";
    for (const PortendReport *r : reports)
        os << formatReport(prog, *r) << "\n";
    os << summaryText(res);
    return os.str();
}

std::string
classifyText(const std::string &name, const ir::Program &prog,
             const PortendResult &res,
             const std::vector<const PortendReport *> &reports,
             int mp, int ma)
{
    std::ostringstream os;
    os << "== portend classify: " << name << " (Mp=" << mp
       << ", Ma=" << ma << ") ==\n";
    os << std::left << std::setw(24) << "cell" << ' ' << std::setw(20)
       << "class" << ' ' << std::right << std::setw(6) << "k" << ' '
       << std::setw(10) << "instances" << "\n";
    for (const PortendReport *r : reports) {
        os << std::left << std::setw(24)
           << prog.cellName(r->cluster.representative.cell) << ' '
           << std::setw(20) << raceClassName(r->classification.cls)
           << ' ' << std::right << std::setw(6)
           << r->classification.k << ' ' << std::setw(10)
           << r->cluster.instances << "\n";
    }
    os << summaryText(res);
    return os.str();
}

std::string
renderPipelineReport(const std::string &name, const ir::Program &prog,
                     const PortendResult &res, int mp, int ma,
                     const RenderMode &mode)
{
    std::vector<const PortendReport *> selected;
    for (const PortendReport &r : res.reports)
        if (!mode.only_class ||
            r.classification.cls == *mode.only_class)
            selected.push_back(&r);

    if (mode.json)
        return jsonReport(name, prog, res, selected, mode.stats) +
               "\n";
    std::string out = mode.classify_mode
                          ? classifyText(name, prog, res, selected,
                                         mp, ma)
                          : runText(name, prog, res, selected);
    if (mode.stats)
        out += statsText(res.detection);
    return out;
}

} // namespace portend::core
