#include "portend/scheduler.h"

#include <algorithm>
#include <future>
#include <utility>

#include <cstdio>

#include "campaign/queue.h"
#include "replay/checkpoint.h"
#include "support/stats.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace portend::core {

namespace {

/** `--progress jsonl`: one line per classified cluster. */
void
emitClusterEvent(std::size_t index, const PortendReport &r)
{
    if (!obs::progress())
        return;
    const AnalysisStats &s = r.classification.stats;
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "{\"event\": \"cluster\", \"index\": %zu, \"cell\": %d, "
        "\"class\": \"%s\", \"k\": %d, \"distinct_schedules\": %d, "
        "\"schedules_explored\": %d, \"steps\": %llu}",
        index, r.cluster.representative.cell,
        raceClassName(r.classification.cls), r.classification.k,
        s.distinct_schedules, s.schedules_explored,
        static_cast<unsigned long long>(s.steps));
    obs::progressLine(buf);
}

/** The ledger is a view: read every counter back from the shard. */
void
statsFromShard(SchedulerStats &st, const obs::MetricsShard &m)
{
    using obs::Counter;
    st.steps = m.counter(Counter::ClassifySteps);
    st.preemptions = m.counter(Counter::ClassifyPreemptions);
    st.sym_branches = m.counter(Counter::ClassifySymBranches);
    st.states_created =
        static_cast<int>(m.counter(Counter::ClassifyStatesCreated));
    st.paths_explored =
        static_cast<int>(m.counter(Counter::ClassifyPaths));
    st.schedules_explored =
        static_cast<int>(m.counter(Counter::ClassifySchedules));
    st.distinct_schedules =
        static_cast<int>(m.counter(Counter::ClassifyDistinctSchedules));
    st.solver_queries = m.counter(Counter::ClassifySolverQueries);
    st.clusters = static_cast<int>(m.counter(Counter::ClassifyClusters));
    st.ladder_rungs = static_cast<int>(m.counter(Counter::LadderRungs));
    st.ladder_steps = m.counter(Counter::LadderBuildSteps);
    st.ladder_covered_steps = m.counter(Counter::LadderCoveredSteps);
}

} // namespace

ClassificationScheduler::ClassificationScheduler(
    const ir::Program &prog, PortendOptions opts,
    const rt::StaticInfo &static_info)
    : prog(prog), opts(std::move(opts)), static_info(static_info)
{}

int
ClassificationScheduler::jobs() const
{
    return ThreadPool::resolveJobs(opts.jobs);
}

PortendOptions
ClassificationScheduler::taskOptions(std::size_t n_clusters,
                                     std::size_t index) const
{
    PortendOptions task = opts;
    const std::size_t n = std::max<std::size_t>(1, n_clusters);
    index = std::min(index, n - 1);

    // Fixed per-cluster slices of the global budgets, computed from
    // (cluster count, cluster index) alone: identical regardless of
    // worker count or interleaving, so budget-capped verdicts stay
    // deterministic. The first `total % n` clusters carry the
    // division remainder, so the slices sum back to the total
    // (except in the documented total < n regime, where the
    // never-below-1 floor lets every cluster make progress).
    if (opts.total_state_budget > 0) {
        const int base =
            opts.total_state_budget / static_cast<int>(n);
        const int rem = opts.total_state_budget % static_cast<int>(n);
        const int slice = std::max(
            1, base + (index < static_cast<std::size_t>(rem) ? 1 : 0));
        task.executor_max_states =
            std::min(opts.executor_max_states, slice);
    }
    if (opts.total_step_budget > 0) {
        const std::uint64_t base = opts.total_step_budget / n;
        const std::uint64_t rem = opts.total_step_budget % n;
        const std::uint64_t slice = std::max<std::uint64_t>(
            1, base + (index < rem ? 1 : 0));
        task.max_steps = std::min(opts.max_steps, slice);
    }
    return task;
}

std::vector<ClusterUnit>
ClassificationScheduler::makeUnits(std::size_t n_clusters) const
{
    std::vector<ClusterUnit> units;
    units.reserve(n_clusters);
    for (std::size_t i = 0; i < n_clusters; ++i)
        units.push_back({i, taskOptions(n_clusters, i)});
    return units;
}

std::vector<PortendReport>
ClassificationScheduler::classifyAll(
    const std::vector<race::RaceCluster> &clusters,
    const replay::ScheduleTrace &trace)
{
    obs::Span batch_span("scheduler", "classify-batch");
    batch_span.arg("clusters", static_cast<std::int64_t>(clusters.size()));
    Stopwatch sw;
    stats_ = SchedulerStats{};
    shard_ = obs::MetricsShard{};

    std::vector<PortendReport> reports(clusters.size());
    if (clusters.empty()) {
        stats_.jobs = 1;
        stats_.seconds = sw.seconds();
        return reports;
    }

    const int n_workers = std::min(
        jobs(), static_cast<int>(clusters.size()));
    stats_.jobs = n_workers;

    // One shared replay of the recorded trace caches every cluster's
    // pre-race checkpoint; the jobs fork copy-on-write states from
    // the rungs instead of re-replaying the prefix. Read-only from
    // here on (the workers only copy rung states).
    const replay::CheckpointLadder ladder =
        replay::CheckpointLadder::build(
            prog, trace,
            replay::CheckpointLadder::targetsFor(clusters),
            RaceAnalyzer::replayOptions(opts),
            opts.semantic_predicates);

    // The batch as work units: one ClusterUnit per cluster, budget
    // slice applied up front, drained from a shared claim-by-cursor
    // queue by n_workers drain loops. Each claimed unit gets a
    // unit-local analyzer (construction is cheap: the expensive
    // StaticInfo is shared read-only). queue_seconds is the per-unit
    // enqueue→claim delta — the time the unit actually waited for a
    // free worker — not elapsed-since-batch-start, which would
    // charge ladder construction and a worker's earlier cluster
    // compute time as queue wait. Every unit is enqueued the moment
    // the queue exists, so the enqueue stamp is one shared value.
    campaign::Queue<ClusterUnit> queue(makeUnits(clusters.size()));
    std::vector<obs::MetricsShard> shards(clusters.size());
    const double enqueued_at = sw.seconds();
    const auto runUnit = [&](const ClusterUnit &unit) {
        obs::Span cluster_span("scheduler", "cluster");
        cluster_span.arg("index",
                         static_cast<std::int64_t>(unit.index));
        const double started = sw.seconds();
        RaceAnalyzer analyzer(prog, unit.opts, static_info);
        PortendReport &out = reports[unit.index];
        out.cluster = clusters[unit.index];
        out.classification = analyzer.classify(
            clusters[unit.index].representative, trace, &ladder);
        out.classification.stats.queue_seconds =
            std::max(0.0, started - enqueued_at);
        // Worker-local shard: folded into the batch shard in cluster
        // index order after the join, never by completion order.
        foldVerdict(out.classification, shards[unit.index]);
        emitClusterEvent(unit.index, out);
    };
    const auto drain = [&] {
        while (const ClusterUnit *unit = queue.next())
            runUnit(*unit);
    };
    if (n_workers == 1) {
        drain();
    } else {
        ThreadPool pool(n_workers);
        std::vector<std::future<void>> workers;
        workers.reserve(static_cast<std::size_t>(n_workers));
        for (int w = 0; w < n_workers; ++w)
            workers.push_back(pool.submit(drain));
        for (auto &f : workers)
            f.get();
    }

    // Workers have joined: the shard slots are plain memory now.
    // Merge in cluster index order (counters commute, but the fixed
    // order is the documented determinism rule and keeps any future
    // non-commutative metric honest), then read the legacy ledger
    // back from the shard — SchedulerStats is a view since PR 8.
    shard_.add(obs::Counter::LadderRungs,
               static_cast<std::uint64_t>(ladder.size()));
    shard_.add(obs::Counter::LadderBuildSteps, ladder.buildSteps());
    shard_.add(obs::Counter::LadderCoveredSteps,
               ladder.prefixStepsCovered());
    for (std::size_t i = 0; i < shards.size(); ++i)
        shard_.merge(shards[i]);
    statsFromShard(stats_, shard_);
    stats_.seconds = sw.seconds();
    return reports;
}

} // namespace portend::core
