#include "portend/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "support/stats.h"
#include "support/threadpool.h"

namespace portend::core {

ClassificationScheduler::ClassificationScheduler(
    const ir::Program &prog, PortendOptions opts,
    const rt::StaticInfo &static_info)
    : prog(prog), opts(std::move(opts)), static_info(static_info)
{}

int
ClassificationScheduler::jobs() const
{
    return ThreadPool::resolveJobs(opts.jobs);
}

PortendOptions
ClassificationScheduler::taskOptions(std::size_t n_clusters) const
{
    PortendOptions task = opts;
    const auto n = static_cast<std::uint64_t>(
        std::max<std::size_t>(1, n_clusters));

    // Fixed per-cluster slices of the global budgets, computed from
    // the cluster count alone: identical regardless of worker count
    // or interleaving, so budget-capped verdicts stay deterministic.
    if (opts.total_state_budget > 0) {
        const int slice = std::max(
            1, opts.total_state_budget / static_cast<int>(n));
        task.executor_max_states =
            std::min(opts.executor_max_states, slice);
    }
    if (opts.total_step_budget > 0) {
        const std::uint64_t slice =
            std::max<std::uint64_t>(1, opts.total_step_budget / n);
        task.max_steps = std::min(opts.max_steps, slice);
    }
    return task;
}

std::vector<PortendReport>
ClassificationScheduler::classifyAll(
    const std::vector<race::RaceCluster> &clusters,
    const replay::ScheduleTrace &trace)
{
    Stopwatch sw;
    stats_ = SchedulerStats{};
    stats_.clusters = static_cast<int>(clusters.size());

    std::vector<PortendReport> reports(clusters.size());
    if (clusters.empty()) {
        stats_.jobs = 1;
        stats_.seconds = sw.seconds();
        return reports;
    }

    const PortendOptions task_opts = taskOptions(clusters.size());
    const int n_workers = std::min(
        jobs(), static_cast<int>(clusters.size()));
    stats_.jobs = n_workers;

    // Each worker owns one analyzer reused across the clusters it
    // claims; verdicts land in their cluster's slot, so merge order
    // is the cluster order regardless of completion order.
    ThreadPool::parallelFor(n_workers, clusters.size(), [&] {
        auto analyzer = std::make_shared<RaceAnalyzer>(
            prog, task_opts, static_info);
        return [&, analyzer](std::size_t i) {
            const double waited = sw.seconds();
            PortendReport &out = reports[i];
            out.cluster = clusters[i];
            out.classification = analyzer->classify(
                clusters[i].representative, trace);
            out.classification.stats.queue_seconds = waited;
        };
    });

    // Workers have joined: the verdict slots are plain memory now,
    // so batch accounting is a simple sum.
    for (const PortendReport &r : reports) {
        const AnalysisStats &s = r.classification.stats;
        stats_.steps += s.steps;
        stats_.preemptions += s.preemptions;
        stats_.sym_branches += s.sym_branches;
        stats_.states_created += s.states_created;
        stats_.paths_explored += s.paths_explored;
        stats_.schedules_explored += s.schedules_explored;
    }
    stats_.seconds = sw.seconds();
    return reports;
}

} // namespace portend::core
