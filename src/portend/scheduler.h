/**
 * @file
 * Job-based parallel classification scheduler.
 *
 * Portend's cost is dominated by per-race multi-path multi-schedule
 * analysis, and race clusters are classified independently — the
 * same independence the paper exploits with Cloud9-style parallel
 * exploration. The scheduler fans the clusters of one detection run
 * out to a support/ thread pool: each job owns a private
 * RaceAnalyzer (interpreters, solver, RNG state) while all workers
 * share the program, one read-only rt::StaticInfo computed up
 * front, and one read-only replay::CheckpointLadder built per batch
 * (a single replay of the recorded trace caches every cluster's
 * pre-race checkpoint; workers fork copy-on-write states from the
 * rungs instead of replaying the prefix from step 0).
 *
 * Determinism contract: verdicts are merged by cluster index, never
 * by completion order, and per-cluster budgets are sliced from the
 * global budget *before* any job runs (the cluster count is known up
 * front), so a run with `--jobs N` is byte-identical to `--jobs 1`.
 * The stage-3 schedule explorer (see explore/) is job-local state
 * driven purely by its own cluster's runs, so its schedules — and
 * the distinct-interleaving ledger sliced per cluster from the Ma
 * budget — are jobs-invariant too.
 * The ladder preserves this: rungs are exact replay prefixes, so
 * verdicts and ledger stats match a ladder-less run byte for byte.
 * The only cross-thread writes are the per-cluster verdict slots,
 * which are disjoint by index; batch accounting is summed from them
 * after the join.
 *
 * Since the campaign refactor the batch is expressed as *work
 * units*: classifyAll() materializes one ClusterUnit per cluster —
 * budget slice applied, ladder reference attached — and n workers
 * drain them from a campaign::Queue (the same claim-by-cursor
 * primitive the campaign engine uses one level up for whole
 * programs). The unit list is fixed before any worker starts, which
 * is exactly why slicing is jobs-invariant.
 */

#ifndef PORTEND_PORTEND_SCHEDULER_H
#define PORTEND_PORTEND_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "portend/analyzer.h"
#include "race/report.h"
#include "replay/trace.h"
#include "rt/staticinfo.h"
#include "support/observe.h"

namespace portend::core {

/** One classified race cluster. */
struct PortendReport
{
    race::RaceCluster cluster;
    Classification classification;
};

/**
 * Aggregate accounting for one classification batch — since PR 8 a
 * *view* over the metrics registry: every counter below is read back
 * from the batch's merged MetricsShard after the workers joined
 * (only `jobs` and `seconds`, which must stay out of the registry
 * for determinism, are filled directly).
 */
struct SchedulerStats
{
    std::uint64_t steps = 0;        ///< instructions interpreted
    std::uint64_t preemptions = 0;  ///< scheduling decisions taken
    std::uint64_t sym_branches = 0; ///< symbolic decisions seen
    int states_created = 0;         ///< symbolic states forked
    int paths_explored = 0;         ///< primary paths analyzed
    int schedules_explored = 0;     ///< alternate schedules run

    /**
     * Distinct (Mazurkiewicz-inequivalent) post-race interleavings
     * across all clusters — what the batch's Ma budget actually
     * bought. The per-cluster Ma dial is a *distinct*-schedule
     * budget under the dpor explorer, so this ledger entry is the
     * one to compare across explorers at equal budget.
     */
    int distinct_schedules = 0;
    std::uint64_t solver_queries = 0; ///< checkSat calls issued
    int clusters = 0;               ///< jobs executed
    int jobs = 1;                   ///< worker threads used
    double seconds = 0.0;           ///< batch wall-clock time

    /** Checkpoint-ladder accounting (see replay/checkpoint.h). */
    int ladder_rungs = 0;           ///< pre-race checkpoints cached
    std::uint64_t ladder_steps = 0; ///< steps of the one build replay
    std::uint64_t ladder_covered_steps = 0; ///< prefix steps saved
};

/**
 * One classification work unit: a cluster index plus everything the
 * worker claiming it needs — the pre-sliced option set (budget
 * ladder moved behind the unit boundary, so a worker never consults
 * global budgets). Units are immutable once the batch queue is
 * built.
 */
struct ClusterUnit
{
    std::size_t index = 0; ///< cluster (and verdict slot) index
    PortendOptions opts;   ///< global budgets already sliced in
};

/**
 * Fans race clusters out to worker-local analyzers and merges the
 * verdicts back in deterministic cluster order.
 */
class ClassificationScheduler
{
  public:
    /**
     * @param prog         program under test (outlives the scheduler)
     * @param opts         analysis configuration (copied); opts.jobs
     *                     picks the worker count (0 = hardware
     *                     concurrency)
     * @param static_info  shared read-only static analysis (outlives
     *                     the scheduler)
     */
    ClassificationScheduler(const ir::Program &prog,
                            PortendOptions opts,
                            const rt::StaticInfo &static_info);

    /** Resolved worker count (opts.jobs with 0 mapped to hardware). */
    int jobs() const;

    /**
     * Classify every cluster's representative against @p trace.
     * Reports come back in the order of @p clusters regardless of
     * which worker finished first.
     */
    std::vector<PortendReport>
    classifyAll(const std::vector<race::RaceCluster> &clusters,
                const replay::ScheduleTrace &trace);

    /** Accounting for the most recent classifyAll(). */
    const SchedulerStats &stats() const { return stats_; }

    /**
     * The most recent batch's merged metrics shard: per-cluster
     * worker shards folded in cluster index order, plus the ladder
     * accounting. Deterministic across --jobs values and runs.
     */
    const obs::MetricsShard &metrics() const { return shard_; }

    /**
     * The option set classifyAll() hands the job for cluster
     * @p index of @p n_clusters: the global step/state budgets
     * sliced into fixed per-cluster shares. Division remainders are
     * distributed deterministically — the first `total % n` clusters
     * receive one extra unit — so the slices sum back to the exact
     * global budget instead of silently dropping up to n-1 units
     * (exposed for tests).
     */
    PortendOptions taskOptions(std::size_t n_clusters,
                               std::size_t index) const;

    /**
     * The batch's work-unit list: one ClusterUnit per cluster, in
     * cluster order, each carrying its taskOptions() slice. Built
     * before any worker starts (exposed for tests).
     */
    std::vector<ClusterUnit> makeUnits(std::size_t n_clusters) const;

  private:
    const ir::Program &prog;
    PortendOptions opts;
    const rt::StaticInfo &static_info;
    SchedulerStats stats_;
    obs::MetricsShard shard_;
};

} // namespace portend::core

#endif // PORTEND_PORTEND_SCHEDULER_H
