/**
 * @file
 * Job-based parallel classification scheduler.
 *
 * Portend's cost is dominated by per-race multi-path multi-schedule
 * analysis, and race clusters are classified independently — the
 * same independence the paper exploits with Cloud9-style parallel
 * exploration. The scheduler fans the clusters of one detection run
 * out to a support/ thread pool: each worker owns a private
 * RaceAnalyzer (interpreters, solver, RNG state) while all workers
 * share the program and one read-only rt::StaticInfo computed up
 * front.
 *
 * Determinism contract: verdicts are merged by cluster index, never
 * by completion order, and per-cluster budgets are sliced from the
 * global budget *before* any job runs (the cluster count is known up
 * front), so a run with `--jobs N` is byte-identical to `--jobs 1`.
 * The only cross-thread writes are the per-cluster verdict slots,
 * which are disjoint by index; batch accounting is summed from them
 * after the join.
 */

#ifndef PORTEND_PORTEND_SCHEDULER_H
#define PORTEND_PORTEND_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "portend/analyzer.h"
#include "race/report.h"
#include "replay/trace.h"
#include "rt/staticinfo.h"

namespace portend::core {

/** One classified race cluster. */
struct PortendReport
{
    race::RaceCluster cluster;
    Classification classification;
};

/**
 * Aggregate accounting for one classification batch: the sum of
 * every job's AnalysisStats, taken after all workers joined.
 */
struct SchedulerStats
{
    std::uint64_t steps = 0;        ///< instructions interpreted
    std::uint64_t preemptions = 0;  ///< scheduling decisions taken
    std::uint64_t sym_branches = 0; ///< symbolic decisions seen
    int states_created = 0;         ///< symbolic states forked
    int paths_explored = 0;         ///< primary paths analyzed
    int schedules_explored = 0;     ///< alternate schedules run
    int clusters = 0;               ///< jobs executed
    int jobs = 1;                   ///< worker threads used
    double seconds = 0.0;           ///< batch wall-clock time
};

/**
 * Fans race clusters out to worker-local analyzers and merges the
 * verdicts back in deterministic cluster order.
 */
class ClassificationScheduler
{
  public:
    /**
     * @param prog         program under test (outlives the scheduler)
     * @param opts         analysis configuration (copied); opts.jobs
     *                     picks the worker count (0 = hardware
     *                     concurrency)
     * @param static_info  shared read-only static analysis (outlives
     *                     the scheduler)
     */
    ClassificationScheduler(const ir::Program &prog,
                            PortendOptions opts,
                            const rt::StaticInfo &static_info);

    /** Resolved worker count (opts.jobs with 0 mapped to hardware). */
    int jobs() const;

    /**
     * Classify every cluster's representative against @p trace.
     * Reports come back in the order of @p clusters regardless of
     * which worker finished first.
     */
    std::vector<PortendReport>
    classifyAll(const std::vector<race::RaceCluster> &clusters,
                const replay::ScheduleTrace &trace);

    /** Accounting for the most recent classifyAll(). */
    const SchedulerStats &stats() const { return stats_; }

    /**
     * The per-cluster option set classifyAll() hands each worker:
     * the global step/state budgets sliced into @p n_clusters fixed
     * shares (exposed for tests).
     */
    PortendOptions taskOptions(std::size_t n_clusters) const;

  private:
    const ir::Program &prog;
    PortendOptions opts;
    const rt::StaticInfo &static_info;
    SchedulerStats stats_;
};

} // namespace portend::core

#endif // PORTEND_PORTEND_SCHEDULER_H
