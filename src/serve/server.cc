#include "serve/server.h"

#ifndef _WIN32

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/clock.h"
#include "support/hash.h"
#include "support/str.h"

namespace portend::serve {

namespace fs = std::filesystem;

namespace {

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Bump a serve.* counter on the process collector, if installed. */
void
bump(obs::Counter c, std::uint64_t delta = 1)
{
    if (obs::Collector *col = obs::collector())
        col->add(c, delta);
}

void
workerEvent(long pid, const char *what)
{
    if (!obs::progress())
        return;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"event\": \"serve_worker\", \"pid\": %ld, "
                  "\"what\": \"%s\"}",
                  pid, what);
    obs::progressLine(buf);
}

void
unitEvent(const std::string &id, std::size_t unit, long pid,
          const char *what)
{
    if (!obs::progress())
        return;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"event\": \"serve_unit\", \"campaign\": \"%s\", "
                  "\"unit\": %zu, \"pid\": %ld, \"what\": \"%s\"}",
                  id.c_str(), unit, pid, what);
    obs::progressLine(buf);
}

void
submissionEvent(const std::string &id, std::size_t units,
                std::size_t pending, const char *what)
{
    if (!obs::progress())
        return;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"event\": \"serve_submission\", "
                  "\"campaign\": \"%s\", \"units\": %zu, "
                  "\"pending\": %zu, \"what\": \"%s\"}",
                  id.c_str(), units, pending, what);
    obs::progressLine(buf);
}

/** Campaign id: content hash of the manifest text, so the same
 *  submission always lands in the same campaign directory (and a
 *  resubmission resumes instead of re-running). */
std::string
campaignId(const std::string &manifest)
{
    return campaign::hex16(fnv1a(manifest));
}

} // namespace

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

int
Server::workerMain(int fd)
{
    wire::FrameReader reader;
    // Campaigns stay open across units: the manifest parse and the
    // cache's in-memory layer amortize over every unit this worker
    // runs for the same campaign.
    std::map<std::string, campaign::Campaign> campaigns;
    char buf[4096];
    for (;;) {
        std::optional<wire::Frame> f;
        while (!(f = reader.next())) {
            if (reader.failed())
                return 1;
            const long r = sub::readSome(fd, buf, sizeof buf);
            if (r <= 0)
                return 0; // server went away: clean exit
            reader.feed(buf, static_cast<std::size_t>(r));
        }
        if (f->type == "bye")
            return 0;
        if (f->type != "unit")
            return 1;

        // Payload: "<campaign_dir>\n<cache_dir>\n<index>\n".
        std::istringstream is(f->payload);
        std::string dir, cache_dir, index_s;
        if (!std::getline(is, dir) || !std::getline(is, cache_dir) ||
            !std::getline(is, index_s))
            return 1;
        std::int64_t index = -1;
        if (!parseI64(index_s, &index) || index < 0)
            return 1;

        wire::Frame out;
        std::string err;
        auto it = campaigns.find(dir);
        if (it == campaigns.end()) {
            std::optional<campaign::Campaign> camp =
                campaign::Campaign::open(dir, &err, cache_dir);
            if (camp)
                it = campaigns.emplace(dir, std::move(*camp)).first;
        }
        if (it == campaigns.end()) {
            out = {"fail", index_s + " " + err};
        } else {
            campaign::UnitResult u;
            std::string store_err;
            if (!campaign::executeUnit(it->second.config(),
                                       static_cast<std::size_t>(index),
                                       it->second.cache(), &u, &err,
                                       &store_err)) {
                out = {"fail", index_s + " " + err};
            } else if (!store_err.empty()) {
                // The verdict never reached the shared disk cache, so
                // the server's re-probe would miss: report failure
                // rather than a `done` the server cannot trust.
                out = {"fail", index_s + " " + store_err};
            } else {
                const bool cached =
                    u.source == campaign::UnitSource::CacheHit;
                out = {"done", index_s + " " + u.sig +
                                   (cached ? " 1" : " 0")};
            }
        }
        const std::string bytes = wire::encodeFrame(out);
        if (!sub::writeAll(fd, bytes.data(), bytes.size()))
            return 0;
    }
}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServeOptions opts) : opts_(std::move(opts)) {}

Server::~Server()
{
    for (Worker &w : workers_)
        sub::terminate(w.child, 0.5);
    for (ClientConn &c : clients_)
        if (c.fd >= 0)
            ::close(c.fd);
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    if (!opts_.socket_path.empty())
        ::unlink(opts_.socket_path.c_str());
}

bool
Server::start(std::string *error)
{
    if (opts_.workers < 1)
        return fail(error, "serve needs at least one worker");
    if (opts_.dir.empty())
        return fail(error, "serve needs a state directory");
    std::error_code ec;
    cache_dir_ = (fs::path(opts_.dir) / "cache").string();
    fs::create_directories(cache_dir_, ec);
    if (ec)
        return fail(error, "cannot create " + cache_dir_ + ": " +
                               ec.message());
    fs::create_directories(fs::path(opts_.dir) / "campaigns", ec);
    if (ec)
        return fail(error, "cannot create campaigns dir: " +
                               ec.message());
    // Client disconnects must surface as EPIPE write errors, not
    // process death.
    ::signal(SIGPIPE, SIG_IGN);
    // Pre-fork before binding so the initial pool never inherits the
    // listen socket (respawned workers close inherited fds in
    // spawnWorker).
    workers_.resize(static_cast<std::size_t>(opts_.workers));
    for (Worker &w : workers_)
        if (!spawnWorker(w, error))
            return false;
    return bindSocket(error);
}

bool
Server::bindSocket(std::string *error)
{
    if (!opts_.socket_path.empty()) {
        sockaddr_un addr{};
        if (opts_.socket_path.size() >= sizeof(addr.sun_path))
            return fail(error, "socket path too long: " +
                                   opts_.socket_path);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            return fail(error, std::string("socket: ") +
                                   std::strerror(errno));
        ::unlink(opts_.socket_path.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0)
            return fail(error, "bind " + opts_.socket_path + ": " +
                                   std::strerror(errno));
    } else {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            return fail(error, std::string("socket: ") +
                                   std::strerror(errno));
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.port));
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0)
            return fail(error, "bind port " +
                                   std::to_string(opts_.port) + ": " +
                                   std::strerror(errno));
        socklen_t len = sizeof addr;
        if (::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0)
            bound_port_ = ntohs(addr.sin_port);
    }
    if (::listen(listen_fd_, 16) != 0)
        return fail(error, std::string("listen: ") +
                               std::strerror(errno));
    return true;
}

bool
Server::spawnWorker(Worker &w, std::string *error)
{
    // The child must not hold server fds open past the server's own
    // lifetime (a worker owning the listen socket would leave ghost
    // accepts behind a dead server).
    std::vector<int> inherited;
    inherited.push_back(listen_fd_);
    for (const ClientConn &c : clients_)
        inherited.push_back(c.fd);
    for (const Worker &other : workers_)
        inherited.push_back(other.child.fd);
    std::optional<sub::Child> child = sub::spawn(
        [inherited](int fd) {
            for (int e : inherited)
                if (e >= 0)
                    ::close(e);
            return workerMain(fd);
        },
        error);
    if (!child)
        return false;
    w.child = *child;
    w.reader = wire::FrameReader();
    w.busy = false;
    w.submission = -1;
    w.unit = 0;
    w.deadline_ns = 0;
    w.gen += 1;
    workerEvent(w.child.pid, "spawn");
    return true;
}

// ---------------------------------------------------------------------------
// Responses and client bookkeeping
// ---------------------------------------------------------------------------

void
Server::respond(int fd, const wire::Frame &frame)
{
    if (fd < 0)
        return;
    const std::string bytes = wire::encodeFrame(frame);
    sub::writeAll(fd, bytes.data(), bytes.size()); // best effort
}

void
Server::closeClient(int fd)
{
    if (fd < 0)
        return;
    // Any submission still pointing at this fd loses its reply
    // channel (the work itself continues: the journal + cache keep
    // the result for a resubmission).
    for (Submission &s : submissions_)
        if (s.client_fd == fd)
            s.client_fd = -1;
    for (ClientConn &c : clients_)
        if (c.fd == fd)
            c.fd = -1; // swept after the poll-event pass
    ::close(fd);
}

void
Server::handleClientFrame(ClientConn &c, const wire::Frame &f)
{
    if (c.fd < 0)
        return;
    stats_.requests += 1;
    bump(obs::Counter::ServeRequests);
    if (f.type == "ping") {
        respond(c.fd, {"pong", ""});
        closeClient(c.fd);
    } else if (f.type == "status") {
        respond(c.fd, {"status_ok", statusJson()});
        closeClient(c.fd);
    } else if (f.type == "shutdown") {
        respond(c.fd, {"bye", ""});
        closeClient(c.fd);
        shutdown_ = true;
    } else if (f.type == "submit") {
        handleSubmit(c, f.payload);
    } else {
        respond(c.fd, {"error", "unknown request type: " + f.type});
        closeClient(c.fd);
    }
}

void
Server::handleSubmit(ClientConn &c, const std::string &manifest)
{
    stats_.submissions += 1;
    bump(obs::Counter::ServeSubmissions);
    std::string err;
    std::optional<campaign::CampaignConfig> config =
        campaign::parseManifest(manifest, &err);
    if (!config) {
        respond(c.fd, {"error", "bad manifest: " + err});
        closeClient(c.fd);
        return;
    }
    const std::string id = campaignId(manifest);
    const std::string dir =
        (fs::path(opts_.dir) / "campaigns" / id).string();
    std::optional<campaign::Campaign> camp =
        campaign::Campaign::create(dir, std::move(*config), &err,
                                   cache_dir_);
    if (!camp) {
        respond(c.fd, {"error", "cannot open campaign: " + err});
        closeClient(c.fd);
        return;
    }
    Submission sub;
    sub.id = id;
    sub.dir = dir;
    sub.campaign =
        std::make_unique<campaign::Campaign>(std::move(*camp));
    if (!sub.campaign->openJournal(&err)) {
        respond(c.fd, {"error", "cannot open journal: " + err});
        closeClient(c.fd);
        return;
    }
    sub.result = sub.campaign->replayJournal();
    for (std::size_t i = 0; i < sub.result.units.size(); ++i)
        if (sub.result.units[i].source ==
            campaign::UnitSource::Pending)
            sub.pending.push_back(i);
    sub.client_fd = c.fd;
    submissionEvent(id, sub.result.units.size(), sub.pending.size(),
                    "accepted");
    submissions_.push_back(std::move(sub));
    maybeFinishSubmission(submissions_.back());
}

// ---------------------------------------------------------------------------
// Worker traffic
// ---------------------------------------------------------------------------

void
Server::handleWorkerFrame(std::size_t wi, const wire::Frame &f)
{
    Worker &w = workers_[wi];
    if (!w.busy || (f.type != "done" && f.type != "fail")) {
        // A frame we did not ask for: the worker is off-protocol and
        // cannot be trusted with further units.
        sub::kill(w.child, SIGKILL);
        handleWorkerDeath(wi, "protocol");
        return;
    }
    std::istringstream is(f.payload);
    std::string index_s;
    is >> index_s;
    std::int64_t index = -1;
    if (!parseI64(index_s, &index) ||
        static_cast<std::size_t>(index) != w.unit) {
        sub::kill(w.child, SIGKILL);
        handleWorkerDeath(wi, "protocol");
        return;
    }
    Submission &sub = submissions_[static_cast<std::size_t>(
        w.submission)];
    w.busy = false;
    w.deadline_ns = 0;
    sub.in_flight -= 1;
    if (sub.done)
        return; // late frame for an already-failed submission

    if (f.type == "fail") {
        std::string msg;
        std::getline(is, msg);
        if (!msg.empty() && msg.front() == ' ')
            msg.erase(0, 1);
        sub.last_error = msg;
        unitEvent(sub.id, w.unit, w.child.pid, "fail");
        requeueUnit(sub, w.unit);
        return;
    }

    std::string sig, cached_s;
    is >> sig >> cached_s;
    const bool cached = cached_s == "1";
    stats_.units_completed += 1;
    bump(obs::Counter::ServeUnitsCompleted);
    if (cached) {
        stats_.units_cached += 1;
        bump(obs::Counter::ServeUnitsCached);
    }
    unitEvent(sub.id, w.unit, w.child.pid,
              cached ? "done_cached" : "done");
    std::string err;
    if (!sub.campaign->recordCompletion(sub.result, w.unit, sig,
                                        cached, &err)) {
        // The re-probe missed: whatever the worker stored is not on
        // disk (or the signature is bogus). Run the unit again.
        sub.last_error = err;
        requeueUnit(sub, w.unit);
        return;
    }
    maybeFinishSubmission(sub);
}

void
Server::handleWorkerDeath(std::size_t wi, const char *why)
{
    Worker &w = workers_[wi];
    stats_.worker_deaths += 1;
    bump(obs::Counter::ServeWorkerDeaths);
    workerEvent(w.child.pid, why);
    sub::closeChannel(w.child);
    sub::kill(w.child, SIGKILL); // no-op if already gone
    while (!sub::reap(w.child))
        ::usleep(1000); // prompt post-SIGKILL
    w.reader = wire::FrameReader();
    if (w.busy) {
        Submission &sub = submissions_[static_cast<std::size_t>(
            w.submission)];
        w.busy = false;
        w.deadline_ns = 0;
        sub.in_flight -= 1;
        if (!sub.done) {
            // The claimed-but-unjournaled unit: nothing durable was
            // written for it (journal records follow cache entries,
            // and the server never journaled it), so a plain
            // re-dispatch is exact recovery.
            unitEvent(sub.id, w.unit, -1, "redispatch");
            requeueUnit(sub, w.unit);
        }
    }
    if (stats_.worker_restarts <
        static_cast<std::uint64_t>(opts_.max_worker_restarts)) {
        std::string err;
        if (spawnWorker(w, &err)) {
            stats_.worker_restarts += 1;
            bump(obs::Counter::ServeWorkerRestarts);
            workerEvent(w.child.pid, "restart");
            return;
        }
    }
    // Pool exhausted: fail anything that still needs workers.
    const bool any_alive = std::any_of(
        workers_.begin(), workers_.end(),
        [](const Worker &x) { return x.child.running(); });
    if (!any_alive)
        for (Submission &s : submissions_)
            if (!s.done)
                failSubmission(s, "no workers left (restart budget "
                                  "exhausted)");
}

void
Server::requeueUnit(Submission &sub, std::size_t unit)
{
    // Attempts are charged (and the budget enforced) at dispatch
    // time, so a requeue is just a re-enqueue.
    sub.pending.push_back(unit);
}

void
Server::failSubmission(Submission &sub, const std::string &why)
{
    if (sub.done)
        return;
    sub.done = true;
    sub.pending.clear();
    sub.campaign->closeJournal();
    submissionEvent(sub.id, sub.result.units.size(), 0, "failed");
    if (sub.client_fd >= 0) {
        const int fd = sub.client_fd;
        respond(fd, {"error", why});
        closeClient(fd);
    }
    answered_ += 1;
}

void
Server::maybeFinishSubmission(Submission &sub)
{
    if (sub.done || !sub.pending.empty() || sub.in_flight > 0)
        return;
    if (!sub.result.complete()) {
        failSubmission(sub, "internal: units lost without verdicts");
        return;
    }
    sub.campaign->finalize(sub.result);
    sub.campaign->closeJournal();
    sub.done = true;
    submissionEvent(sub.id, sub.result.units.size(), 0, "complete");
    if (sub.client_fd >= 0) {
        const int fd = sub.client_fd;
        respond(fd, {"result",
                     sub.result.mergedOutput(
                         sub.campaign->config().render.json)});
        closeClient(fd);
    }
    answered_ += 1;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void
Server::dispatchWork()
{
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
        Worker &w = workers_[wi];
        if (w.busy || !w.child.running() || w.child.fd < 0)
            continue;
        // First submission with pending work, in arrival order.
        Submission *sub = nullptr;
        int si = -1;
        for (std::size_t s = 0; s < submissions_.size(); ++s) {
            if (!submissions_[s].done &&
                !submissions_[s].pending.empty()) {
                sub = &submissions_[s];
                si = static_cast<int>(s);
                break;
            }
        }
        if (!sub)
            break;
        const std::size_t unit = sub->pending.front();
        sub->pending.pop_front();
        const int attempt = ++sub->attempts[unit];
        if (attempt > opts_.max_unit_attempts) {
            std::string why = "unit " + std::to_string(unit) +
                              " failed after " +
                              std::to_string(
                                  opts_.max_unit_attempts) +
                              " attempts";
            if (!sub->last_error.empty())
                why += ": " + sub->last_error;
            failSubmission(*sub, why);
            continue;
        }
        const std::string payload = sub->dir + "\n" + cache_dir_ +
                                    "\n" + std::to_string(unit) +
                                    "\n";
        const std::string bytes =
            wire::encodeFrame({"unit", payload});
        if (!sub::writeAll(w.child.fd, bytes.data(), bytes.size())) {
            // Dead at dispatch: undo the claim, recycle the worker.
            sub->pending.push_front(unit);
            sub->attempts[unit] -= 1;
            handleWorkerDeath(wi, "write");
            continue;
        }
        w.busy = true;
        w.submission = si;
        w.unit = unit;
        if (opts_.unit_timeout_seconds > 0)
            w.deadline_ns =
                steadyNanos() +
                static_cast<std::uint64_t>(
                    opts_.unit_timeout_seconds * 1e9);
        sub->in_flight += 1;
        stats_.units_dispatched += 1;
        bump(obs::Counter::ServeUnitsDispatched);
        unitEvent(sub->id, unit, w.child.pid, "dispatch");
    }
    maybeInjectKill();
}

void
Server::maybeInjectKill()
{
    if (opts_.kill_worker_after < 0 || kill_injected_)
        return;
    if (stats_.units_completed <
        static_cast<std::uint64_t>(opts_.kill_worker_after))
        return;
    for (Worker &w : workers_) {
        if (w.busy && w.child.running()) {
            kill_injected_ = true;
            workerEvent(w.child.pid, "kill_injected");
            sub::kill(w.child, SIGKILL);
            // Death (and the unit's re-dispatch) surfaces through
            // the event loop as channel EOF.
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

std::string
Server::statusJson() const
{
    std::size_t alive = 0, busy = 0, active = 0;
    for (const Worker &w : workers_) {
        if (w.child.running())
            alive += 1;
        if (w.busy)
            busy += 1;
    }
    for (const Submission &s : submissions_)
        if (!s.done)
            active += 1;
    std::ostringstream os;
    os << "{\"workers\": " << opts_.workers
       << ", \"alive\": " << alive << ", \"busy\": " << busy
       << ", \"requests\": " << stats_.requests
       << ", \"submissions\": " << stats_.submissions
       << ", \"active\": " << active
       << ", \"units_dispatched\": " << stats_.units_dispatched
       << ", \"units_completed\": " << stats_.units_completed
       << ", \"units_cached\": " << stats_.units_cached
       << ", \"worker_deaths\": " << stats_.worker_deaths
       << ", \"worker_restarts\": " << stats_.worker_restarts
       << "}";
    return os.str();
}

int
Server::loop()
{
    if (listen_fd_ < 0)
        return 1;
    while (!shutdown_ && !stop_requested_) {
        if (opts_.max_submissions >= 0 &&
            answered_ >= opts_.max_submissions)
            break;

        std::vector<pollfd> fds;
        std::vector<int> client_of(1, -1), worker_of(1, -1);
        std::vector<std::uint64_t> gen_of(1, 0);
        fds.push_back({listen_fd_, POLLIN, 0});
        for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
            if (clients_[ci].fd < 0)
                continue;
            fds.push_back({clients_[ci].fd, POLLIN, 0});
            client_of.push_back(static_cast<int>(ci));
            worker_of.push_back(-1);
            gen_of.push_back(0);
        }
        for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
            if (workers_[wi].child.fd < 0)
                continue;
            fds.push_back({workers_[wi].child.fd, POLLIN, 0});
            client_of.push_back(-1);
            worker_of.push_back(static_cast<int>(wi));
            gen_of.push_back(workers_[wi].gen);
        }

        int timeout_ms = -1;
        if (opts_.unit_timeout_seconds > 0) {
            const std::uint64_t now = steadyNanos();
            for (const Worker &w : workers_) {
                if (!w.busy || w.deadline_ns == 0)
                    continue;
                const std::uint64_t left =
                    w.deadline_ns > now ? w.deadline_ns - now : 0;
                const int ms =
                    static_cast<int>(left / 1000000u) + 1;
                if (timeout_ms < 0 || ms < timeout_ms)
                    timeout_ms = ms;
            }
        }

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()),
                              timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return 1;
        }

        // Stuck-unit timeouts first: a SIGKILLed worker's channel
        // EOF would otherwise wait one more poll round.
        if (opts_.unit_timeout_seconds > 0) {
            const std::uint64_t now = steadyNanos();
            for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
                Worker &w = workers_[wi];
                if (w.busy && w.deadline_ns != 0 &&
                    now >= w.deadline_ns) {
                    sub::kill(w.child, SIGKILL);
                    handleWorkerDeath(wi, "timeout");
                }
            }
        }

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (i == 0) {
                const int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd >= 0) {
                    ClientConn conn;
                    conn.fd = fd;
                    clients_.push_back(std::move(conn));
                }
                continue;
            }
            if (client_of[i] >= 0) {
                ClientConn &c = clients_[static_cast<std::size_t>(
                    client_of[i])];
                if (c.fd < 0 || c.fd != fds[i].fd)
                    continue; // closed earlier this pass
                char buf[65536];
                const long r = sub::readSome(c.fd, buf, sizeof buf);
                if (r <= 0) {
                    closeClient(c.fd);
                    continue;
                }
                c.reader.feed(buf, static_cast<std::size_t>(r));
                std::optional<wire::Frame> f;
                while (c.fd >= 0 && (f = c.reader.next()))
                    handleClientFrame(c, *f);
                if (c.fd >= 0 && c.reader.failed()) {
                    respond(c.fd, {"error", "protocol error: " +
                                                c.reader.error()});
                    closeClient(c.fd);
                }
                continue;
            }
            const std::size_t wi =
                static_cast<std::size_t>(worker_of[i]);
            Worker &w = workers_[wi];
            // gen guards fd reuse: a worker respawned earlier this
            // pass may have been handed the dead one's fd number.
            if (w.child.fd < 0 || w.child.fd != fds[i].fd ||
                w.gen != gen_of[i])
                continue;
            char buf[4096];
            const long r = sub::readSome(w.child.fd, buf, sizeof buf);
            if (r <= 0) {
                handleWorkerDeath(wi, "death");
                continue;
            }
            w.reader.feed(buf, static_cast<std::size_t>(r));
            std::optional<wire::Frame> f;
            while (w.child.fd >= 0 && !w.reader.failed() &&
                   (f = w.reader.next()))
                handleWorkerFrame(wi, *f);
            if (w.child.fd >= 0 && w.reader.failed()) {
                sub::kill(w.child, SIGKILL);
                handleWorkerDeath(wi, "protocol");
            }
        }

        // Sweep closed client slots.
        clients_.erase(
            std::remove_if(clients_.begin(), clients_.end(),
                           [](const ClientConn &c) {
                               return c.fd < 0;
                           }),
            clients_.end());

        dispatchWork();
    }
    return 0;
}

} // namespace portend::serve

#else // _WIN32

namespace portend::serve {

Server::Server(ServeOptions opts) : opts_(std::move(opts)) {}
Server::~Server() = default;

bool
Server::start(std::string *error)
{
    if (error)
        *error = "portend serve is not supported on Windows";
    return false;
}

int Server::loop() { return 1; }
int Server::workerMain(int) { return 1; }

bool Server::bindSocket(std::string *) { return false; }
bool Server::spawnWorker(Worker &, std::string *) { return false; }
void Server::respond(int, const wire::Frame &) {}
void Server::closeClient(int) {}
void Server::handleClientFrame(ClientConn &, const wire::Frame &) {}
void Server::handleSubmit(ClientConn &, const std::string &) {}
void Server::handleWorkerFrame(std::size_t, const wire::Frame &) {}
void Server::handleWorkerDeath(std::size_t, const char *) {}
void Server::requeueUnit(Submission &, std::size_t) {}
void Server::failSubmission(Submission &, const std::string &) {}
void Server::maybeFinishSubmission(Submission &) {}
void Server::dispatchWork() {}
void Server::maybeInjectKill() {}
std::string Server::statusJson() const { return "{}"; }

} // namespace portend::serve

#endif // _WIN32
