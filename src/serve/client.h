/**
 * @file
 * Client side of the serve protocol: connect, send one request
 * frame, read one response frame. Used by `portend submit` (and the
 * serve tests/benches); deliberately synchronous — a submission
 * blocks until the server streams back the merged verdict bytes.
 */

#ifndef PORTEND_SERVE_CLIENT_H
#define PORTEND_SERVE_CLIENT_H

#include <string>

#include "support/wire.h"

namespace portend::serve {

/** Where the server listens (socket path wins over port). */
struct Endpoint
{
    std::string socket_path; ///< Unix socket ("" = TCP)
    int port = 0;            ///< loopback TCP port

    /** Connect retry budget: a just-started server may not be
     *  listening yet (the CI smoke starts it in the background). */
    double connect_timeout_seconds = 10.0;
};

/**
 * One request/response round trip. False with @p error on connect,
 * I/O, or protocol failure; a server-side "error" frame is returned
 * as a successful round trip (@p resp holds it — callers decide).
 */
bool request(const Endpoint &ep, const wire::Frame &req,
             wire::Frame *resp, std::string *error);

/** Submit a campaign manifest; @p output receives the merged
 *  verdict bytes. False with @p error on any failure, including a
 *  server-side "error" frame. */
bool submit(const Endpoint &ep, const std::string &manifest,
            std::string *output, std::string *error);

/** Fetch the server's status JSON. */
bool requestStatus(const Endpoint &ep, std::string *json,
                   std::string *error);

/** Ask the server to exit its loop. */
bool requestShutdown(const Endpoint &ep, std::string *error);

/** Liveness probe. */
bool ping(const Endpoint &ep, std::string *error);

} // namespace portend::serve

#endif // PORTEND_SERVE_CLIENT_H
