#include "serve/client.h"

#ifndef _WIN32

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/clock.h"
#include "support/subproc.h"

namespace portend::serve {

namespace {

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Connect with retry: the server may still be binding. */
int
connectWithRetry(const Endpoint &ep, std::string *error)
{
    const std::uint64_t start = steadyNanos();
    for (;;) {
        int fd = -1;
        int rc = -1;
        if (!ep.socket_path.empty()) {
            sockaddr_un addr{};
            if (ep.socket_path.size() >= sizeof(addr.sun_path)) {
                fail(error,
                     "socket path too long: " + ep.socket_path);
                return -1;
            }
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            addr.sun_family = AF_UNIX;
            std::strncpy(addr.sun_path, ep.socket_path.c_str(),
                         sizeof(addr.sun_path) - 1);
            if (fd >= 0)
                rc = ::connect(
                    fd, reinterpret_cast<const sockaddr *>(&addr),
                    sizeof addr);
        } else {
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port =
                htons(static_cast<std::uint16_t>(ep.port));
            if (fd >= 0)
                rc = ::connect(
                    fd, reinterpret_cast<const sockaddr *>(&addr),
                    sizeof addr);
        }
        if (fd >= 0 && rc == 0)
            return fd;
        const int err = errno;
        if (fd >= 0)
            ::close(fd);
        const bool retryable = err == ECONNREFUSED ||
                               err == ENOENT || err == EAGAIN;
        if (!retryable ||
            steadySeconds(start, steadyNanos()) >
                ep.connect_timeout_seconds) {
            fail(error, std::string("connect: ") +
                            std::strerror(err));
            return -1;
        }
        ::usleep(50 * 1000);
    }
}

} // namespace

bool
request(const Endpoint &ep, const wire::Frame &req,
        wire::Frame *resp, std::string *error)
{
    const int fd = connectWithRetry(ep, error);
    if (fd < 0)
        return false;
    const std::string bytes = wire::encodeFrame(req);
    if (!sub::writeAll(fd, bytes.data(), bytes.size())) {
        ::close(fd);
        return fail(error, std::string("send: ") +
                               std::strerror(errno));
    }
    wire::FrameReader reader;
    char buf[65536];
    for (;;) {
        if (std::optional<wire::Frame> f = reader.next()) {
            *resp = std::move(*f);
            ::close(fd);
            return true;
        }
        if (reader.failed()) {
            ::close(fd);
            return fail(error,
                        "protocol error: " + reader.error());
        }
        const long r = sub::readSome(fd, buf, sizeof buf);
        if (r < 0) {
            ::close(fd);
            return fail(error, std::string("recv: ") +
                                   std::strerror(errno));
        }
        if (r == 0) {
            ::close(fd);
            return fail(error,
                        "server closed the connection without a "
                        "response");
        }
        reader.feed(buf, static_cast<std::size_t>(r));
    }
}

bool
submit(const Endpoint &ep, const std::string &manifest,
       std::string *output, std::string *error)
{
    wire::Frame resp;
    if (!request(ep, {"submit", manifest}, &resp, error))
        return false;
    if (resp.type == "result") {
        if (output)
            *output = std::move(resp.payload);
        return true;
    }
    if (resp.type == "error")
        return fail(error, resp.payload);
    return fail(error, "unexpected response type: " + resp.type);
}

bool
requestStatus(const Endpoint &ep, std::string *json,
              std::string *error)
{
    wire::Frame resp;
    if (!request(ep, {"status", ""}, &resp, error))
        return false;
    if (resp.type != "status_ok")
        return fail(error, resp.type == "error"
                               ? resp.payload
                               : "unexpected response type: " +
                                     resp.type);
    if (json)
        *json = std::move(resp.payload);
    return true;
}

bool
requestShutdown(const Endpoint &ep, std::string *error)
{
    wire::Frame resp;
    if (!request(ep, {"shutdown", ""}, &resp, error))
        return false;
    if (resp.type != "bye")
        return fail(error,
                    "unexpected response type: " + resp.type);
    return true;
}

bool
ping(const Endpoint &ep, std::string *error)
{
    wire::Frame resp;
    if (!request(ep, {"ping", ""}, &resp, error))
        return false;
    if (resp.type != "pong")
        return fail(error,
                    "unexpected response type: " + resp.type);
    return true;
}

} // namespace portend::serve

#else // _WIN32

namespace portend::serve {

namespace {

bool
unsupported(std::string *error)
{
    if (error)
        *error = "the serve protocol is not supported on Windows";
    return false;
}

} // namespace

bool
request(const Endpoint &, const wire::Frame &, wire::Frame *,
        std::string *error)
{
    return unsupported(error);
}

bool
submit(const Endpoint &, const std::string &, std::string *,
       std::string *error)
{
    return unsupported(error);
}

bool
requestStatus(const Endpoint &, std::string *, std::string *error)
{
    return unsupported(error);
}

bool
requestShutdown(const Endpoint &, std::string *error)
{
    return unsupported(error);
}

bool
ping(const Endpoint &, std::string *error)
{
    return unsupported(error);
}

} // namespace portend::serve

#endif // _WIN32
