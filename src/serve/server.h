/**
 * @file
 * `portend serve`: the multi-process sharded triage server.
 *
 * A long-running daemon that accepts campaign submissions over a
 * Unix-domain (or loopback TCP) socket and shards their units across
 * a pool of forked worker *processes*. Each worker runs the PR 9
 * campaign engine as its per-process tier (campaign::executeUnit
 * against the server's shared on-disk VerdictCache); the server owns
 * the event loop, the per-campaign journal (single writer), and
 * worker supervision.
 *
 * Crash-safety contract (the resume contract, lifted to processes):
 *
 *  - a worker stores a unit's verdict in the shared cache *before*
 *    reporting `done`; the server journals the unit only after
 *    re-probing that entry. A worker SIGKILLed mid-unit therefore
 *    left nothing half-trusted — its claimed-but-unjournaled units
 *    are simply re-dispatched to another worker;
 *  - equal campaign signature implies equal verdict bytes (PR 9), so
 *    re-dispatch, cross-campaign dedup, and server restarts all
 *    merge to bytes identical to a single-process `campaign run`;
 *  - the journal is written by the server alone, one fsync'd line
 *    per completion, so a killed *server* resumes the same way a
 *    killed campaign always has.
 *
 * Layering: serve sits above campaign (it is another driver of the
 * campaign phases) and uses support/wire + support/subproc for the
 * protocol and process plumbing. Nothing below knows serve exists.
 */

#ifndef PORTEND_SERVE_SERVER_H
#define PORTEND_SERVE_SERVER_H

#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "support/subproc.h"
#include "support/wire.h"

namespace portend::serve {

/** Everything `portend serve` is parameterized by. */
struct ServeOptions
{
    std::string dir;         ///< state root: `<dir>/cache`, `<dir>/campaigns/<id>`
    std::string socket_path; ///< Unix socket path ("" = TCP instead)
    int port = 0;            ///< loopback TCP port (0 = ephemeral)
    int workers = 2;         ///< worker processes to pre-fork

    int max_worker_restarts = 16; ///< respawn budget across the run
    int max_unit_attempts = 3;    ///< dispatch attempts per unit
    double unit_timeout_seconds = 0.0; ///< kill a worker stuck on one
                                       ///< unit this long (0 = off)

    /** Fault injection for the crash-recovery tests: after this many
     *  unit completions, SIGKILL one busy worker (once). -1 = off. */
    int kill_worker_after = -1;

    /** Return from loop() after answering this many submissions
     *  (bounds server lifetime in tests/benches). -1 = serve until a
     *  shutdown request. */
    int max_submissions = -1;
};

/** Live counters surfaced by `status` requests (and tests). */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t submissions = 0;
    std::uint64_t units_dispatched = 0;
    std::uint64_t units_completed = 0;
    std::uint64_t units_cached = 0; ///< completions served by cache
    std::uint64_t worker_deaths = 0;
    std::uint64_t worker_restarts = 0;
};

/**
 * The server: bind, pre-fork, serve. Single-threaded by design —
 * fork safety of the worker pool depends on it.
 */
class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and pre-fork the worker pool. */
    bool start(std::string *error = nullptr);

    /** Event loop; returns 0 on clean shutdown (shutdown request,
     *  max_submissions reached, or stop()), 1 on a fatal error. */
    int loop();

    /** Request loop() exit from a signal handler (async-safe). */
    void stop() { stop_requested_ = 1; }

    /** The TCP port actually bound (ephemeral-port tests). */
    int boundPort() const { return bound_port_; }

    const ServeStats &stats() const { return stats_; }

    /** Worker-process entry point over its server channel fd. */
    static int workerMain(int fd);

  private:
    struct Worker
    {
        sub::Child child;
        wire::FrameReader reader;
        bool busy = false;
        int submission = -1;     ///< index into submissions_
        std::size_t unit = 0;    ///< in-flight unit index
        std::uint64_t deadline_ns = 0; ///< 0 = no timeout armed
        std::uint64_t gen = 0; ///< respawn count (fd-reuse guard)
    };

    struct ClientConn
    {
        int fd = -1;
        wire::FrameReader reader;
    };

    struct Submission
    {
        std::string id;       ///< 16-hex manifest hash
        std::string dir;      ///< campaign directory
        std::unique_ptr<campaign::Campaign> campaign;
        campaign::CampaignResult result;
        std::deque<std::size_t> pending;
        std::map<std::size_t, int> attempts;
        int in_flight = 0;
        int client_fd = -1; ///< -1 once the client went away
        bool done = false;
        std::string last_error; ///< most recent worker fail message
    };

    bool bindSocket(std::string *error);
    bool spawnWorker(Worker &w, std::string *error);
    void respond(int fd, const wire::Frame &frame);
    void closeClient(int fd);
    void handleClientFrame(ClientConn &c, const wire::Frame &f);
    void handleSubmit(ClientConn &c, const std::string &manifest);
    void handleWorkerFrame(std::size_t wi, const wire::Frame &f);
    void handleWorkerDeath(std::size_t wi, const char *why);
    void requeueUnit(Submission &sub, std::size_t unit);
    void failSubmission(Submission &sub, const std::string &why);
    void maybeFinishSubmission(Submission &sub);
    void dispatchWork();
    void maybeInjectKill();
    std::string statusJson() const;

    ServeOptions opts_;
    std::string cache_dir_;
    int listen_fd_ = -1;
    int bound_port_ = 0;
    std::vector<Worker> workers_;
    std::vector<ClientConn> clients_;
    std::vector<Submission> submissions_;
    ServeStats stats_;
    bool shutdown_ = false;
    volatile std::sig_atomic_t stop_requested_ = 0;
    bool kill_injected_ = false;
    int answered_ = 0;
};

} // namespace portend::serve

#endif // PORTEND_SERVE_SERVER_H
