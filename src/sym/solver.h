/**
 * @file
 * Constraint solving over symbolic expressions.
 *
 * This is the repository's stand-in for the STP solver the paper
 * uses underneath KLEE. It is a *small-model* solver: symbolic
 * inputs declare bounded domains (see Expr::symbol), candidate
 * values are enumerated per symbol (exhaustively when the domain is
 * small, via endpoint/constant/stride sampling otherwise), and a
 * pruned depth-first search over assignments decides satisfiability
 * and produces models.
 *
 * Completeness contract: when every symbol's domain was enumerated
 * exhaustively, Unsat answers are definitive. Otherwise the solver
 * answers Unknown rather than guessing, and callers treat Unknown
 * conservatively. Workload inputs in this repository use small
 * integer/flag domains, for which the search is exhaustive — the
 * same class of queries the paper's workloads generate.
 */

#ifndef PORTEND_SYM_SOLVER_H
#define PORTEND_SYM_SOLVER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "sym/expr.h"
#include "sym/interval.h"

namespace portend::sym {

/** Tri-state satisfiability verdict. */
enum class SatResult { Sat, Unsat, Unknown };

/** Printable name of a SatResult. */
const char *satResultName(SatResult r);

/** Counters describing solver work (exposed for bench/fig9). */
struct SolverStats
{
    std::uint64_t queries = 0;        ///< checkSat calls
    std::uint64_t sat = 0;            ///< Sat answers
    std::uint64_t unsat = 0;          ///< Unsat answers
    std::uint64_t unknown = 0;        ///< Unknown answers
    std::uint64_t assignments = 0;    ///< candidate assignments tested
    std::uint64_t interval_rejects = 0; ///< queries killed by intervals
};

/** Tunable limits for the search. */
struct SolverOptions
{
    /** Hard cap on assignments examined per query. */
    std::uint64_t max_assignments = 200000;
    /** Cap on candidate values enumerated per symbol. */
    std::uint64_t max_candidates = 128;
};

/**
 * Accumulates branch constraints along one execution path.
 *
 * Mirrors KLEE's path condition: a conjunction of I1 expressions.
 * Adding a literally-false constraint marks the condition infeasible
 * without involving the solver.
 */
class PathCondition
{
  public:
    /** Append @p c (simplified); literal true is dropped. */
    void add(const ExprPtr &c);

    /** All retained constraints. */
    const std::vector<ExprPtr> &constraints() const { return cs; }

    /** True when a literal-false constraint was added. */
    bool trivialFalse() const { return trivially_false; }

    /** Number of retained constraints. */
    std::size_t size() const { return cs.size(); }

    /** Conjunction of constraints extended with @p extra. */
    std::vector<ExprPtr> with(const ExprPtr &extra) const;

  private:
    std::vector<ExprPtr> cs;
    bool trivially_false = false;
};

/**
 * Small-model constraint solver.
 *
 * Thread-compatible (no shared mutable state beyond stats); create
 * one per analysis.
 */
class Solver
{
  public:
    explicit Solver(SolverOptions opts = {}) : opts(opts) {}

    /**
     * Decide satisfiability of the conjunction of @p constraints.
     *
     * @param constraints I1 expressions
     * @param model       when non-null and the answer is Sat,
     *                    receives a satisfying assignment
     */
    SatResult checkSat(const std::vector<ExprPtr> &constraints,
                       Model *model = nullptr);

    /** True iff @p e holds on every model of @p pc (proved). */
    bool mustBeTrue(const std::vector<ExprPtr> &pc, const ExprPtr &e);

    /** True iff a model of @p pc satisfying @p e was found. */
    bool mayBeTrue(const std::vector<ExprPtr> &pc, const ExprPtr &e,
                   Model *model = nullptr);

    /**
     * Concretize a complete witness for @p constraints.
     *
     * Like checkSat, but the returned model binds *every* symbol
     * referenced by the constraints: symbols the search left free
     * are pinned to their domain lower bound, so the witness can be
     * replayed deterministically. Returns nullopt on Unsat; an
     * Unknown answer still yields the (possibly partial-search)
     * model so callers degrade gracefully.
     */
    std::optional<Model>
    witness(const std::vector<ExprPtr> &constraints);

    /** Work counters. */
    const SolverStats &stats() const { return stats_; }

  private:
    struct SymbolDomain
    {
        int id;
        ExprPtr node;
        std::vector<std::int64_t> candidates;
        bool complete; ///< candidates cover the whole domain
    };

    /** Narrow @p env by pattern-matching atomic constraints. */
    static void narrowIntervals(const std::vector<ExprPtr> &cs,
                                IntervalEnv &env);

    /** Build per-symbol candidate lists from narrowed intervals. */
    std::vector<SymbolDomain>
    buildDomains(const std::vector<ExprPtr> &cs, const IntervalEnv &env,
                 const std::map<int, ExprPtr> &symbols) const;

    SolverOptions opts;
    SolverStats stats_;
};

/** All distinct symbol nodes referenced by @p constraints. */
std::map<int, ExprPtr>
collectSymbols(const std::vector<ExprPtr> &constraints);

/**
 * Evaluate @p e under a partial model.
 *
 * @return the concrete value when every needed symbol is bound;
 *         nullopt otherwise. Short-circuits where possible (e.g.,
 *         LAnd with one false operand is 0 regardless of the other).
 */
std::optional<std::int64_t> evalPartial(const ExprPtr &e,
                                        const Model &partial);

} // namespace portend::sym

#endif // PORTEND_SYM_SOLVER_H
