/**
 * @file
 * Signed 64-bit interval abstract domain.
 *
 * The solver uses intervals in two ways: to narrow symbol domains
 * from atomic constraints, and to bound whole expressions bottom-up
 * so that clearly-infeasible queries are rejected without search.
 */

#ifndef PORTEND_SYM_INTERVAL_H
#define PORTEND_SYM_INTERVAL_H

#include <cstdint>
#include <map>
#include <string>

#include "sym/expr.h"

namespace portend::sym {

/**
 * Closed signed interval [lo, hi]; lo > hi encodes bottom (empty).
 */
struct Interval
{
    std::int64_t lo = INT64_MIN;
    std::int64_t hi = INT64_MAX;

    /** Full 64-bit range. */
    static Interval top() { return {}; }

    /** Empty interval. */
    static Interval bottom() { return {1, 0}; }

    /** Singleton interval. */
    static Interval point(std::int64_t v) { return {v, v}; }

    /** True when the interval contains no values. */
    bool empty() const { return lo > hi; }

    /** True when the interval contains exactly one value. */
    bool singleton() const { return lo == hi; }

    /** True when @p v lies within the interval. */
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

    /** Number of values, clamped to INT64_MAX. */
    std::uint64_t size() const;

    /** Set intersection. */
    Interval meet(const Interval &o) const;

    /** Convex hull (join). */
    Interval join(const Interval &o) const;

    bool operator==(const Interval &o) const = default;

    std::string toString() const;
};

/** @name Interval arithmetic (conservative, overflow-safe)
 * @{
 */
Interval ivAdd(const Interval &a, const Interval &b);
Interval ivSub(const Interval &a, const Interval &b);
Interval ivMul(const Interval &a, const Interval &b);
Interval ivNeg(const Interval &a);
/** @} */

/** Map from symbol id to its current interval. */
using IntervalEnv = std::map<int, Interval>;

/**
 * Conservatively bound @p e given symbol bounds in @p env.
 *
 * Symbols absent from @p env fall back to their declared domain.
 * The result always over-approximates the set of values @p e can
 * take (soundness property tested in tests/sym_interval_test.cc).
 */
Interval evalInterval(const ExprPtr &e, const IntervalEnv &env);

} // namespace portend::sym

#endif // PORTEND_SYM_INTERVAL_H
