/**
 * @file
 * Immutable symbolic expression DAG.
 *
 * This is the repository's analogue of KLEE's expression language:
 * runtime values in the interpreter are expression nodes, which are
 * either fully concrete (a Const node) or mention symbolic inputs
 * (Symbol nodes). Constructing through the factory functions applies
 * constant folding, so the invariant holds that an expression with no
 * symbols is always a single Const node.
 *
 * Expressions are immutable and shared via ExprPtr; copying an
 * execution state shares nodes safely.
 */

#ifndef PORTEND_SYM_EXPR_H
#define PORTEND_SYM_EXPR_H

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace portend::sym {

class Expr;

/** Shared handle to an immutable expression node. */
using ExprPtr = std::shared_ptr<const Expr>;

/** Bit width of an expression; I1 is the boolean width. */
enum class Width : std::uint8_t { I1 = 1, I8 = 8, I16 = 16, I32 = 32,
                                  I64 = 64 };

/** Number of bits in @p w. */
inline int
widthBits(Width w)
{
    return static_cast<int>(w);
}

/** Expression node kinds. */
enum class ExprKind : std::uint8_t {
    Const,      ///< literal value
    Symbol,     ///< symbolic input
    // Unary.
    Neg,        ///< two's complement negation
    BNot,       ///< bitwise not
    LNot,       ///< logical not (i1)
    // Binary arithmetic / bitwise.
    Add, Sub, Mul, SDiv, SRem,
    And, Or, Xor, Shl, AShr, LShr,
    // Comparisons (result width I1).
    Eq, Ne, Slt, Sle, Sgt, Sge,
    // Logical connectives over I1.
    LAnd, LOr,
    // Ternary.
    Ite,        ///< if-then-else select
};

/** Human-readable operator name. */
const char *kindName(ExprKind k);

/** Assignment of concrete values to symbol ids. */
struct Model
{
    /** Symbol id → concrete value. */
    std::map<int, std::int64_t> values;

    /** Value bound to @p sym_id, or 0 when unbound. */
    std::int64_t
    lookup(int sym_id) const
    {
        auto it = values.find(sym_id);
        return it == values.end() ? 0 : it->second;
    }
};

/**
 * One node of the expression DAG.
 *
 * Nodes carry a structural hash (for fast structural-equality
 * rejection) and a concreteness flag. Use the static factory
 * functions; they fold constants and apply light rewrites.
 */
class Expr : public std::enable_shared_from_this<Expr>
{
  public:
    /** @name Factories
     * @{
     */

    /** Literal of value @p v truncated to width @p w. */
    static ExprPtr constant(std::int64_t v, Width w = Width::I64);

    /** Boolean literal. */
    static ExprPtr boolean(bool b);

    /**
     * Fresh symbolic input.
     *
     * @param name  diagnostic name
     * @param id    unique symbol id (caller-assigned)
     * @param w     width
     * @param lo    smallest admissible value (domain bound)
     * @param hi    largest admissible value (domain bound)
     */
    static ExprPtr symbol(const std::string &name, int id,
                          Width w = Width::I64,
                          std::int64_t lo = INT64_MIN,
                          std::int64_t hi = INT64_MAX);

    /** Unary node (Neg, BNot, LNot). */
    static ExprPtr unary(ExprKind k, const ExprPtr &a);

    /** Binary node; applies folding and algebraic identities. */
    static ExprPtr binary(ExprKind k, const ExprPtr &a, const ExprPtr &b);

    /** If-then-else over an I1 condition. */
    static ExprPtr ite(const ExprPtr &c, const ExprPtr &t,
                       const ExprPtr &f);

    /** @} */

    /** Node kind. */
    ExprKind kind() const { return kind_; }

    /** Result width. */
    Width width() const { return width_; }

    /** True when the node mentions no symbols (then kind is Const). */
    bool isConcrete() const { return concrete_; }

    /** True for a Const node equal to @p v. */
    bool isConstEq(std::int64_t v) const;

    /** Literal value; only valid for Const nodes. */
    std::int64_t constValue() const;

    /** Symbol id; only valid for Symbol nodes. */
    int symbolId() const { return sym_id; }

    /** Symbol name; only valid for Symbol nodes. */
    const std::string &symbolName() const { return sym_name; }

    /** Symbol domain lower bound; only valid for Symbol nodes. */
    std::int64_t symbolLo() const { return sym_lo; }

    /** Symbol domain upper bound; only valid for Symbol nodes. */
    std::int64_t symbolHi() const { return sym_hi; }

    /** Operand @p i. */
    const ExprPtr &child(int i) const { return kids[i]; }

    /** Operand count. */
    int numChildren() const { return static_cast<int>(kids.size()); }

    /** Structural hash (stable across processes). */
    std::uint64_t hash() const { return hash_; }

    /** Deep structural equality. */
    bool equals(const Expr &o) const;

    /** Evaluate under @p m (all symbols must be bound or default 0). */
    std::int64_t evaluate(const Model &m) const;

    /** Collect the set of symbol ids mentioned by this expression. */
    void collectSymbols(std::set<int> &out) const;

    /** All distinct Symbol nodes in this expression. */
    void collectSymbolNodes(std::map<int, ExprPtr> &out) const;

    /** Render to a compact prefix string (diagnostics, reports). */
    std::string toString() const;

    /** Truncate @p v to @p w with sign extension back to 64 bits. */
    static std::int64_t truncate(std::int64_t v, Width w);

    /** Apply @p k to concrete operands (width-aware). */
    static std::int64_t applyBinary(ExprKind k, std::int64_t a,
                                    std::int64_t b, Width w);

    /** Apply unary @p k to a concrete operand. */
    static std::int64_t applyUnary(ExprKind k, std::int64_t a, Width w);

  private:
    friend ExprPtr simplifiedBinary(ExprKind k, const ExprPtr &a,
                                    const ExprPtr &b);

    Expr(ExprKind k, Width w) : kind_(k), width_(w) {}

    static ExprPtr make(ExprKind k, Width w,
                        std::vector<ExprPtr> children);

    ExprKind kind_;
    Width width_;
    bool concrete_ = false;
    std::uint64_t hash_ = 0;
    std::int64_t cval = 0;

    int sym_id = -1;
    std::string sym_name;
    std::int64_t sym_lo = INT64_MIN;
    std::int64_t sym_hi = INT64_MAX;

    std::vector<ExprPtr> kids;
};

/** @name Convenience constructors
 * @{
 */
inline ExprPtr mkConst(std::int64_t v, Width w = Width::I64)
{ return Expr::constant(v, w); }
inline ExprPtr mkAdd(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Add, a, b); }
inline ExprPtr mkSub(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Sub, a, b); }
inline ExprPtr mkMul(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Mul, a, b); }
inline ExprPtr mkEq(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Eq, a, b); }
inline ExprPtr mkNe(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Ne, a, b); }
inline ExprPtr mkSlt(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Slt, a, b); }
inline ExprPtr mkSle(const ExprPtr &a, const ExprPtr &b)
{ return Expr::binary(ExprKind::Sle, a, b); }
inline ExprPtr mkNot(const ExprPtr &a)
{ return Expr::unary(ExprKind::LNot, a); }
/** @} */

} // namespace portend::sym

#endif // PORTEND_SYM_EXPR_H
