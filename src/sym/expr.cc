#include "sym/expr.h"

#include <sstream>

#include "support/hash.h"
#include "support/logging.h"

namespace portend::sym {

const char *
kindName(ExprKind k)
{
    switch (k) {
      case ExprKind::Const: return "const";
      case ExprKind::Symbol: return "sym";
      case ExprKind::Neg: return "neg";
      case ExprKind::BNot: return "bnot";
      case ExprKind::LNot: return "lnot";
      case ExprKind::Add: return "add";
      case ExprKind::Sub: return "sub";
      case ExprKind::Mul: return "mul";
      case ExprKind::SDiv: return "sdiv";
      case ExprKind::SRem: return "srem";
      case ExprKind::And: return "and";
      case ExprKind::Or: return "or";
      case ExprKind::Xor: return "xor";
      case ExprKind::Shl: return "shl";
      case ExprKind::AShr: return "ashr";
      case ExprKind::LShr: return "lshr";
      case ExprKind::Eq: return "eq";
      case ExprKind::Ne: return "ne";
      case ExprKind::Slt: return "slt";
      case ExprKind::Sle: return "sle";
      case ExprKind::Sgt: return "sgt";
      case ExprKind::Sge: return "sge";
      case ExprKind::LAnd: return "land";
      case ExprKind::LOr: return "lor";
      case ExprKind::Ite: return "ite";
    }
    return "?";
}

std::int64_t
Expr::truncate(std::int64_t v, Width w)
{
    switch (w) {
      case Width::I1: return v & 1;
      case Width::I8: return static_cast<std::int8_t>(v);
      case Width::I16: return static_cast<std::int16_t>(v);
      case Width::I32: return static_cast<std::int32_t>(v);
      case Width::I64: return v;
    }
    return v;
}

std::int64_t
Expr::applyUnary(ExprKind k, std::int64_t a, Width w)
{
    switch (k) {
      case ExprKind::Neg:
        return truncate(-a, w);
      case ExprKind::BNot:
        return truncate(~a, w);
      case ExprKind::LNot:
        return a == 0 ? 1 : 0;
      default:
        PORTEND_PANIC("applyUnary on non-unary kind ", kindName(k));
    }
}

std::int64_t
Expr::applyBinary(ExprKind k, std::int64_t a, std::int64_t b, Width w)
{
    const int bits = widthBits(w);
    const std::uint64_t ua = static_cast<std::uint64_t>(a);
    switch (k) {
      case ExprKind::Add:
        return truncate(static_cast<std::int64_t>(
                            ua + static_cast<std::uint64_t>(b)), w);
      case ExprKind::Sub:
        return truncate(static_cast<std::int64_t>(
                            ua - static_cast<std::uint64_t>(b)), w);
      case ExprKind::Mul:
        return truncate(static_cast<std::int64_t>(
                            ua * static_cast<std::uint64_t>(b)), w);
      case ExprKind::SDiv:
        // Division by zero is checked by the interpreter before
        // reaching here; define it anyway so evaluation is total.
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return truncate(INT64_MIN, w);
        return truncate(a / b, w);
      case ExprKind::SRem:
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return 0;
        return truncate(a % b, w);
      case ExprKind::And:
        return truncate(a & b, w);
      case ExprKind::Or:
        return truncate(a | b, w);
      case ExprKind::Xor:
        return truncate(a ^ b, w);
      case ExprKind::Shl:
        if (b < 0 || b >= bits)
            return 0;
        return truncate(static_cast<std::int64_t>(ua << b), w);
      case ExprKind::AShr:
        if (b < 0)
            return 0;
        if (b >= bits)
            return a < 0 ? -1 : 0;
        return truncate(a >> b, w);
      case ExprKind::LShr: {
        if (b < 0 || b >= bits)
            return 0;
        std::uint64_t mask = bits == 64
                                 ? ~0ull
                                 : ((1ull << bits) - 1);
        return truncate(
            static_cast<std::int64_t>((ua & mask) >> b), w);
      }
      case ExprKind::Eq: return a == b ? 1 : 0;
      case ExprKind::Ne: return a != b ? 1 : 0;
      case ExprKind::Slt: return a < b ? 1 : 0;
      case ExprKind::Sle: return a <= b ? 1 : 0;
      case ExprKind::Sgt: return a > b ? 1 : 0;
      case ExprKind::Sge: return a >= b ? 1 : 0;
      case ExprKind::LAnd: return (a != 0 && b != 0) ? 1 : 0;
      case ExprKind::LOr: return (a != 0 || b != 0) ? 1 : 0;
      default:
        PORTEND_PANIC("applyBinary on non-binary kind ", kindName(k));
    }
}

ExprPtr
Expr::make(ExprKind k, Width w, std::vector<ExprPtr> children)
{
    auto node = std::shared_ptr<Expr>(new Expr(k, w));
    node->kids = std::move(children);
    bool concrete = k != ExprKind::Symbol;
    std::uint64_t h = hashCombine(static_cast<std::uint64_t>(k),
                                  static_cast<std::uint64_t>(w));
    for (const auto &c : node->kids) {
        concrete = concrete && c->isConcrete();
        h = hashCombine(h, c->hash());
    }
    node->concrete_ = concrete;
    node->hash_ = h;
    return node;
}

ExprPtr
Expr::constant(std::int64_t v, Width w)
{
    const auto make = [](std::int64_t val, Width width) {
        auto node =
            std::shared_ptr<Expr>(new Expr(ExprKind::Const, width));
        node->cval = truncate(val, width);
        node->concrete_ = true;
        node->hash_ = hashCombine(
            hashCombine(static_cast<std::uint64_t>(ExprKind::Const),
                        static_cast<std::uint64_t>(width)),
            static_cast<std::uint64_t>(node->cval));
        return node;
    };

    // Small I64 constants are interned: nodes are immutable and
    // compared structurally, so sharing one canonical node per value
    // turns the hottest boxing sites (concrete values crossing into
    // expression-typed interfaces) into a refcount bump.
    constexpr std::int64_t kLo = -256, kHi = 1025;
    if (w == Width::I64 && v >= kLo && v < kHi) {
        static const std::vector<ExprPtr> interned = [&make] {
            std::vector<ExprPtr> t;
            t.reserve(static_cast<std::size_t>(kHi - kLo));
            for (std::int64_t i = kLo; i < kHi; ++i)
                t.push_back(make(i, Width::I64));
            return t;
        }();
        return interned[static_cast<std::size_t>(v - kLo)];
    }
    return make(v, w);
}

ExprPtr
Expr::boolean(bool b)
{
    return constant(b ? 1 : 0, Width::I1);
}

ExprPtr
Expr::symbol(const std::string &name, int id, Width w, std::int64_t lo,
             std::int64_t hi)
{
    PORTEND_ASSERT(lo <= hi, "symbol domain empty for ", name);
    auto node = std::shared_ptr<Expr>(new Expr(ExprKind::Symbol, w));
    node->sym_id = id;
    node->sym_name = name;
    node->sym_lo = lo;
    node->sym_hi = hi;
    node->concrete_ = false;
    node->hash_ = hashCombine(
        hashCombine(static_cast<std::uint64_t>(ExprKind::Symbol),
                    static_cast<std::uint64_t>(w)),
        static_cast<std::uint64_t>(id));
    return node;
}

bool
Expr::isConstEq(std::int64_t v) const
{
    return kind_ == ExprKind::Const && cval == v;
}

std::int64_t
Expr::constValue() const
{
    PORTEND_ASSERT(kind_ == ExprKind::Const, "constValue on ",
                   kindName(kind_));
    return cval;
}

bool
Expr::equals(const Expr &o) const
{
    if (this == &o)
        return true;
    if (kind_ != o.kind_ || width_ != o.width_ || hash_ != o.hash_)
        return false;
    switch (kind_) {
      case ExprKind::Const:
        return cval == o.cval;
      case ExprKind::Symbol:
        return sym_id == o.sym_id;
      default:
        if (kids.size() != o.kids.size())
            return false;
        for (std::size_t i = 0; i < kids.size(); ++i) {
            if (!kids[i]->equals(*o.kids[i]))
                return false;
        }
        return true;
    }
}

std::int64_t
Expr::evaluate(const Model &m) const
{
    switch (kind_) {
      case ExprKind::Const:
        return cval;
      case ExprKind::Symbol:
        return truncate(m.lookup(sym_id), width_);
      case ExprKind::Neg:
      case ExprKind::BNot:
      case ExprKind::LNot:
        return applyUnary(kind_, kids[0]->evaluate(m), width_);
      case ExprKind::Ite:
        return kids[0]->evaluate(m) != 0 ? kids[1]->evaluate(m)
                                         : kids[2]->evaluate(m);
      default:
        return applyBinary(kind_, kids[0]->evaluate(m),
                           kids[1]->evaluate(m), width_);
    }
}

void
Expr::collectSymbols(std::set<int> &out) const
{
    if (kind_ == ExprKind::Symbol) {
        out.insert(sym_id);
        return;
    }
    for (const auto &c : kids)
        c->collectSymbols(out);
}

void
Expr::collectSymbolNodes(std::map<int, ExprPtr> &out) const
{
    if (kind_ == ExprKind::Symbol) {
        out.emplace(sym_id, shared_from_this());
        return;
    }
    for (const auto &c : kids)
        c->collectSymbolNodes(out);
}

std::string
Expr::toString() const
{
    std::ostringstream os;
    switch (kind_) {
      case ExprKind::Const:
        os << cval;
        break;
      case ExprKind::Symbol:
        os << sym_name << "#" << sym_id;
        break;
      default: {
        os << "(" << kindName(kind_);
        for (const auto &c : kids)
            os << " " << c->toString();
        os << ")";
        break;
      }
    }
    return os.str();
}

// The factory bodies for Expr::unary / Expr::binary / Expr::ite live
// in simplify.cc together with the rewrite rules they apply.

} // namespace portend::sym
