/**
 * @file
 * Expression rewrite rules.
 *
 * The factory functions on sym::Expr already apply these rules at
 * construction time; this header exposes the entry point for callers
 * that want to re-normalize an existing expression (e.g., after
 * substitution) plus a handful of query helpers used by the solver.
 */

#ifndef PORTEND_SYM_SIMPLIFY_H
#define PORTEND_SYM_SIMPLIFY_H

#include "sym/expr.h"

namespace portend::sym {

/**
 * Rebuild @p e bottom-up through the simplifying factories.
 *
 * Idempotent: simplify(simplify(e)) is structurally equal to
 * simplify(e).
 */
ExprPtr simplify(const ExprPtr &e);

/** True if @p e is an I1 expression that is the literal true. */
bool isTrue(const ExprPtr &e);

/** True if @p e is an I1 expression that is the literal false. */
bool isFalse(const ExprPtr &e);

/** Negate a boolean expression (with double-negation elimination). */
ExprPtr negate(const ExprPtr &e);

/** Conjunction of @p cs (returns true literal when empty). */
ExprPtr conjoin(const std::vector<ExprPtr> &cs);

} // namespace portend::sym

#endif // PORTEND_SYM_SIMPLIFY_H
