#include "sym/interval.h"

#include <algorithm>
#include <sstream>

namespace portend::sym {

namespace {

/** Saturating add of two int64 values using 128-bit intermediate. */
std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    __int128 r = static_cast<__int128>(a) + b;
    if (r > INT64_MAX)
        return INT64_MAX;
    if (r < INT64_MIN)
        return INT64_MIN;
    return static_cast<std::int64_t>(r);
}

/** Saturating multiply. */
std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    __int128 r = static_cast<__int128>(a) * b;
    if (r > INT64_MAX)
        return INT64_MAX;
    if (r < INT64_MIN)
        return INT64_MIN;
    return static_cast<std::int64_t>(r);
}

} // namespace

std::uint64_t
Interval::size() const
{
    if (empty())
        return 0;
    // Width computed unsigned to avoid overflow on huge ranges.
    std::uint64_t w = static_cast<std::uint64_t>(hi) -
                      static_cast<std::uint64_t>(lo);
    if (w == UINT64_MAX)
        return INT64_MAX;
    std::uint64_t n = w + 1;
    return n > static_cast<std::uint64_t>(INT64_MAX)
               ? static_cast<std::uint64_t>(INT64_MAX)
               : n;
}

Interval
Interval::meet(const Interval &o) const
{
    if (empty() || o.empty())
        return bottom();
    Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
    return r;
}

Interval
Interval::join(const Interval &o) const
{
    if (empty())
        return o;
    if (o.empty())
        return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

std::string
Interval::toString() const
{
    if (empty())
        return "[]";
    std::ostringstream os;
    os << "[" << lo << ", " << hi << "]";
    return os.str();
}

Interval
ivAdd(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return Interval::bottom();
    return {satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)};
}

Interval
ivSub(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return Interval::bottom();
    return {satAdd(a.lo, b.hi == INT64_MIN ? INT64_MAX : -b.hi),
            satAdd(a.hi, b.lo == INT64_MIN ? INT64_MAX : -b.lo)};
}

Interval
ivNeg(const Interval &a)
{
    if (a.empty())
        return Interval::bottom();
    std::int64_t nlo = a.hi == INT64_MIN ? INT64_MAX : -a.hi;
    std::int64_t nhi = a.lo == INT64_MIN ? INT64_MAX : -a.lo;
    return {nlo, nhi};
}

Interval
ivMul(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return Interval::bottom();
    std::int64_t c[4] = {satMul(a.lo, b.lo), satMul(a.lo, b.hi),
                         satMul(a.hi, b.lo), satMul(a.hi, b.hi)};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

namespace {

/** Interval of all values representable at width @p w. */
Interval
widthRange(Width w)
{
    switch (w) {
      case Width::I1: return {0, 1};
      case Width::I8: return {INT8_MIN, INT8_MAX};
      case Width::I16: return {INT16_MIN, INT16_MAX};
      case Width::I32: return {INT32_MIN, INT32_MAX};
      case Width::I64: return Interval::top();
    }
    return Interval::top();
}

/** Clamp @p iv to the representable range of @p w (conservative). */
Interval
clampToWidth(const Interval &iv, Width w)
{
    Interval wr = widthRange(w);
    // If iv fits within the width range, keep it; otherwise the
    // arithmetic may have wrapped, so fall back to the full range.
    if (iv.lo >= wr.lo && iv.hi <= wr.hi)
        return iv;
    return wr;
}

Interval
cmpInterval(ExprKind k, const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return Interval::bottom();
    switch (k) {
      case ExprKind::Eq:
        if (a.singleton() && b.singleton())
            return Interval::point(a.lo == b.lo ? 1 : 0);
        if (a.meet(b).empty())
            return Interval::point(0);
        return {0, 1};
      case ExprKind::Ne:
        if (a.singleton() && b.singleton())
            return Interval::point(a.lo != b.lo ? 1 : 0);
        if (a.meet(b).empty())
            return Interval::point(1);
        return {0, 1};
      case ExprKind::Slt:
        if (a.hi < b.lo)
            return Interval::point(1);
        if (a.lo >= b.hi)
            return Interval::point(0);
        return {0, 1};
      case ExprKind::Sle:
        if (a.hi <= b.lo)
            return Interval::point(1);
        if (a.lo > b.hi)
            return Interval::point(0);
        return {0, 1};
      case ExprKind::Sgt:
        return cmpInterval(ExprKind::Slt, b, a);
      case ExprKind::Sge:
        return cmpInterval(ExprKind::Sle, b, a);
      default:
        return {0, 1};
    }
}

} // namespace

Interval
evalInterval(const ExprPtr &e, const IntervalEnv &env)
{
    switch (e->kind()) {
      case ExprKind::Const:
        return Interval::point(e->constValue());
      case ExprKind::Symbol: {
        Interval base{e->symbolLo(), e->symbolHi()};
        auto it = env.find(e->symbolId());
        if (it != env.end())
            base = base.meet(it->second);
        return base.meet(widthRange(e->width()));
      }
      case ExprKind::Neg:
        return clampToWidth(ivNeg(evalInterval(e->child(0), env)),
                            e->width());
      case ExprKind::BNot:
        return widthRange(e->width());
      case ExprKind::LNot: {
        Interval a = evalInterval(e->child(0), env);
        if (a.singleton())
            return Interval::point(a.lo == 0 ? 1 : 0);
        if (!a.contains(0))
            return Interval::point(0);
        return {0, 1};
      }
      case ExprKind::Add:
        return clampToWidth(ivAdd(evalInterval(e->child(0), env),
                                  evalInterval(e->child(1), env)),
                            e->width());
      case ExprKind::Sub:
        return clampToWidth(ivSub(evalInterval(e->child(0), env),
                                  evalInterval(e->child(1), env)),
                            e->width());
      case ExprKind::Mul:
        return clampToWidth(ivMul(evalInterval(e->child(0), env),
                                  evalInterval(e->child(1), env)),
                            e->width());
      case ExprKind::Eq:
      case ExprKind::Ne:
      case ExprKind::Slt:
      case ExprKind::Sle:
      case ExprKind::Sgt:
      case ExprKind::Sge:
        return cmpInterval(e->kind(), evalInterval(e->child(0), env),
                           evalInterval(e->child(1), env));
      case ExprKind::LAnd: {
        Interval a = evalInterval(e->child(0), env);
        Interval b = evalInterval(e->child(1), env);
        if ((a.singleton() && a.lo == 0) || (b.singleton() && b.lo == 0))
            return Interval::point(0);
        if (a.singleton() && b.singleton())
            return Interval::point((a.lo != 0 && b.lo != 0) ? 1 : 0);
        return {0, 1};
      }
      case ExprKind::LOr: {
        Interval a = evalInterval(e->child(0), env);
        Interval b = evalInterval(e->child(1), env);
        if ((a.singleton() && a.lo != 0) || (b.singleton() && b.lo != 0))
            return Interval::point(1);
        if (a.singleton() && b.singleton())
            return Interval::point((a.lo != 0 || b.lo != 0) ? 1 : 0);
        return {0, 1};
      }
      case ExprKind::Ite: {
        Interval c = evalInterval(e->child(0), env);
        if (c.singleton()) {
            return c.lo != 0 ? evalInterval(e->child(1), env)
                             : evalInterval(e->child(2), env);
        }
        return evalInterval(e->child(1), env)
            .join(evalInterval(e->child(2), env));
      }
      default:
        // Division, remainder, shifts: conservatively width-bounded.
        return widthRange(e->width());
    }
}

} // namespace portend::sym
