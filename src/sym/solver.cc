#include "sym/solver.h"

#include <algorithm>
#include <functional>

#include "support/logging.h"
#include "support/observe.h"
#include "support/trace.h"
#include "sym/simplify.h"

namespace portend::sym {

const char *
satResultName(SatResult r)
{
    switch (r) {
      case SatResult::Sat: return "sat";
      case SatResult::Unsat: return "unsat";
      case SatResult::Unknown: return "unknown";
    }
    return "?";
}

void
PathCondition::add(const ExprPtr &c)
{
    ExprPtr s = simplify(c);
    if (isTrue(s))
        return;
    if (isFalse(s)) {
        trivially_false = true;
        return;
    }
    // Drop exact duplicates to keep queries small.
    for (const auto &existing : cs) {
        if (existing->equals(*s))
            return;
    }
    cs.push_back(std::move(s));
}

std::vector<ExprPtr>
PathCondition::with(const ExprPtr &extra) const
{
    std::vector<ExprPtr> out = cs;
    out.push_back(extra);
    return out;
}

std::optional<std::int64_t>
evalPartial(const ExprPtr &e, const Model &partial)
{
    switch (e->kind()) {
      case ExprKind::Const:
        return e->constValue();
      case ExprKind::Symbol: {
        auto it = partial.values.find(e->symbolId());
        if (it == partial.values.end())
            return std::nullopt;
        return Expr::truncate(it->second, e->width());
      }
      case ExprKind::Neg:
      case ExprKind::BNot:
      case ExprKind::LNot: {
        auto a = evalPartial(e->child(0), partial);
        if (!a)
            return std::nullopt;
        return Expr::applyUnary(e->kind(), *a, e->width());
      }
      case ExprKind::Ite: {
        auto c = evalPartial(e->child(0), partial);
        if (!c)
            return std::nullopt;
        return *c != 0 ? evalPartial(e->child(1), partial)
                       : evalPartial(e->child(2), partial);
      }
      case ExprKind::LAnd: {
        auto a = evalPartial(e->child(0), partial);
        auto b = evalPartial(e->child(1), partial);
        if ((a && *a == 0) || (b && *b == 0))
            return 0;
        if (a && b)
            return (*a != 0 && *b != 0) ? 1 : 0;
        return std::nullopt;
      }
      case ExprKind::LOr: {
        auto a = evalPartial(e->child(0), partial);
        auto b = evalPartial(e->child(1), partial);
        if ((a && *a != 0) || (b && *b != 0))
            return 1;
        if (a && b)
            return (*a != 0 || *b != 0) ? 1 : 0;
        return std::nullopt;
      }
      case ExprKind::Mul: {
        auto a = evalPartial(e->child(0), partial);
        auto b = evalPartial(e->child(1), partial);
        if ((a && *a == 0) || (b && *b == 0))
            return 0;
        if (a && b)
            return Expr::applyBinary(ExprKind::Mul, *a, *b, e->width());
        return std::nullopt;
      }
      default: {
        auto a = evalPartial(e->child(0), partial);
        if (!a)
            return std::nullopt;
        auto b = evalPartial(e->child(1), partial);
        if (!b)
            return std::nullopt;
        return Expr::applyBinary(e->kind(), *a, *b, e->width());
      }
    }
}

namespace {

/** Collect every Const literal mentioned anywhere in @p e. */
void
collectConstants(const ExprPtr &e, std::set<std::int64_t> &out)
{
    if (e->kind() == ExprKind::Const) {
        out.insert(e->constValue());
        return;
    }
    for (int i = 0; i < e->numChildren(); ++i)
        collectConstants(e->child(i), out);
}

/**
 * Try to narrow the interval of a symbol from one atomic
 * constraint of the shape cmp(sym, const) or cmp(const, sym).
 */
void
narrowFromAtom(const ExprPtr &c, IntervalEnv &env)
{
    ExprKind k = c->kind();
    bool cmp = k == ExprKind::Eq || k == ExprKind::Ne ||
               k == ExprKind::Slt || k == ExprKind::Sle ||
               k == ExprKind::Sgt || k == ExprKind::Sge;
    if (!cmp || c->numChildren() != 2)
        return;

    ExprPtr lhs = c->child(0);
    ExprPtr rhs = c->child(1);
    bool flipped = false;
    if (lhs->kind() == ExprKind::Const &&
        rhs->kind() == ExprKind::Symbol) {
        std::swap(lhs, rhs);
        flipped = true;
    }
    if (lhs->kind() != ExprKind::Symbol ||
        rhs->kind() != ExprKind::Const) {
        return;
    }

    if (flipped) {
        switch (k) {
          case ExprKind::Slt: k = ExprKind::Sgt; break;
          case ExprKind::Sle: k = ExprKind::Sge; break;
          case ExprKind::Sgt: k = ExprKind::Slt; break;
          case ExprKind::Sge: k = ExprKind::Sle; break;
          default: break;
        }
    }

    const int id = lhs->symbolId();
    const std::int64_t v = rhs->constValue();
    Interval cur = env.count(id)
                       ? env[id]
                       : Interval{lhs->symbolLo(), lhs->symbolHi()};
    switch (k) {
      case ExprKind::Eq:
        cur = cur.meet(Interval::point(v));
        break;
      case ExprKind::Ne:
        if (cur.lo == v)
            cur.lo = v == INT64_MAX ? v : v + 1;
        else if (cur.hi == v)
            cur.hi = v == INT64_MIN ? v : v - 1;
        break;
      case ExprKind::Slt:
        cur = cur.meet({INT64_MIN, v == INT64_MIN ? v : v - 1});
        break;
      case ExprKind::Sle:
        cur = cur.meet({INT64_MIN, v});
        break;
      case ExprKind::Sgt:
        cur = cur.meet({v == INT64_MAX ? v : v + 1, INT64_MAX});
        break;
      case ExprKind::Sge:
        cur = cur.meet({v, INT64_MAX});
        break;
      default:
        break;
    }
    env[id] = cur;
}

} // namespace

void
Solver::narrowIntervals(const std::vector<ExprPtr> &cs, IntervalEnv &env)
{
    // A few rounds are enough; atoms only reference one symbol each.
    for (int round = 0; round < 4; ++round) {
        IntervalEnv before = env;
        for (const auto &c : cs)
            narrowFromAtom(c, env);
        if (env == before)
            break;
    }
}

std::vector<Solver::SymbolDomain>
Solver::buildDomains(const std::vector<ExprPtr> &cs,
                     const IntervalEnv &env,
                     const std::map<int, ExprPtr> &symbols) const
{
    std::set<std::int64_t> literals;
    for (const auto &c : cs)
        collectConstants(c, literals);

    std::vector<SymbolDomain> out;
    for (const auto &[id, node] : symbols) {
        Interval dom{node->symbolLo(), node->symbolHi()};
        auto it = env.find(id);
        if (it != env.end())
            dom = dom.meet(it->second);

        SymbolDomain sd;
        sd.id = id;
        sd.node = node;
        if (dom.empty()) {
            sd.complete = true;
            out.push_back(std::move(sd));
            continue;
        }

        if (dom.size() <= opts.max_candidates) {
            for (std::int64_t v = dom.lo;; ++v) {
                sd.candidates.push_back(v);
                if (v == dom.hi)
                    break;
            }
            sd.complete = true;
        } else {
            // Sampled domain: endpoints, salient small values,
            // constraint literals and their neighbours, then strided
            // fill. Unsat can no longer be proved from this symbol.
            std::set<std::int64_t> cands{dom.lo, dom.hi};
            for (std::int64_t v : {std::int64_t{-1}, std::int64_t{0},
                                   std::int64_t{1}}) {
                if (dom.contains(v))
                    cands.insert(v);
            }
            for (std::int64_t l : literals) {
                for (std::int64_t d : {-1, 0, 1}) {
                    // Saturating neighbour computation.
                    std::int64_t v = l;
                    if (d == -1 && l != INT64_MIN)
                        v = l - 1;
                    else if (d == 1 && l != INT64_MAX)
                        v = l + 1;
                    if (dom.contains(v))
                        cands.insert(v);
                }
            }
            std::uint64_t want = opts.max_candidates;
            std::uint64_t span = dom.size();
            std::uint64_t stride = span / (want ? want : 1) + 1;
            for (std::uint64_t i = 0; cands.size() < want; ++i) {
                std::int64_t v = dom.lo +
                                 static_cast<std::int64_t>(i * stride);
                if (!dom.contains(v))
                    break;
                cands.insert(v);
            }
            sd.candidates.assign(cands.begin(), cands.end());
            sd.complete = false;
        }
        out.push_back(std::move(sd));
    }

    // Search smallest domains first: cheapest failures come early.
    std::sort(out.begin(), out.end(),
              [](const SymbolDomain &a, const SymbolDomain &b) {
                  return a.candidates.size() < b.candidates.size();
              });
    return out;
}

SatResult
Solver::checkSat(const std::vector<ExprPtr> &constraints, Model *model)
{
    obs::Span span("sym", "solver-query");
    span.arg("constraints", static_cast<std::int64_t>(constraints.size()));
    if (obs::Collector *c = obs::collector())
        c->add(obs::Counter::SolverQueries, 1);
    stats_.queries += 1;

    // Normalize: fold literals, bail on literal falsity.
    std::vector<ExprPtr> cs;
    cs.reserve(constraints.size());
    for (const auto &c : constraints) {
        ExprPtr s = simplify(c);
        if (isTrue(s))
            continue;
        if (isFalse(s)) {
            stats_.unsat += 1;
            return SatResult::Unsat;
        }
        cs.push_back(std::move(s));
    }
    if (cs.empty()) {
        if (model)
            *model = Model{};
        stats_.sat += 1;
        return SatResult::Sat;
    }

    std::map<int, ExprPtr> symbols;
    for (const auto &c : cs)
        c->collectSymbolNodes(symbols);

    // Interval pre-pass: narrow domains, reject impossible queries.
    IntervalEnv env;
    narrowIntervals(cs, env);
    for (const auto &c : cs) {
        Interval r = evalInterval(c, env);
        if (r.singleton() && r.lo == 0) {
            stats_.unsat += 1;
            stats_.interval_rejects += 1;
            return SatResult::Unsat;
        }
    }

    std::vector<SymbolDomain> domains = buildDomains(cs, env, symbols);
    bool exhaustive = true;
    for (const auto &d : domains) {
        if (d.candidates.empty()) {
            // A symbol with an empty narrowed domain: no model exists
            // (the narrowing is sound).
            stats_.unsat += 1;
            return SatResult::Unsat;
        }
        exhaustive = exhaustive && d.complete;
    }

    // Pruned DFS over candidate assignments.
    Model attempt;
    std::uint64_t budget = opts.max_assignments;
    bool budget_hit = false;

    // Recursive lambda over domain index.
    std::function<bool(std::size_t)> dfs = [&](std::size_t idx) -> bool {
        if (budget == 0) {
            budget_hit = true;
            return false;
        }
        if (idx == domains.size()) {
            stats_.assignments += 1;
            budget -= 1;
            for (const auto &c : cs) {
                if (c->evaluate(attempt) == 0)
                    return false;
            }
            return true;
        }
        const SymbolDomain &d = domains[idx];
        for (std::int64_t v : d.candidates) {
            attempt.values[d.id] = v;
            // Prune: any constraint already decidable and false?
            bool pruned = false;
            for (const auto &c : cs) {
                auto r = evalPartial(c, attempt);
                if (r && *r == 0) {
                    pruned = true;
                    break;
                }
            }
            if (!pruned && dfs(idx + 1))
                return true;
            attempt.values.erase(d.id);
            if (budget_hit)
                return false;
        }
        return false;
    };

    if (dfs(0)) {
        if (model)
            *model = attempt;
        stats_.sat += 1;
        return SatResult::Sat;
    }
    if (budget_hit || !exhaustive) {
        stats_.unknown += 1;
        return SatResult::Unknown;
    }
    stats_.unsat += 1;
    return SatResult::Unsat;
}

bool
Solver::mustBeTrue(const std::vector<ExprPtr> &pc, const ExprPtr &e)
{
    std::vector<ExprPtr> q = pc;
    q.push_back(negate(e));
    return checkSat(q, nullptr) == SatResult::Unsat;
}

bool
Solver::mayBeTrue(const std::vector<ExprPtr> &pc, const ExprPtr &e,
                  Model *model)
{
    std::vector<ExprPtr> q = pc;
    q.push_back(e);
    return checkSat(q, model) == SatResult::Sat;
}

std::optional<Model>
Solver::witness(const std::vector<ExprPtr> &constraints)
{
    Model m;
    if (checkSat(constraints, &m) == SatResult::Unsat)
        return std::nullopt;
    for (const auto &[id, node] : collectSymbols(constraints)) {
        if (!m.values.count(id))
            m.values[id] = node->symbolLo();
    }
    return m;
}

std::map<int, ExprPtr>
collectSymbols(const std::vector<ExprPtr> &constraints)
{
    std::map<int, ExprPtr> symbols;
    for (const auto &c : constraints)
        c->collectSymbolNodes(symbols);
    return symbols;
}

} // namespace portend::sym
