#include "sym/simplify.h"

#include "support/logging.h"

namespace portend::sym {

namespace {

/** True when both operands are Const nodes. */
bool
bothConst(const ExprPtr &a, const ExprPtr &b)
{
    return a->kind() == ExprKind::Const && b->kind() == ExprKind::Const;
}

/** Is @p k a comparison producing I1? */
bool
isCmp(ExprKind k)
{
    switch (k) {
      case ExprKind::Eq:
      case ExprKind::Ne:
      case ExprKind::Slt:
      case ExprKind::Sle:
      case ExprKind::Sgt:
      case ExprKind::Sge:
        return true;
      default:
        return false;
    }
}

/** Is @p k commutative? */
bool
isCommutative(ExprKind k)
{
    switch (k) {
      case ExprKind::Add:
      case ExprKind::Mul:
      case ExprKind::And:
      case ExprKind::Or:
      case ExprKind::Xor:
      case ExprKind::Eq:
      case ExprKind::Ne:
      case ExprKind::LAnd:
      case ExprKind::LOr:
        return true;
      default:
        return false;
    }
}

} // namespace

ExprPtr
Expr::unary(ExprKind k, const ExprPtr &a)
{
    const Width w = k == ExprKind::LNot ? Width::I1 : a->width();
    if (a->kind() == ExprKind::Const)
        return constant(applyUnary(k, a->constValue(), w), w);
    // not(not(x)) == x for both logical and bitwise flavors.
    if ((k == ExprKind::LNot || k == ExprKind::BNot) && a->kind() == k)
        return a->child(0);
    // neg(neg(x)) == x
    if (k == ExprKind::Neg && a->kind() == ExprKind::Neg)
        return a->child(0);
    // lnot(cmp) → inverted cmp
    if (k == ExprKind::LNot) {
        switch (a->kind()) {
          case ExprKind::Eq:
            return binary(ExprKind::Ne, a->child(0), a->child(1));
          case ExprKind::Ne:
            return binary(ExprKind::Eq, a->child(0), a->child(1));
          case ExprKind::Slt:
            return binary(ExprKind::Sge, a->child(0), a->child(1));
          case ExprKind::Sle:
            return binary(ExprKind::Sgt, a->child(0), a->child(1));
          case ExprKind::Sgt:
            return binary(ExprKind::Sle, a->child(0), a->child(1));
          case ExprKind::Sge:
            return binary(ExprKind::Slt, a->child(0), a->child(1));
          default:
            break;
        }
    }
    return make(k, w, {a});
}

ExprPtr
Expr::binary(ExprKind k, const ExprPtr &a, const ExprPtr &b)
{
    const Width opw =
        widthBits(a->width()) >= widthBits(b->width()) ? a->width()
                                                       : b->width();
    const Width w = (isCmp(k) || k == ExprKind::LAnd ||
                     k == ExprKind::LOr)
                        ? Width::I1
                        : opw;

    if (bothConst(a, b))
        return constant(applyBinary(k, a->constValue(), b->constValue(),
                                    opw),
                        w);

    // Canonicalize: constant operand of a commutative op on the right.
    if (isCommutative(k) && a->kind() == ExprKind::Const &&
        b->kind() != ExprKind::Const) {
        return binary(k, b, a);
    }

    const bool rhs_const = b->kind() == ExprKind::Const;
    const std::int64_t rc = rhs_const ? b->constValue() : 0;

    switch (k) {
      case ExprKind::Add:
      case ExprKind::Sub:
        if (rhs_const && rc == 0)
            return a;
        break;
      case ExprKind::Mul:
        if (rhs_const && rc == 0)
            return constant(0, w);
        if (rhs_const && rc == 1)
            return a;
        break;
      case ExprKind::And:
        if (rhs_const && rc == 0)
            return constant(0, w);
        if (a->equals(*b))
            return a;
        break;
      case ExprKind::Or:
        if (rhs_const && rc == 0)
            return a;
        if (a->equals(*b))
            return a;
        break;
      case ExprKind::Xor:
        if (rhs_const && rc == 0)
            return a;
        if (a->equals(*b))
            return constant(0, w);
        break;
      case ExprKind::Shl:
      case ExprKind::AShr:
      case ExprKind::LShr:
        if (rhs_const && rc == 0)
            return a;
        break;
      case ExprKind::Eq:
        if (a->equals(*b))
            return boolean(true);
        break;
      case ExprKind::Ne:
        if (a->equals(*b))
            return boolean(false);
        break;
      case ExprKind::Slt:
      case ExprKind::Sgt:
        if (a->equals(*b))
            return boolean(false);
        break;
      case ExprKind::Sle:
      case ExprKind::Sge:
        if (a->equals(*b))
            return boolean(true);
        break;
      case ExprKind::LAnd:
        if (rhs_const)
            return rc != 0 ? a : boolean(false);
        if (a->kind() == ExprKind::Const)
            return a->constValue() != 0 ? b : boolean(false);
        if (a->equals(*b))
            return a;
        break;
      case ExprKind::LOr:
        if (rhs_const)
            return rc != 0 ? boolean(true) : a;
        if (a->kind() == ExprKind::Const)
            return a->constValue() != 0 ? boolean(true) : b;
        if (a->equals(*b))
            return a;
        break;
      default:
        break;
    }
    return make(k, w, {a, b});
}

ExprPtr
Expr::ite(const ExprPtr &c, const ExprPtr &t, const ExprPtr &f)
{
    PORTEND_ASSERT(c->width() == Width::I1, "ite condition must be i1");
    if (c->kind() == ExprKind::Const)
        return c->constValue() != 0 ? t : f;
    if (t->equals(*f))
        return t;
    const Width w = t->width();
    return make(ExprKind::Ite, w, {c, t, f});
}

ExprPtr
simplify(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Const:
      case ExprKind::Symbol:
        return e;
      case ExprKind::Neg:
      case ExprKind::BNot:
      case ExprKind::LNot:
        return Expr::unary(e->kind(), simplify(e->child(0)));
      case ExprKind::Ite:
        return Expr::ite(simplify(e->child(0)), simplify(e->child(1)),
                         simplify(e->child(2)));
      default:
        return Expr::binary(e->kind(), simplify(e->child(0)),
                            simplify(e->child(1)));
    }
}

bool
isTrue(const ExprPtr &e)
{
    return e->kind() == ExprKind::Const && e->constValue() != 0;
}

bool
isFalse(const ExprPtr &e)
{
    return e->kind() == ExprKind::Const && e->constValue() == 0;
}

ExprPtr
negate(const ExprPtr &e)
{
    return Expr::unary(ExprKind::LNot, e);
}

ExprPtr
conjoin(const std::vector<ExprPtr> &cs)
{
    ExprPtr acc = Expr::boolean(true);
    for (const auto &c : cs)
        acc = Expr::binary(ExprKind::LAnd, acc, c);
    return acc;
}

} // namespace portend::sym
