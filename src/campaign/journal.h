/**
 * @file
 * Append-only campaign journal (`portend-campaign-v1` journal spec).
 *
 * One JSON-lines record per *completed* work unit, appended and
 * fsync'd before the engine moves on, so a campaign killed at any
 * point resumes exactly where it left off: the set of journaled unit
 * indices is the set of units whose verdicts are already in the
 * cache. The journal is state, not output — record order is
 * completion order (nondeterministic under --jobs), and only the
 * *set* of records matters for resume.
 *
 * Record schema (one line, LF-terminated):
 *
 *   {"v": 1, "unit": <index>, "kind": "<unit kind>",
 *    "name": "<unit name>", "sig": "<16 hex>",
 *    "fp": "<16 hex>", "trace": "<16 hex>", "cfg": "<16 hex>"}
 *
 * The loader is deliberately forgiving: a torn final record (the
 * process died mid-write) or any otherwise unparseable line is
 * skipped, never fatal — the worst case is re-running a unit whose
 * record was lost, which is always sound.
 */

#ifndef PORTEND_CAMPAIGN_JOURNAL_H
#define PORTEND_CAMPAIGN_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/signature.h"

namespace portend::campaign {

/** One completed-unit record. */
struct JournalRecord
{
    std::size_t unit = 0;  ///< index into the campaign manifest
    std::string kind;      ///< unit kind ("workload", "file", "fuzz")
    std::string name;      ///< unit name (workload, path, or index)
    std::string sig;       ///< 16-hex campaign signature
    UnitKey key;           ///< the signature's three components
};

/** Serialize one record as its JSON line (no trailing newline). */
std::string journalLine(const JournalRecord &rec);

/** Parse one journal line; false on malformed/torn input. */
bool parseJournalLine(const std::string &line, JournalRecord *out);

/**
 * Durable appender: each append() writes one LF-terminated line and
 * fsyncs before returning, so a record the caller saw succeed
 * survives a kill -9.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open @p path for appending; false with @p error on failure. */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Append + fsync one record; false with @p error on failure. */
    bool append(const JournalRecord &rec, std::string *error = nullptr);

    void close();

    bool isOpen() const { return f_ != nullptr; }

  private:
    std::FILE *f_ = nullptr;
};

/**
 * Load every parseable record of @p path (missing file = empty,
 * success). Unparseable lines — a torn final record most of all —
 * are counted in @p skipped_out and ignored.
 */
std::vector<JournalRecord> loadJournal(const std::string &path,
                                       int *skipped_out = nullptr);

} // namespace portend::campaign

#endif // PORTEND_CAMPAIGN_JOURNAL_H
