/**
 * @file
 * The campaign engine: batch classification as a first-class,
 * persistent object (`portend-campaign-v1`).
 *
 * A Campaign is a manifest of work units (program × analysis config),
 * a content-addressed verdict cache keyed by the deterministic
 * campaign signature (signature.h), and an append-only fsync'd
 * journal (journal.h). The engine drives the remaining units through
 * a campaign::Queue on the support/ thread pool; each unit runs the
 * standard detect→classify pipeline with a cache probe in between
 * (the recorded trace's hash completes the key), journals its
 * completion durably, and streams a JSON-lines event through the
 * obs::Progress sink. Rendered verdict bytes merge in manifest
 * order, so campaign output is byte-identical to the one-shot batch
 * loops it replaces — and byte-identical across kills and resumes.
 *
 * Three properties carry the whole design:
 *  - *cold identity*: an ephemeral campaign (no directory) renders
 *    exactly the bytes `classify --all`/`run --all` always produced;
 *  - *cache soundness*: equal signature implies equal verdict bytes
 *    (the determinism contracts of PRs 2/5/7/8), so replaying a
 *    cached payload is indistinguishable from re-running the unit;
 *  - *resume exactness*: a journal record is written only after its
 *    cache entry, so every journaled unit is replayable; killed
 *    campaigns resume with the remaining units and merge to the
 *    same bytes as an uninterrupted run.
 */

#ifndef PORTEND_CAMPAIGN_CAMPAIGN_H
#define PORTEND_CAMPAIGN_CAMPAIGN_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/cache.h"
#include "campaign/journal.h"
#include "campaign/signature.h"
#include "portend/render.h"
#include "support/observe.h"

namespace portend::campaign {

/** One work unit in the manifest. */
struct UnitSpec
{
    std::string kind; ///< "workload" (registry name) | "file" (PIL path)
    std::string name;

    bool operator==(const UnitSpec &o) const = default;
};

/** Everything a campaign is parameterized by. */
struct CampaignConfig
{
    core::PortendOptions analysis; ///< `jobs` is runtime-only (not persisted)
    core::RenderMode render;       ///< output shape of cached payloads
    std::vector<UnitSpec> units;   ///< the manifest, in output order
};

/** The standard batch manifest: every Table 1 registry workload. */
std::vector<UnitSpec> registryUnits();

/** Serialize @p config as the manifest text (`portend-campaign-v1`). */
std::string manifestText(const CampaignConfig &config);

/** Parse manifest text; nullopt with @p error on malformed input. */
std::optional<CampaignConfig>
parseManifest(const std::string &text, std::string *error = nullptr);

/** How one unit's verdict bytes were obtained. */
enum class UnitSource : std::uint8_t {
    Pending,  ///< not reached (campaign aborted first)
    Executed, ///< full detect + classify ran
    CacheHit, ///< detection ran; classification came from the cache
    Journal,  ///< no execution at all: replayed from journal + cache
};

/** One unit's outcome. */
struct UnitResult
{
    std::size_t index = 0;
    UnitSpec spec;
    std::string sig;      ///< 16-hex campaign signature ("" if Pending)
    UnitKey key;          ///< the signature's components (journaling)
    std::string rendered; ///< verdict bytes ("" if Pending)
    UnitSource source = UnitSource::Pending;

    /** Pipeline metrics of an executed/cache-hit unit (a journal
     *  replay executes nothing and contributes an empty shard). */
    obs::MetricsShard metrics;
};

/** Outcome of one Campaign::run(). */
struct CampaignResult
{
    std::vector<UnitResult> units; ///< manifest order, all units

    /** Unit shards merged in manifest order, then the engine's own
     *  campaign.* counters. */
    obs::MetricsShard metrics;

    int executed = 0;        ///< units that ran the full pipeline
    int cache_hits = 0;      ///< post-detection signature probes that hit
    int journal_replays = 0; ///< journal records parsed at open
    int resume_skips = 0;    ///< units skipped entirely via the journal
    int journal_torn = 0;    ///< unparseable journal lines tolerated
    bool aborted = false;    ///< stopped by the unit-count abort hook
    std::string error;       ///< first persistence error ("" = none)

    /** True when every unit has verdict bytes. */
    bool complete() const;

    /** All units' rendered bytes, joined exactly like the one-shot
     *  batch CLI: text reports separated by one blank line, JSON
     *  objects wrapped into an array. */
    std::string mergedOutput(bool json) const;
};

/**
 * Execute one manifest unit against @p cache, with no journaling:
 * load the program, run detection, compute the campaign signature,
 * probe the cache, classify on a miss, and store the rendered
 * verdict back. The completion record is the caller's job — the
 * in-process engine journals it itself, while the serve layer's
 * worker processes report the signature back to the server, which
 * owns the journal (single writer). False with @p error on a load
 * or pipeline failure; cache-store I/O errors degrade to
 * memory-only and surface through @p store_error without failing
 * the unit.
 */
bool executeUnit(const CampaignConfig &config, std::size_t index,
                 VerdictCache &cache, UnitResult *out,
                 std::string *error, std::string *store_error = nullptr);

/**
 * A classification campaign over a fixed manifest. Construct
 * ephemeral (in-memory) via the config constructor, or persistent
 * via create()/open().
 *
 * run() is the one-process driver; the serve layer drives the same
 * phases across worker processes instead: replayJournal() to skip
 * journaled units, campaign::executeUnit() inside each worker
 * against the shared on-disk cache, recordCompletion() on the
 * server for every unit a worker reports done, and finalize() to
 * merge metrics — the resume and byte-identity contracts hold for
 * both drivers because they are properties of the phases, not of
 * the threading.
 */
class Campaign
{
  public:
    /** Ephemeral campaign: no directory, no journal; the in-memory
     *  verdict cache still dedups within the run. */
    explicit Campaign(CampaignConfig config);

    /**
     * Create or re-enter the campaign at @p dir. A fresh directory
     * is initialized (manifest written); an existing campaign is
     * re-entered only when its manifest matches @p config exactly —
     * a mismatch is an error, never a silent re-configuration.
     *
     * @param cache_dir overrides the verdict-cache directory
     *        (default `<dir>/cache`) — the serve layer points every
     *        campaign at one shared cross-campaign cache.
     */
    static std::optional<Campaign> create(const std::string &dir,
                                          CampaignConfig config,
                                          std::string *error = nullptr,
                                          const std::string &cache_dir = "");

    /** Open an existing campaign, taking every parameter from its
     *  manifest (the resume path: flags cannot skew a resumed run). */
    static std::optional<Campaign> open(const std::string &dir,
                                        std::string *error = nullptr,
                                        const std::string &cache_dir = "");

    /**
     * Execute every unit the journal does not already cover and
     * merge all results in manifest order.
     *
     * @param abort_after_units when >= 0, stop claiming new units
     *        once that many have been executed *and journaled* by
     *        this call — the crash simulation behind the
     *        kill-and-resume tests (with --jobs 1 the cut is exact;
     *        with more workers, in-flight units still finish).
     * @param jobs_override when > 0, overrides config.analysis.jobs.
     */
    CampaignResult run(int abort_after_units = -1,
                       int jobs_override = 0);

    /**
     * Phase 1 of run(), exposed for external drivers: a fresh
     * result skeleton (every manifest unit Pending) with all
     * journal-covered units replayed from the cache.
     */
    CampaignResult replayJournal();

    /** Open the journal for appending (no-op for ephemeral
     *  campaigns). External drivers call this once before their
     *  first recordCompletion(). */
    bool openJournal(std::string *error = nullptr);
    void closeJournal();

    /**
     * Record one externally executed unit: probe the cache for
     * @p sig (the worker stored the entry before reporting, so a
     * miss means the worker lied or its store was lost — false,
     * re-dispatch), fill the unit's payload in @p result, append
     * the journal record, and bump the result's source counter.
     * @p cached distinguishes a worker-side cache hit from a full
     * execution (bookkeeping only; the bytes are identical).
     */
    bool recordCompletion(CampaignResult &result, std::size_t index,
                          const std::string &sig, bool cached,
                          std::string *error = nullptr);

    /** The merge phase of run(): fold unit shards and the engine's
     *  campaign.* counters into result.metrics (idempotent only if
     *  called once — call after the last completion). */
    void finalize(CampaignResult &result) const;

    /** The verdict cache (shared-dir campaigns share entries). */
    VerdictCache &cache() { return *cache_; }

    const CampaignConfig &config() const { return config_; }
    const std::string &dir() const { return dir_; }

    /** Campaign state summary (for `portend campaign status`). */
    struct Status
    {
        std::size_t total_units = 0;
        std::size_t completed_units = 0; ///< journaled ∧ cache-backed
        std::size_t cache_entries = 0;   ///< .entry files on disk
        int journal_torn = 0;            ///< tolerated bad lines
    };
    Status status();

  private:
    Campaign(CampaignConfig config, std::string dir,
             std::string cache_dir = "");

    std::string journalPath() const;

    CampaignConfig config_;
    std::string dir_; ///< "" = ephemeral
    std::unique_ptr<VerdictCache> cache_;
    std::unique_ptr<JournalWriter> journal_;
};

} // namespace portend::campaign

#endif // PORTEND_CAMPAIGN_CAMPAIGN_H
