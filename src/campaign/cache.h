/**
 * @file
 * Content-addressed verdict cache (`portend-campaign-v1` cache spec).
 *
 * One entry per campaign signature: the key components (program
 * fingerprint, trace hash, config hash — see signature.h) plus the
 * unit's rendered verdict payload, stored verbatim. Because the
 * signature names everything the payload is a function of, a probe
 * hit replaces the entire classification of a unit with one file
 * read — that is the whole warm-rerun / duplicate-dedup story.
 *
 * Entries live as `<dir>/<sig>.entry` in a plain text-header format:
 *
 *   portend-campaign-entry-v1
 *   sig <16 hex>
 *   fp <16 hex>
 *   trace <16 hex>
 *   cfg <16 hex>
 *   name <unit name>
 *   bytes <payload byte count>
 *   <raw payload bytes>
 *
 * Writes go through a temp file + rename so a kill mid-store never
 * leaves a torn entry under the content address. A memory map
 * layered in front makes within-run duplicate probes free and lets
 * an ephemeral campaign (no directory) still dedup by signature.
 */

#ifndef PORTEND_CAMPAIGN_CACHE_H
#define PORTEND_CAMPAIGN_CACHE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/signature.h"

namespace portend::campaign {

/** One cached verdict. */
struct CacheEntry
{
    std::string sig;     ///< 16-hex campaign signature
    UnitKey key;         ///< the signature's components
    std::string name;    ///< unit name (diagnostics only)
    std::string payload; ///< rendered verdict bytes, verbatim
};

/** Serialize @p e in the on-disk entry format. */
std::string serializeCacheEntry(const CacheEntry &e);

/** Parse the on-disk entry format; nullopt on malformed input. */
std::optional<CacheEntry>
deserializeCacheEntry(const std::string &text);

/**
 * Signature-addressed store: optional directory backing plus an
 * always-on memory map. Thread-safe.
 */
class VerdictCache
{
  public:
    /** @param dir entry directory ("" = memory-only). Created lazily
     *  on first store. */
    explicit VerdictCache(std::string dir = "");

    /**
     * Look up @p sig: memory first, then disk (a disk hit is pulled
     * into memory). A disk entry whose recorded signature disagrees
     * with its file name is treated as absent.
     */
    std::optional<CacheEntry> probe(const std::string &sig);

    /**
     * Store @p e under its signature (idempotent; last store wins in
     * memory, first *valid* file wins on disk — an existing entry
     * that fails to deserialize or names the wrong signature is
     * replaced, so corruption repairs itself on the next store).
     * Disk I/O failures degrade to memory-only and are reported
     * through @p error once.
     */
    bool store(const CacheEntry &e, std::string *error = nullptr);

    /** Number of distinct signatures seen by this process. */
    std::size_t sizeInMemory() const;

    /** Number of `.entry` files under the backing dir (0 if none). */
    std::size_t sizeOnDisk() const;

    const std::string &dir() const { return dir_; }

  private:
    std::string entryPath(const std::string &sig) const;

    std::string dir_;
    mutable std::mutex mu_;
    std::map<std::string, CacheEntry> mem_;
};

} // namespace portend::campaign

#endif // PORTEND_CAMPAIGN_CACHE_H
