#include "campaign/cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace portend::campaign {

namespace fs = std::filesystem;

std::string
serializeCacheEntry(const CacheEntry &e)
{
    std::ostringstream os;
    os << "portend-campaign-entry-v1\n";
    os << "sig " << e.sig << "\n";
    os << "fp " << hex16(e.key.fingerprint) << "\n";
    os << "trace " << hex16(e.key.trace_hash) << "\n";
    os << "cfg " << hex16(e.key.config_hash) << "\n";
    os << "name " << e.name << "\n";
    os << "bytes " << e.payload.size() << "\n";
    os << e.payload;
    return os.str();
}

std::optional<CacheEntry>
deserializeCacheEntry(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "portend-campaign-entry-v1")
        return std::nullopt;

    CacheEntry e;
    std::size_t bytes = 0;
    bool saw_bytes = false;
    while (std::getline(is, line)) {
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos)
            return std::nullopt;
        const std::string key = line.substr(0, sp);
        const std::string val = line.substr(sp + 1);
        if (key == "sig") {
            if (!parseHex16(val, nullptr))
                return std::nullopt;
            e.sig = val;
        } else if (key == "fp") {
            if (!parseHex16(val, &e.key.fingerprint))
                return std::nullopt;
        } else if (key == "trace") {
            if (!parseHex16(val, &e.key.trace_hash))
                return std::nullopt;
        } else if (key == "cfg") {
            if (!parseHex16(val, &e.key.config_hash))
                return std::nullopt;
        } else if (key == "name") {
            e.name = val;
        } else if (key == "bytes") {
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(val.c_str(), &end, 10);
            if (!end || *end != '\0')
                return std::nullopt;
            bytes = static_cast<std::size_t>(n);
            saw_bytes = true;
            break; // payload follows immediately
        } else {
            return std::nullopt; // unknown header key
        }
    }
    if (e.sig.empty() || !saw_bytes)
        return std::nullopt;

    // The remainder of the stream is the payload, byte-exact.
    std::string payload(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>{});
    if (payload.size() != bytes)
        return std::nullopt; // truncated (torn write) or trailing junk
    e.payload = std::move(payload);
    return e;
}

VerdictCache::VerdictCache(std::string dir) : dir_(std::move(dir)) {}

std::string
VerdictCache::entryPath(const std::string &sig) const
{
    return dir_ + "/" + sig + ".entry";
}

std::optional<CacheEntry>
VerdictCache::probe(const std::string &sig)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(sig);
        if (it != mem_.end())
            return it->second;
    }
    if (dir_.empty())
        return std::nullopt;
    std::ifstream is(entryPath(sig), std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    std::optional<CacheEntry> e = deserializeCacheEntry(os.str());
    if (!e || e->sig != sig)
        return std::nullopt; // corrupt or misfiled: treat as a miss
    std::lock_guard<std::mutex> lock(mu_);
    mem_[sig] = *e;
    return e;
}

bool
VerdictCache::store(const CacheEntry &e, std::string *error)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        mem_[e.sig] = e;
    }
    if (dir_.empty())
        return true;

    std::error_code ec;
    fs::create_directories(dir_, ec);
    const std::string final_path = entryPath(e.sig);
    if (fs::exists(final_path, ec)) {
        // Content-addressed: an existing *valid* entry is equal. But
        // a corrupt or truncated survivor (probe rejects it as a
        // miss) must be repaired here, or the signature is a
        // permanent miss: every future run would re-execute the unit
        // and skip the store again. Validate, and fall through to
        // the temp+rename replace when the bytes do not parse back
        // to this signature.
        std::ifstream is(final_path, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        std::optional<CacheEntry> cur =
            deserializeCacheEntry(os.str());
        if (cur && cur->sig == e.sig)
            return true;
    }

    // Temp + rename: a kill mid-write never leaves a torn entry at
    // the content address (the loader would reject it anyway via the
    // byte-count check, but atomic publish keeps probes cheap).
    const std::string tmp_path =
        final_path + ".tmp." +
        std::to_string(
            static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(&e) ^
                std::hash<std::string>{}(e.sig)));
    {
        std::ofstream os(tmp_path, std::ios::binary);
        if (os)
            os << serializeCacheEntry(e);
        if (!os) {
            if (error)
                *error = "cannot write cache entry " + final_path;
            std::remove(tmp_path.c_str());
            return false;
        }
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        std::remove(tmp_path.c_str());
        // A concurrent writer may have won the rename; that is fine.
        if (fs::exists(final_path))
            return true;
        if (error)
            *error = "cannot publish cache entry " + final_path +
                     ": " + ec.message();
        return false;
    }
    return true;
}

std::size_t
VerdictCache::sizeInMemory() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.size();
}

std::size_t
VerdictCache::sizeOnDisk() const
{
    if (dir_.empty())
        return 0;
    std::error_code ec;
    std::size_t n = 0;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (de.path().extension() == ".entry")
            n += 1;
    }
    return n;
}

} // namespace portend::campaign
