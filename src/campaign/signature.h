/**
 * @file
 * Deterministic campaign signatures.
 *
 * A campaign caches verdicts by content, so the cache key must name
 * everything a verdict is a function of — and nothing it is not. The
 * key has three components:
 *
 *  - the program fingerprint (rt::programFingerprint, the decode
 *    cache's key from the interpreter rebuild): stable across
 *    processes, changes with any semantic program edit;
 *  - the trace hash: FNV-1a over ScheduleTrace::serialize(), i.e.
 *    the exact recorded schedule + input log the classification
 *    consumed;
 *  - the config hash: every PortendOptions dial that can change a
 *    verdict or the rendered report bytes (explorer, Mp/Ma,
 *    detector, symbolic-input selection, budgets, seeds), plus a
 *    caller-supplied salt for per-unit state the options struct
 *    cannot see (semantic predicates travel by workload name; the
 *    render mode travels with the caller).
 *
 * Deliberately excluded: `jobs` (verdicts are byte-identical for
 * every worker count — the PR 2 contract), wall-clock, and the
 * interpreter dispatch mode (verdicts are dispatch-invariant — the
 * PR 7 contract, pinned by the golden_switch_* harness). The same
 * determinism results that make replay-based analysis sound make
 * this key sound: equal key implies equal verdict bytes.
 */

#ifndef PORTEND_CAMPAIGN_SIGNATURE_H
#define PORTEND_CAMPAIGN_SIGNATURE_H

#include <cstdint>
#include <string>

#include "portend/analyzer.h"
#include "replay/trace.h"

namespace portend::campaign {

/** The three key components of one cached verdict. */
struct UnitKey
{
    std::uint64_t fingerprint = 0; ///< rt::programFingerprint
    std::uint64_t trace_hash = 0;  ///< traceHash (0 = trace unknown)
    std::uint64_t config_hash = 0; ///< configHash

    bool operator==(const UnitKey &o) const = default;
};

/** Hash the recorded schedule + input log a classification consumed. */
std::uint64_t traceHash(const replay::ScheduleTrace &trace);

/**
 * Hash every verdict-relevant analysis dial of @p opts, folding in
 * @p salt (unit name + render mode + anything else the caller's
 * verdict bytes depend on). `jobs` is excluded by design.
 */
std::uint64_t configHash(const core::PortendOptions &opts,
                         const std::string &salt = "");

/** Collapse a key into the 16-hex-digit campaign signature. */
std::string signatureHex(const UnitKey &key);

/** Render a raw 64-bit hash as 16 hex digits (cache file names). */
std::string hex16(std::uint64_t h);

/** Parse a 16-hex-digit signature; false on malformed input. */
bool parseHex16(const std::string &s, std::uint64_t *out);

} // namespace portend::campaign

#endif // PORTEND_CAMPAIGN_SIGNATURE_H
