/**
 * @file
 * Deterministic work-unit queue.
 *
 * The campaign engine and the classification scheduler both fan a
 * fixed, fully materialized list of work units out to workers. The
 * queue codifies the determinism rule those layers share: the unit
 * list (and every per-unit budget slice riding on it) is built
 * *before* any worker runs, units are dispensed by an atomic cursor
 * in index order, and results are always merged back by unit index,
 * never by completion order. Workers race only on the cursor; the
 * units themselves are immutable once the queue is armed.
 *
 * Header-only and dependency-free on purpose: the queue is the
 * work-unit boundary between the campaign layer and the layers below
 * it (portend::core pulls cluster units through it), so it must not
 * drag the engine's dependencies downwards.
 */

#ifndef PORTEND_CAMPAIGN_QUEUE_H
#define PORTEND_CAMPAIGN_QUEUE_H

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace portend::campaign {

/**
 * A drain-order queue over an immutable unit list. `next()` hands
 * each unit out exactly once, in index order; the unit's index in
 * the original list travels with it so results can be merged
 * deterministically.
 */
template <typename Unit>
class Queue
{
  public:
    Queue() = default;

    explicit Queue(std::vector<Unit> units) : units_(std::move(units))
    {}

    /** Number of units the queue was armed with. */
    std::size_t size() const { return units_.size(); }

    /** Read-only access by index (merge phase). */
    const Unit &at(std::size_t i) const { return units_[i]; }

    /**
     * Claim the next unit, or nullptr when drained. Thread-safe; the
     * returned pointer stays valid for the queue's lifetime.
     *
     * @param index_out when non-null, receives the unit's index
     */
    const Unit *
    next(std::size_t *index_out = nullptr)
    {
        const std::size_t i =
            cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= units_.size())
            return nullptr;
        if (index_out)
            *index_out = i;
        return &units_[i];
    }

    /** True once every unit has been claimed. */
    bool
    drained() const
    {
        return cursor_.load(std::memory_order_relaxed) >=
               units_.size();
    }

  private:
    std::vector<Unit> units_;
    std::atomic<std::size_t> cursor_{0};
};

} // namespace portend::campaign

#endif // PORTEND_CAMPAIGN_QUEUE_H
