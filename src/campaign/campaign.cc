#include "campaign/campaign.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "campaign/queue.h"
#include "explore/explorer.h"
#include "ir/serialize.h"
#include "rt/decode.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "workloads/registry.h"

namespace fs = std::filesystem;

namespace portend::campaign {

namespace {

const char kManifestMagic[] = "portend-campaign-v1";
const char kManifestFile[] = "manifest";
const char kJournalFile[] = "journal.jsonl";
const char kCacheDir[] = "cache";

const char *
detectorName(core::DetectorKind d)
{
    switch (d) {
    case core::DetectorKind::HappensBefore: return "hb";
    case core::DetectorKind::HappensBeforeNoMutex: return "hb-nomutex";
    case core::DetectorKind::Lockset: return "lockset";
    }
    return "hb";
}

bool
parseDetector(const std::string &s, core::DetectorKind *out)
{
    if (s == "hb")
        *out = core::DetectorKind::HappensBefore;
    else if (s == "hb-nomutex")
        *out = core::DetectorKind::HappensBeforeNoMutex;
    else if (s == "lockset")
        *out = core::DetectorKind::Lockset;
    else
        return false;
    return true;
}

bool
parseExplore(const std::string &s, explore::ExploreMode *out)
{
    if (s == "dpor")
        *out = explore::ExploreMode::Dpor;
    else if (s == "random")
        *out = explore::ExploreMode::Random;
    else
        return false;
    return true;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** The render-mode half of the cache key: payload bytes depend on
 *  the output shape, so it salts the config hash (see unitSalt). */
std::string
renderSalt(const core::RenderMode &m)
{
    std::string s = "render=";
    s += m.json ? 'j' : '-';
    s += m.stats ? 's' : '-';
    s += m.classify_mode ? 'c' : '-';
    s += ';';
    s += m.only_class ? core::raceClassName(*m.only_class) : "-";
    return s;
}

/**
 * The per-unit config-hash salt. The unit name is rendered into the
 * payload (report headers), so it must be part of the key; the
 * render mode decides the payload's shape.
 */
std::string
unitSalt(const UnitSpec &spec, const core::RenderMode &render)
{
    return "unit=" + spec.kind + ":" + spec.name + ";" +
           renderSalt(render);
}

void
emitUnitEvent(const UnitResult &u)
{
    if (!obs::progress())
        return;
    const char *source = "executed";
    if (u.source == UnitSource::CacheHit)
        source = "cache";
    else if (u.source == UnitSource::Journal)
        source = "journal";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"event\": \"campaign_unit\", \"unit\": %zu, "
                  "\"kind\": \"%s\", \"name\": \"%s\", "
                  "\"sig\": \"%s\", \"source\": \"%s\"}",
                  u.index, u.spec.kind.c_str(), u.spec.name.c_str(),
                  u.sig.c_str(), source);
    obs::progressLine(buf);
}

/** Load a unit's program as a workload (registry name or PIL file). */
bool
loadUnit(const UnitSpec &spec, workloads::Workload *out,
         std::string *error)
{
    if (spec.kind == "workload") {
        bool known = false;
        for (const auto &n : workloads::workloadNames())
            known = known || n == spec.name;
        for (const auto &n : workloads::extensionWorkloadNames())
            known = known || n == spec.name;
        if (!known)
            return fail(error, "unknown workload: " + spec.name);
        *out = workloads::buildWorkload(spec.name);
        return true;
    }
    if (spec.kind == "file") {
        std::ifstream is(spec.name, std::ios::binary);
        if (!is)
            return fail(error, "cannot open file: " + spec.name);
        std::ostringstream os;
        os << is.rdbuf();
        std::string err;
        std::optional<ir::Program> prog =
            ir::deserializeProgram(os.str(), &err);
        if (!prog)
            return fail(error, spec.name + ": " + err);
        out->name = prog->name.empty() ? spec.name : prog->name;
        out->language = "PIL";
        out->program = std::move(*prog);
        return true;
    }
    return fail(error, "unknown unit kind: " + spec.kind);
}

} // namespace

std::vector<UnitSpec>
registryUnits()
{
    std::vector<UnitSpec> units;
    for (const std::string &n : workloads::workloadNames())
        units.push_back({"workload", n});
    return units;
}

std::string
manifestText(const CampaignConfig &config)
{
    const core::PortendOptions &o = config.analysis;
    std::ostringstream os;
    os << kManifestMagic << "\n";
    os << "render.json " << (config.render.json ? 1 : 0) << "\n";
    os << "render.stats " << (config.render.stats ? 1 : 0) << "\n";
    os << "render.classify " << (config.render.classify_mode ? 1 : 0)
       << "\n";
    if (config.render.only_class) {
        os << "render.only_class "
           << core::raceClassName(*config.render.only_class) << "\n";
    }
    os << "mp " << o.mp << "\n";
    os << "ma " << o.ma << "\n";
    os << "adhoc " << (o.adhoc_detection ? 1 : 0) << "\n";
    os << "multi_path " << (o.multi_path ? 1 : 0) << "\n";
    os << "multi_schedule " << (o.multi_schedule ? 1 : 0) << "\n";
    os << "max_symbolic_inputs " << o.max_symbolic_inputs << "\n";
    for (const rt::SymInputSpec &s : o.sym_inputs) {
        os << "sym_input " << (s.has_range ? 1 : 0) << " " << s.lo
           << " " << s.hi << " " << s.name << "\n";
    }
    os << "timeout_factor " << o.timeout_factor << "\n";
    os << "max_steps " << o.max_steps << "\n";
    os << "detection_seed " << o.detection_seed << "\n";
    os << "detector " << detectorName(o.detector) << "\n";
    os << "explore " << explore::exploreModeName(o.explore) << "\n";
    os << "preemption_bound " << o.preemption_bound << "\n";
    os << "solver.max_assignments " << o.solver.max_assignments
       << "\n";
    os << "solver.max_candidates " << o.solver.max_candidates << "\n";
    os << "executor_max_states " << o.executor_max_states << "\n";
    os << "total_state_budget " << o.total_state_budget << "\n";
    os << "total_step_budget " << o.total_step_budget << "\n";
    for (const UnitSpec &u : config.units)
        os << "unit " << u.kind << " " << u.name << "\n";
    return os.str();
}

std::optional<CampaignConfig>
parseManifest(const std::string &text, std::string *error)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != kManifestMagic) {
        fail(error, std::string("manifest: expected ") +
                        kManifestMagic + " header");
        return std::nullopt;
    }

    CampaignConfig config;
    core::PortendOptions &o = config.analysis;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        auto rest = [&ls]() {
            std::string r;
            std::getline(ls, r);
            if (!r.empty() && r.front() == ' ')
                r.erase(0, 1);
            return r;
        };
        bool ok = true;
        if (key == "render.json") {
            int v = 0; ok = bool(ls >> v); config.render.json = v != 0;
        } else if (key == "render.stats") {
            int v = 0; ok = bool(ls >> v); config.render.stats = v != 0;
        } else if (key == "render.classify") {
            int v = 0; ok = bool(ls >> v);
            config.render.classify_mode = v != 0;
        } else if (key == "render.only_class") {
            std::optional<core::RaceClass> c =
                core::raceClassFromName(rest());
            ok = c.has_value();
            config.render.only_class = c;
        } else if (key == "mp") {
            ok = bool(ls >> o.mp);
        } else if (key == "ma") {
            ok = bool(ls >> o.ma);
        } else if (key == "adhoc") {
            int v = 0; ok = bool(ls >> v); o.adhoc_detection = v != 0;
        } else if (key == "multi_path") {
            int v = 0; ok = bool(ls >> v); o.multi_path = v != 0;
        } else if (key == "multi_schedule") {
            int v = 0; ok = bool(ls >> v); o.multi_schedule = v != 0;
        } else if (key == "max_symbolic_inputs") {
            ok = bool(ls >> o.max_symbolic_inputs);
        } else if (key == "sym_input") {
            rt::SymInputSpec s;
            int has_range = 0;
            ok = bool(ls >> has_range >> s.lo >> s.hi);
            s.has_range = has_range != 0;
            s.name = rest();
            ok = ok && !s.name.empty();
            if (ok)
                o.sym_inputs.push_back(std::move(s));
        } else if (key == "timeout_factor") {
            ok = bool(ls >> o.timeout_factor);
        } else if (key == "max_steps") {
            ok = bool(ls >> o.max_steps);
        } else if (key == "detection_seed") {
            ok = bool(ls >> o.detection_seed);
        } else if (key == "detector") {
            std::string v;
            ok = bool(ls >> v) && parseDetector(v, &o.detector);
        } else if (key == "explore") {
            std::string v;
            ok = bool(ls >> v) && parseExplore(v, &o.explore);
        } else if (key == "preemption_bound") {
            ok = bool(ls >> o.preemption_bound);
        } else if (key == "solver.max_assignments") {
            ok = bool(ls >> o.solver.max_assignments);
        } else if (key == "solver.max_candidates") {
            ok = bool(ls >> o.solver.max_candidates);
        } else if (key == "executor_max_states") {
            ok = bool(ls >> o.executor_max_states);
        } else if (key == "total_state_budget") {
            ok = bool(ls >> o.total_state_budget);
        } else if (key == "total_step_budget") {
            ok = bool(ls >> o.total_step_budget);
        } else if (key == "unit") {
            UnitSpec u;
            ok = bool(ls >> u.kind);
            u.name = rest();
            ok = ok && !u.name.empty();
            if (ok)
                config.units.push_back(std::move(u));
        } else {
            // Unknown key = newer writer; this loader cannot honor a
            // dial it does not know, so refuse instead of mis-running.
            ok = false;
        }
        if (!ok) {
            fail(error, "manifest: bad line: " + line);
            return std::nullopt;
        }
    }
    if (config.units.empty()) {
        fail(error, "manifest: no units");
        return std::nullopt;
    }
    return config;
}

bool
CampaignResult::complete() const
{
    for (const UnitResult &u : units)
        if (u.source == UnitSource::Pending)
            return false;
    return !units.empty();
}

std::string
CampaignResult::mergedOutput(bool json) const
{
    // Exactly the one-shot batch CLI's join: JSON objects (each
    // carrying its trailing newline) become array elements; text
    // reports are separated by one blank line.
    std::string out;
    if (json) {
        out = "[\n";
        for (std::size_t i = 0; i < units.size(); ++i) {
            std::string body = units[i].rendered;
            if (!body.empty() && body.back() == '\n')
                body.pop_back();
            out += body;
            if (i + 1 < units.size())
                out += ",";
            out += "\n";
        }
        out += "]\n";
        return out;
    }
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (i)
            out += "\n";
        out += units[i].rendered;
    }
    return out;
}

bool
executeUnit(const CampaignConfig &config, std::size_t index,
            VerdictCache &cache, UnitResult *out, std::string *error,
            std::string *store_error)
{
    if (index >= config.units.size())
        return fail(error, "unit index out of range");
    out->index = index;
    out->spec = config.units[index];

    workloads::Workload w;
    if (!loadUnit(out->spec, &w, error))
        return false;

    core::PortendOptions opts = config.analysis;
    opts.jobs = 1; // units fan out; inner pipelines stay serial
    opts.semantic_predicates = w.semantic_predicates;

    core::Portend tool(w.program, opts);
    core::DetectionResult det = tool.detect();

    UnitKey key;
    key.fingerprint = rt::programFingerprint(w.program);
    key.trace_hash = traceHash(det.trace);
    key.config_hash =
        configHash(opts, unitSalt(out->spec, config.render));
    out->key = key;
    out->sig = signatureHex(key);

    std::optional<CacheEntry> hit = cache.probe(out->sig);
    if (hit) {
        out->rendered = hit->payload;
        out->source = UnitSource::CacheHit;
        out->metrics.add(obs::Counter::PipelineWorkloads, 1);
        out->metrics.merge(det.metrics);
        return true;
    }

    core::PortendResult res = tool.runFrom(std::move(det));
    out->rendered = core::renderPipelineReport(
        w.name, w.program, res, opts.mp, opts.ma, config.render);
    out->metrics = res.metrics;
    out->source = UnitSource::Executed;

    CacheEntry entry;
    entry.sig = out->sig;
    entry.key = key;
    entry.name = out->spec.name;
    entry.payload = out->rendered;
    cache.store(entry, store_error);
    return true;
}

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)),
      cache_(std::make_unique<VerdictCache>())
{}

Campaign::Campaign(CampaignConfig config, std::string dir,
                   std::string cache_dir)
    : config_(std::move(config)), dir_(std::move(dir)),
      cache_(std::make_unique<VerdictCache>(
          cache_dir.empty() ? (fs::path(dir_) / kCacheDir).string()
                            : cache_dir))
{}

std::string
Campaign::journalPath() const
{
    return dir_.empty()
               ? std::string()
               : (fs::path(dir_) / kJournalFile).string();
}

std::optional<Campaign>
Campaign::create(const std::string &dir, CampaignConfig config,
                 std::string *error, const std::string &cache_dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        fail(error, "cannot create campaign dir: " + dir + ": " +
                        ec.message());
        return std::nullopt;
    }

    fs::path manifest = fs::path(dir) / kManifestFile;
    std::string text = manifestText(config);
    if (fs::exists(manifest)) {
        // Re-entry: the stored manifest must match exactly. Silently
        // adopting a new config would poison the journal/cache pair.
        std::ifstream is(manifest, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        if (os.str() != text) {
            fail(error,
                 "campaign at " + dir +
                     " has a different configuration; use `campaign "
                     "resume` to continue it as-is");
            return std::nullopt;
        }
        return Campaign(std::move(config), dir, cache_dir);
    }

    fs::path tmp = fs::path(dir) / (std::string(kManifestFile) + ".tmp");
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os << text;
        if (!os) {
            fail(error, "cannot write manifest in " + dir);
            return std::nullopt;
        }
    }
    fs::rename(tmp, manifest, ec);
    if (ec) {
        fail(error, "cannot publish manifest: " + ec.message());
        return std::nullopt;
    }
    return Campaign(std::move(config), dir, cache_dir);
}

std::optional<Campaign>
Campaign::open(const std::string &dir, std::string *error,
               const std::string &cache_dir)
{
    fs::path manifest = fs::path(dir) / kManifestFile;
    std::ifstream is(manifest, std::ios::binary);
    if (!is) {
        fail(error, "no campaign at " + dir + " (missing manifest)");
        return std::nullopt;
    }
    std::ostringstream os;
    os << is.rdbuf();
    std::optional<CampaignConfig> config =
        parseManifest(os.str(), error);
    if (!config)
        return std::nullopt;
    return Campaign(std::move(*config), dir, cache_dir);
}

CampaignResult
Campaign::replayJournal()
{
    CampaignResult result;
    result.units.resize(config_.units.size());
    for (std::size_t i = 0; i < config_.units.size(); ++i) {
        result.units[i].index = i;
        result.units[i].spec = config_.units[i];
    }

    // Every journaled unit whose cache entry is present is done — no
    // execution at all. A journaled unit with a lost cache entry
    // simply re-runs (always sound).
    const std::string journal_path = journalPath();
    if (journal_path.empty())
        return result;
    std::vector<JournalRecord> records =
        loadJournal(journal_path, &result.journal_torn);
    result.journal_replays = static_cast<int>(records.size());
    for (const JournalRecord &rec : records) {
        if (rec.unit >= result.units.size())
            continue;
        UnitResult &u = result.units[rec.unit];
        if (u.source != UnitSource::Pending)
            continue; // duplicate record (re-run overlap)
        if (u.spec.kind != rec.kind || u.spec.name != rec.name)
            continue; // journal from another manifest shape
        std::optional<CacheEntry> hit = cache_->probe(rec.sig);
        if (!hit)
            continue;
        u.sig = rec.sig;
        u.key = rec.key;
        u.rendered = hit->payload;
        u.source = UnitSource::Journal;
        result.resume_skips += 1;
        emitUnitEvent(u);
    }
    return result;
}

bool
Campaign::openJournal(std::string *error)
{
    const std::string path = journalPath();
    if (path.empty())
        return true; // ephemeral: nothing to journal
    if (!journal_)
        journal_ = std::make_unique<JournalWriter>();
    return journal_->isOpen() || journal_->open(path, error);
}

void
Campaign::closeJournal()
{
    if (journal_)
        journal_->close();
}

bool
Campaign::recordCompletion(CampaignResult &result, std::size_t index,
                           const std::string &sig, bool cached,
                           std::string *error)
{
    if (index >= result.units.size())
        return fail(error, "completion for out-of-range unit index");
    UnitResult &u = result.units[index];
    if (u.source != UnitSource::Pending)
        return true; // duplicate completion (re-dispatch overlap)
    std::optional<CacheEntry> hit = cache_->probe(sig);
    if (!hit)
        return fail(error,
                    "no cache entry for reported signature " + sig);
    u.sig = sig;
    u.key = hit->key;
    u.rendered = hit->payload;
    u.source = cached ? UnitSource::CacheHit : UnitSource::Executed;

    if (journal_ && journal_->isOpen()) {
        JournalRecord rec;
        rec.unit = index;
        rec.kind = u.spec.kind;
        rec.name = u.spec.name;
        rec.sig = sig;
        rec.key = hit->key;
        std::string jerr;
        if (!journal_->append(rec, &jerr) && result.error.empty())
            result.error = jerr;
    }
    emitUnitEvent(u);
    return true;
}

void
Campaign::finalize(CampaignResult &result) const
{
    // Merge: unit shards in manifest order, then the engine's own
    // counters — one fixed order, so --metrics-out bytes stay
    // deterministic across --jobs values.
    for (const UnitResult &u : result.units) {
        result.metrics.merge(u.metrics);
        if (u.source == UnitSource::Executed)
            result.executed += 1;
        else if (u.source == UnitSource::CacheHit)
            result.cache_hits += 1;
    }
    using obs::Counter;
    result.metrics.add(Counter::CampaignUnits,
                       result.units.size());
    result.metrics.add(Counter::CampaignCacheHits,
                       static_cast<std::uint64_t>(result.cache_hits));
    result.metrics.add(Counter::CampaignCacheMisses,
                       static_cast<std::uint64_t>(result.executed));
    result.metrics.add(
        Counter::CampaignJournalReplays,
        static_cast<std::uint64_t>(result.journal_replays));
    result.metrics.add(
        Counter::CampaignResumeSkips,
        static_cast<std::uint64_t>(result.resume_skips));
}

CampaignResult
Campaign::run(int abort_after_units, int jobs_override)
{
    obs::Span span("campaign", "run");

    // Phase 1: journal replay.
    CampaignResult result = replayJournal();

    // Phase 2: execute what remains, workers pulling from the queue.
    std::vector<std::size_t> pending;
    for (const UnitResult &u : result.units)
        if (u.source == UnitSource::Pending)
            pending.push_back(u.index);
    Queue<std::size_t> queue(std::move(pending));

    std::mutex journal_mu;
    std::string first_error;
    if (!openJournal(&first_error)) {
        result.error = first_error;
        return result;
    }

    std::atomic<int> journaled{0};
    std::atomic<bool> failed{false};

    auto runUnit = [&](std::size_t index) {
        UnitResult &u = result.units[index];
        std::string err, store_err;
        if (!executeUnit(config_, index, *cache_, &u, &err,
                         &store_err)) {
            std::lock_guard<std::mutex> lock(journal_mu);
            if (result.error.empty())
                result.error = err;
            failed.store(true);
            return;
        }
        if (!store_err.empty()) {
            std::lock_guard<std::mutex> lock(journal_mu);
            if (result.error.empty())
                result.error = store_err;
        }

        if (journal_ && journal_->isOpen()) {
            JournalRecord rec;
            rec.unit = index;
            rec.kind = u.spec.kind;
            rec.name = u.spec.name;
            rec.sig = u.sig;
            rec.key = u.key;
            std::string jerr;
            std::lock_guard<std::mutex> lock(journal_mu);
            if (!journal_->append(rec, &jerr) && result.error.empty())
                result.error = jerr;
        }
        journaled.fetch_add(1);
        emitUnitEvent(u);
    };

    int jobs = ThreadPool::resolveJobs(
        jobs_override > 0 ? jobs_override : config_.analysis.jobs);
    ThreadPool::parallelFor(
        jobs, queue.size(), [&]() -> std::function<void(std::size_t)> {
            return [&](std::size_t) {
                // Ignore parallelFor's index: the abort hook must be
                // checked between *claims*, so workers pull from the
                // campaign queue themselves and the cursor stops
                // advancing the moment the limit is reached.
                if (failed.load())
                    return;
                if (abort_after_units >= 0 &&
                    journaled.load() >= abort_after_units)
                    return;
                const std::size_t *index = queue.next();
                if (index)
                    runUnit(*index);
            };
        });
    closeJournal();

    result.aborted =
        abort_after_units >= 0 && !queue.drained() &&
        result.error.empty();

    finalize(result);

    span.arg("units",
             static_cast<std::int64_t>(result.units.size()));
    span.arg("executed", static_cast<std::int64_t>(result.executed));
    return result;
}

Campaign::Status
Campaign::status()
{
    Status st;
    st.total_units = config_.units.size();
    st.cache_entries = cache_->sizeOnDisk();
    if (dir_.empty())
        return st;
    std::vector<JournalRecord> records = loadJournal(
        (fs::path(dir_) / kJournalFile).string(), &st.journal_torn);
    std::vector<bool> done(config_.units.size(), false);
    for (const JournalRecord &rec : records) {
        if (rec.unit >= done.size() || done[rec.unit])
            continue;
        if (config_.units[rec.unit].kind != rec.kind ||
            config_.units[rec.unit].name != rec.name)
            continue;
        if (!cache_->probe(rec.sig))
            continue;
        done[rec.unit] = true;
        st.completed_units += 1;
    }
    return st;
}

} // namespace portend::campaign
