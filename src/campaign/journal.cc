#include "campaign/journal.h"

#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace portend::campaign {

namespace {

/** Minimal JSON string escape for the fields we write. */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Inverse of esc() for the subset it emits. */
bool
unesc(const std::string &s, std::string *out)
{
    out->clear();
    out->reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c != '\\') {
            out->push_back(c);
            continue;
        }
        if (++i >= s.size())
            return false;
        switch (s[i]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'u': {
            if (i + 4 >= s.size())
                return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                char d = s[++i];
                v <<= 4;
                if (d >= '0' && d <= '9')
                    v |= static_cast<unsigned>(d - '0');
                else if (d >= 'a' && d <= 'f')
                    v |= static_cast<unsigned>(d - 'a' + 10);
                else if (d >= 'A' && d <= 'F')
                    v |= static_cast<unsigned>(d - 'A' + 10);
                else
                    return false;
            }
            // The writer only ever emits \u00XX (control chars), so
            // a wider value is not ours. Truncating it to one byte
            // would silently corrupt the unit name on load — reject
            // the record instead (the loader re-runs that unit).
            if (v > 0xff)
                return false;
            out->push_back(static_cast<char>(v));
            break;
        }
        default: return false;
        }
    }
    return true;
}

/** Extract the raw (still-escaped) string value of `"key": "..."`. */
bool
findString(const std::string &line, const std::string &key,
           std::string *out)
{
    const std::string needle = "\"" + key + "\": \"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    std::string raw;
    while (i < line.size()) {
        char c = line[i];
        if (c == '"')
            return unesc(raw, out);
        if (c == '\\') {
            if (i + 1 >= line.size())
                return false;
            raw.push_back(c);
            raw.push_back(line[i + 1]);
            i += 2;
            continue;
        }
        raw.push_back(c);
        ++i;
    }
    return false; // unterminated: a torn record
}

/** Extract the integer value of `"key": <digits>`. */
bool
findInt(const std::string &line, const std::string &key,
        std::uint64_t *out)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    if (i >= line.size() || line[i] < '0' || line[i] > '9')
        return false;
    std::uint64_t v = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++i;
    }
    *out = v;
    return true;
}

} // namespace

std::string
journalLine(const JournalRecord &rec)
{
    std::ostringstream os;
    os << "{\"v\": 1, \"unit\": " << rec.unit << ", \"kind\": \""
       << esc(rec.kind) << "\", \"name\": \"" << esc(rec.name)
       << "\", \"sig\": \"" << rec.sig << "\", \"fp\": \""
       << hex16(rec.key.fingerprint) << "\", \"trace\": \""
       << hex16(rec.key.trace_hash) << "\", \"cfg\": \""
       << hex16(rec.key.config_hash) << "\"}";
    return os.str();
}

bool
parseJournalLine(const std::string &line, JournalRecord *out)
{
    // Shape check first: a torn final record rarely ends in '}'.
    std::size_t end = line.size();
    while (end > 0 &&
           (line[end - 1] == '\r' || line[end - 1] == ' '))
        --end;
    if (end == 0 || line[0] != '{' || line[end - 1] != '}')
        return false;

    JournalRecord rec;
    std::uint64_t v = 0, unit = 0;
    if (!findInt(line, "v", &v) || v != 1)
        return false;
    if (!findInt(line, "unit", &unit))
        return false;
    rec.unit = static_cast<std::size_t>(unit);
    if (!findString(line, "kind", &rec.kind) ||
        !findString(line, "name", &rec.name) ||
        !findString(line, "sig", &rec.sig))
        return false;
    std::string fp, trace, cfg;
    if (!findString(line, "fp", &fp) ||
        !findString(line, "trace", &trace) ||
        !findString(line, "cfg", &cfg))
        return false;
    if (!parseHex16(rec.sig, nullptr) ||
        !parseHex16(fp, &rec.key.fingerprint) ||
        !parseHex16(trace, &rec.key.trace_hash) ||
        !parseHex16(cfg, &rec.key.config_hash))
        return false;
    *out = rec;
    return true;
}

JournalWriter::~JournalWriter() { close(); }

bool
JournalWriter::open(const std::string &path, std::string *error)
{
    close();
    f_ = std::fopen(path.c_str(), "ab");
    if (!f_) {
        if (error)
            *error = "cannot open journal " + path + ": " +
                     std::strerror(errno);
        return false;
    }
    return true;
}

bool
JournalWriter::append(const JournalRecord &rec, std::string *error)
{
    if (!f_) {
        if (error)
            *error = "journal not open";
        return false;
    }
    const std::string line = journalLine(rec) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size() ||
        std::fflush(f_) != 0) {
        if (error)
            *error = std::string("journal write failed: ") +
                     std::strerror(errno);
        return false;
    }
    // The durability half of the resume contract: the record must be
    // on disk before the engine treats the unit as complete.
#ifndef _WIN32
    if (fsync(fileno(f_)) != 0) {
        if (error)
            *error = std::string("journal fsync failed: ") +
                     std::strerror(errno);
        return false;
    }
#endif
    return true;
}

void
JournalWriter::close()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

std::vector<JournalRecord>
loadJournal(const std::string &path, int *skipped_out)
{
    std::vector<JournalRecord> out;
    int skipped = 0;
    std::ifstream is(path, std::ios::binary);
    if (is) {
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty())
                continue;
            JournalRecord rec;
            if (parseJournalLine(line, &rec))
                out.push_back(std::move(rec));
            else
                skipped += 1; // torn or corrupt: re-run that unit
        }
    }
    if (skipped_out)
        *skipped_out = skipped;
    return out;
}

} // namespace portend::campaign
