#include "campaign/signature.h"

#include "explore/explorer.h"
#include "support/hash.h"

namespace portend::campaign {

std::uint64_t
traceHash(const replay::ScheduleTrace &trace)
{
    return fnv1a(trace.serialize());
}

std::uint64_t
configHash(const core::PortendOptions &opts, const std::string &salt)
{
    // Order is part of the hash: append-only, never reorder, so
    // signatures stay stable across builds of the same source.
    std::uint64_t h = fnv1a(std::string("portend-campaign-config-v1"));
    h = hashCombine(h, static_cast<std::uint64_t>(opts.mp));
    h = hashCombine(h, static_cast<std::uint64_t>(opts.ma));
    h = hashCombine(h, opts.adhoc_detection ? 1 : 0);
    h = hashCombine(h, opts.multi_path ? 1 : 0);
    h = hashCombine(h, opts.multi_schedule ? 1 : 0);
    h = hashCombine(h,
                    static_cast<std::uint64_t>(opts.max_symbolic_inputs));
    for (const rt::SymInputSpec &s : opts.sym_inputs) {
        h = fnv1a(s.name, h);
        h = hashCombine(h, s.has_range ? 1 : 0);
        h = hashCombine(h, static_cast<std::uint64_t>(s.lo));
        h = hashCombine(h, static_cast<std::uint64_t>(s.hi));
    }
    h = hashCombine(h, opts.timeout_factor);
    h = hashCombine(h, opts.max_steps);
    h = hashCombine(h, opts.detection_seed);
    h = hashCombine(h, static_cast<std::uint64_t>(opts.detector));
    h = fnv1a(std::string(explore::exploreModeName(opts.explore)), h);
    h = hashCombine(h, static_cast<std::uint64_t>(opts.preemption_bound));
    h = hashCombine(h,
                    static_cast<std::uint64_t>(opts.semantic_predicates.size()));
    h = hashCombine(h, opts.solver.max_assignments);
    h = hashCombine(h, opts.solver.max_candidates);
    h = hashCombine(h,
                    static_cast<std::uint64_t>(opts.executor_max_states));
    h = hashCombine(h,
                    static_cast<std::uint64_t>(opts.total_state_budget));
    h = hashCombine(h, opts.total_step_budget);
    if (!salt.empty())
        h = fnv1a(salt, h);
    return h;
}

std::string
signatureHex(const UnitKey &key)
{
    std::uint64_t h = fnv1a(std::string("portend-campaign-sig-v1"));
    h = hashCombine(h, key.fingerprint);
    h = hashCombine(h, key.trace_hash);
    h = hashCombine(h, key.config_hash);
    return hex16(h);
}

std::string
hex16(std::uint64_t h)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

bool
parseHex16(const std::string &s, std::uint64_t *out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    if (out)
        *out = v;
    return true;
}

} // namespace portend::campaign
