#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace portend {

namespace {
// Atomic so that classification workers can log while the driver
// thread adjusts verbosity.
std::atomic<LogLevel> global_level{LogLevel::Warn};
} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace portend
