/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Portend's multi-schedule analysis randomizes thread scheduling; to
 * keep analyses replayable, every random decision flows through a
 * seeded SplitMix64/xoshiro-style generator rather than std::rand.
 */

#ifndef PORTEND_SUPPORT_RNG_H
#define PORTEND_SUPPORT_RNG_H

#include <cstdint>

namespace portend {

/**
 * Small, fast, deterministic RNG (splitmix64 core).
 *
 * Copyable: forking an execution state forks the RNG stream with it,
 * which keeps replay exact.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform value in [0, bound).
     *
     * @param bound exclusive upper bound; must be > 0
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform value in [lo, hi] (inclusive). */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Current internal state (for checkpointing). */
    std::uint64_t rawState() const { return state; }

  private:
    std::uint64_t state;
};

} // namespace portend

#endif // PORTEND_SUPPORT_RNG_H
