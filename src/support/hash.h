/**
 * @file
 * FNV-1a hashing and hash chains.
 *
 * Portend hashes program outputs (when they are concrete) and can
 * maintain a hash chain of all outputs to derive a single hash code
 * per execution (paper §4); these are the primitives behind that.
 */

#ifndef PORTEND_SUPPORT_HASH_H
#define PORTEND_SUPPORT_HASH_H

#include <cstdint>
#include <string>

namespace portend {

/** 64-bit FNV-1a offset basis. */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/** 64-bit FNV-1a prime. */
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold one byte into an FNV-1a accumulator. */
inline std::uint64_t
fnv1aByte(std::uint64_t h, std::uint8_t b)
{
    return (h ^ b) * kFnvPrime;
}

/** Hash a byte buffer with FNV-1a. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = kFnvOffset);

/** Hash a string with FNV-1a. */
std::uint64_t fnv1a(const std::string &s, std::uint64_t seed = kFnvOffset);

/** Mix a 64-bit value into a hash accumulator. */
std::uint64_t hashCombine(std::uint64_t h, std::uint64_t v);

/**
 * Incremental hash chain over a sequence of records.
 *
 * Each appended record is folded into a single accumulator, so one
 * 64-bit digest summarizes an arbitrarily long output stream.
 */
class HashChain
{
  public:
    HashChain() : acc(kFnvOffset) {}

    /** Fold a string record into the chain. */
    void
    append(const std::string &rec)
    {
        acc = fnv1a(rec, acc);
        acc = hashCombine(acc, rec.size());
        count_ += 1;
    }

    /** Fold an integer record into the chain. */
    void
    append(std::uint64_t v)
    {
        acc = hashCombine(acc, v);
        count_ += 1;
    }

    /** Current digest. */
    std::uint64_t digest() const { return acc; }

    /** Number of records appended. */
    std::uint64_t count() const { return count_; }

    bool operator==(const HashChain &o) const = default;

  private:
    std::uint64_t acc;
    std::uint64_t count_ = 0;
};

} // namespace portend

#endif // PORTEND_SUPPORT_HASH_H
