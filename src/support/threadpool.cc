#include "support/threadpool.h"

#include <algorithm>
#include <atomic>

namespace portend {

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        // A packaged_task traps its callable's exceptions in the
        // corresponding future, so job() never throws here.
        job();
    }
}

int
ThreadPool::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

void
ThreadPool::parallelFor(
    int n_workers, std::size_t n_items,
    const std::function<std::function<void(std::size_t)>()>
        &make_worker)
{
    if (n_items == 0)
        return;
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(1, n_workers)), n_items));
    if (workers <= 1) {
        const std::function<void(std::size_t)> body = make_worker();
        for (std::size_t i = 0; i < n_items; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    ThreadPool pool(workers);
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        done.push_back(pool.submit([&next, n_items, &make_worker] {
            const std::function<void(std::size_t)> body =
                make_worker();
            for (std::size_t i = next.fetch_add(1); i < n_items;
                 i = next.fetch_add(1)) {
                body(i);
            }
        }));
    }
    for (auto &f : done)
        f.get(); // propagates a worker's exception, if any
}

} // namespace portend
