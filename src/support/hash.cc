#include "support/hash.h"

namespace portend {

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i)
        h = fnv1aByte(h, p[i]);
    return h;
}

std::uint64_t
fnv1a(const std::string &s, std::uint64_t seed)
{
    return fnv1a(s.data(), s.size(), seed);
}

std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    // Boost-style mixing adapted to 64 bits.
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    return h * kFnvPrime;
}

} // namespace portend
