/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, malformed programs). warn()/inform() report
 * conditions without stopping execution.
 */

#ifndef PORTEND_SUPPORT_LOGGING_H
#define PORTEND_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace portend {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log threshold; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * @param msg description of the broken invariant
 * @param file source file of the call site
 * @param line source line of the call site
 */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/**
 * Report an unrecoverable user-level error and exit(1).
 *
 * @param msg description of the error
 */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Emit a warning; execution continues. */
void warnImpl(const std::string &msg);

/** Emit an informational message; execution continues. */
void informImpl(const std::string &msg);

/** Emit a debug-level message; execution continues. */
void debugImpl(const std::string &msg);

namespace detail {

/** Fold a pack of stream-printable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace portend

#define PORTEND_PANIC(...)                                                  \
    ::portend::panicImpl(::portend::detail::concat(__VA_ARGS__), __FILE__, \
                         __LINE__)

#define PORTEND_FATAL(...)                                                  \
    ::portend::fatalImpl(::portend::detail::concat(__VA_ARGS__), __FILE__, \
                         __LINE__)

#define PORTEND_WARN(...)                                                   \
    ::portend::warnImpl(::portend::detail::concat(__VA_ARGS__))

#define PORTEND_INFORM(...)                                                 \
    ::portend::informImpl(::portend::detail::concat(__VA_ARGS__))

#define PORTEND_DEBUG(...)                                                  \
    ::portend::debugImpl(::portend::detail::concat(__VA_ARGS__))

/** Internal invariant check: panics with the condition text on failure. */
#define PORTEND_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            PORTEND_PANIC("assertion failed: ", #cond, " ",                 \
                          ::portend::detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

#endif // PORTEND_SUPPORT_LOGGING_H
