#include "support/subproc.h"

#ifndef _WIN32

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/clock.h"

namespace portend::sub {

std::optional<Child>
spawn(const std::function<int(int fd)> &child_main, std::string *error)
{
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        if (error)
            *error = std::string("socketpair: ") + std::strerror(errno);
        return std::nullopt;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork: ") + std::strerror(errno);
        ::close(sv[0]);
        ::close(sv[1]);
        return std::nullopt;
    }
    if (pid == 0) {
        // Child: drop the parent's end, die on our own SIGPIPE
        // (write errors surface as EPIPE instead), run, _exit — no
        // atexit handlers, no stdio flush of inherited buffers.
        ::close(sv[0]);
        ::signal(SIGPIPE, SIG_IGN);
        _exit(child_main(sv[1]));
    }
    ::close(sv[1]);
    Child c;
    c.pid = pid;
    c.fd = sv[0];
    return c;
}

bool
reap(Child &c, int *exit_status_out)
{
    if (!c.running())
        return true;
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(c.pid), &status,
                              WNOHANG);
    if (r == 0)
        return false;
    // r == pid, or ECHILD (someone else collected it): gone either way.
    if (exit_status_out)
        *exit_status_out = r > 0 ? status : -1;
    c.pid = -1;
    return true;
}

void
kill(const Child &c, int sig)
{
    if (c.running())
        ::kill(static_cast<pid_t>(c.pid), sig);
}

void
terminate(Child &c, double grace_seconds)
{
    closeChannel(c);
    if (!c.running())
        return;
    kill(c, SIGTERM);
    const std::uint64_t start = steadyNanos();
    while (!reap(c)) {
        if (steadySeconds(start, steadyNanos()) > grace_seconds) {
            kill(c, SIGKILL);
            ::waitpid(static_cast<pid_t>(c.pid), nullptr, 0);
            c.pid = -1;
            return;
        }
        ::usleep(10 * 1000);
    }
}

void
closeChannel(Child &c)
{
    if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
    }
}

bool
writeAll(int fd, const char *data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

long
readSome(int fd, char *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::read(fd, buf, n);
        if (r >= 0)
            return static_cast<long>(r);
        if (errno != EINTR)
            return -1;
    }
}

} // namespace portend::sub

#else // _WIN32

namespace portend::sub {

// The serve layer is POSIX-only (fork + unix sockets); on Windows
// every primitive reports failure and `portend serve` refuses to
// start.

std::optional<Child>
spawn(const std::function<int(int)> &, std::string *error)
{
    if (error)
        *error = "subprocess supervision is not supported on Windows";
    return std::nullopt;
}

bool reap(Child &c, int *) { c.pid = -1; return true; }
void kill(const Child &, int) {}
void terminate(Child &c, double) { c.pid = -1; c.fd = -1; }
void closeChannel(Child &c) { c.fd = -1; }
bool writeAll(int, const char *, std::size_t) { return false; }
long readSome(int, char *, std::size_t) { return -1; }

} // namespace portend::sub

#endif // _WIN32
