/**
 * @file
 * RAII span tracer emitting Chrome trace-event JSON.
 *
 * `OBS_SPAN("cat", "name")` opens a span that closes at scope exit;
 * spans nest naturally per thread (RAII guarantees proper bracket
 * structure), which is exactly what the Chrome trace-event "X"
 * (complete) event model renders as a flame graph in
 * chrome://tracing or Perfetto. Categories name the subsystem the
 * span belongs to — `interp`, `ladder`, `explore`, `sym`,
 * `scheduler`, `pipeline`, `classify`, `fuzz` — so one classification
 * shows where its time went across every layer.
 *
 * Like the metrics layer, the tracer is a null global by default:
 * a Span's constructor is one relaxed pointer load and a branch when
 * tracing is off. Timestamps come from steadyNanos() (monotone per
 * process, hence per thread); wall-clock appears only once, as a
 * metadata timestamp in the exported file.
 */

#ifndef PORTEND_SUPPORT_TRACE_H
#define PORTEND_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/clock.h"

namespace portend::obs {

/** One integer key/value attached to a span ("args" in the trace). */
struct Arg
{
    const char *key;
    std::int64_t value;
};

class Tracer
{
  public:
    /** Events beyond this many are counted but dropped, bounding
     *  memory and file size on solver-heavy runs. */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    Tracer();

    /** Record one completed span. `name`/`cat` must be string
     *  literals (stored by pointer). Called by ~Span. */
    void complete(const char *cat, const char *name, std::uint64_t start_ns,
                  std::uint64_t end_ns, const Arg *args, std::size_t nargs);

    /** Spans dropped after hitting kMaxEvents. */
    std::uint64_t dropped() const;

    /** Render the Chrome trace-event JSON document ("traceEvents"
     *  array plus metadata). Call after all spans have closed. */
    std::string toJson() const;

    /** Write toJson() to `path`; false + *err on I/O failure. */
    bool writeFile(const std::string &path, std::string *err) const;

  private:
    struct Event
    {
        const char *cat;
        const char *name;
        std::uint64_t ts_ns; // relative to t0_
        std::uint64_t dur_ns;
        int tid;
        std::vector<Arg> args;
    };

    int tidOf(std::thread::id id); // caller holds mu_

    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::map<std::thread::id, int> tids_;
    int next_tid_ = 1;
    std::uint64_t dropped_ = 0;
    std::uint64_t t0_ns_;        // steadyNanos() at construction
    std::uint64_t wall_us_;      // wallUnixMicros() at construction
};

/** The installed tracer, or nullptr (tracing off). */
Tracer *tracer();

/** Install (or clear) the process-wide tracer. Install before
 *  spawning workers; spans already open keep their captured sink. */
void setTracer(Tracer *t);

/**
 * RAII span. When no tracer is installed the constructor is a load
 * and a branch and the destructor a branch; arg() is a branch.
 */
class Span
{
  public:
    Span(const char *cat, const char *name)
        : sink_(tracer()), cat_(cat), name_(name)
    {
        if (sink_)
            start_ns_ = steadyNanos();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an integer arg (shown under "args" in the viewer).
     *  At most kMaxArgs stick; extras are ignored. */
    void arg(const char *key, std::int64_t value)
    {
        if (sink_ && nargs_ < kMaxArgs)
            args_[nargs_++] = Arg{key, value};
    }

    ~Span()
    {
        if (sink_)
            sink_->complete(cat_, name_, start_ns_, steadyNanos(), args_,
                            nargs_);
    }

  private:
    static constexpr std::size_t kMaxArgs = 4;

    Tracer *sink_;
    const char *cat_;
    const char *name_;
    std::uint64_t start_ns_ = 0;
    Arg args_[kMaxArgs];
    std::size_t nargs_ = 0;
};

#define PORTEND_OBS_CONCAT_(a, b) a##b
#define PORTEND_OBS_CONCAT(a, b) PORTEND_OBS_CONCAT_(a, b)

/** Open a span covering the rest of the enclosing scope. */
#define OBS_SPAN(cat, name)                                                   \
    ::portend::obs::Span PORTEND_OBS_CONCAT(obs_span_, __LINE__)((cat), (name))

} // namespace portend::obs

#endif // PORTEND_SUPPORT_TRACE_H
