/**
 * @file
 * Length-prefixed frame protocol (`portend-serve-v1` wire spec).
 *
 * One frame is a single ASCII header line followed by a verbatim
 * payload:
 *
 *   psrv1 <type> <payload-bytes>\n
 *   <payload bytes>
 *
 * `type` is 1..32 chars of [a-z_]; `payload-bytes` is a decimal
 * byte count bounded by kMaxFramePayload. The header is
 * self-delimiting (first LF) and the payload length-prefixed, so
 * frames never need escaping and binary payloads (rendered verdict
 * bytes) travel untouched.
 *
 * The reader is incremental and adversarial-input hardened: bytes
 * arrive in arbitrary chunks (socket reads), and any malformed
 * header — wrong magic, bad type charset, non-numeric or oversized
 * count, overlong header — poisons the stream with a diagnostic
 * instead of desynchronizing. A poisoned stream stays poisoned: the
 * reader cannot know where the next frame starts, so the connection
 * must be dropped. Exercised by the mutant-fuzz battery in
 * tests/serve_test.cc (the PR 3 parser-robustness template).
 */

#ifndef PORTEND_SUPPORT_WIRE_H
#define PORTEND_SUPPORT_WIRE_H

#include <cstddef>
#include <optional>
#include <string>

namespace portend::wire {

/** Hard payload bound: a frame is a request or one rendered verdict
 *  batch, never bulk data. */
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/** Longest accepted frame type name. */
inline constexpr std::size_t kMaxTypeLen = 32;

/** One protocol message. */
struct Frame
{
    std::string type;    ///< [a-z_]{1,32}
    std::string payload; ///< verbatim bytes

    bool operator==(const Frame &o) const = default;
};

/** Serialize @p f as header line + payload. */
std::string encodeFrame(const Frame &f);

/**
 * Incremental frame parser over a byte stream. feed() appends
 * arriving bytes; next() extracts the earliest complete frame, if
 * any. After a malformed header the reader reports failed() with a
 * diagnostic and ignores all further input.
 */
class FrameReader
{
  public:
    /** Append @p n bytes arriving from the stream. */
    void feed(const char *data, std::size_t n);

    /** Pop the next complete frame, or nullopt when more bytes are
     *  needed (or the stream is poisoned — check failed()). */
    std::optional<Frame> next();

    /** True once a malformed header poisoned the stream. */
    bool failed() const { return failed_; }

    /** Diagnostic for the poisoning header ("" while healthy). */
    const std::string &error() const { return error_; }

  private:
    std::string buf_;
    bool failed_ = false;
    std::string error_;
};

/** True if @p type is a well-formed frame type name. */
bool validFrameType(const std::string &type);

} // namespace portend::wire

#endif // PORTEND_SUPPORT_WIRE_H
