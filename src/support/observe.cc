#include "support/observe.h"

#include <bit>
#include <cstdio>

namespace portend::obs {

namespace {

const char *const kCounterNames[] = {
#define X(ident, name) name,
    PORTEND_OBS_COUNTERS(X)
#undef X
};

const char *const kGaugeNames[] = {
#define X(ident, name) name,
    PORTEND_OBS_GAUGES(X)
#undef X
};

const char *const kHistNames[] = {
#define X(ident, name) name,
    PORTEND_OBS_HISTS(X)
#undef X
};

/** Bucket index: bit_width(sample), so 0 -> 0 and [2^(b-1), 2^b)
 *  -> b. Always < kHistBuckets for 64-bit samples. */
std::size_t
bucketOf(std::uint64_t sample)
{
    return static_cast<std::size_t>(std::bit_width(sample));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

std::atomic<Collector *> g_collector{nullptr};
std::atomic<Progress *> g_progress{nullptr};

} // namespace

const char *
counterName(Counter c)
{
    return kCounterNames[static_cast<std::size_t>(c)];
}

const char *
gaugeName(Gauge g)
{
    return kGaugeNames[static_cast<std::size_t>(g)];
}

const char *
histName(Hist h)
{
    return kHistNames[static_cast<std::size_t>(h)];
}

void
MetricsShard::observe(Hist h, std::uint64_t sample)
{
    const auto i = static_cast<std::size_t>(h);
    hist_buckets_[i][bucketOf(sample)] += 1;
    hist_count_[i] += 1;
    hist_sum_[i] += sample;
}

void
MetricsShard::merge(const MetricsShard &other)
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        counters_[i] += other.counters_[i];
    for (std::size_t i = 0; i < kNumGauges; ++i)
        if (other.gauges_[i] > gauges_[i])
            gauges_[i] = other.gauges_[i];
    for (std::size_t i = 0; i < kNumHists; ++i)
    {
        for (std::size_t b = 0; b < kHistBuckets; ++b)
            hist_buckets_[i][b] += other.hist_buckets_[i][b];
        hist_count_[i] += other.hist_count_[i];
        hist_sum_[i] += other.hist_sum_[i];
    }
}

std::string
metricsJson(const MetricsShard &shard)
{
    std::string out;
    out.reserve(2048);
    out += "{\n  \"schema\": \"portend-metrics-v1\",\n  \"counters\": {\n";
    for (std::size_t i = 0; i < kNumCounters; ++i)
    {
        out += "    \"";
        out += kCounterNames[i];
        out += "\": ";
        appendU64(out, shard.counter(static_cast<Counter>(i)));
        out += i + 1 < kNumCounters ? ",\n" : "\n";
    }
    out += "  },\n  \"gauges\": {\n";
    for (std::size_t i = 0; i < kNumGauges; ++i)
    {
        out += "    \"";
        out += kGaugeNames[i];
        out += "\": ";
        appendU64(out, shard.gauge(static_cast<Gauge>(i)));
        out += i + 1 < kNumGauges ? ",\n" : "\n";
    }
    out += "  },\n  \"histograms\": {\n";
    for (std::size_t i = 0; i < kNumHists; ++i)
    {
        const auto h = static_cast<Hist>(i);
        out += "    \"";
        out += kHistNames[i];
        out += "\": {\"count\": ";
        appendU64(out, shard.histCount(h));
        out += ", \"sum\": ";
        appendU64(out, shard.histSum(h));
        out += ", \"buckets\": [";
        // Trailing zero buckets are trimmed; the cut point is a pure
        // function of the (deterministic) counts, so the bytes stay
        // comparable.
        std::size_t top = kHistBuckets;
        while (top > 0 && shard.histBucket(h, top - 1) == 0)
            --top;
        for (std::size_t b = 0; b < top; ++b)
        {
            if (b)
                out += ", ";
            appendU64(out, shard.histBucket(h, b));
        }
        out += "]}";
        out += i + 1 < kNumHists ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
}

void
Collector::observe(Hist h, std::uint64_t sample)
{
    const auto i = static_cast<std::size_t>(h);
    hist_buckets_[i][bucketOf(sample)].fetch_add(1,
                                                 std::memory_order_relaxed);
    hist_count_[i].fetch_add(1, std::memory_order_relaxed);
    hist_sum_[i].fetch_add(sample, std::memory_order_relaxed);
}

void
Collector::drainInto(MetricsShard &out) const
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        out.add(static_cast<Counter>(i),
                counters_[i].load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kNumGauges; ++i)
        out.level(static_cast<Gauge>(i),
                  gauges_[i].load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kNumHists; ++i)
    {
        const auto h = static_cast<Hist>(i);
        for (std::size_t b = 0; b < kHistBuckets; ++b)
        {
            const std::uint64_t n =
                hist_buckets_[i][b].load(std::memory_order_relaxed);
            if (n)
                out.addHistRaw(h, b, n);
        }
        out.addHistMeta(h, hist_count_[i].load(std::memory_order_relaxed),
                        hist_sum_[i].load(std::memory_order_relaxed));
    }
}

Collector *
collector()
{
    return g_collector.load(std::memory_order_relaxed);
}

void
setCollector(Collector *c)
{
    g_collector.store(c, std::memory_order_release);
}

Progress *
progress()
{
    return g_progress.load(std::memory_order_relaxed);
}

void
setProgress(Progress *p)
{
    g_progress.store(p, std::memory_order_release);
}

void
Progress::emit(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    os_ << line << '\n';
    os_.flush();
}

void
progressLine(const std::string &line)
{
    if (Progress *p = progress())
        p->emit(line);
}

} // namespace portend::obs
