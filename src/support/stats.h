/**
 * @file
 * Simple statistics accumulators and monotonic timers.
 *
 * Used by the benchmark harnesses to report avg/min/max rows in the
 * style of the paper's Table 4.
 */

#ifndef PORTEND_SUPPORT_STATS_H
#define PORTEND_SUPPORT_STATS_H

#include <algorithm>
#include <cstdint>
#include <limits>

#include "support/clock.h"

namespace portend {

/** Running min/max/mean accumulator over double samples. */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double v)
    {
        n += 1;
        total += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Sum of samples. */
    double sum() const { return total; }

    /** Mean of samples; 0 when empty. */
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }

    /** Minimum sample; +inf when empty. */
    double min() const { return lo; }

    /** Maximum sample; -inf when empty. */
    double max() const { return hi; }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Monotonic stopwatch reporting elapsed seconds (steadyNanos). */
class Stopwatch
{
  public:
    Stopwatch() : start_ns(steadyNanos()) {}

    /** Restart the stopwatch. */
    void reset() { start_ns = steadyNanos(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const { return steadySeconds(start_ns, steadyNanos()); }

  private:
    std::uint64_t start_ns;
};

} // namespace portend

#endif // PORTEND_SUPPORT_STATS_H
