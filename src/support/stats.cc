#include "support/stats.h"

// Accumulator and Stopwatch are header-only; this file anchors the target.
