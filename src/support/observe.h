/**
 * @file
 * The unified observability layer: metrics registry, worker-local
 * shards, a process-wide collector for layers with no result struct
 * to thread through, and the JSON-lines progress sink.
 *
 * Design contract (see docs/ARCHITECTURE.md "Observability"):
 *
 *  - **Registered once.** Every metric is a row in the X-macro
 *    tables below; the enum index is its identity and the
 *    dot-namespaced string its exported name. There is no dynamic
 *    registration, so exports always cover the full table in fixed
 *    order — a prerequisite for byte-comparing metrics files.
 *
 *  - **Deterministic by construction.** Counters merge by addition,
 *    gauges by max, histograms bucket-wise — all commutative and
 *    associative — and the pipeline merges worker shards in cluster
 *    index order, so `--metrics-out` bytes are identical across
 *    `--jobs N` and across runs. That forces one hard rule: *no
 *    timing and no worker-count values in the registry.* Durations
 *    live in trace files (support/trace.h) and in the ledgers'
 *    never-printed `seconds` fields.
 *
 *  - **Zero-cost when off.** The global collector/progress/tracer
 *    sinks are plain atomic pointers, null by default; every
 *    instrumentation site is one relaxed load and a branch. Gated
 *    <2% on bench_interp_bench by bench/observe_bench.cc.
 */

#ifndef PORTEND_SUPPORT_OBSERVE_H
#define PORTEND_SUPPORT_OBSERVE_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace portend::obs {

// ---------------------------------------------------------------------------
// Metric tables. Rows are sorted by exported name; exports walk the
// table top to bottom, so this order IS the file order.
// ---------------------------------------------------------------------------

/** Monotone counters: merge = sum. */
#define PORTEND_OBS_COUNTERS(X)                                               \
    X(CampaignCacheHits, "campaign.cache_hits")                               \
    X(CampaignCacheMisses, "campaign.cache_misses")                           \
    X(CampaignJournalReplays, "campaign.journal_replays")                     \
    X(CampaignResumeSkips, "campaign.resume_skips")                           \
    X(CampaignUnits, "campaign.units")                                        \
    X(ClassifyClusters, "classify.clusters")                                  \
    X(ClassifyDistinctSchedules, "classify.distinct_schedules")               \
    X(ClassifyKWitnesses, "classify.k_witnesses")                             \
    X(ClassifyPaths, "classify.paths_explored")                               \
    X(ClassifyPreemptions, "classify.preemptions")                            \
    X(ClassifySchedules, "classify.schedules_explored")                       \
    X(ClassifySolverQueries, "classify.solver_queries")                       \
    X(ClassifyStatesCreated, "classify.states_created")                       \
    X(ClassifySteps, "classify.steps")                                        \
    X(ClassifySymBranches, "classify.sym_branches")                           \
    X(CorpusEntries, "corpus.entries")                                        \
    X(CorpusFailed, "corpus.failed")                                          \
    X(CorpusPassed, "corpus.passed")                                          \
    X(DetectClusters, "detect.clusters")                                      \
    X(DetectDynamicRaces, "detect.dynamic_races")                             \
    X(DetectEventsBatched, "detect.events_batched")                           \
    X(DetectPagesUnshared, "detect.pages_unshared")                           \
    X(DetectRuns, "detect.runs")                                              \
    X(DetectSteps, "detect.steps")                                            \
    X(DetectValuesBoxed, "detect.values_boxed")                               \
    X(ExploreCandidates, "explore.candidates")                                \
    X(ExploreDistinct, "explore.distinct")                                    \
    X(ExploreRecorded, "explore.recorded")                                    \
    X(FuzzFlagged, "fuzz.flagged")                                            \
    X(FuzzPrograms, "fuzz.programs")                                          \
    X(InterpEventsBatched, "interp.events_batched")                           \
    X(InterpPreemptions, "interp.preemptions")                                \
    X(InterpRuns, "interp.runs")                                              \
    X(InterpSteps, "interp.steps")                                            \
    X(InterpSymBranches, "interp.sym_branches")                               \
    X(InterpValuesBoxed, "interp.values_boxed")                               \
    X(LadderBuildSteps, "ladder.build_steps")                                 \
    X(LadderCoveredSteps, "ladder.covered_steps")                             \
    X(LadderForks, "ladder.forks")                                            \
    X(LadderRungs, "ladder.rungs")                                            \
    X(PipelineWorkloads, "pipeline.workloads")                                \
    X(ServeRequests, "serve.requests")                                        \
    X(ServeSubmissions, "serve.submissions")                                  \
    X(ServeUnitsCached, "serve.units_cached")                                 \
    X(ServeUnitsCompleted, "serve.units_completed")                           \
    X(ServeUnitsDispatched, "serve.units_dispatched")                         \
    X(ServeWorkerDeaths, "serve.worker_deaths")                               \
    X(ServeWorkerRestarts, "serve.worker_restarts")                           \
    X(SolverQueries, "sym.solver_queries")                                    \
    X(SymPathForks, "sym.path_forks")                                         \
    X(VerdictKWitnessHarmless, "verdicts.k_witness_harmless")                 \
    X(VerdictOutputDiffers, "verdicts.output_differs")                        \
    X(VerdictSingleOrdering, "verdicts.single_ordering")                      \
    X(VerdictSpecViolated, "verdicts.spec_violated")                          \
    X(VerdictUnclassified, "verdicts.unclassified")

/** Level gauges: merge = max (a shard reports the largest level it
 *  saw, so merge order cannot matter). */
#define PORTEND_OBS_GAUGES(X)                                                 \
    X(DecodedSites, "interp.decoded_sites")                                   \
    X(FuzzCorpusSize, "fuzz.corpus_size")

/** Log2-bucketed histograms: merge = bucket-wise sum. */
#define PORTEND_OBS_HISTS(X)                                                  \
    X(ClusterDistinct, "classify.cluster_distinct_schedules")                 \
    X(ClusterSteps, "classify.cluster_steps")                                 \
    X(InterpRunSteps, "interp.run_steps")

enum class Counter : std::size_t {
#define X(ident, name) ident,
    PORTEND_OBS_COUNTERS(X)
#undef X
};

enum class Gauge : std::size_t {
#define X(ident, name) ident,
    PORTEND_OBS_GAUGES(X)
#undef X
};

enum class Hist : std::size_t {
#define X(ident, name) ident,
    PORTEND_OBS_HISTS(X)
#undef X
};

#define X(ident, name) +1
inline constexpr std::size_t kNumCounters = PORTEND_OBS_COUNTERS(X);
inline constexpr std::size_t kNumGauges = PORTEND_OBS_GAUGES(X);
inline constexpr std::size_t kNumHists = PORTEND_OBS_HISTS(X);
#undef X

/** Histogram bucket b counts samples with bit_width(value) == b,
 *  i.e. bucket 0 is {0}, bucket b>0 is [2^(b-1), 2^b). */
inline constexpr std::size_t kHistBuckets = 64;

const char *counterName(Counter c);
const char *gaugeName(Gauge g);
const char *histName(Hist h);

// ---------------------------------------------------------------------------
// MetricsShard: one worker's (or one pipeline stage's) plain,
// unsynchronized accumulation. Shards are folded into each other in
// a deterministic order by the owner.
// ---------------------------------------------------------------------------

class MetricsShard
{
  public:
    void add(Counter c, std::uint64_t delta)
    {
        counters_[static_cast<std::size_t>(c)] += delta;
    }

    /** Gauge semantics: keep the largest level reported. */
    void level(Gauge g, std::uint64_t value)
    {
        auto &slot = gauges_[static_cast<std::size_t>(g)];
        if (value > slot)
            slot = value;
    }

    void observe(Hist h, std::uint64_t sample);

    /** Raw histogram fold — used when draining pre-bucketed data
     *  (Collector::drainInto) rather than observing fresh samples. */
    void addHistRaw(Hist h, std::size_t bucket, std::uint64_t n)
    {
        hist_buckets_[static_cast<std::size_t>(h)][bucket] += n;
    }
    void addHistMeta(Hist h, std::uint64_t count, std::uint64_t sum)
    {
        hist_count_[static_cast<std::size_t>(h)] += count;
        hist_sum_[static_cast<std::size_t>(h)] += sum;
    }

    /** Fold `other` into this shard (commutative + associative). */
    void merge(const MetricsShard &other);

    std::uint64_t counter(Counter c) const
    {
        return counters_[static_cast<std::size_t>(c)];
    }
    std::uint64_t gauge(Gauge g) const
    {
        return gauges_[static_cast<std::size_t>(g)];
    }
    std::uint64_t histCount(Hist h) const
    {
        return hist_count_[static_cast<std::size_t>(h)];
    }
    std::uint64_t histSum(Hist h) const
    {
        return hist_sum_[static_cast<std::size_t>(h)];
    }
    std::uint64_t histBucket(Hist h, std::size_t b) const
    {
        return hist_buckets_[static_cast<std::size_t>(h)][b];
    }

  private:
    std::array<std::uint64_t, kNumCounters> counters_{};
    std::array<std::uint64_t, kNumGauges> gauges_{};
    std::array<std::array<std::uint64_t, kHistBuckets>, kNumHists>
        hist_buckets_{};
    std::array<std::uint64_t, kNumHists> hist_count_{};
    std::array<std::uint64_t, kNumHists> hist_sum_{};
};

/**
 * Render a shard as the `portend-metrics-v1` JSON document: every
 * registered metric, table order, no timing and no worker-count
 * fields — the bytes are the determinism contract.
 */
std::string metricsJson(const MetricsShard &shard);

// ---------------------------------------------------------------------------
// Collector: the process-wide sink for layers that have no result
// struct to carry a shard through (the interpreter most of all).
// Counters are relaxed atomics — sums are commutative, so the drain
// is deterministic even though the bump order is not.
// ---------------------------------------------------------------------------

class Collector
{
  public:
    void add(Counter c, std::uint64_t delta)
    {
        counters_[static_cast<std::size_t>(c)].fetch_add(
            delta, std::memory_order_relaxed);
    }

    void level(Gauge g, std::uint64_t value)
    {
        auto &slot = gauges_[static_cast<std::size_t>(g)];
        std::uint64_t seen = slot.load(std::memory_order_relaxed);
        while (value > seen &&
               !slot.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
        {
        }
    }

    void observe(Hist h, std::uint64_t sample);

    /** Fold everything collected so far into `out` (non-destructive). */
    void drainInto(MetricsShard &out) const;

  private:
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters_{};
    std::array<std::atomic<std::uint64_t>, kNumGauges> gauges_{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHists>
        hist_buckets_{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_count_{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_sum_{};
};

/** The installed collector, or nullptr (the default: layer off). */
Collector *collector();

/** Install (or clear, with nullptr) the process-wide collector.
 *  Install before spawning workers; not synchronized with bumps. */
void setCollector(Collector *c);

// ---------------------------------------------------------------------------
// Progress: `--progress jsonl` sink. One JSON object per line, one
// line per emit(), mutex-serialized so concurrent workers never
// interleave bytes.
// ---------------------------------------------------------------------------

class Progress
{
  public:
    explicit Progress(std::ostream &os) : os_(os) {}

    /** Write one complete JSON-lines record (no trailing newline in
     *  `line`; emit appends it and flushes). */
    void emit(const std::string &line);

  private:
    std::ostream &os_;
    std::mutex mu_;
};

/** The installed progress sink, or nullptr. */
Progress *progress();

/** Install (or clear) the process-wide progress sink. */
void setProgress(Progress *p);

/** Convenience: emit `line` iff a progress sink is installed. */
void progressLine(const std::string &line);

} // namespace portend::obs

#endif // PORTEND_SUPPORT_OBSERVE_H
