#include "support/str.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace portend {

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
parseI64(const std::string &s, std::int64_t *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE)
        return false; // strtoll saturated: the value does not fit
    if (!end || end == s.c_str() || *end != '\0')
        return false;
    *out = static_cast<std::int64_t>(v);
    return true;
}

} // namespace portend
