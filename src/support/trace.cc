#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace portend::obs {

namespace {

std::atomic<Tracer *> g_tracer{nullptr};

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

/** Nanoseconds rendered as fractional microseconds ("12.345"), the
 *  unit Chrome trace events use for ts/dur. */
void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

} // namespace

Tracer *
tracer()
{
    return g_tracer.load(std::memory_order_relaxed);
}

void
setTracer(Tracer *t)
{
    g_tracer.store(t, std::memory_order_release);
}

Tracer::Tracer() : t0_ns_(steadyNanos()), wall_us_(wallUnixMicros())
{
    events_.reserve(4096);
}

int
Tracer::tidOf(std::thread::id id)
{
    auto it = tids_.find(id);
    if (it != tids_.end())
        return it->second;
    const int tid = next_tid_++;
    tids_.emplace(id, tid);
    return tid;
}

void
Tracer::complete(const char *cat, const char *name, std::uint64_t start_ns,
                 std::uint64_t end_ns, const Arg *args, std::size_t nargs)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= kMaxEvents)
    {
        dropped_ += 1;
        return;
    }
    Event ev;
    ev.cat = cat;
    ev.name = name;
    ev.ts_ns = start_ns >= t0_ns_ ? start_ns - t0_ns_ : 0;
    ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    ev.tid = tidOf(std::this_thread::get_id());
    ev.args.assign(args, args + nargs);
    events_.push_back(std::move(ev));
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::string
Tracer::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);

    // Spans complete (and are appended) in end-time order; sort by
    // start time so viewers and schema checks see each thread's
    // timeline in chronological order. stable_sort keeps equal-ts
    // events (parent/child starting together) in child-last order.
    std::vector<const Event *> ordered;
    ordered.reserve(events_.size());
    for (const Event &ev : events_)
        ordered.push_back(&ev);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event *a, const Event *b)
                     { return a->ts_ns < b->ts_ns; });

    std::string out;
    out.reserve(128 + ordered.size() * 120);
    out += "{\"traceEvents\": [\n";
    out += "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
           "\"args\": {\"name\": \"portend\"}}";
    for (const Event *ev : ordered)
    {
        out += ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": ";
        appendU64(out, static_cast<std::uint64_t>(ev->tid));
        out += ", \"ts\": ";
        appendMicros(out, ev->ts_ns);
        out += ", \"dur\": ";
        appendMicros(out, ev->dur_ns);
        out += ", \"cat\": \"";
        out += ev->cat;
        out += "\", \"name\": \"";
        out += ev->name;
        out += "\"";
        if (!ev->args.empty())
        {
            out += ", \"args\": {";
            for (std::size_t i = 0; i < ev->args.size(); ++i)
            {
                if (i)
                    out += ", ";
                out += "\"";
                out += ev->args[i].key;
                out += "\": ";
                char buf[24];
                std::snprintf(buf, sizeof buf, "%lld",
                              static_cast<long long>(ev->args[i].value));
                out += buf;
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
           "{\"trace_start_unix_us\": ";
    appendU64(out, wall_us_);
    out += ", \"dropped_events\": ";
    appendU64(out, dropped_);
    out += "}}\n";
    return out;
}

bool
Tracer::writeFile(const std::string &path, std::string *err) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
    {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    f << toJson();
    f.flush();
    if (!f)
    {
        if (err)
            *err = "short write to " + path;
        return false;
    }
    return true;
}

} // namespace portend::obs
