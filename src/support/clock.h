/**
 * @file
 * The repo's single timing source.
 *
 * Every duration in the codebase — stopwatches, span lengths, bench
 * trials, queue delays — must come from steadyNanos(), which is
 * monotonic and immune to NTP slews and clock steps. Wall-clock time
 * exists only for *timestamps* shown to humans (trace-file metadata,
 * log prefixes) and must never be subtracted to form a duration.
 *
 * This split is a determinism guardrail as much as a correctness
 * one: duration fields are the only nondeterministic values in the
 * pipeline's ledgers, so keeping them behind one named helper makes
 * it greppable that nothing else sneaks a clock read into exported
 * (byte-compared) output.
 */

#ifndef PORTEND_SUPPORT_CLOCK_H
#define PORTEND_SUPPORT_CLOCK_H

#include <chrono>
#include <cstdint>

namespace portend {

/** Monotonic nanoseconds since an arbitrary epoch (process-local).
 *  The only sanctioned source for durations. */
inline std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Seconds between two steadyNanos() readings. */
inline double
steadySeconds(std::uint64_t start_ns, std::uint64_t end_ns)
{
    return static_cast<double>(end_ns - start_ns) * 1e-9;
}

/** Wall-clock microseconds since the Unix epoch. Timestamps only:
 *  never subtract two readings to form a duration. */
inline std::uint64_t
wallUnixMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace portend

#endif // PORTEND_SUPPORT_CLOCK_H
