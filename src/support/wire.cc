#include "support/wire.h"

namespace portend::wire {

namespace {

const char kMagic[] = "psrv1";

/** Header lines are short by construction: magic + type + a decimal
 *  count. Anything longer is junk, not a slow header. */
constexpr std::size_t kMaxHeaderLen =
    sizeof(kMagic) + kMaxTypeLen + 24;

bool
typeChar(char c)
{
    return (c >= 'a' && c <= 'z') || c == '_';
}

} // namespace

bool
validFrameType(const std::string &type)
{
    if (type.empty() || type.size() > kMaxTypeLen)
        return false;
    for (char c : type)
        if (!typeChar(c))
            return false;
    return true;
}

std::string
encodeFrame(const Frame &f)
{
    std::string out = kMagic;
    out += ' ';
    out += f.type;
    out += ' ';
    out += std::to_string(f.payload.size());
    out += '\n';
    out += f.payload;
    return out;
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    if (failed_)
        return; // poisoned: resynchronization is impossible
    buf_.append(data, n);
}

std::optional<Frame>
FrameReader::next()
{
    if (failed_)
        return std::nullopt;

    const std::size_t lf = buf_.find('\n');
    if (lf == std::string::npos) {
        if (buf_.size() > kMaxHeaderLen) {
            failed_ = true;
            error_ = "frame header too long";
        }
        return std::nullopt;
    }

    // Parse "psrv1 <type> <bytes>" in place; any deviation poisons.
    auto poison = [this](const std::string &why) {
        failed_ = true;
        error_ = why;
        return std::nullopt;
    };
    const std::string header = buf_.substr(0, lf);
    if (header.size() > kMaxHeaderLen)
        return poison("frame header too long");
    std::size_t i = 0;
    for (const char *m = kMagic; *m; ++m, ++i)
        if (i >= header.size() || header[i] != *m)
            return poison("bad frame magic");
    if (i >= header.size() || header[i] != ' ')
        return poison("bad frame magic");
    ++i;
    std::string type;
    while (i < header.size() && typeChar(header[i]))
        type += header[i++];
    if (!validFrameType(type))
        return poison("bad frame type");
    if (i >= header.size() || header[i] != ' ')
        return poison("bad frame header");
    ++i;
    if (i >= header.size())
        return poison("missing payload size");
    std::size_t bytes = 0;
    for (; i < header.size(); ++i) {
        const char c = header[i];
        if (c < '0' || c > '9')
            return poison("bad payload size");
        bytes = bytes * 10 + static_cast<std::size_t>(c - '0');
        if (bytes > kMaxFramePayload)
            return poison("payload too large");
    }

    if (buf_.size() - (lf + 1) < bytes)
        return std::nullopt; // payload still in flight

    Frame f;
    f.type = std::move(type);
    f.payload = buf_.substr(lf + 1, bytes);
    buf_.erase(0, lf + 1 + bytes);
    return f;
}

} // namespace portend::wire
