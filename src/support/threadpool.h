/**
 * @file
 * Fixed-size worker thread pool.
 *
 * The execution backbone of the parallel classification engine: a
 * FIFO job queue drained by N worker threads. Jobs are submitted as
 * callables and observed through std::future, so exceptions thrown
 * inside a job surface at the caller's get(). Destruction drains the
 * queue — every job submitted before the destructor runs to
 * completion — then joins the workers, making scoped pools safe for
 * fork/join patterns without a separate wait primitive.
 *
 * The pool is deliberately dumb: no priorities, no work stealing, no
 * dynamic sizing. Determinism of results is the *caller's* contract
 * (portend's scheduler merges verdicts by cluster index, never by
 * completion order), so the pool only promises that each job runs
 * exactly once on some worker.
 */

#ifndef PORTEND_SUPPORT_THREADPOOL_H
#define PORTEND_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace portend {

/**
 * Fixed-size FIFO thread pool.
 */
class ThreadPool
{
  public:
    /**
     * Spawn the workers.
     *
     * @param threads worker count; values < 1 are clamped to 1
     */
    explicit ThreadPool(int threads);

    /** Drains all queued jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers.size()); }

    /**
     * Enqueue a job; jobs start in submission (FIFO) order.
     *
     * @return future for the job's result; get() rethrows any
     *         exception the job raised
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu);
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /**
     * Usable hardware threads; always >= 1 even when the runtime
     * cannot tell (std::thread::hardware_concurrency() returns 0).
     */
    static int hardwareConcurrency();

    /**
     * The one definition of the jobs dial: a positive request is
     * taken as-is, anything else means one worker per hardware
     * thread.
     */
    static int
    resolveJobs(int requested)
    {
        return requested > 0 ? requested : hardwareConcurrency();
    }

    /**
     * Fork/join helper: run a body over every index in [0, n_items)
     * on up to @p n_workers workers claiming indices from a shared
     * cursor (no per-item ordering guarantee; use disjoint output
     * slots indexed by item).
     *
     * @param make_worker invoked once per worker to build its
     *        per-index body, so workers can own private state (e.g.
     *        one RaceAnalyzer) reused across the items they claim
     *
     * With one effective worker the bodies run inline on the calling
     * thread, no pool spawned. A body's exception propagates to the
     * caller after all workers finish.
     */
    static void
    parallelFor(int n_workers, std::size_t n_items,
                const std::function<std::function<void(std::size_t)>()>
                    &make_worker);

  private:
    /** Worker body: pop and run jobs until stopped and drained. */
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace portend

#endif // PORTEND_SUPPORT_THREADPOOL_H
