/**
 * @file
 * Subprocess supervision for the serve layer: fork a worker child
 * connected by a socketpair, reap and respawn it when it dies, and
 * push/pull bytes over its channel.
 *
 * The spawn model is fork-without-exec: the child runs a callback in
 * the same binary and `_exit`s with its return value. That keeps
 * workers free of any argv/binary-path plumbing, but it puts one
 * hard rule on callers: *spawn only from a single-threaded process*
 * (the serve event loop is single-threaded by design) — forking a
 * multithreaded process can clone held locks.
 *
 * The supervision contract lives one layer up (src/serve/): this
 * module only gives it honest primitives — a spawn that cannot
 * half-succeed, a non-blocking reap that never lies about liveness,
 * and a kill that escalates to SIGKILL on request.
 */

#ifndef PORTEND_SUPPORT_SUBPROC_H
#define PORTEND_SUPPORT_SUBPROC_H

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

namespace portend::sub {

/** One spawned child and the parent's end of its channel. */
struct Child
{
    long pid = -1; ///< child process id (-1 = not running)
    int fd = -1;   ///< parent end of the socketpair (-1 = closed)

    bool running() const { return pid > 0; }
};

/**
 * Fork a child running `child_main(fd)` over one end of a fresh
 * socketpair; the parent keeps the other end in the returned Child.
 * The child never returns here — it `_exit`s with child_main's
 * return value. nullopt with @p error when the pair or fork fails.
 */
std::optional<Child> spawn(const std::function<int(int fd)> &child_main,
                           std::string *error = nullptr);

/**
 * Non-blocking reap: true when the child has exited (or was killed),
 * in which case its pid is collected, @p exit_status_out (when
 * non-null) receives the raw waitpid status, and c.pid is reset.
 * False while it is still running.
 */
bool reap(Child &c, int *exit_status_out = nullptr);

/** Send @p sig to the child (no-op when not running). */
void kill(const Child &c, int sig);

/** Blocking reap: kill(SIGTERM), wait; escalate to SIGKILL after
 *  @p grace_seconds if it has not exited. Closes the channel fd. */
void terminate(Child &c, double grace_seconds = 2.0);

/** Close the parent's channel end (idempotent). */
void closeChannel(Child &c);

/** Write all @p n bytes to @p fd, retrying on EINTR/short writes;
 *  false on any hard error (EPIPE most of all). */
bool writeAll(int fd, const char *data, std::size_t n);

/** One read(2) into @p buf, retrying on EINTR. Returns bytes read,
 *  0 on EOF, -1 on hard error. */
long readSome(int fd, char *buf, std::size_t n);

} // namespace portend::sub

#endif // PORTEND_SUPPORT_SUBPROC_H
