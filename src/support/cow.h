/**
 * @file
 * Copy-on-write box for checkpoint-heavy value types.
 *
 * Portend's checkpoint primitive is "copy the VmState"; before this
 * header that copy was a deep copy of every container. Cow<T> makes
 * the copy structural sharing instead: copies alias one immutable
 * payload, readers go through ro()/operator->, and the first writer
 * after a share pays for exactly one clone (the write barrier).
 * Checkpoints that are never resumed therefore cost O(1), and a
 * resumed fork pays O(touched state), never O(whole state).
 *
 * Thread compatibility contract (what keeps the scheduler TSan-clean):
 *
 *  - A Cow value is mutated (rw()) only by the thread that owns the
 *    enclosing object (a worker's private VmState).
 *  - Shared checkpoints (ladder rungs, executor worklist entries)
 *    are read-only; concurrent threads may *copy* them — copying
 *    only touches the shared_ptr control block, whose reference
 *    count is atomic.
 *  - rw() mutates in place only when use_count() == 1. That test is
 *    reliable here because the only cross-thread references are the
 *    long-lived read-only checkpoints above: while one exists the
 *    count stays > 1 and the writer clones; the count can reach 1
 *    again only via destruction ordered by a pool join.
 */

#ifndef PORTEND_SUPPORT_COW_H
#define PORTEND_SUPPORT_COW_H

#include <memory>
#include <utility>

namespace portend {

/**
 * A value of T behind a shared immutable payload with a write
 * barrier. Copying a Cow shares; rw() unshares.
 */
template <typename T>
class Cow
{
  public:
    Cow() : p(std::make_shared<T>()) {}
    explicit Cow(T v) : p(std::make_shared<T>(std::move(v))) {}

    Cow(const Cow &) = default;
    Cow(Cow &&) = default;
    Cow &operator=(const Cow &) = default;
    Cow &operator=(Cow &&) = default;

    /** Read-only view of the payload. */
    const T &ro() const { return *p; }
    const T &operator*() const { return *p; }
    const T *operator->() const { return p.get(); }

    /**
     * Mutable view; clones the payload first when it is shared (the
     * write barrier). See the header comment for the threading
     * contract behind the use_count() test.
     */
    T &
    rw()
    {
        if (p.use_count() != 1)
            p = std::make_shared<T>(*p);
        return *p;
    }

    /** True when both boxes alias the same payload (tests/bench). */
    bool sharedWith(const Cow &o) const { return p == o.p; }

    /** True when this box is the payload's only owner (an rw() call
     *  would mutate in place rather than clone). */
    bool unique() const { return p.use_count() == 1; }

  private:
    std::shared_ptr<T> p;
};

} // namespace portend

#endif // PORTEND_SUPPORT_COW_H
