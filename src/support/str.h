/**
 * @file
 * Small string helpers shared across modules.
 */

#ifndef PORTEND_SUPPORT_STR_H
#define PORTEND_SUPPORT_STR_H

#include <cstdint>
#include <string>
#include <vector>

namespace portend {

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p s on character @p sep (no empty-token suppression). */
std::vector<std::string> split(const std::string &s, char sep);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** Render a double with @p decimals fractional digits. */
std::string fmtDouble(double v, int decimals = 2);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Parse a signed decimal 64-bit integer with full range checking:
 * rejects empty input, trailing junk, and — unlike a bare strtoll —
 * values outside [INT64_MIN, INT64_MAX] (strtoll saturates those and
 * only reports them through errno, which callers routinely forget to
 * check). Returns false without touching @p out on any rejection.
 */
bool parseI64(const std::string &s, std::int64_t *out);

} // namespace portend

#endif // PORTEND_SUPPORT_STR_H
