/**
 * @file
 * Systematic post-race schedule exploration.
 *
 * Portend's stage 3 multiplies witnesses by running Ma alternate
 * executions per primary path. Sampling those schedules from a
 * seeded RNG silently burns budget on duplicate and
 * Mazurkiewicz-equivalent interleavings; the ScheduleExplorer
 * replaces sampling with a systematic enumerator in the spirit of
 * dynamic partial-order reduction:
 *
 *  - every issued schedule is replayable: an explicit decision
 *    prefix applied by rt::GuidedPolicy, completed by a
 *    deterministic fallback;
 *  - each executed schedule is canonicalized to its Foata normal
 *    form over the observed dependence relation
 *    (canonicalSignature), so equivalent interleavings collapse
 *    onto one signature and the budget counts *distinct* classes;
 *  - new candidates come from DPOR-style backtracking: for every
 *    pair of conflicting accesses by different threads, reschedule
 *    the later thread at the decision point that ran the earlier
 *    one (or, when it was not yet enabled there, every other
 *    enabled thread — the persistent-set fallback rule), bounded by
 *    a preemption budget and pruned sleep-set style (a decision
 *    prefix is never issued twice).
 *
 * Mode contract (relied on by the fuzz oracle's monotonicity
 * checks): in Dpor mode the explorer first issues exactly the
 * schedules Random mode would issue, with the same seeds and in the
 * same order, and only then its systematic candidates. A Dpor run
 * therefore explores a superset of the Random run's behaviors at
 * equal budget: switching random -> dpor can move a verdict from
 * "k-witness harmless" toward "output differs"/"spec violated",
 * never the reverse.
 *
 * The explorer is pure bookkeeping — it never executes anything and
 * is deterministic given the observations fed back to it, which is
 * why exploration results are byte-identical across --jobs values
 * and across sanitizer builds.
 */

#ifndef PORTEND_EXPLORE_EXPLORER_H
#define PORTEND_EXPLORE_EXPLORER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rt/policy.h"

namespace portend::explore {

/** How stage 3 chooses post-race schedules. */
enum class ExploreMode : std::uint8_t {
    Random, ///< legacy seeded sampling (Ma runs, duplicates allowed)
    Dpor,   ///< the Random schedules, then systematic backtracking
            ///< until Ma *distinct* interleavings were witnessed
};

/** Printable mode name (CLI spelling). */
const char *exploreModeName(ExploreMode m);

/**
 * One post-race schedule to execute.
 *
 * Exactly one shape per kind:
 *  - Trace: deterministically keep following the recorded trace
 *    (stage 1's single-alternate; never issued by an explorer);
 *  - Random: seed the state RNG and sample every decision;
 *  - Guided: apply @p prefix at successive post-race decision
 *    points, then a deterministic rotate fallback.
 */
struct PostSpec
{
    enum class Kind : std::uint8_t { Trace, Random, Guided };

    Kind kind = Kind::Trace;
    std::uint64_t seed = 0;             ///< Random only
    std::vector<rt::ThreadId> prefix;   ///< Guided only

    static PostSpec
    trace()
    {
        return PostSpec{};
    }

    static PostSpec
    random(std::uint64_t seed)
    {
        PostSpec s;
        s.kind = Kind::Random;
        s.seed = seed;
        return s;
    }

    static PostSpec
    guided(std::vector<rt::ThreadId> prefix)
    {
        PostSpec s;
        s.kind = Kind::Guided;
        s.prefix = std::move(prefix);
        return s;
    }
};

/**
 * Foata normal form of an observed schedule: events are layered by
 * their dependence depth and sorted within a layer (layer members
 * are pairwise independent, so the order is representation, not
 * behavior). Two executions get equal signatures iff their access
 * sequences are Mazurkiewicz-trace equivalent — reorderings of
 * independent accesses collapse, reorderings of conflicting
 * accesses do not.
 */
std::string canonicalSignature(const rt::ScheduleObservation &obs);

/** FNV-1a digest of canonicalSignature, as 16 lowercase hex chars
 *  (the compact form stored in evidence and printed in reports). */
std::string signatureHash(const rt::ScheduleObservation &obs);

/** Explorer configuration. */
struct ExplorerOptions
{
    ExploreMode mode = ExploreMode::Dpor;

    /**
     * Schedule budget (the CLI's Ma): in Random mode the number of
     * runs; in Dpor mode the number of *distinct* interleavings to
     * collect before stopping.
     */
    int budget = 2;

    /**
     * Hard cap on executed runs in Dpor mode, so a space with fewer
     * classes than the budget terminates. 0 = 4 * budget + 4.
     */
    int max_runs = 0;

    /**
     * Maximum injected preemptions per systematic candidate (each
     * backtrack adds one); candidates at the bound are run but not
     * expanded further.
     */
    int preemption_bound = 4;

    /** Random-phase seeds are seed_base + 1, seed_base + 2, ... */
    std::uint64_t seed_base = 0;

    /**
     * Issue the Random-mode schedules before systematic candidates
     * (the Dpor superset contract above). Tests disable this to
     * measure pure systematic coverage.
     */
    bool random_first = true;

    /**
     * Signature hashes already witnessed by earlier explorers (the
     * per-path budgeting used by multi-path analysis: each path's
     * explorer inherits its predecessors' classes, so distinct()
     * counts only globally-new interleaving classes and the budget
     * is shared across paths instead of multiplied by them).
     */
    std::set<std::string> known;
};

/**
 * Issues schedules via next() and learns from observations via
 * record(); see the file comment for the exploration strategy.
 *
 * Protocol: strictly alternate next() / record(obs) (record may be
 * skipped for runs that never reached the post-race phase — they
 * teach nothing and count as no class).
 */
class ScheduleExplorer
{
  public:
    explicit ScheduleExplorer(ExplorerOptions opts);

    /**
     * The next schedule to execute, or nullopt when the budget is
     * met, the run cap is hit, or the candidate space is exhausted.
     */
    std::optional<PostSpec> next();

    /**
     * Feed back what the schedule issued by the last next() did.
     *
     * @return true when the run realized a class no earlier run of
     *         this explorer had witnessed (a *distinct* schedule)
     */
    bool record(const rt::ScheduleObservation &obs);

    /** Distinct equivalence classes witnessed so far. */
    int distinct() const { return distinct_; }

    /** Runs issued so far. */
    int runs() const { return runs_; }

    /** Signature hash computed by the most recent record(). */
    const std::string &lastSignature() const { return last_sig_; }

    /** True when next() returned nullopt with budget remaining
     *  because the candidate space was exhausted. */
    bool exhausted() const { return exhausted_; }

    /** All signature hashes witnessed (sorted; for tests/benches). */
    const std::set<std::string> &signatures() const { return seen_; }

  private:
    /** One not-yet-executed systematic schedule. */
    struct Candidate
    {
        std::vector<rt::ThreadId> prefix;
        int preemptions = 0;
    };

    /** Grow the frontier from one observed run. */
    void expand(const rt::ScheduleObservation &obs, int base_preempt);

    /** Enqueue a candidate unless its prefix was issued before. */
    void push(std::vector<rt::ThreadId> prefix, int preemptions);

    ExplorerOptions opts;
    std::deque<Candidate> frontier;
    std::set<std::vector<rt::ThreadId>> issued_;
    std::set<std::string> seen_;
    std::string last_sig_;
    int random_issued_ = 0;
    int runs_ = 0;
    int distinct_ = 0;
    int last_preemptions_ = 0;
    bool exhausted_ = false;
};

} // namespace portend::explore

#endif // PORTEND_EXPLORE_EXPLORER_H
