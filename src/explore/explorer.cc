#include "explore/explorer.h"

#include <algorithm>
#include <cstdio>

#include "support/hash.h"
#include "support/observe.h"
#include "support/trace.h"

namespace portend::explore {

const char *
exploreModeName(ExploreMode m)
{
    switch (m) {
      case ExploreMode::Random:
        return "random";
      case ExploreMode::Dpor:
        return "dpor";
    }
    return "?";
}

std::string
canonicalSignature(const rt::ScheduleObservation &obs)
{
    using Access = rt::ScheduleObservation::Access;
    const std::vector<Access> &ev = obs.accesses;

    // Foata layering: an event's level is one past the deepest event
    // it depends on. Events sharing a level are pairwise independent
    // by construction, so sorting a level is pure canonicalization.
    std::vector<int> level(ev.size(), 0);
    for (std::size_t i = 0; i < ev.size(); ++i) {
        int lv = 0;
        for (std::size_t j = 0; j < i; ++j) {
            if (rt::ScheduleObservation::dependent(ev[j], ev[i]))
                lv = std::max(lv, level[j] + 1);
        }
        level[i] = lv;
    }

    struct Key
    {
        int level;
        rt::ThreadId tid;
        int site;
        bool write;

        bool
        operator<(const Key &o) const
        {
            if (level != o.level)
                return level < o.level;
            if (tid != o.tid)
                return tid < o.tid;
            if (site != o.site)
                return site < o.site;
            return write < o.write;
        }
    };
    std::vector<Key> keys;
    keys.reserve(ev.size());
    for (std::size_t i = 0; i < ev.size(); ++i)
        keys.push_back({level[i], ev[i].tid, ev[i].site, ev[i].write});
    std::sort(keys.begin(), keys.end());

    std::string out;
    out.reserve(keys.size() * 10);
    int cur = -1;
    for (const Key &k : keys) {
        if (k.level != cur) {
            if (cur >= 0)
                out += '|';
            cur = k.level;
        } else {
            out += ',';
        }
        out += 't' + std::to_string(k.tid) + (k.write ? "w" : "r") +
               std::to_string(k.site);
    }
    return out;
}

std::string
signatureHash(const rt::ScheduleObservation &obs)
{
    const std::string sig = canonicalSignature(obs);
    const std::uint64_t h = fnv1a(sig);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

ScheduleExplorer::ScheduleExplorer(ExplorerOptions o) : opts(o)
{
    if (opts.max_runs <= 0)
        opts.max_runs = opts.budget * 4 + 4;
    // Pre-seed classes witnessed by earlier explorers so distinct_
    // only counts globally-new ones (per-path budget sharing).
    seen_ = opts.known;
    if (opts.mode == ExploreMode::Dpor) {
        // The systematic baseline: no injected preemptions, pure
        // deterministic fallback. Runs after the random phase.
        push({}, 0);
    }
}

std::optional<PostSpec>
ScheduleExplorer::next()
{
    if (opts.mode == ExploreMode::Random) {
        // Legacy sampling: exactly `budget` runs, duplicates and all.
        if (runs_ >= opts.budget)
            return std::nullopt;
        runs_ += 1;
        random_issued_ += 1;
        last_preemptions_ = 0;
        return PostSpec::random(opts.seed_base + random_issued_);
    }

    // Dpor: the full random phase always runs (the superset
    // contract), so a verdict decided there is decided identically
    // in both modes; only then do budget and cap apply.
    if (opts.random_first && random_issued_ < opts.budget) {
        runs_ += 1;
        random_issued_ += 1;
        last_preemptions_ = 0;
        return PostSpec::random(opts.seed_base + random_issued_);
    }
    if (distinct_ >= opts.budget || runs_ >= opts.max_runs)
        return std::nullopt;
    if (frontier.empty()) {
        exhausted_ = true;
        return std::nullopt;
    }
    Candidate c = std::move(frontier.front());
    frontier.pop_front();
    runs_ += 1;
    last_preemptions_ = c.preemptions;
    return PostSpec::guided(std::move(c.prefix));
}

bool
ScheduleExplorer::record(const rt::ScheduleObservation &obs)
{
    // The span covers expand(): DPOR backtrack-candidate generation
    // is the quadratic part worth seeing in a trace. (Fully
    // qualified: the observation parameter shadows the obs
    // namespace here.)
    ::portend::obs::Span span("explore", "record");
    last_sig_ = signatureHash(obs);
    const bool fresh = seen_.insert(last_sig_).second;
    if (fresh)
        distinct_ += 1;
    const std::size_t frontier0 = frontier.size();
    if (opts.mode == ExploreMode::Dpor &&
        last_preemptions_ < opts.preemption_bound) {
        expand(obs, last_preemptions_);
    }
    span.arg("fresh", fresh ? 1 : 0);
    span.arg("candidates",
             static_cast<std::int64_t>(frontier.size() - frontier0));
    if (auto *c = ::portend::obs::collector()) {
        using ::portend::obs::Counter;
        c->add(Counter::ExploreRecorded, 1);
        c->add(Counter::ExploreDistinct, fresh ? 1 : 0);
        c->add(Counter::ExploreCandidates, frontier.size() - frontier0);
    }
    return fresh;
}

void
ScheduleExplorer::push(std::vector<rt::ThreadId> prefix, int preemptions)
{
    if (!issued_.insert(prefix).second)
        return; // sleep-set pruning: one execution per prefix, ever
    frontier.push_back({std::move(prefix), preemptions});
}

void
ScheduleExplorer::expand(const rt::ScheduleObservation &obs,
                         int base_preempt)
{
    using Access = rt::ScheduleObservation::Access;
    const std::vector<Access> &ev = obs.accesses;
    // Guard against pathological runs (spin loops under a random
    // schedule): candidate generation is quadratic in the window.
    const std::size_t window = std::min<std::size_t>(ev.size(), 512);

    for (std::size_t j = 1; j < window; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            const Access &a = ev[i];
            const Access &b = ev[j];
            if (a.tid == b.tid || a.pick < 0)
                continue;
            if (a.site != b.site || !(a.write || b.write))
                continue;

            // Backtrack: at the decision that ran `a`, run `b`'s
            // thread instead — repeatedly, until it has executed
            // its conflicting access — flipping the pair in one
            // injected preemption (a chunk; a single rescheduled
            // step followed by the fair fallback almost never
            // realizes a distant flip). When b's thread was not
            // enabled there (blocked on a lock, not yet created),
            // fall back to every other enabled choice — the classic
            // persistent-set widening.
            const std::size_t p = static_cast<std::size_t>(a.pick);
            if (p >= obs.picks.size() || p >= obs.enabled.size())
                continue;
            std::vector<rt::ThreadId> base(obs.picks.begin(),
                                           obs.picks.begin() +
                                               static_cast<long>(p));
            const std::vector<rt::ThreadId> &en = obs.enabled[p];
            const bool b_enabled =
                std::find(en.begin(), en.end(), b.tid) != en.end();
            if (b_enabled) {
                // One pick per pending b-segment up to (and
                // including) the conflicting access itself.
                int chunk = 1;
                for (std::size_t k = 0; k < j; ++k) {
                    if (ev[k].tid == b.tid && ev[k].pick >= a.pick)
                        chunk += 1;
                }
                std::vector<rt::ThreadId> child = base;
                child.insert(child.end(),
                             static_cast<std::size_t>(chunk), b.tid);
                push(std::move(child), base_preempt + 1);
            } else {
                for (rt::ThreadId t : en) {
                    if (t == obs.picks[p])
                        continue;
                    std::vector<rt::ThreadId> child = base;
                    child.push_back(t);
                    push(std::move(child), base_preempt + 1);
                }
            }
        }
    }
}

} // namespace portend::explore
