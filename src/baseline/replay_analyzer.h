/**
 * @file
 * Record/Replay-Analyzer baseline [45] (Narayanasamy et al., PLDI'07).
 *
 * The state-of-the-art classifier the paper compares against
 * (§2.1, §5.4). Given a recorded execution and a race, it re-runs
 * the execution while enforcing the alternate ordering of the racing
 * accesses and compares the *concrete state* (memory image)
 * immediately after the race:
 *
 *  - replay failure (the alternate cannot be enforced, e.g. ad-hoc
 *    synchronization diverges the replay) => classified HARMFUL
 *    (this conservatism is the source of its 74% false-positive
 *    rate on harmful-race classification);
 *  - post-race states differ => likely harmful;
 *  - post-race states equal  => likely harmless.
 *
 * It performs no multi-path exploration, no multi-schedule
 * exploration, and no output comparison.
 */

#ifndef PORTEND_BASELINE_REPLAY_ANALYZER_H
#define PORTEND_BASELINE_REPLAY_ANALYZER_H

#include <string>

#include "ir/program.h"
#include "race/report.h"
#include "replay/trace.h"

namespace portend::baseline {

/** Verdict of the Record/Replay-Analyzer. */
enum class ReplayVerdict : std::uint8_t {
    LikelyHarmful,  ///< states differed or replay failed
    LikelyHarmless, ///< states matched
    NotApplicable,  ///< race not reproducible in replay at all
};

/** Printable verdict name. */
const char *replayVerdictName(ReplayVerdict v);

/** Detailed result. */
struct ReplayAnalysis
{
    ReplayVerdict verdict = ReplayVerdict::NotApplicable;
    bool replay_failed = false;  ///< alternate not enforceable
    bool states_differ = false;  ///< memory diff after the race
    std::string detail;
};

/**
 * The baseline classifier.
 */
class ReplayAnalyzer
{
  public:
    explicit ReplayAnalyzer(const ir::Program &prog,
                            std::uint64_t max_steps = 2000000)
        : prog(prog), max_steps(max_steps)
    {}

    /** Classify @p race against the recorded @p trace. */
    ReplayAnalysis analyze(const race::RaceReport &race,
                           const replay::ScheduleTrace &trace);

  private:
    const ir::Program &prog;
    std::uint64_t max_steps;
};

} // namespace portend::baseline

#endif // PORTEND_BASELINE_REPLAY_ANALYZER_H
