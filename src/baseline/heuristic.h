/**
 * @file
 * DataCollider-style heuristic pruner [29].
 *
 * Recognizes syntactic patterns that usually indicate harmless
 * races — statistics-counter updates, same-constant redundant
 * writes, disjoint-bit manipulation — and prunes matching reports
 * as "likely harmless". As the paper notes (§2.1), such heuristics
 * can be wrong in both directions; this implementation exists as an
 * ablation baseline.
 */

#ifndef PORTEND_BASELINE_HEURISTIC_H
#define PORTEND_BASELINE_HEURISTIC_H

#include "ir/program.h"
#include "race/report.h"

namespace portend::baseline {

/** Verdict of the heuristic pruner. */
enum class HeuristicVerdict : std::uint8_t {
    LikelyHarmless, ///< matched a benign pattern
    NotClassified,  ///< no pattern matched
};

/** Printable verdict name. */
const char *heuristicVerdictName(HeuristicVerdict v);

/** Which pattern matched (for reporting). */
enum class BenignPattern : std::uint8_t {
    None,
    StatisticsCounter, ///< load-add-store increment of a global
    RedundantWrite,    ///< both sides store the same constant
    DisjointBits,      ///< bitwise OR/AND of non-overlapping masks
};

/** Printable pattern name. */
const char *benignPatternName(BenignPattern p);

/** Result with matched pattern. */
struct HeuristicResult
{
    HeuristicVerdict verdict = HeuristicVerdict::NotClassified;
    BenignPattern pattern = BenignPattern::None;
};

/**
 * Pattern-based race pruner.
 */
class HeuristicClassifier
{
  public:
    explicit HeuristicClassifier(const ir::Program &prog)
        : prog(prog)
    {}

    /** Classify one race report. */
    HeuristicResult classify(const race::RaceReport &race) const;

  private:
    const ir::Program &prog;
};

} // namespace portend::baseline

#endif // PORTEND_BASELINE_HEURISTIC_H
