#include "baseline/heuristic.h"

#include <optional>

namespace portend::baseline {

const char *
heuristicVerdictName(HeuristicVerdict v)
{
    switch (v) {
      case HeuristicVerdict::LikelyHarmless: return "likely harmless";
      case HeuristicVerdict::NotClassified: return "not classified";
    }
    return "?";
}

const char *
benignPatternName(BenignPattern p)
{
    switch (p) {
      case BenignPattern::None: return "none";
      case BenignPattern::StatisticsCounter: return "stats-counter";
      case BenignPattern::RedundantWrite: return "redundant-write";
      case BenignPattern::DisjointBits: return "disjoint-bits";
    }
    return "?";
}

namespace {

/** Locate the instruction at linear pc, or null. */
const ir::Inst *
instAt(const ir::Program &prog, int pc)
{
    if (pc < 0 || pc >= prog.numInsts())
        return nullptr;
    return &prog.instAt(pc);
}

/**
 * Is the store at @p pc part of a load-add-store increment of the
 * same global (a statistics-counter update)?
 */
bool
isCounterIncrement(const ir::Program &prog, int pc)
{
    const ir::Inst *store = instAt(prog, pc);
    if (!store || store->op != ir::Op::Store || !store->b.isReg())
        return false;
    // Search the enclosing block backwards: value must come from
    // Bin(Add, load(g), const).
    ir::Program::PcLoc loc = prog.pcLoc(pc);
    const auto &insts =
        prog.functions[loc.func].blocks[loc.block].insts;
    ir::Reg val = store->b.reg;
    for (int i = loc.index - 1; i >= 0; --i) {
        const ir::Inst &inst = insts[i];
        if (inst.dst != val)
            continue;
        if (inst.op != ir::Op::Bin ||
            inst.kind != sym::ExprKind::Add) {
            return false;
        }
        // One operand must be a load of the same global.
        for (const ir::Operand *o : {&inst.a, &inst.b}) {
            if (!o->isReg())
                continue;
            for (int j = i - 1; j >= 0; --j) {
                const ir::Inst &def = insts[j];
                if (def.dst != o->reg)
                    continue;
                if (def.op == ir::Op::Load &&
                    def.gid == store->gid) {
                    return true;
                }
                break;
            }
        }
        return false;
    }
    return false;
}

/** Constant stored by the instruction at @p pc (if a const store). */
std::optional<std::int64_t>
storedConstant(const ir::Program &prog, int pc)
{
    const ir::Inst *store = instAt(prog, pc);
    if (!store || store->op != ir::Op::Store)
        return std::nullopt;
    if (store->b.isImm())
        return store->b.imm;
    if (!store->b.isReg())
        return std::nullopt;
    ir::Program::PcLoc loc = prog.pcLoc(pc);
    const auto &insts =
        prog.functions[loc.func].blocks[loc.block].insts;
    for (int i = loc.index - 1; i >= 0; --i) {
        const ir::Inst &inst = insts[i];
        if (inst.dst != store->b.reg)
            continue;
        if (inst.op == ir::Op::ConstOp)
            return inst.a.imm;
        return std::nullopt;
    }
    return std::nullopt;
}

/** Bit mask OR-ed into the global by the access at @p pc, if any. */
std::optional<std::int64_t>
orMask(const ir::Program &prog, int pc)
{
    const ir::Inst *store = instAt(prog, pc);
    if (!store || store->op != ir::Op::Store || !store->b.isReg())
        return std::nullopt;
    ir::Program::PcLoc loc = prog.pcLoc(pc);
    const auto &insts =
        prog.functions[loc.func].blocks[loc.block].insts;
    for (int i = loc.index - 1; i >= 0; --i) {
        const ir::Inst &inst = insts[i];
        if (inst.dst != store->b.reg)
            continue;
        if (inst.op == ir::Op::Bin &&
            inst.kind == sym::ExprKind::Or && inst.b.isImm()) {
            return inst.b.imm;
        }
        return std::nullopt;
    }
    return std::nullopt;
}

} // namespace

HeuristicResult
HeuristicClassifier::classify(const race::RaceReport &race) const
{
    HeuristicResult r;

    // Statistics counter: a racing increment.
    if ((race.first.is_write && isCounterIncrement(prog, race.first.pc)) ||
        (race.second.is_write &&
         isCounterIncrement(prog, race.second.pc))) {
        r.verdict = HeuristicVerdict::LikelyHarmless;
        r.pattern = BenignPattern::StatisticsCounter;
        return r;
    }

    // Redundant writes of the same constant.
    if (race.first.is_write && race.second.is_write) {
        auto c1 = storedConstant(prog, race.first.pc);
        auto c2 = storedConstant(prog, race.second.pc);
        if (c1 && c2 && *c1 == *c2) {
            r.verdict = HeuristicVerdict::LikelyHarmless;
            r.pattern = BenignPattern::RedundantWrite;
            return r;
        }
        // Disjoint bit manipulation.
        auto m1 = orMask(prog, race.first.pc);
        auto m2 = orMask(prog, race.second.pc);
        if (m1 && m2 && (*m1 & *m2) == 0) {
            r.verdict = HeuristicVerdict::LikelyHarmless;
            r.pattern = BenignPattern::DisjointBits;
            return r;
        }
    }
    return r;
}

} // namespace portend::baseline
