/**
 * @file
 * Ad-hoc-synchronization detector baselines (Helgrind+ [27] and
 * Ad-Hoc-Detector [55]).
 *
 * These tools prune race reports caused by ad-hoc synchronization:
 * they recognize spin-wait loops on shared flags and declare races
 * on those flags "single ordering". They classify nothing else —
 * races that are not ad-hoc synchronization are left unclassified
 * (paper §5.4 Table 5).
 *
 * The recognition here is a static pattern analysis on PIL: a loop
 * whose exit condition is fed by a load of a global that the loop
 * body never writes and that contains no blocking synchronization
 * is a spin-wait on that global.
 */

#ifndef PORTEND_BASELINE_ADHOC_DETECTOR_H
#define PORTEND_BASELINE_ADHOC_DETECTOR_H

#include <set>

#include "ir/program.h"
#include "race/report.h"

namespace portend::baseline {

/** Verdict of an ad-hoc-synchronization pruner. */
enum class AdhocVerdict : std::uint8_t {
    SingleOrdering, ///< race is on a recognized spin-wait flag
    NotClassified,  ///< tool has nothing to say about this race
};

/** Printable verdict name. */
const char *adhocVerdictName(AdhocVerdict v);

/**
 * Static spin-loop recognizer.
 */
class AdhocDetector
{
  public:
    /** Analyze @p prog once; verdicts are then O(1) per race. */
    explicit AdhocDetector(const ir::Program &prog);

    /** Classify one race report. */
    AdhocVerdict classify(const race::RaceReport &race) const;

    /** Globals recognized as spin-wait flags. */
    const std::set<ir::GlobalId> &spinFlags() const { return flags; }

  private:
    const ir::Program &prog;
    std::set<ir::GlobalId> flags;
};

} // namespace portend::baseline

#endif // PORTEND_BASELINE_ADHOC_DETECTOR_H
