#include "baseline/adhoc_detector.h"

namespace portend::baseline {

const char *
adhocVerdictName(AdhocVerdict v)
{
    switch (v) {
      case AdhocVerdict::SingleOrdering: return "single ordering";
      case AdhocVerdict::NotClassified: return "not classified";
    }
    return "?";
}

namespace {

/**
 * Trace the defining chain of @p reg backwards through @p insts
 * (starting at index @p from) and collect globals whose loads feed
 * it. Follows Mov/Bin/Un/Select chains within the block.
 */
void
collectConditionLoads(const std::vector<ir::Inst> &insts, int from,
                      ir::Reg reg, std::set<ir::GlobalId> &out,
                      int depth = 0)
{
    if (depth > 16 || reg < 0)
        return;
    for (int i = from; i >= 0; --i) {
        const ir::Inst &inst = insts[i];
        if (inst.dst != reg)
            continue;
        switch (inst.op) {
          case ir::Op::Load:
            out.insert(inst.gid);
            return;
          case ir::Op::Mov:
          case ir::Op::Un:
            if (inst.a.isReg()) {
                collectConditionLoads(insts, i - 1, inst.a.reg, out,
                                      depth + 1);
            }
            return;
          case ir::Op::Bin:
          case ir::Op::Select:
            if (inst.a.isReg()) {
                collectConditionLoads(insts, i - 1, inst.a.reg, out,
                                      depth + 1);
            }
            if (inst.b.isReg()) {
                collectConditionLoads(insts, i - 1, inst.b.reg, out,
                                      depth + 1);
            }
            if (inst.c.isReg()) {
                collectConditionLoads(insts, i - 1, inst.c.reg, out,
                                      depth + 1);
            }
            return;
          default:
            return;
        }
    }
}

/** True when the block contains a blocking synchronization op. */
bool
hasBlockingSync(const ir::BasicBlock &b)
{
    for (const auto &inst : b.insts) {
        switch (inst.op) {
          case ir::Op::MutexLock:
          case ir::Op::CondWait:
          case ir::Op::BarrierWait:
          case ir::Op::ThreadJoin:
            return true;
          default:
            break;
        }
    }
    return false;
}

/** True when the block writes global @p g. */
bool
writesGlobal(const ir::BasicBlock &b, ir::GlobalId g)
{
    for (const auto &inst : b.insts) {
        if ((inst.op == ir::Op::Store ||
             inst.op == ir::Op::AtomicRmW) &&
            inst.gid == g) {
            return true;
        }
    }
    return false;
}

} // namespace

AdhocDetector::AdhocDetector(const ir::Program &prog) : prog(prog)
{
    // A spin-wait loop: block B ends in Br and one branch target is
    // B itself (or a block that unconditionally re-enters B), the
    // condition is fed by a load of global g, B never writes g, and
    // B performs no blocking synchronization.
    for (const auto &f : prog.functions) {
        for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
            const ir::BasicBlock &b = f.blocks[bi];
            if (b.insts.empty())
                continue;
            const ir::Inst &term = b.insts.back();
            if (term.op != ir::Op::Br)
                continue;
            const bool self_loop =
                term.then_block == static_cast<ir::BlockId>(bi) ||
                term.else_block == static_cast<ir::BlockId>(bi);
            if (!self_loop)
                continue;
            if (hasBlockingSync(b))
                continue;
            if (!term.a.isReg())
                continue;
            std::set<ir::GlobalId> cond_loads;
            collectConditionLoads(
                b.insts, static_cast<int>(b.insts.size()) - 1,
                term.a.reg, cond_loads);
            for (ir::GlobalId g : cond_loads) {
                if (!writesGlobal(b, g))
                    flags.insert(g);
            }
        }
    }
}

AdhocVerdict
AdhocDetector::classify(const race::RaceReport &race) const
{
    ir::GlobalId g = prog.cellGlobal(race.cell);
    if (g >= 0 && flags.count(g))
        return AdhocVerdict::SingleOrdering;
    return AdhocVerdict::NotClassified;
}

} // namespace portend::baseline
