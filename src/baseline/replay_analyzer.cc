#include "baseline/replay_analyzer.h"

#include "replay/replayer.h"
#include "rt/interpreter.h"

namespace portend::baseline {

const char *
replayVerdictName(ReplayVerdict v)
{
    switch (v) {
      case ReplayVerdict::LikelyHarmful: return "likely harmful";
      case ReplayVerdict::LikelyHarmless: return "likely harmless";
      case ReplayVerdict::NotApplicable: return "not applicable";
    }
    return "?";
}

ReplayAnalysis
ReplayAnalyzer::analyze(const race::RaceReport &race,
                        const replay::ScheduleTrace &trace)
{
    ReplayAnalysis out;

    rt::ExecOptions eo;
    eo.preempt_on_memory = true;
    eo.max_steps = max_steps;
    eo.concrete_inputs = trace.concreteInputs();

    // --- Primary: replay to just before the first racing access. ---
    rt::Interpreter primary(prog, eo);
    rt::RotatePolicy rotate;
    replay::TracePolicy follow(trace, replay::TracePolicy::Mode::Strict,
                               &rotate);
    primary.setPolicy(&follow);

    rt::Interpreter::StopSpec pre;
    pre.before_cell.push_back(
        {race.first.tid, race.cell, race.first.cell_occurrence});
    primary.run(pre);
    if (!primary.stopped()) {
        out.verdict = ReplayVerdict::NotApplicable;
        out.detail = "race not reached during replay";
        return out;
    }
    rt::VmState pre_ckpt = primary.state();

    // Primary post-race snapshot: first accessor then second.
    int stage = 0;
    rt::Interpreter::StopSpec post;
    const auto kind_of = [](bool is_write) {
        return is_write ? rt::EventKind::MemWrite
                        : rt::EventKind::MemRead;
    };
    post.after_event = [&](const rt::Event &ev) {
        if (ev.cell != race.cell)
            return false;
        if (stage == 0 && ev.tid == race.first.tid &&
            ev.kind == kind_of(race.first.is_write)) {
            stage = 1;
            return false;
        }
        return stage == 1 && ev.tid == race.second.tid &&
               ev.kind == kind_of(race.second.is_write);
    };
    primary.run(post);
    if (!primary.stopped()) {
        out.verdict = ReplayVerdict::NotApplicable;
        out.detail = "racing pair did not complete in primary replay";
        return out;
    }
    rt::VmState post_primary = primary.state();
    std::uint64_t primary_extent =
        trace.decisions.empty() ? post_primary.global_step
                                : trace.decisions.back().step;

    // Finish the primary to learn how often the second racing
    // instruction executes in an undisturbed run; the alternate
    // replay must match or the replay has diverged.
    primary.run();
    std::uint64_t primary_second_count = primary.state().accessCount(
        race.second.tid, race.second.pc);

    // --- Alternate: enforce the reversed ordering. ---
    rt::Interpreter alt(prog, eo);
    alt.setState(pre_ckpt);
    alt.state().resume_in_segment = false;
    alt.options().max_steps =
        pre_ckpt.global_step + 5 * (primary_extent + 1000);

    rt::RotatePolicy post_rotate;
    replay::AlternatePolicy enforce(race, &post_rotate);
    alt.setPolicy(&enforce);

    int astage = 0;
    rt::Interpreter::StopSpec apost;
    apost.after_event = [&](const rt::Event &ev) {
        if (ev.cell != race.cell)
            return false;
        if (astage == 0 && ev.tid == race.second.tid &&
            ev.kind == kind_of(race.second.is_write)) {
            astage = 1;
            return false;
        }
        return astage == 1 && ev.tid == race.first.tid &&
               ev.kind == kind_of(race.first.is_write);
    };
    rt::RunOutcome oc = alt.run(apost);

    if (!alt.stopped()) {
        // The alternate ordering could not be exercised: a replay
        // failure. [45] conservatively reports the race as likely
        // harmful (this is what Portend's divergence tolerance and
        // ad-hoc-sync detection improve upon).
        out.replay_failed = true;
        out.verdict = ReplayVerdict::LikelyHarmful;
        out.detail = std::string("replay failure (") +
                     rt::runOutcomeName(oc) + ")";
        return out;
    }

    // The replay diverged if the second racing instruction had to
    // re-execute (e.g. a busy-wait loop ran extra iterations while
    // the writer was held). [45] cannot tolerate such divergence and
    // conservatively reports the race as likely harmful.
    rt::VmState post_alt_snapshot = alt.state();
    alt.run();
    if (primary_second_count > 0) {
        std::uint64_t alt_count = alt.state().accessCount(
            race.second.tid, race.second.pc);
        if (alt_count > primary_second_count) {
            out.replay_failed = true;
            out.verdict = ReplayVerdict::LikelyHarmful;
            out.detail = "replay failure (execution diverged from "
                         "the recorded trace)";
            return out;
        }
    }

    // --- Concrete post-race state comparison (memory image). ---
    const rt::VmState &post_alt = post_alt_snapshot;
    bool differ = post_primary.mem.size() != post_alt.mem.size();
    if (!differ) {
        for (std::size_t i = 0; i < post_primary.mem.size(); ++i) {
            if (!post_primary.mem[i].equals(post_alt.mem[i])) {
                differ = true;
                break;
            }
        }
    }
    out.states_differ = differ;
    out.verdict = differ ? ReplayVerdict::LikelyHarmful
                         : ReplayVerdict::LikelyHarmless;
    out.detail = differ ? "post-race memory states differ"
                        : "post-race memory states match";
    return out;
}

} // namespace portend::baseline
