#include "workloads/registry.h"

#include "support/logging.h"

namespace portend::workloads {

std::vector<std::string>
workloadNames()
{
    return {"sqlite", "ocean",  "fmm",  "memcached", "pbzip2",
            "ctrace", "bbuf",   "avv",  "dcl",       "dbm",
            "rw"};
}

std::vector<std::string>
extensionWorkloadNames()
{
    return {"ibuf", "iguard"};
}

Workload
buildWorkload(const std::string &name)
{
    if (name == "sqlite")
        return buildSqlite();
    if (name == "ocean")
        return buildOcean();
    if (name == "fmm")
        return buildFmm();
    if (name == "memcached")
        return buildMemcached();
    if (name == "memcached-whatif")
        return buildMemcached(true);
    if (name == "pbzip2")
        return buildPbzip2();
    if (name == "ctrace")
        return buildCtrace();
    if (name == "bbuf")
        return buildBbuf();
    if (name == "avv")
        return buildMicroAvv();
    if (name == "dcl")
        return buildMicroDcl();
    if (name == "dbm")
        return buildMicroDbm();
    if (name == "rw")
        return buildMicroRw();
    if (name == "ibuf")
        return buildSymBuf();
    if (name == "iguard")
        return buildSymGuard();
    PORTEND_FATAL("unknown workload '", name, "'");
}

std::vector<Workload>
buildAllWorkloads()
{
    std::vector<Workload> out;
    for (const auto &n : workloadNames())
        out.push_back(buildWorkload(n));
    return out;
}

std::vector<Workload>
buildRealApplications()
{
    std::vector<Workload> out;
    for (const auto &n : {"sqlite", "ocean", "fmm", "memcached",
                          "pbzip2", "ctrace", "bbuf"}) {
        out.push_back(buildWorkload(n));
    }
    return out;
}

} // namespace portend::workloads
