/**
 * @file
 * SPLASH2 fmm 2.0 model.
 *
 * Table 1: 11,545 LOC of C, 3 forked threads. Table 3: 13 distinct
 * races (517 instances): 12 "single ordering" tree/force phase-flag
 * races and 1 race on the particle timestamp that is "k-witness
 * harmless" by default but becomes "spec violated" under the
 * semantic predicate "timestamps never go backwards" (Table 2's
 * semantic row; §5.1: without the check the negative/stale
 * timestamp is eventually overwritten and harmless).
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

Workload
buildFmm()
{
    ir::ProgramBuilder pb("fmm");
    ir::GlobalId ts = pb.global("particle_ts");

    auto &w1 = pb.function("fmm_worker1", 1);
    w1.file("fmm/interactions.c").line(310);
    w1.to(w1.block("entry"));
    auto &w2 = pb.function("fmm_worker2", 1);
    w2.file("fmm/interactions.c").line(495);
    w2.to(w2.block("entry"));
    auto &w3 = pb.function("fmm_worker3", 1);
    w3.file("fmm/construct_grid.c").line(128);
    w3.to(w3.block("entry"));

    Workload w;
    w.name = "fmm 2.0";
    w.language = "C";
    w.paper_loc = 11545;
    w.forked_threads = 3;
    w.paper_instances = 517;

    // Timestamp race: both workers stamp the shared particle; in
    // the primary ordering the stamps increase (2 then 9), in the
    // alternate ordering time appears to go backwards — harmless
    // unless the monotonicity predicate is installed.
    w1.line(322);
    w1.store(ts, I(0), I(2)); // racing write (earlier stamp)
    w2.line(501);
    w2.store(ts, I(0), I(9)); // racing write (later stamp)

    ExpectedRace ts_race;
    ts_race.cell = "particle_ts";
    ts_race.truth = core::RaceClass::KWitnessHarmless;
    ts_race.portend_expected = core::RaceClass::KWitnessHarmless;
    ts_race.required_level = 0;
    w.expected.push_back(ts_race);

    // Twelve phase flags: w1 -> w2 -> w3 -> w1, four per edge.
    // Every worker publishes all its flags before consuming any,
    // so the pipeline cannot deadlock. Spin padding inflates the
    // dynamic instance count toward the paper's 517.
    PatternCtx w12{&pb, &w1, &w2};
    PatternCtx w23{&pb, &w2, &w3};
    PatternCtx w31{&pb, &w3, &w1};
    for (int i = 1; i <= 4; ++i) {
        w.expected.push_back(emitSpinFlagOnly(
            w12, "fmm_tree" + std::to_string(i), i == 1 ? 10 : 13));
    }
    for (int i = 1; i <= 4; ++i) {
        w.expected.push_back(emitSpinFlagOnly(
            w23, "fmm_force" + std::to_string(i), i == 1 ? 11 : 13));
    }
    for (int i = 1; i <= 4; ++i) {
        w.expected.push_back(emitSpinFlagOnly(
            w31, "fmm_grid" + std::to_string(i), 13));
    }

    w1.retVoid();
    w2.retVoid();
    w3.retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("fmm/fmm.c").line(44);
    m0.to(m0.block("entry"));
    ir::Reg t1 = m0.threadCreate("fmm_worker1", I(0));
    ir::Reg t2 = m0.threadCreate("fmm_worker2", I(0));
    ir::Reg t3 = m0.threadCreate("fmm_worker3", I(0));
    m0.threadJoin(R(t1));
    m0.threadJoin(R(t2));
    m0.threadJoin(R(t3));
    m0.outputStr("fmm:done");
    m0.halt();

    w.program = pb.build();

    // Semantic predicate (Table 2): particle timestamps must never
    // decrease. Stateful via the per-run scratch map. Captures only
    // the flat cell id (stable across Workload moves).
    int ts_cell = w.program.cellId(ts, 0);
    w.semantic_predicates.push_back(
        [ts_cell](const rt::Interpreter &interp, const rt::Event &ev,
                  std::map<std::string, std::int64_t> &scratch)
            -> std::string {
            if (ev.kind != rt::EventKind::MemWrite ||
                ev.cell != ts_cell) {
                return "";
            }
            const rt::Value &v = interp.state().mem[ts_cell];
            if (!v.isConcrete())
                return "";
            std::int64_t now = v.constValue();
            auto it = scratch.find("fmm_ts_last");
            if (it != scratch.end() && now < it->second) {
                return "fmm timestamp went backwards: " +
                       std::to_string(it->second) + " -> " +
                       std::to_string(now);
            }
            scratch["fmm_ts_last"] = now;
            return "";
        });
    return w;
}

} // namespace portend::workloads
