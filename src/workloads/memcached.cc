/**
 * @file
 * memcached 1.4.5 model.
 *
 * Table 1: 8,300 LOC of C, 8 forked threads. Table 3: 18 distinct
 * races (104 instances): 16 "single ordering" worker-handoff flags
 * and 2 "output differs" races — the Fig. 8c current_time /
 * oldest_live statistics race and a printed item-count race.
 *
 * The what-if variant (§5.1) removes the mutex around the
 * cache-ratio divisor update; the induced race lets a reader
 * observe the transient zero divisor and crash, which Portend
 * flags "spec violated" (Table 2's memcached crash row).
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

Workload
buildMemcached(bool whatif_remove_sync)
{
    ir::ProgramBuilder pb(whatif_remove_sync ? "memcached-whatif"
                                             : "memcached");
    ir::GlobalId current_time = pb.global("current_time");
    ir::GlobalId total_items = pb.global("total_items");
    ir::GlobalId ratio_div = pb.global("ratio_div", 1, {1});
    ir::SyncId stats_lock = pb.mutex("stats_lock");

    std::vector<ir::FunctionBuilder *> workers;
    for (int i = 0; i < 8; ++i) {
        auto &f = pb.function("mc_worker" + std::to_string(i), 1);
        f.file("memcached/thread.c").line(100 + 40 * i);
        f.to(f.block("entry"));
        workers.push_back(&f);
    }

    Workload w;
    w.name = "memcached 1.4.5";
    w.language = "C";
    w.paper_loc = 8300;
    w.forked_threads = 8;
    w.paper_instances = 104;

    // --- Output-differs race 1 (Fig. 8c): worker 0 computes
    // oldest_live from the racy current_time and prints it. The
    // racing write is performed by main (the clock update).
    {
        ir::FunctionBuilder &f = *workers[0];
        f.file("memcached/memcached.c").line(2778);
        ir::Reg ct = f.load(current_time); // racing read
        ir::Reg ol = f.bin(K::Sub, R(ct), I(1));
        f.output("oldest_live", R(ol));
        ExpectedRace r;
        r.cell = "current_time";
        r.truth = core::RaceClass::OutputDiffers;
        r.portend_expected = core::RaceClass::OutputDiffers;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // --- Output-differs race 2: item counter printed by worker 2.
    {
        workers[1]->file("memcached/items.c").line(434);
        workers[1]->store(total_items, I(0), I(25)); // racing write
        workers[2]->file("memcached/items.c").line(519);
        ir::Reg it = workers[2]->load(total_items); // racing read
        workers[2]->output("total_items", R(it));
        ExpectedRace r;
        r.cell = "total_items";
        r.truth = core::RaceClass::OutputDiffers;
        r.portend_expected = core::RaceClass::OutputDiffers;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // --- What-if experiment: the cache-ratio divisor is reset to 0
    // and restored to 1 (same store instruction, a two-iteration
    // loop) by worker 3; worker 4 divides by it. Normally both
    // sides hold stats_lock and no race exists; with the lock
    // removed, a reader can observe the transient zero.
    {
        ir::FunctionBuilder &f = *workers[3];
        f.file("memcached/stats.c").line(201);
        if (!whatif_remove_sync)
            f.lock(stats_lock);
        ir::Reg k = f.iconst(0);
        ir::BlockId loop = f.block("div_reset");
        ir::BlockId next = f.block("div_done");
        f.jmp(loop);
        f.to(loop);
        ir::Reg is_first = f.bin(K::Eq, R(k), I(0));
        ir::Reg val = f.select(R(is_first), I(0), I(1));
        f.store(ratio_div, I(0), R(val)); // transient 0, then 1
        f.binInto(k, K::Add, R(k), I(1));
        f.br(R(f.bin(K::Slt, R(k), I(2))), loop, next);
        f.to(next);
        if (!whatif_remove_sync)
            f.unlock(stats_lock);

        ir::FunctionBuilder &g = *workers[4];
        g.file("memcached/stats.c").line(230);
        // Bookkeeping before the ratio read delays it past the
        // writer's reset/restore pair in the recorded run; the
        // transient zero is only observable when an analysis
        // enforces the reversed ordering (paper 5.1).
        ir::GlobalId ledger = pb.global("stats_ledger");
        for (int d0 = 0; d0 < 4; ++d0) {
            ir::Reg lv = g.load(ledger);
            g.store(ledger, I(0), R(g.bin(K::Add, R(lv), I(1))));
        }
        g.line(244);
        if (!whatif_remove_sync)
            g.lock(stats_lock);
        ir::Reg d = g.load(ratio_div);
        ir::Reg ratio = g.bin(K::SDiv, I(100), R(d));
        if (!whatif_remove_sync)
            g.unlock(stats_lock);
        g.output("cache_ratio", R(ratio));

        if (whatif_remove_sync) {
            ExpectedRace r;
            r.cell = "ratio_div";
            r.truth = core::RaceClass::SpecViolated;
            r.viol = core::ViolationKind::Crash;
            r.portend_expected = core::RaceClass::SpecViolated;
            r.required_level = 3; // needs a specific interleaving
            w.expected.push_back(r);
        }
    }

    // --- 16 single-ordering handoff flags: worker i publishes two
    // stage flags consumed by worker (i+1) mod 8. Every worker
    // publishes before consuming, so the ring cannot deadlock.
    for (int i = 0; i < 8; ++i) {
        PatternCtx ctx{&pb, workers[i], workers[(i + 1) % 8]};
        w.expected.push_back(emitSpinFlagOnly(
            ctx, "mc_stage" + std::to_string(2 * i), i < 3 ? 1 : 0));
        w.expected.push_back(emitSpinFlagOnly(
            ctx, "mc_stage" + std::to_string(2 * i + 1), i < 2 ? 1 : 0));
    }

    for (auto *f : workers)
        f->retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("memcached/memcached.c").line(5122);
    m0.to(m0.block("entry"));
    std::vector<ir::Reg> tids;
    for (int i = 0; i < 8; ++i)
        tids.push_back(m0.threadCreate("mc_worker" + std::to_string(i),
                                       I(0)));
    // Clock tick: the racing current_time update (Fig. 8c's timer).
    ir::Reg now = m0.getTime();
    m0.line(407);
    m0.store(current_time, I(0),
             R(m0.bin(K::Add, R(now), I(100)))); // racing write
    for (ir::Reg t : tids)
        m0.threadJoin(R(t));
    m0.outputStr("memcached:done");
    m0.halt();

    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
