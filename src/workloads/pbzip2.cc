/**
 * @file
 * pbzip2 2.1.1 model.
 *
 * Table 1: 6,686 LOC of C++, 4 forked threads (file reader, two
 * compressors, file writer). Table 3: 31 distinct races (97
 * instances): 25 "single ordering" block-ready flags consumed by
 * the writer's busy-wait loop (Fig. 8d), 3 "spec violated" crashes
 * (two buffer overflows and a transient-zero divisor), and 3
 * "output differs" races on printed statistics, one of which is
 * gated behind a verbose flag and needs multi-path analysis.
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

namespace {

/** Private-global busy work to push later code past other threads. */
void
emitDelay(ir::ProgramBuilder &pb, ir::FunctionBuilder &f,
          const std::string &tag, int iters)
{
    ir::GlobalId cell = pb.global(tag + "_delay");
    ir::Reg i = f.iconst(iters);
    ir::BlockId loop = f.block(tag + "_dloop");
    ir::BlockId next = f.block(tag + "_dnext");
    f.jmp(loop);
    f.to(loop);
    ir::Reg v = f.load(cell);
    f.store(cell, I(0), R(f.bin(K::Add, R(v), I(1))));
    f.binInto(i, K::Sub, R(i), I(1));
    f.br(R(f.bin(K::Sgt, R(i), I(0))), loop, next);
    f.to(next);
}

} // namespace

Workload
buildPbzip2()
{
    ir::ProgramBuilder pb("pbzip2");
    constexpr int kBlocks = 25;
    ir::GlobalId flags = pb.global("block_ready", kBlocks);
    ir::GlobalId cfg_verbose = pb.global("cfg_verbose");
    ir::GlobalId obuf_idx = pb.global("obuf_idx", 1, {7});
    ir::GlobalId obuf_table = pb.global("obuf_table", 8);
    ir::GlobalId dbuf_idx = pb.global("dbuf_idx", 1, {5});
    ir::GlobalId dbuf_table = pb.global("dbuf_table", 6);

    auto &reader = pb.function("fileReader", 1);
    reader.file("pbzip2.cpp").line(389);
    reader.to(reader.block("entry"));
    auto &comp_a = pb.function("consumer_a", 1);
    comp_a.file("pbzip2.cpp").line(702);
    comp_a.to(comp_a.block("entry"));
    auto &comp_b = pb.function("consumer_b", 1);
    comp_b.file("pbzip2.cpp").line(702);
    comp_b.to(comp_b.block("entry"));
    auto &writer = pb.function("fileWriter", 1);
    writer.file("pbzip2.cpp").line(1044);
    writer.to(writer.block("entry"));

    Workload w;
    w.name = "pbzip2 2.1.1";
    w.language = "C++";
    w.paper_loc = 6686;
    w.forked_threads = 4;
    w.paper_instances = 97;

    // ---- Crash 1: output-buffer index overflow (writer uses the
    // block index early; the reader bumps it past the end late).
    {
        // Consumer side first (so its accesses sit early in the
        // writer); the producer bump is emitted below after a delay.
        ir::Reg i = writer.load(obuf_idx); // racing read
        writer.line(702);
        writer.store(obuf_table, R(i), I(7));
        ExpectedRace r;
        r.cell = "obuf_idx";
        r.truth = core::RaceClass::SpecViolated;
        r.viol = core::ViolationKind::Crash;
        r.portend_expected = core::RaceClass::SpecViolated;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // ---- Crash 3 consumer side: decompressed-buffer index used by
    // the writer before the second compressor bumps it.
    {
        ir::Reg i = writer.load(dbuf_idx); // racing read
        writer.store(dbuf_table, R(i), I(3));
        ExpectedRace r;
        r.cell = "dbuf_idx";
        r.truth = core::RaceClass::SpecViolated;
        r.viol = core::ViolationKind::Crash;
        r.portend_expected = core::RaceClass::SpecViolated;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // ---- Output-differs 1 and 2: progress percentage and input
    // byte count, both printed by the writer.
    ir::GlobalId progress = pb.global("progress_pct");
    ir::GlobalId bytes_in = pb.global("bytes_in");
    {
        ir::Reg p = writer.load(progress); // racing read
        writer.output("progress_pct", R(p));
        ir::Reg b = writer.load(bytes_in); // racing read
        writer.output("bytes_in", R(b));
        ExpectedRace r1;
        r1.cell = "progress_pct";
        r1.truth = core::RaceClass::OutputDiffers;
        r1.portend_expected = core::RaceClass::OutputDiffers;
        r1.required_level = 0;
        w.expected.push_back(r1);
        ExpectedRace r2 = r1;
        r2.cell = "bytes_in";
        w.expected.push_back(r2);
    }

    // ---- Crash 2 consumer side: compressor A divides by the
    // transient chunk divisor that compressor B resets late.
    ir::GlobalId chunk_div = pb.global("chunk_div", 1, {1});
    {
        ir::Reg d = comp_a.load(chunk_div); // racing read
        ir::Reg q = comp_a.bin(K::SDiv, I(100), R(d));
        ir::GlobalId scratch = pb.global("ratio_scratch");
        comp_a.store(scratch, I(0), R(q));
        ExpectedRace r;
        r.cell = "chunk_div";
        r.truth = core::RaceClass::SpecViolated;
        r.viol = core::ViolationKind::Crash;
        r.portend_expected = core::RaceClass::SpecViolated;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // ---- Output-differs 3 (multi-path): CRC printed only in
    // verbose mode; compressor B publishes, compressor A consumes.
    {
        PatternCtx ctx{&pb, &comp_b, &comp_a};
        w.expected.push_back(emitInputGatedPrintRace(
            ctx, "crc_last", 777, cfg_verbose));
        w.expected.back().required_level = 2;
    }

    // ---- Producer side: the reader publishes the input byte
    // count; compressor A publishes progress and the even block
    // flags; compressor B publishes the odd flags and, late, the
    // crash producers.
    reader.line(350);
    reader.store(bytes_in, I(0), I(1234)); // racing write
    comp_a.line(650);
    comp_a.store(progress, I(0), I(50)); // racing write
    {
        // Per-block compression work (private cells) paces the flag
        // publication so the writer's busy-wait loop actually spins,
        // reproducing the paper's dynamic instance counts.
        ir::GlobalId work_a = pb.global("compress_work_a");
        ir::Reg i = comp_a.iconst(0);
        ir::BlockId loop = comp_a.block("flag_even");
        ir::BlockId next = comp_a.block("flag_even_done");
        comp_a.jmp(loop);
        comp_a.to(loop);
        ir::Reg ua = comp_a.iconst(3);
        ir::BlockId wloopa = comp_a.block("block_work");
        ir::BlockId wdonea = comp_a.block("block_work_done");
        comp_a.jmp(wloopa);
        comp_a.to(wloopa);
        ir::Reg wv = comp_a.load(work_a);
        comp_a.store(work_a, I(0), R(comp_a.bin(K::Add, R(wv), I(1))));
        comp_a.binInto(ua, K::Sub, R(ua), I(1));
        comp_a.br(R(comp_a.bin(K::Sgt, R(ua), I(0))), wloopa, wdonea);
        comp_a.to(wdonea);
        comp_a.store(flags, R(i), I(1)); // racing writes (13 cells)
        comp_a.binInto(i, K::Add, R(i), I(2));
        comp_a.br(R(comp_a.bin(K::Slt, R(i), I(kBlocks))), loop, next);
        comp_a.to(next);
    }
    {
        ir::GlobalId work_b = pb.global("compress_work_b");
        ir::Reg i = comp_b.iconst(1);
        ir::BlockId loop = comp_b.block("flag_odd");
        ir::BlockId next = comp_b.block("flag_odd_done");
        comp_b.jmp(loop);
        comp_b.to(loop);
        ir::Reg ub = comp_b.iconst(3);
        ir::BlockId wloopb = comp_b.block("block_work");
        ir::BlockId wdoneb = comp_b.block("block_work_done");
        comp_b.jmp(wloopb);
        comp_b.to(wloopb);
        ir::Reg wv = comp_b.load(work_b);
        comp_b.store(work_b, I(0), R(comp_b.bin(K::Add, R(wv), I(1))));
        comp_b.binInto(ub, K::Sub, R(ub), I(1));
        comp_b.br(R(comp_b.bin(K::Sgt, R(ub), I(0))), wloopb, wdoneb);
        comp_b.to(wdoneb);
        comp_b.store(flags, R(i), I(1)); // racing writes (12 cells)
        comp_b.binInto(i, K::Add, R(i), I(2));
        comp_b.br(R(comp_b.bin(K::Slt, R(i), I(kBlocks))), loop, next);
        comp_b.to(next);
    }
    for (int i = 0; i < kBlocks; ++i) {
        ExpectedRace r;
        r.cell = "block_ready[" + std::to_string(i) + "]";
        r.truth = core::RaceClass::SingleOrdering;
        r.portend_expected = core::RaceClass::SingleOrdering;
        r.required_level = 1;
        w.expected.push_back(r);
    }

    // ---- Writer: spin on every block flag in order (Fig. 8d),
    // then one padding pass to lift the instance count.
    {
        ir::Reg i = writer.iconst(0);
        ir::BlockId outer = writer.block("wait_outer");
        ir::BlockId spin = writer.block("wait_spin");
        ir::BlockId done = writer.block("wait_done");
        writer.jmp(outer);
        writer.to(outer);
        ir::Reg more = writer.bin(K::Slt, R(i), I(kBlocks));
        writer.br(R(more), spin, done);
        writer.to(spin);
        writer.line(1195);
        ir::Reg f = writer.load(flags, R(i)); // racing reads
        ir::BlockId advance = writer.block("wait_adv");
        writer.br(R(f), advance, spin);
        writer.to(advance);
        writer.binInto(i, K::Add, R(i), I(1));
        writer.jmp(outer);
        writer.to(done);
    }

    // ---- Late crash producers.
    emitDelay(pb, reader, "rd", 14);
    {
        // Reader bumps the output-buffer index past the end.
        reader.line(389);
        ir::Reg v = reader.load(obuf_idx);
        reader.store(obuf_idx, I(0),
                     R(reader.bin(K::Add, R(v), I(1))));
    }
    emitDelay(pb, comp_b, "cb", 10);
    comp_b.store(chunk_div, I(0), I(0)); // racing transient zero
    {
        ir::Reg v = comp_b.load(dbuf_idx);
        comp_b.store(dbuf_idx, I(0),
                     R(comp_b.bin(K::Add, R(v), I(1))));
    }

    reader.retVoid();
    comp_a.retVoid();
    comp_b.retVoid();
    writer.retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("pbzip2.cpp").line(2133);
    m0.to(m0.block("entry"));
    ir::Reg verbose = m0.input("verbose", 0, 1);
    m0.store(cfg_verbose, I(0), R(verbose));
    ir::Reg t1 = m0.threadCreate("fileReader", I(0));
    ir::Reg t2 = m0.threadCreate("consumer_a", I(0));
    ir::Reg t3 = m0.threadCreate("consumer_b", I(0));
    ir::Reg t4 = m0.threadCreate("fileWriter", I(0));
    m0.threadJoin(R(t1));
    m0.threadJoin(R(t2));
    m0.threadJoin(R(t3));
    m0.threadJoin(R(t4));
    m0.outputStr("pbzip2:done");
    m0.halt();

    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
