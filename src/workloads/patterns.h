/**
 * @file
 * Reusable race-pattern factories.
 *
 * Each factory emits one self-contained racy interaction into a
 * workload model under construction and returns its ground truth.
 * Patterns are designed so that each produces exactly one distinct
 * race cluster (one racing pc pair on one cell) in the detection
 * run, keeping Table 3's distinct-race accounting exact.
 *
 * Catalogue (paper sources in brackets):
 *  - spin-flag synchronization  -> "single ordering"   [Fig. 8d]
 *  - value printed after race   -> "output differs"    [Fig. 8c]
 *  - input-gated print          -> "output differs", needs
 *                                  multi-path analysis [Fig. 4]
 *  - post-race log interleaving -> "output differs", needs
 *                                  multi-schedule analysis [§3.4]
 *  - last-writer tag            -> "k-witness", states differ
 *  - index overflow             -> "spec violated" crash [Fig. 4]
 */

#ifndef PORTEND_WORKLOADS_PATTERNS_H
#define PORTEND_WORKLOADS_PATTERNS_H

#include <string>
#include <utility>

#include "ir/builder.h"
#include "workloads/workload.h"

namespace portend::workloads {

/**
 * Emission context: one producer-side function builder and one
 * consumer-side function builder, plus the program builder for
 * declaring globals. Thread identities are decided by the caller;
 * patterns only emit straight-line/loop code into the two builders.
 */
struct PatternCtx
{
    ir::ProgramBuilder *pb;
    ir::FunctionBuilder *producer; ///< first accessor side
    ir::FunctionBuilder *consumer; ///< second accessor side
};

/**
 * Spin-flag ad-hoc synchronization: producer stores data then sets
 * a flag; consumer busy-waits on the flag, then reads data.
 *
 * Produces TWO distinct races (flag and data), both ground-truth
 * "single ordering". @p spin_pad adds extra flag reads to inflate
 * the dynamic instance count.
 *
 * @return the two expected races {flag, data} in emission order
 */
std::pair<ExpectedRace, ExpectedRace>
emitSpinFlag(PatternCtx ctx, const std::string &tag, int spin_pad = 0);

/**
 * Spin-flag with no separate data cell: one "single ordering" race
 * on the flag only.
 */
ExpectedRace emitSpinFlagOnly(PatternCtx ctx, const std::string &tag,
                              int spin_pad = 0);

/**
 * Racy value reaches the output directly: producer writes a cell
 * the consumer prints. Ground truth "output differs", visible to
 * single-path analysis.
 */
ExpectedRace emitPrintedValueRace(PatternCtx ctx,
                                  const std::string &tag,
                                  std::int64_t value);

/**
 * Input-gated printed race: the consumer prints the racy value only
 * when a configuration global (filled by main from a bounded input
 * before spawning, default off) is set, so only multi-path analysis
 * exposes the output difference (paper Fig. 4 structure).
 */
ExpectedRace emitInputGatedPrintRace(PatternCtx ctx,
                                     const std::string &tag,
                                     std::int64_t value,
                                     ir::GlobalId config);

/**
 * Stale-poll race: the consumer polls the racy flag twice through
 * one load instruction and prints whether it ever saw it set. The
 * primary and the deterministic trace-preserving alternate observe
 * the flag at least once; only a randomized post-race schedule can
 * place both polls before the write, so the output difference needs
 * multi-schedule analysis (§3.4).
 */
ExpectedRace emitLogOrderRace(PatternCtx ctx, const std::string &tag);

/**
 * Last-writer tag: both sides store their (different) ids into a
 * cell that never reaches the output. Ground truth "k-witness
 * harmless" with differing post-race states.
 */
ExpectedRace emitLastWriterRace(PatternCtx ctx, const std::string &tag,
                                std::int64_t v1, std::int64_t v2);

/**
 * Index-overflow crash (paper Fig. 4): producer bumps an index
 * cell; the consumer loads it and stores through it into a table
 * sized so that the bumped value is out of bounds. Ground truth
 * "spec violated" (crash) — the crash happens only in the alternate
 * ordering.
 */
ExpectedRace emitOverflowCrashRace(PatternCtx ctx,
                                   const std::string &tag,
                                   int table_size);

/** Extra reads of @p cell_global to inflate instance counts. */
void emitInstancePadding(ir::FunctionBuilder *fb,
                         ir::GlobalId cell_global, int reads);

} // namespace portend::workloads

#endif // PORTEND_WORKLOADS_PATTERNS_H
