/**
 * @file
 * Workload registry: build the paper's benchmark suite by name.
 */

#ifndef PORTEND_WORKLOADS_REGISTRY_H
#define PORTEND_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace portend::workloads {

/** Short names accepted by buildWorkload, in Table 1 order. */
std::vector<std::string> workloadNames();

/**
 * Input-sensitive extension workloads (outside the paper's Table 1
 * population, so Table 3 accounting over workloadNames() is
 * unchanged): accepted by buildWorkload and listed by the CLI, each
 * upgrading its verdict only under --sym-input.
 */
std::vector<std::string> extensionWorkloadNames();

/**
 * Build one workload by short name ("sqlite", "ocean", "fmm",
 * "memcached", "pbzip2", "ctrace", "bbuf", "avv", "dcl", "dbm",
 * "rw"); fatal on unknown names.
 */
Workload buildWorkload(const std::string &name);

/** Build the full 11-program suite (Table 1 order). */
std::vector<Workload> buildAllWorkloads();

/** The seven real applications only. */
std::vector<Workload> buildRealApplications();

} // namespace portend::workloads

#endif // PORTEND_WORKLOADS_REGISTRY_H
