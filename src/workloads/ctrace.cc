/**
 * @file
 * Ctrace 1.2 model.
 *
 * Table 1: 886 LOC of C, 3 forked threads. Table 3: 15 distinct
 * races (19 instances): 1 "spec violated" crash — the paper's
 * Fig. 4 running example, where the request id incremented under a
 * lock by the handler is read without the lock by the statistics
 * thread, and on the non-default (--no-hash-table) input path a
 * stale bounds check followed by a re-read of the id overflows the
 * statically sized stats array — plus 10 "output differs" debug-log
 * races at varying analysis depths and 4 "k-witness harmless"
 * last-writer tags (Fig. 8a/8b flavors).
 *
 * Emission order matters: the schedule-sensitive log records come
 * first so that analyses of the later (k-witness and Fig. 4) races
 * replay them from the trace prefix unperturbed.
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

Workload
buildCtrace()
{
    ir::ProgramBuilder pb("ctrace");
    constexpr int kMaxSize = 32;
    ir::GlobalId req_id = pb.global("req_id", 1, {31});
    ir::GlobalId stats = pb.global("stats_array", kMaxSize);
    ir::GlobalId cfg_hash = pb.global("cfg_use_hash");
    ir::GlobalId cfg_debug = pb.global("cfg_debug");
    ir::GlobalId trc_level = pb.global("trc_level");
    ir::SyncId l = pb.mutex("id_lock");
    ir::SyncId phase_bar = pb.barrier("phase_bar", 3);

    auto &handler = pb.function("reqHandler", 1);
    handler.file("ctrace.c").line(11);
    handler.to(handler.block("entry"));
    auto &stats_t = pb.function("updateStats", 1);
    stats_t.file("ctrace.c").line(18);
    stats_t.to(stats_t.block("entry"));
    auto &logger = pb.function("traceLogger", 1);
    logger.file("ctrace.c").line(55);
    logger.to(logger.block("entry"));

    Workload w;
    w.name = "ctrace 1.2";
    w.language = "C";
    w.paper_loc = 886;
    w.forked_threads = 3;
    w.paper_instances = 19;

    // ---- Output-differs, single-path: the trace level printed by
    // the logger.
    handler.line(40);
    handler.store(trc_level, I(0), I(3)); // racing write
    {
        ir::Reg k = logger.iconst(5);
        ir::BlockId loop = logger.block("lvl_loop");
        ir::BlockId next = logger.block("lvl_done");
        logger.jmp(loop);
        logger.to(loop);
        ir::Reg v = logger.load(trc_level); // racing read
        logger.output("trc_level", R(v));
        logger.binInto(k, K::Sub, R(k), I(1));
        logger.br(R(logger.bin(K::Sgt, R(k), I(0))), loop, next);
        logger.to(next);
        ExpectedRace r;
        r.cell = "trc_level";
        r.truth = core::RaceClass::OutputDiffers;
        r.portend_expected = core::RaceClass::OutputDiffers;
        r.required_level = 0;
        w.expected.push_back(r);
    }

    // ---- Output-differs, multi-path (5): debug-gated buffer dumps.
    {
        PatternCtx c1{&pb, &handler, &stats_t};
        w.expected.push_back(
            emitInputGatedPrintRace(c1, "trc_buf1", 11, cfg_debug));
        PatternCtx c2{&pb, &handler, &logger};
        w.expected.push_back(
            emitInputGatedPrintRace(c2, "trc_buf2", 12, cfg_debug));
        PatternCtx c3{&pb, &stats_t, &logger};
        w.expected.push_back(
            emitInputGatedPrintRace(c3, "trc_buf3", 13, cfg_debug));
        PatternCtx c4{&pb, &stats_t, &handler};
        w.expected.push_back(
            emitInputGatedPrintRace(c4, "trc_buf4", 14, cfg_debug));
        PatternCtx c5{&pb, &logger, &stats_t};
        w.expected.push_back(
            emitInputGatedPrintRace(c5, "trc_buf5", 15, cfg_debug));
    }

    // ---- Output-differs, multi-schedule (4): stale-poll races.
    // Each poll runs in its own tracing round (barrier-bounded, as
    // ctrace's phase structure does) so that one race's enforced
    // reversal cannot retime another round's polls.
    {
        auto round = [&](int i) {
            ir::SyncId bar = pb.barrier(
                "round_bar" + std::to_string(i), 3);
            handler.barrierWait(bar);
            stats_t.barrierWait(bar);
            logger.barrierWait(bar);
        };
        round(0);
        PatternCtx c1{&pb, &handler, &stats_t};
        w.expected.push_back(emitLogOrderRace(c1, "trc_log1"));
        round(1);
        PatternCtx c2{&pb, &stats_t, &logger};
        w.expected.push_back(emitLogOrderRace(c2, "trc_log2"));
        round(2);
        PatternCtx c3{&pb, &logger, &handler};
        w.expected.push_back(emitLogOrderRace(c3, "trc_log3"));
        round(3);
        PatternCtx c4{&pb, &handler, &logger};
        w.expected.push_back(emitLogOrderRace(c4, "trc_log4"));
    }

    // ---- Phase barrier: pins every log record above against
    // post-race schedule perturbation from the races below (the
    // real ctrace synchronizes its phases the same way).
    handler.barrierWait(phase_bar);
    stats_t.barrierWait(phase_bar);
    logger.barrierWait(phase_bar);

    // ---- K-witness harmless (4): last-writer tags (Fig. 8b
    // trc_on flavor); the values differ, so the post-race states
    // differ, but nothing downstream observes them.
    {
        PatternCtx c1{&pb, &handler, &stats_t};
        w.expected.push_back(emitLastWriterRace(c1, "trc_owner1", 1, 2));
        PatternCtx c2{&pb, &stats_t, &logger};
        w.expected.push_back(emitLastWriterRace(c2, "trc_owner2", 2, 3));
        PatternCtx c3{&pb, &logger, &handler};
        w.expected.push_back(emitLastWriterRace(c3, "trc_owner3", 3, 1));
        PatternCtx c4{&pb, &handler, &logger};
        w.expected.push_back(emitLastWriterRace(c4, "trc_owner4", 1, 3));
    }

    // ---- Fig. 4 (last): the handler increments req_id under the
    // lock; the stats thread reads it without the lock. On the
    // hash-table path (default) the read feeds a validity check
    // whose outcome is order-independent; on the array path the id
    // is re-read after the bounds check (paper line 31), and if the
    // increment lands in the one-slot window between check and
    // re-read, the store indexes stats_array[32]. The window is so
    // narrow that only the enforced reversal (which parks the
    // handler right at its store) exposes it — the paper notes this
    // crash "is likely to be missed" by single-path detectors.
    handler.line(14);
    {
        handler.lock(l);
        handler.line(15);
        ir::Reg v = handler.load(req_id);
        handler.store(req_id, I(0),
                      R(handler.bin(K::Add, R(v), I(1))));
        handler.unlock(l);
    }

    stats_t.line(19);
    {
        ir::Reg use_hash = stats_t.load(cfg_hash);
        ir::BlockId hash_b = stats_t.block("update1");
        ir::BlockId array_b = stats_t.block("update2");
        ir::BlockId out_b = stats_t.block("stats_done");
        stats_t.br(R(use_hash), hash_b, array_b);

        stats_t.to(hash_b);
        stats_t.line(26);
        ir::Reg tmp = stats_t.load(req_id); // racing read (pc26)
        ir::Reg in_lo = stats_t.bin(K::Sge, R(tmp), I(0));
        ir::Reg in_hi = stats_t.bin(K::Slt, R(tmp), I(64));
        stats_t.output("hash_hit",
                       R(stats_t.bin(K::LAnd, R(in_lo), R(in_hi))));
        stats_t.jmp(out_b);

        stats_t.to(array_b);
        stats_t.line(30);
        ir::Reg i = stats_t.load(req_id); // racing read (pc30)
        ir::BlockId store_b = stats_t.block("store_stat");
        ir::BlockId skip_b = stats_t.block("skip_stat");
        stats_t.br(R(stats_t.bin(K::Slt, R(i), I(kMaxSize))),
                   store_b, skip_b);
        stats_t.to(store_b);
        stats_t.line(31);
        ir::Reg j = stats_t.load(req_id); // re-read, as in Fig. 4
        stats_t.store(stats, R(j), I(5)); // overflows when j == 32
        stats_t.jmp(out_b);
        stats_t.to(skip_b);
        stats_t.jmp(out_b);
        stats_t.to(out_b);
    }
    {
        ExpectedRace r;
        r.cell = "req_id";
        r.truth = core::RaceClass::SpecViolated;
        r.viol = core::ViolationKind::Crash;
        r.portend_expected = core::RaceClass::SpecViolated;
        r.required_level = 3; // Fig. 4: multi-path + multi-schedule
        w.expected.push_back(r);
    }

    handler.retVoid();
    stats_t.retVoid();
    logger.retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("ctrace.c").line(5);
    m0.to(m0.block("entry"));
    // Default input 0 selects the hash-table path (the paper's
    // --use-hash-table default run).
    ir::Reg no_hash = m0.input("no_hash_table", 0, 1);
    m0.store(cfg_hash, I(0), R(m0.bin(K::Sub, I(1), R(no_hash))));
    ir::Reg dbg = m0.input("debug", 0, 1);
    m0.store(cfg_debug, I(0), R(dbg));
    ir::Reg t1 = m0.threadCreate("reqHandler", I(0));
    ir::Reg t2 = m0.threadCreate("updateStats", I(0));
    ir::Reg t3 = m0.threadCreate("traceLogger", I(0));
    m0.threadJoin(R(t1));
    m0.threadJoin(R(t2));
    m0.threadJoin(R(t3));
    m0.outputStr("ctrace:done");
    m0.halt();

    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
