/**
 * @file
 * Bbuf 1.0 model.
 *
 * Table 1: 261 LOC of C, 8 forked threads (4 producers, 4
 * consumers over a shared bounded buffer). Table 3: 6 distinct
 * races, all "output differs", 6 instances; per Fig. 7 all of them
 * are invisible to single-path analysis — three require multi-path
 * exploration (verbose-gated dumps of racy slots) and three require
 * multi-schedule exploration (post-race log-record ordering).
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;

namespace portend::workloads {

Workload
buildBbuf()
{
    ir::ProgramBuilder pb("bbuf");
    ir::GlobalId cfg_verbose = pb.global("cfg_verbose");

    std::vector<ir::FunctionBuilder *> prod, cons;
    for (int i = 0; i < 4; ++i) {
        auto &p = pb.function("producer" + std::to_string(i + 1), 1);
        p.file("bbuf.c").line(40 + 10 * i);
        p.to(p.block("entry"));
        prod.push_back(&p);
        auto &c = pb.function("consumer" + std::to_string(i + 1), 1);
        c.file("bbuf.c").line(90 + 10 * i);
        c.to(c.block("entry"));
        cons.push_back(&c);
    }

    Workload w;
    w.name = "bbuf 1.0";
    w.language = "C";
    w.paper_loc = 261;
    w.forked_threads = 8;
    w.paper_instances = 6;

    // Three verbose-gated slot dumps (multi-path).
    {
        PatternCtx c1{&pb, prod[0], cons[0]};
        w.expected.push_back(
            emitInputGatedPrintRace(c1, "bb_slot1", 101, cfg_verbose));
        PatternCtx c2{&pb, prod[1], cons[1]};
        w.expected.push_back(
            emitInputGatedPrintRace(c2, "bb_slot2", 102, cfg_verbose));
        PatternCtx c3{&pb, prod[2], cons[2]};
        w.expected.push_back(
            emitInputGatedPrintRace(c3, "bb_slot3", 103, cfg_verbose));
    }

    // Three stale-poll races (multi-schedule), each in its own
    // barrier-bounded round so the races stay independent.
    {
        auto round = [&](int i) {
            ir::SyncId bar =
                pb.barrier("bb_round" + std::to_string(i), 8);
            for (auto *p : prod)
                p->barrierWait(bar);
            for (auto *c : cons)
                c->barrierWait(bar);
        };
        round(0);
        PatternCtx c4{&pb, prod[3], cons[3]};
        w.expected.push_back(emitLogOrderRace(c4, "bb_count"));
        round(1);
        PatternCtx c5{&pb, prod[0], cons[1]};
        w.expected.push_back(emitLogOrderRace(c5, "bb_in_idx"));
        round(2);
        PatternCtx c6{&pb, prod[1], cons[2]};
        w.expected.push_back(emitLogOrderRace(c6, "bb_out_idx"));
    }

    for (auto *p : prod)
        p->retVoid();
    for (auto *c : cons)
        c->retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("bbuf.c").line(7);
    m0.to(m0.block("entry"));
    ir::Reg verbose = m0.input("verbose", 0, 1);
    m0.store(cfg_verbose, I(0), R(verbose));
    std::vector<ir::Reg> tids;
    for (int i = 0; i < 4; ++i) {
        tids.push_back(
            m0.threadCreate("producer" + std::to_string(i + 1), I(0)));
        tids.push_back(
            m0.threadCreate("consumer" + std::to_string(i + 1), I(0)));
    }
    for (ir::Reg t : tids)
        m0.threadJoin(R(t));
    m0.outputStr("bbuf:done");
    m0.halt();

    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
