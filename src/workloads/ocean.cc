/**
 * @file
 * SPLASH2 ocean 2.0 model.
 *
 * Table 1: 11,665 LOC of C, 2 forked threads. Table 3: 5 distinct
 * races (14 instances): 4 "single ordering" phase-flag races and
 * one race on the energy accumulator whose ground truth is "output
 * differs" but which Portend classifies "k-witness harmless" — the
 * paper's single misclassification (§5.4): the output-difference
 * path requires a very specific combination of three inputs, and
 * the third input lies beyond the two-symbolic-inputs budget, so
 * multi-path search cannot reach it.
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

Workload
buildOcean()
{
    ir::ProgramBuilder pb("ocean");
    ir::GlobalId energy = pb.global("psiai_energy");
    ir::GlobalId cfg_n = pb.global("cfg_grid_n");
    ir::GlobalId cfg_t = pb.global("cfg_tsteps");
    ir::GlobalId cfg_r = pb.global("cfg_res");

    auto &west = pb.function("slave_west", 1);
    west.file("ocean/slave1.c").line(431);
    west.to(west.block("entry"));
    auto &east = pb.function("slave_east", 1);
    east.file("ocean/slave2.c").line(772);
    east.to(east.block("entry"));

    Workload w;
    w.name = "ocean 2.0";
    w.language = "C";
    w.paper_loc = 11665;
    w.forked_threads = 2;
    w.paper_instances = 14;

    // Energy accesses sit at the very start of both slaves, before
    // any flag phase, so the two orderings are both feasible.
    west.line(447);
    west.store(energy, I(0), I(7)); // racing write

    east.line(801);
    ir::Reg e = east.load(energy); // racing read
    ir::Reg g1 = east.load(cfg_n);
    ir::Reg g2 = east.load(cfg_t);
    ir::Reg g3 = east.load(cfg_r);
    ir::Reg c1 = east.bin(K::Eq, R(g1), I(13));
    ir::Reg c2 = east.bin(K::Eq, R(g2), I(27));
    ir::Reg c3 = east.bin(K::Eq, R(g3), I(5));
    ir::Reg gate =
        east.bin(K::LAnd, R(east.bin(K::LAnd, R(c1), R(c2))), R(c3));
    ir::BlockId on = east.block("dump_energy");
    ir::BlockId off = east.block("quiet");
    ir::BlockId tail = east.block("tail");
    east.br(R(gate), on, off);
    east.to(on);
    east.output("energy", R(e));
    east.jmp(tail);
    east.to(off);
    east.output("energy", I(0));
    east.jmp(tail);
    east.to(tail);

    ExpectedRace miss;
    miss.cell = "psiai_energy";
    miss.truth = core::RaceClass::OutputDiffers;
    miss.portend_expected = core::RaceClass::KWitnessHarmless;
    miss.required_level = 4; // beyond any configured level
    w.expected.push_back(miss);

    // Phase flags: west publishes two grid phases, east consumes;
    // then east publishes two and west consumes (Fig. 8d shape).
    PatternCtx we{&pb, &west, &east};
    w.expected.push_back(emitSpinFlagOnly(we, "oc_phase1", 2));
    w.expected.push_back(emitSpinFlagOnly(we, "oc_phase2", 2));
    PatternCtx ew{&pb, &east, &west};
    w.expected.push_back(emitSpinFlagOnly(ew, "oc_phase3", 1));
    w.expected.push_back(emitSpinFlagOnly(ew, "oc_phase4", 1));

    west.retVoid();
    east.retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("ocean/main.c").line(51);
    m0.to(m0.block("entry"));
    ir::Reg in1 = m0.input("grid_n", 0, 31);
    ir::Reg in2 = m0.input("tsteps", 0, 31);
    ir::Reg in3 = m0.input("res", 0, 31); // third input: never symbolic
    m0.store(cfg_n, I(0), R(in1));
    m0.store(cfg_t, I(0), R(in2));
    m0.store(cfg_r, I(0), R(in3));
    ir::Reg t1 = m0.threadCreate("slave_west", I(0));
    ir::Reg t2 = m0.threadCreate("slave_east", I(0));
    m0.threadJoin(R(t1));
    m0.threadJoin(R(t2));
    m0.outputStr("ocean:done");
    m0.halt();

    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
