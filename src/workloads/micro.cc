/**
 * @file
 * The four microbenchmark models (paper §5, Table 1): AVV ("all
 * values valid"), DCL (double-checked locking), DBM (disjoint bit
 * manipulation), and RW (redundant writes). Each contains exactly
 * one distinct race, ground truth "k-witness harmless" with
 * matching post-race states (Table 3's micro rows).
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

namespace {

/**
 * A worker looping over a private global: contributes threads (to
 * match Table 1's forked-thread counts) without adding races.
 */
void
emitPrivateWorker(ir::ProgramBuilder &pb, const std::string &name,
                  int iters)
{
    ir::GlobalId cell = pb.global(name + "_priv");
    auto &w = pb.function(name, 1);
    w.file("micro.cpp");
    w.to(w.block("entry"));
    ir::Reg i = w.iconst(iters);
    ir::BlockId loop = w.block("loop");
    ir::BlockId out = w.block("out");
    w.jmp(loop);
    w.to(loop);
    ir::Reg v = w.load(cell);
    w.store(cell, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.binInto(i, K::Sub, R(i), I(1));
    w.br(R(w.bin(K::Sgt, R(i), I(0))), loop, out);
    w.to(out);
    w.retVoid();
}

/** Spawn and join the named functions from main, then halt. */
void
finishMain(ir::FunctionBuilder &m,
           const std::vector<std::string> &workers)
{
    std::vector<ir::Reg> tids;
    for (const auto &w : workers)
        tids.push_back(m.threadCreate(w, I(0)));
    for (ir::Reg t : tids)
        m.threadJoin(R(t));
    m.outputStr("done");
    m.halt();
}

} // namespace

Workload
buildMicroRw()
{
    ir::ProgramBuilder pb("RW");
    ir::GlobalId flag = pb.global("shared_flag");

    // Two threads store the same value: the classic redundant-write
    // harmless race.
    auto &w1 = pb.function("writer1", 1);
    w1.file("rw.cpp").line(12);
    w1.to(w1.block("entry"));
    w1.store(flag, I(0), I(7));
    w1.retVoid();

    auto &w2 = pb.function("writer2", 1);
    w2.file("rw.cpp").line(21);
    w2.to(w2.block("entry"));
    w2.store(flag, I(0), I(7));
    w2.retVoid();

    emitPrivateWorker(pb, "rw_bg", 4);

    auto &m = pb.function("main", 0);
    m.file("rw.cpp").line(30);
    m.to(m.block("entry"));
    finishMain(m, {"writer1", "writer2", "rw_bg"});

    Workload w;
    w.name = "RW";
    w.language = "C++";
    w.paper_loc = 42;
    w.forked_threads = 3;
    w.paper_instances = 1;
    ExpectedRace r;
    r.cell = "shared_flag";
    r.truth = core::RaceClass::KWitnessHarmless;
    r.portend_expected = core::RaceClass::KWitnessHarmless;
    w.expected.push_back(r);
    w.program = pb.build();
    return w;
}

Workload
buildMicroAvv()
{
    ir::ProgramBuilder pb("AVV");
    ir::GlobalId level = pb.global("log_level"); // 0 initially

    // Writer publishes a new (valid) level; the reader validates
    // whatever it sees — every value is valid, so the output does
    // not depend on the ordering.
    auto &wr = pb.function("setter", 1);
    wr.file("avv.cpp").line(10);
    wr.to(wr.block("entry"));
    wr.store(level, I(0), I(5));
    wr.retVoid();

    auto &rd = pb.function("getter", 1);
    rd.file("avv.cpp").line(18);
    rd.to(rd.block("entry"));
    ir::Reg v = rd.load(level);
    ir::Reg ok_lo = rd.bin(K::Sge, R(v), I(0));
    ir::Reg ok_hi = rd.bin(K::Sle, R(v), I(7));
    ir::Reg ok = rd.bin(K::LAnd, R(ok_lo), R(ok_hi));
    rd.output("level_valid", R(ok));
    rd.retVoid();

    emitPrivateWorker(pb, "avv_bg", 4);

    auto &m = pb.function("main", 0);
    m.file("avv.cpp").line(30);
    m.to(m.block("entry"));
    finishMain(m, {"setter", "getter", "avv_bg"});

    Workload w;
    w.name = "AVV";
    w.language = "C++";
    w.paper_loc = 49;
    w.forked_threads = 3;
    w.paper_instances = 1;
    ExpectedRace r;
    r.cell = "log_level";
    r.truth = core::RaceClass::KWitnessHarmless;
    r.portend_expected = core::RaceClass::KWitnessHarmless;
    w.expected.push_back(r);
    w.program = pb.build();
    return w;
}

Workload
buildMicroDbm()
{
    ir::ProgramBuilder pb("DBM");
    ir::GlobalId bits = pb.global("status_bits");

    // One side owns bit 0; the other side only inspects bit 1, so
    // the racing update cannot affect what the reader computes.
    auto &wr = pb.function("bit0_owner", 1);
    wr.file("dbm.cpp").line(9);
    wr.to(wr.block("entry"));
    ir::Reg v = wr.load(bits);
    wr.store(bits, I(0), R(wr.bin(K::Or, R(v), I(1))));
    wr.retVoid();

    auto &rd = pb.function("bit1_reader", 1);
    rd.file("dbm.cpp").line(17);
    rd.to(rd.block("entry"));
    ir::Reg b = rd.load(bits);
    rd.output("bit1", R(rd.bin(K::And, R(b), I(2))));
    rd.retVoid();

    emitPrivateWorker(pb, "dbm_bg", 4);

    auto &m = pb.function("main", 0);
    m.file("dbm.cpp").line(28);
    m.to(m.block("entry"));
    finishMain(m, {"bit0_owner", "bit1_reader", "dbm_bg"});

    Workload w;
    w.name = "DBM";
    w.language = "C++";
    w.paper_loc = 45;
    w.forked_threads = 3;
    w.paper_instances = 1;
    ExpectedRace r;
    r.cell = "status_bits";
    r.truth = core::RaceClass::KWitnessHarmless;
    r.portend_expected = core::RaceClass::KWitnessHarmless;
    w.expected.push_back(r);
    w.program = pb.build();
    return w;
}

Workload
buildMicroDcl()
{
    ir::ProgramBuilder pb("DCL");
    ir::GlobalId initialized = pb.global("initialized");
    ir::GlobalId object = pb.global("object");
    ir::SyncId m = pb.mutex("init_lock");

    // Double-checked locking: the unlocked fast-path read of
    // `initialized` races with the locked write, but either ordering
    // initializes the object exactly once.
    for (int t = 0; t < 2; ++t) {
        auto &f = pb.function("dcl_user" + std::to_string(t + 1), 1);
        f.file("dcl.cpp").line(11);
        f.to(f.block("entry"));
        ir::Reg fast = f.load(initialized); // racing unlocked read
        ir::BlockId slow = f.block("slow");
        ir::BlockId done = f.block("done");
        f.br(R(fast), done, slow);
        f.to(slow);
        f.lock(m);
        ir::Reg again = f.load(initialized); // locked re-check
        ir::BlockId do_init = f.block("do_init");
        ir::BlockId skip = f.block("skip");
        f.br(R(again), skip, do_init);
        f.to(do_init);
        f.line(15);
        f.store(object, I(0), I(42));
        f.store(initialized, I(0), I(1)); // racing locked write
        f.jmp(skip);
        f.to(skip);
        f.unlock(m);
        f.jmp(done);
        f.to(done);
        f.retVoid();
    }

    emitPrivateWorker(pb, "dcl_bg1", 3);
    emitPrivateWorker(pb, "dcl_bg2", 3);
    emitPrivateWorker(pb, "dcl_bg3", 3);

    auto &m0 = pb.function("main", 0);
    m0.file("dcl.cpp").line(40);
    m0.to(m0.block("entry"));
    finishMain(m0, {"dcl_user1", "dcl_user2", "dcl_bg1", "dcl_bg2",
                    "dcl_bg3"});

    Workload w;
    w.name = "DCL";
    w.language = "C++";
    w.paper_loc = 45;
    w.forked_threads = 5;
    w.paper_instances = 1;
    ExpectedRace r;
    r.cell = "initialized";
    r.truth = core::RaceClass::KWitnessHarmless;
    r.portend_expected = core::RaceClass::KWitnessHarmless;
    w.expected.push_back(r);
    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
