/**
 * @file
 * Input-sensitive extension workloads for multi-path classification.
 *
 * Both models hide their harmful behaviour behind a configuration
 * input `n` that the default pipeline never varies: the detection
 * run and stage 1 execute with every input at its domain lower
 * bound, and legacy stage-2 symbolic selection (the first
 * max_symbolic_inputs env reads) is exhausted by two decoy tunables
 * read before `n`. Single-path analysis therefore reports "k-witness
 * harmless"; only `--sym-input n` makes the gate symbolic, forks the
 * guarded path, and upgrades the verdict with a solver-concretized
 * witness value for `n`:
 *
 *  - ibuf:   a racy message cell reaches the output only when
 *            n > 4 ("output differs", paper Fig. 4 structure);
 *  - iguard: a racy index feeds a table store whose offset includes
 *            n when n >= 8, overflowing the table in the alternate
 *            ordering ("spec violated" crash).
 *
 * Neither workload joins workloadNames(): the paper-population
 * accounting (Table 3 pins) stays untouched, and batch/--all modes
 * keep their byte-exact legacy output. They are registered through
 * extensionWorkloadNames() instead (CLI list/classify and goldens).
 */

#include "workloads/workload.h"

#include "ir/builder.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

namespace {

/**
 * Emit main's input preamble: two decoy tunables (consuming the
 * legacy positional symbolic-input slots) followed by the gate input
 * `n` with domain [0, hi], stored into @p cfg before any spawn.
 */
void
emitGatePreamble(ir::FunctionBuilder &m, ir::ProgramBuilder &pb,
                 const std::string &tag, ir::GlobalId cfg,
                 std::int64_t hi)
{
    ir::GlobalId tune_a = pb.global(tag + "_tune_a");
    ir::GlobalId tune_b = pb.global(tag + "_tune_b");
    m.store(tune_a, I(0), R(m.input("tune0", 0, 1)));
    m.store(tune_b, I(0), R(m.input("tune1", 0, 1)));
    m.store(cfg, I(0), R(m.input("n", 0, hi)));
}

} // namespace

Workload
buildSymBuf()
{
    ir::ProgramBuilder pb("ibuf");
    ir::GlobalId cfg = pb.global("cfg_n");
    ir::GlobalId msg = pb.global("ibuf_msg");

    // Writer publishes the message without synchronization.
    auto &wr = pb.function("bufWriter", 1);
    wr.file("ibuf.cpp").line(12);
    wr.to(wr.block("entry"));
    wr.store(msg, I(0), I(42));
    wr.retVoid();

    // Reader prints the racy value only on the large-buffer
    // configuration (n > 4); the default n = 0 prints a constant,
    // so both orderings produce identical output.
    auto &rd = pb.function("bufReader", 1);
    rd.file("ibuf.cpp").line(20);
    rd.to(rd.block("entry"));
    ir::Reg g = rd.load(cfg);
    ir::Reg r = rd.load(msg); // racing read
    ir::BlockId big = rd.block("big");
    ir::BlockId small = rd.block("small");
    ir::BlockId done = rd.block("done");
    rd.br(R(rd.bin(K::Sgt, R(g), I(4))), big, small);
    rd.to(big);
    rd.output("ibuf_msg", R(r));
    rd.jmp(done);
    rd.to(small);
    rd.output("ibuf_msg", I(0));
    rd.jmp(done);
    rd.to(done);
    rd.retVoid();

    auto &m = pb.function("main", 0);
    m.file("ibuf.cpp").line(5);
    m.to(m.block("entry"));
    emitGatePreamble(m, pb, "ibuf", cfg, 8);
    ir::Reg t1 = m.threadCreate("bufWriter", I(0));
    ir::Reg t2 = m.threadCreate("bufReader", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.outputStr("ibuf:done");
    m.halt();

    Workload w;
    w.name = "ibuf";
    w.language = "C++";
    w.paper_loc = 61;
    w.forked_threads = 2;
    w.paper_instances = 1;
    ExpectedRace r0;
    r0.cell = "ibuf_msg";
    r0.truth = core::RaceClass::OutputDiffers;
    // The default pipeline misses the gate (n stays concrete), like
    // the documented ocean miss; --sym-input n recovers the truth.
    r0.portend_expected = core::RaceClass::KWitnessHarmless;
    r0.required_level = 2;
    w.expected.push_back(r0);
    w.program = pb.build();
    return w;
}

Workload
buildSymGuard()
{
    ir::ProgramBuilder pb("iguard");
    constexpr int kTableSize = 9;
    ir::GlobalId cfg = pb.global("cfg_n");
    ir::GlobalId idx = pb.global("ig_idx");
    ir::GlobalId table = pb.global("ig_table", kTableSize);

    // The slot user reads the racy index, then stores through it;
    // on the n >= 8 configuration the store offset includes n, so
    // the bumped index overflows the table (alternate ordering
    // only: primary sees idx == 0 and 0 + 8 is still in bounds).
    auto &user = pb.function("slotUser", 1);
    user.file("iguard.cpp").line(14);
    user.to(user.block("entry"));
    ir::Reg g = user.load(cfg);
    ir::Reg i = user.load(idx); // racing read
    ir::BlockId wide = user.block("wide");
    ir::BlockId narrow = user.block("narrow");
    ir::BlockId done = user.block("done");
    user.br(R(user.bin(K::Sge, R(g), I(8))), wide, narrow);
    user.to(wide);
    user.store(table, R(user.bin(K::Add, R(i), R(g))), I(7));
    user.jmp(done);
    user.to(narrow);
    user.store(table, R(i), I(7));
    user.jmp(done);
    user.to(done);
    user.retVoid();

    // The bumper advances the index past the slot the user claimed.
    auto &bump = pb.function("idxBumper", 1);
    bump.file("iguard.cpp").line(30);
    bump.to(bump.block("entry"));
    ir::Reg v = bump.load(idx);
    bump.store(idx, I(0), R(bump.bin(K::Add, R(v), I(1))));
    bump.retVoid();

    auto &m = pb.function("main", 0);
    m.file("iguard.cpp").line(5);
    m.to(m.block("entry"));
    emitGatePreamble(m, pb, "iguard", cfg, 8);
    ir::Reg t1 = m.threadCreate("slotUser", I(0));
    ir::Reg t2 = m.threadCreate("idxBumper", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.outputStr("iguard:done");
    m.halt();

    Workload w;
    w.name = "iguard";
    w.language = "C++";
    w.paper_loc = 58;
    w.forked_threads = 2;
    w.paper_instances = 1;
    ExpectedRace r0;
    r0.cell = "ig_idx";
    r0.truth = core::RaceClass::SpecViolated;
    r0.viol = core::ViolationKind::Crash;
    r0.portend_expected = core::RaceClass::KWitnessHarmless;
    r0.required_level = 2;
    w.expected.push_back(r0);
    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
