#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

void
emitInstancePadding(ir::FunctionBuilder *fb, ir::GlobalId cell_global,
                    int reads)
{
    if (reads <= 0)
        return;
    ir::Reg i = fb->iconst(reads);
    ir::BlockId loop = fb->block("pad_loop");
    ir::BlockId next = fb->block("pad_next");
    fb->jmp(loop);
    fb->to(loop);
    fb->load(cell_global); // same pc every iteration
    fb->binInto(i, K::Sub, R(i), I(1));
    ir::Reg c = fb->bin(K::Sgt, R(i), I(0));
    fb->br(R(c), loop, next);
    fb->to(next);
}

namespace {

/**
 * Producer-side delay on a fresh private global. Unlike extra
 * consumer reads, this inflates the *spin iteration count* of the
 * consumer (each iteration re-executes the same racing load pc), so
 * dynamic race instances grow without adding clusters.
 */
void
emitProducerDelay(PatternCtx &ctx, const std::string &tag, int iters)
{
    if (iters <= 0)
        return;
    ir::GlobalId cell = ctx.pb->global(tag + "_work");
    ir::Reg i = ctx.producer->iconst(iters);
    ir::BlockId loop = ctx.producer->block(tag + "_work_loop");
    ir::BlockId next = ctx.producer->block(tag + "_work_done");
    ctx.producer->jmp(loop);
    ctx.producer->to(loop);
    ir::Reg v = ctx.producer->load(cell);
    ctx.producer->store(cell, I(0),
                        R(ctx.producer->bin(K::Add, R(v), I(1))));
    ctx.producer->binInto(i, K::Sub, R(i), I(1));
    ctx.producer->br(R(ctx.producer->bin(K::Sgt, R(i), I(0))), loop,
                     next);
    ctx.producer->to(next);
}

} // namespace

std::pair<ExpectedRace, ExpectedRace>
emitSpinFlag(PatternCtx ctx, const std::string &tag, int spin_pad)
{
    ir::GlobalId flag = ctx.pb->global(tag + "_flag");
    ir::GlobalId data = ctx.pb->global(tag + "_data");

    // Producer: work, publish data, then raise the flag (Fig. 8d).
    emitProducerDelay(ctx, tag, spin_pad);
    ctx.producer->store(data, I(0), I(42));
    ctx.producer->store(flag, I(0), I(1));

    // Consumer: busy-wait on the flag, then consume the data.
    ir::BlockId spin = ctx.consumer->block(tag + "_spin");
    ir::BlockId done = ctx.consumer->block(tag + "_done");
    ctx.consumer->jmp(spin);
    ctx.consumer->to(spin);
    ir::Reg f = ctx.consumer->load(flag);
    ctx.consumer->br(R(f), done, spin);
    ctx.consumer->to(done);
    ctx.consumer->load(data);

    ExpectedRace flag_race;
    flag_race.cell = tag + "_flag";
    flag_race.truth = core::RaceClass::SingleOrdering;
    flag_race.portend_expected = core::RaceClass::SingleOrdering;
    flag_race.required_level = 1; // needs ad-hoc detection

    ExpectedRace data_race = flag_race;
    data_race.cell = tag + "_data";
    return {flag_race, data_race};
}

ExpectedRace
emitSpinFlagOnly(PatternCtx ctx, const std::string &tag, int spin_pad)
{
    ir::GlobalId flag = ctx.pb->global(tag + "_flag");

    emitProducerDelay(ctx, tag, spin_pad);
    ctx.producer->store(flag, I(0), I(1));

    ir::BlockId spin = ctx.consumer->block(tag + "_spin");
    ir::BlockId done = ctx.consumer->block(tag + "_done");
    ctx.consumer->jmp(spin);
    ctx.consumer->to(spin);
    ir::Reg f = ctx.consumer->load(flag);
    ctx.consumer->br(R(f), done, spin);
    ctx.consumer->to(done);

    ExpectedRace race;
    race.cell = tag + "_flag";
    race.truth = core::RaceClass::SingleOrdering;
    race.portend_expected = core::RaceClass::SingleOrdering;
    race.required_level = 1;
    return race;
}

ExpectedRace
emitPrintedValueRace(PatternCtx ctx, const std::string &tag,
                     std::int64_t value)
{
    ir::GlobalId cell = ctx.pb->global(tag);

    ctx.producer->store(cell, I(0), I(value));

    ir::Reg r = ctx.consumer->load(cell);
    ctx.consumer->output(tag, R(r));

    ExpectedRace race;
    race.cell = tag;
    race.truth = core::RaceClass::OutputDiffers;
    race.portend_expected = core::RaceClass::OutputDiffers;
    race.required_level = 0;
    return race;
}

ExpectedRace
emitInputGatedPrintRace(PatternCtx ctx, const std::string &tag,
                        std::int64_t value, ir::GlobalId config)
{
    ir::GlobalId cell = ctx.pb->global(tag);

    ctx.producer->store(cell, I(0), I(value));

    // The gate global is written by main before the threads spawn,
    // so loading it is properly ordered (no extra race).
    ir::Reg g = ctx.consumer->load(config);
    ir::Reg r = ctx.consumer->load(cell);
    ir::BlockId on = ctx.consumer->block(tag + "_verbose");
    ir::BlockId off = ctx.consumer->block(tag + "_quiet");
    ir::BlockId join = ctx.consumer->block(tag + "_join");
    ctx.consumer->br(R(g), on, off);
    ctx.consumer->to(on);
    ctx.consumer->output(tag, R(r));
    ctx.consumer->jmp(join);
    ctx.consumer->to(off);
    ctx.consumer->output(tag, I(0));
    ctx.consumer->jmp(join);
    ctx.consumer->to(join);

    ExpectedRace race;
    race.cell = tag;
    race.truth = core::RaceClass::OutputDiffers;
    race.portend_expected = core::RaceClass::OutputDiffers;
    race.required_level = 2; // needs multi-path analysis
    return race;
}

ExpectedRace
emitLogOrderRace(PatternCtx ctx, const std::string &tag)
{
    ir::GlobalId cell = ctx.pb->global(tag);

    // Producer half: publish immediately (so the primary's reads
    // see the flag and the representative pair is write-then-read).
    ctx.producer->store(cell, I(0), I(1));

    // Consumer-side preamble work delays the polls past the store
    // in the recorded run; reads-first primaries would make the
    // race visible to single-path analysis instead.
    {
        ir::GlobalId work = ctx.pb->global(tag + "_cwork");
        ir::Reg i = ctx.consumer->iconst(3);
        ir::BlockId loop = ctx.consumer->block(tag + "_cw_loop");
        ir::BlockId next = ctx.consumer->block(tag + "_cw_done");
        ctx.consumer->jmp(loop);
        ctx.consumer->to(loop);
        ir::Reg v = ctx.consumer->load(work);
        ctx.consumer->store(work, I(0),
                            R(ctx.consumer->bin(K::Add, R(v), I(1))));
        ctx.consumer->binInto(i, K::Sub, R(i), I(1));
        ctx.consumer->br(R(ctx.consumer->bin(K::Sgt, R(i), I(0))),
                         loop, next);
        ctx.consumer->to(next);
    }

    // Producer logs right after publishing; the consumer reads the
    // cell (value unused) and logs its own record. The reversal of
    // the racing pair alone keeps the two records in the recorded
    // order (the enforced alternate resumes the producer's slot),
    // so single-pre/single-post sees identical output; only a
    // randomized post-race schedule reorders the two threads' log
    // records (multi-schedule analysis, §3.4).
    ctx.producer->outputStr(tag + ":produced");
    ctx.consumer->load(cell); // racing read
    // The yield is a scheduling point between the racing read and
    // the log write; the deterministic alternate resumes the
    // recorded schedule there, a randomized one may not.
    ctx.consumer->yield();
    ctx.consumer->outputStr(tag + ":consumed");

    ExpectedRace race;
    race.cell = tag;
    race.truth = core::RaceClass::OutputDiffers;
    race.portend_expected = core::RaceClass::OutputDiffers;
    race.required_level = 3; // needs multi-schedule analysis
    return race;
}

ExpectedRace
emitLastWriterRace(PatternCtx ctx, const std::string &tag,
                   std::int64_t v1, std::int64_t v2)
{
    ir::GlobalId cell = ctx.pb->global(tag);
    ctx.producer->store(cell, I(0), I(v1));
    ctx.consumer->store(cell, I(0), I(v2));

    ExpectedRace race;
    race.cell = tag;
    race.truth = core::RaceClass::KWitnessHarmless;
    race.portend_expected = core::RaceClass::KWitnessHarmless;
    race.required_level = 0;
    return race;
}

ExpectedRace
emitOverflowCrashRace(PatternCtx ctx, const std::string &tag,
                      int table_size)
{
    ir::GlobalId idx = ctx.pb->global(
        tag + "_idx", 1, {table_size - 1});
    ir::GlobalId table = ctx.pb->global(tag + "_table", table_size);

    // Consumer (early): read the index and store through it. In the
    // primary ordering the index is still in bounds.
    ir::Reg i = ctx.consumer->load(idx);
    ctx.consumer->store(table, R(i), I(7));

    // Producer (late): bump the index past the table end; if the
    // bump is reordered before the consumer's use, the store above
    // goes out of bounds.
    ir::Reg v = ctx.producer->load(idx);
    ctx.producer->store(idx, I(0),
                        R(ctx.producer->bin(K::Add, R(v), I(1))));

    ExpectedRace race;
    race.cell = tag + "_idx";
    race.truth = core::RaceClass::SpecViolated;
    race.viol = core::ViolationKind::Crash;
    race.portend_expected = core::RaceClass::SpecViolated;
    race.required_level = 0;
    return race;
}

} // namespace portend::workloads
