/**
 * @file
 * SQLite 3.3.0 model.
 *
 * Table 1: 113,326 LOC of C, 2 forked threads. Table 2/3: exactly
 * one distinct race, a "spec violated" deadlock. The modeled bug is
 * the classic lost-wakeup: a waiter checks a `ready` flag (written
 * by the setter without holding the lock — the race) and then
 * blocks on a condition variable; if the setter's store+signal land
 * between the check and the wait, the signal is lost and the system
 * deadlocks. The primary execution is clean; Portend's alternate
 * ordering plus post-race scheduling exposes the deadlock.
 */

#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::workloads {

Workload
buildSqlite()
{
    ir::ProgramBuilder pb("sqlite");
    ir::GlobalId ready = pb.global("db_ready");
    ir::GlobalId warmup = pb.global("waiter_warmup");
    ir::SyncId m = pb.mutex("db_mutex");
    ir::SyncId cv = pb.cond("db_cond");

    // Waiter: warm-up work delays the check so the primary run sees
    // the setter's store first (and reads ready == 1, skipping the
    // wait entirely).
    auto &waiter = pb.function("db_waiter", 1);
    waiter.file("sqlite/btree.c").line(2210);
    waiter.to(waiter.block("entry"));
    {
        ir::Reg i = waiter.iconst(8);
        ir::BlockId loop = waiter.block("warmup");
        ir::BlockId next = waiter.block("check");
        waiter.jmp(loop);
        waiter.to(loop);
        ir::Reg v = waiter.load(warmup);
        waiter.store(warmup, I(0), R(waiter.bin(K::Add, R(v), I(1))));
        waiter.binInto(i, K::Sub, R(i), I(1));
        waiter.br(R(waiter.bin(K::Sgt, R(i), I(0))), loop, next);
        waiter.to(next);
    }
    waiter.line(2224);
    waiter.lock(m);
    ir::Reg r = waiter.load(ready); // racing read (no lock on writer)
    ir::BlockId wait_b = waiter.block("wait");
    ir::BlockId go_b = waiter.block("go");
    waiter.br(R(r), go_b, wait_b);
    waiter.to(wait_b);
    waiter.line(2227);
    waiter.condWait(cv, m); // buggy: `if`, not `while`
    waiter.jmp(go_b);
    waiter.to(go_b);
    waiter.unlock(m);
    waiter.outputStr("waiter:proceeding");
    waiter.retVoid();

    // Setter: publishes readiness without taking the lock (the bug)
    // and signals.
    auto &setter = pb.function("db_setter", 1);
    setter.file("sqlite/btree.c").line(1893);
    setter.to(setter.block("entry"));
    setter.store(ready, I(0), I(1)); // racing write
    setter.condSignal(cv);
    setter.retVoid();

    auto &m0 = pb.function("main", 0);
    m0.file("sqlite/shell.c").line(88);
    m0.to(m0.block("entry"));
    ir::Reg t1 = m0.threadCreate("db_waiter", I(0));
    ir::Reg t2 = m0.threadCreate("db_setter", I(0));
    m0.threadJoin(R(t1));
    m0.threadJoin(R(t2));
    m0.outputStr("sqlite:done");
    m0.halt();

    Workload w;
    w.name = "SQLite 3.3.0";
    w.language = "C";
    w.paper_loc = 113326;
    w.forked_threads = 2;
    w.paper_instances = 1;
    ExpectedRace race;
    race.cell = "db_ready";
    race.truth = core::RaceClass::SpecViolated;
    race.viol = core::ViolationKind::Deadlock;
    race.portend_expected = core::RaceClass::SpecViolated;
    race.required_level = 0;
    w.expected.push_back(race);
    w.program = pb.build();
    return w;
}

} // namespace portend::workloads
