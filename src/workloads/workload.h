/**
 * @file
 * Workload models and their ground truth.
 *
 * The paper evaluates Portend on 7 real applications and 4
 * microbenchmarks (Table 1). The binaries and inputs are not
 * available offline, so each is modeled as a PIL program that
 * reproduces the application's *documented race population*: the
 * same number of distinct races, the same classification ground
 * truth per race (Table 3), the same technique requirements
 * (Fig. 7: which races need multi-path / multi-schedule analysis),
 * and the same bug anecdotes (the ctrace Fig. 4 overflow, the fmm
 * negative timestamp, the SQLite lost-wakeup deadlock, the
 * memcached what-if experiment).
 */

#ifndef PORTEND_WORKLOADS_WORKLOAD_H
#define PORTEND_WORKLOADS_WORKLOAD_H

#include <string>
#include <vector>

#include "ir/program.h"
#include "portend/analyzer.h"
#include "portend/classify.h"

namespace portend::workloads {

/** Manually established truth for one distinct race. */
struct ExpectedRace
{
    /** Cell the race is on (matched against Program::cellName). */
    std::string cell;

    /** Ground-truth class. */
    core::RaceClass truth = core::RaceClass::KWitnessHarmless;

    /** Violation kind for spec-violated ground truth. */
    core::ViolationKind viol = core::ViolationKind::None;

    /**
     * The class Portend is expected to report. Differs from `truth`
     * only for the deliberately reproduced ocean miss (paper §5.4:
     * one "output differs" race needs an input combination
     * multi-path search cannot find, so Portend says "k-witness").
     */
    core::RaceClass portend_expected =
        core::RaceClass::KWitnessHarmless;

    /** Weakest analysis level that classifies this race correctly
     *  (drives Fig. 7): 0 single-path, 1 +ad-hoc detection,
     *  2 +multi-path, 3 +multi-schedule. */
    int required_level = 0;
};

/** One benchmark program with metadata and ground truth. */
struct Workload
{
    std::string name;        ///< paper name ("pbzip2 2.1.1", ...)
    std::string language;    ///< Table 1 language column
    int paper_loc = 0;       ///< Table 1 LOC (for reference)
    int forked_threads = 0;  ///< Table 1 forked-thread count

    ir::Program program;

    /** Ground truth, one entry per distinct race. */
    std::vector<ExpectedRace> expected;

    /** Table 3 instance count to reproduce. */
    int paper_instances = 0;

    /** Semantic predicates (fmm timestamp check; Table 2). */
    std::vector<core::SemanticPredicate> semantic_predicates;
};

/** @name Model constructors (one per paper workload)
 * @{
 */
Workload buildSqlite();
Workload buildOcean();
Workload buildFmm();
Workload buildMemcached(bool whatif_remove_sync = false);
Workload buildPbzip2();
Workload buildCtrace();
Workload buildBbuf();
Workload buildMicroAvv();
Workload buildMicroDcl();
Workload buildMicroDbm();
Workload buildMicroRw();
/** @} */

/** @name Input-sensitive extension models (see syminput.cc)
 * @{
 */
Workload buildSymBuf();   ///< "ibuf": buffer-size-gated output race
Workload buildSymGuard(); ///< "iguard": input-guarded overflow crash
/** @} */

} // namespace portend::workloads

#endif // PORTEND_WORKLOADS_WORKLOAD_H
