/**
 * @file
 * Delta-debugging minimizer for generated programs.
 *
 * Because every generated program is grown from a ProgramRecipe, the
 * minimizer shrinks the *recipe* and regenerates — the classic ddmin
 * loop applied to construction atoms (pattern instances, sync
 * decorations) instead of text lines. The caller supplies the
 * "still interesting" predicate (e.g. "the same oracle check still
 * fails" or "the behavior signature is unchanged"); the result is
 * 1-minimal: removing any single remaining atom loses the property.
 *
 * After atom removal the minimizer compacts unused worker threads
 * and shrinks per-atom parameters (spin padding, published values,
 * table sizes) toward canonical small values, so reproducers read as
 * small as they execute.
 */

#ifndef PORTEND_FUZZ_MINIMIZE_H
#define PORTEND_FUZZ_MINIMIZE_H

#include <functional>

#include "fuzz/generator.h"

namespace portend::fuzz {

/**
 * "Still interesting" predicate over a candidate recipe. Called on
 * regenerated candidates; must be deterministic.
 */
using RecipePredicate = std::function<bool(const ProgramRecipe &)>;

/** Minimization knobs. */
struct MinimizeOptions
{
    /** Probe (predicate-evaluation) budget; minimization stops at
     *  the best recipe found when exhausted. */
    int max_probes = 200;
};

/** Minimization outcome. */
struct MinimizeResult
{
    ProgramRecipe recipe; ///< smallest recipe still satisfying pred
    int probes = 0;       ///< predicate evaluations spent
    bool one_minimal = false; ///< true when the loop reached fixpoint
};

/**
 * Shrink @p start while @p pred holds.
 *
 * @p start must itself satisfy @p pred (checked; if it does not, the
 * result is @p start with one_minimal = false).
 */
MinimizeResult minimizeRecipe(const ProgramRecipe &start,
                              const RecipePredicate &pred,
                              const MinimizeOptions &opts = {});

} // namespace portend::fuzz

#endif // PORTEND_FUZZ_MINIMIZE_H
