/**
 * @file
 * Fuzzing campaign driver.
 *
 * Fans program generation + oracle evaluation out across the
 * support/ thread pool (one index = one job, results merged in index
 * order), then sequentially minimizes and persists reproducers:
 *
 *  - every flagged program (an oracle disagreement) is shrunk with
 *    the delta-debugging minimizer until the same check still fails,
 *    and saved as a "disagreement" corpus entry;
 *  - the first program exhibiting each novel behavior signature is
 *    shrunk while the signature is preserved and saved as a
 *    "regression" exemplar — the seed corpus future PRs replay.
 *
 * Determinism contract: with a program budget (--budget), the
 * campaign's summary bytes and every corpus file are a pure function
 * of (fuzz seed, detection seed, budget, generator knobs) — worker
 * count and wall-clock never leak in. Wall-clock mode (--seconds)
 * trades that for a time box: the program count then depends on the
 * host, which is why the acceptance workflow pins --budget.
 */

#ifndef PORTEND_FUZZ_FUZZER_H
#define PORTEND_FUZZ_FUZZER_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace portend::fuzz {

/** Campaign configuration. */
struct FuzzOptions
{
    int budget = 200;       ///< programs to generate (when > 0)
    double seconds = 0.0;   ///< wall-clock box; overrides budget when > 0
    std::uint64_t fuzz_seed = 1;      ///< generation seed (--fuzz-seed)
    std::uint64_t detection_seed = 1; ///< schedule seed (--seed)
    int jobs = 1;           ///< worker threads (0 = hardware)
    std::string corpus_dir; ///< "" = do not write reproducers

    /**
     * Campaign directory ("" = ephemeral run, nothing persisted).
     * When set, every index's oracle verdict is stored in a
     * campaign::VerdictCache under its signature — program
     * fingerprint + oracle-config hash (seed, budgets, explorer,
     * deep flag); the trace-hash slot is 0 because the oracle owns
     * its own detection run — and journaled on completion. A re-run
     * or resumed campaign regenerates each program (generation is
     * cheap and deterministic) but skips the oracle for every
     * already-cached signature, which is where all the time goes.
     */
    std::string campaign_dir;

    /** Deep (metamorphic re-execution) oracle on every Nth index. */
    int deep_every = 4;

    /** Cap on new regression exemplars minimized per campaign. */
    int max_new_entries = 16;

    GeneratorOptions gen;
    OracleOptions oracle; ///< seed/deep overridden per program

    /**
     * Test seam: replaces runOracle as the campaign's judge (null =
     * the real oracle). Lets tests inject a known-buggy oracle and
     * assert the flag -> minimize -> persist pipeline end to end.
     */
    std::function<OracleVerdict(const ir::Program &,
                                const OracleOptions &)>
        judge;
};

/** One minimized finding (oracle disagreement). */
struct FuzzFinding
{
    std::uint64_t index = 0;  ///< campaign index that found it
    std::string check;        ///< failed oracle check
    std::string detail;       ///< failure description
    ProgramRecipe minimized;  ///< shrunk reproducer recipe
    std::string entry_name;   ///< corpus entry written ("" if none)
};

/** Campaign outcome. */
struct FuzzResult
{
    std::uint64_t fuzz_seed = 0;
    std::uint64_t detection_seed = 0;
    std::string corpus_dir;
    std::string campaign_dir;

    int programs = 0;
    int verifier_clean = 0;
    int flagged = 0;          ///< programs with >= 1 failed check
    int regression_entries = 0;
    int disagreement_entries = 0;

    std::map<std::string, int> idiom_counts;   ///< programs per idiom
    std::map<std::string, int> class_counts;   ///< verdicts per class
    std::map<std::string, int> outcome_counts; ///< detection outcomes
    std::map<std::string, int> check_runs;     ///< check -> times run
    std::map<std::string, int> check_failures; ///< check -> failures
    std::map<std::string, int> baseline_counts;

    /** Campaign persistence accounting (0 when campaign_dir unset).
     *  cache_hits = indices whose oracle run was skipped entirely;
     *  journal_replays = completed-unit records found at open. */
    int cache_hits = 0;
    int journal_replays = 0;

    std::vector<FuzzFinding> findings;

    double seconds = 0.0; ///< wall clock; never in summaryText()

    /** True when every oracle check of every program passed. */
    bool clean() const { return flagged == 0; }

    /** Deterministic, wall-clock-free campaign summary. */
    std::string summaryText() const;
};

/** Run one campaign. */
FuzzResult runFuzz(const FuzzOptions &opts);

} // namespace portend::fuzz

#endif // PORTEND_FUZZ_FUZZER_H
