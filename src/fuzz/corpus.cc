#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/serialize.h"
#include "replay/trace.h"
#include "support/str.h"

namespace fs = std::filesystem;

namespace portend::fuzz {

namespace {

bool
writeFile(const fs::path &path, const std::string &content,
          std::string *error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (error)
            *error = "cannot open " + path.string() + " for writing";
        return false;
    }
    os << content;
    os.close();
    if (!os) {
        if (error)
            *error = "short write to " + path.string();
        return false;
    }
    return true;
}

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** meta.txt is key=value, one pair per line, order fixed. */
std::string
renderMeta(const CorpusEntry &e)
{
    std::ostringstream os;
    os << "kind=" << e.kind << "\n";
    os << "check=" << e.check << "\n";
    os << "fuzz_seed=" << e.fuzz_seed << "\n";
    os << "index=" << e.index << "\n";
    os << "detection_seed=" << e.detection_seed << "\n";
    os << "explore=" << e.explore << "\n";
    os << "signature=" << e.signature << "\n";
    if (!e.witness.empty())
        os << "witness=" << e.witness << "\n";
    os << "recipe=" << e.recipe_text << "\n";
    return os.str();
}

bool
parseMeta(const std::string &text, CorpusEntry &e, std::string *error)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            if (error) {
                *error = "meta.txt line " + std::to_string(lineno) +
                         ": missing '='";
            }
            return false;
        }
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        try {
            if (key == "kind")
                e.kind = val;
            else if (key == "check")
                e.check = val;
            else if (key == "fuzz_seed")
                e.fuzz_seed = std::stoull(val);
            else if (key == "index")
                e.index = std::stoull(val);
            else if (key == "detection_seed")
                e.detection_seed = std::stoull(val);
            else if (key == "explore")
                e.explore = val;
            else if (key == "signature")
                e.signature = val;
            else if (key == "witness")
                e.witness = val;
            else if (key == "recipe")
                e.recipe_text = val;
            // Unknown keys are ignored (forward compatibility).
        } catch (const std::exception &) {
            if (error) {
                *error = "meta.txt line " + std::to_string(lineno) +
                         ": bad number for " + key;
            }
            return false;
        }
    }
    if (e.kind != "regression" && e.kind != "disagreement") {
        if (error)
            *error = "meta.txt: unknown kind '" + e.kind + "'";
        return false;
    }
    return true;
}

} // namespace

bool
saveEntry(const std::string &dir, const CorpusEntry &entry,
          std::string *error)
{
    std::error_code ec;
    fs::path entry_dir = fs::path(dir) / entry.name;
    fs::create_directories(entry_dir, ec);
    if (ec) {
        if (error)
            *error = "cannot create " + entry_dir.string() + ": " +
                     ec.message();
        return false;
    }
    return writeFile(entry_dir / "meta.txt", renderMeta(entry),
                     error) &&
           writeFile(entry_dir / "program.pil", entry.program_text,
                     error) &&
           writeFile(entry_dir / "trace.txt", entry.trace_text,
                     error);
}

std::optional<CorpusEntry>
loadEntry(const std::string &entry_dir, std::string *error)
{
    fs::path p(entry_dir);
    CorpusEntry e;
    e.name = p.filename().string();

    std::optional<std::string> meta = readFile(p / "meta.txt");
    if (!meta) {
        if (error)
            *error = "missing meta.txt in " + entry_dir;
        return std::nullopt;
    }
    if (!parseMeta(*meta, e, error))
        return std::nullopt;

    std::optional<std::string> prog = readFile(p / "program.pil");
    if (!prog) {
        if (error)
            *error = "missing program.pil in " + entry_dir;
        return std::nullopt;
    }
    e.program_text = *prog;

    std::optional<std::string> trace = readFile(p / "trace.txt");
    if (!trace) {
        if (error)
            *error = "missing trace.txt in " + entry_dir;
        return std::nullopt;
    }
    e.trace_text = *trace;
    return e;
}

std::vector<std::string>
listEntries(const std::string &dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &it : fs::directory_iterator(dir, ec)) {
        if (it.is_directory() &&
            fs::exists(it.path() / "meta.txt")) {
            names.push_back(it.path().filename().string());
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

ReplayOutcome
replayEntry(const CorpusEntry &entry, const OracleOptions &opts)
{
    ReplayOutcome out;
    out.name = entry.name;

    std::string error;
    std::optional<ir::Program> prog =
        ir::deserializeProgram(entry.program_text, &error);
    if (!prog) {
        out.detail = "program.pil does not parse: " + error;
        return out;
    }
    if (!replay::ScheduleTrace::deserialize(entry.trace_text)) {
        out.detail = "trace.txt does not parse";
        return out;
    }

    OracleOptions o = opts;
    o.detection_seed = entry.detection_seed;
    // A recorded signature names the behavior of one exact explorer
    // (explorers legitimately differ where dpor's superset upgrades
    // a k-witness verdict); replay under the pinned one. The deep
    // checks still cross-validate the other explorer.
    if (entry.explore == "random")
        o.explore = explore::ExploreMode::Random;
    else if (entry.explore == "dpor")
        o.explore = explore::ExploreMode::Dpor;
    // Disagreement reproducers falsified a specific check; re-run
    // the full battery so deep checks can be re-evaluated.
    o.deep = o.deep || entry.kind == "disagreement";
    OracleVerdict v = runOracle(*prog, o);

    if (entry.kind == "disagreement") {
        // Green once the recorded falsification no longer reproduces.
        for (const CheckResult &c : v.checks) {
            if (c.name == entry.check && !c.ok) {
                out.detail = "check '" + entry.check +
                             "' still fails: " + c.detail;
                return out;
            }
        }
        out.ok = true;
        return out;
    }

    // Regression entry: signature, trace, and oracle must all hold.
    if (v.flagged()) {
        out.detail = "oracle check '" + v.firstFailure() +
                     "' failed on replay";
        return out;
    }
    if (v.signature() != entry.signature) {
        out.detail = "behavior signature changed: expected [" +
                     entry.signature + "], got [" + v.signature() +
                     "]";
        return out;
    }
    if (v.trace_text != entry.trace_text) {
        out.detail = "recorded schedule trace no longer reproduces";
        return out;
    }
    out.ok = true;
    return out;
}

CorpusRunResult
runCorpus(const std::string &dir, const OracleOptions &opts)
{
    CorpusRunResult res;
    for (const std::string &name : listEntries(dir)) {
        std::string error;
        std::optional<CorpusEntry> entry =
            loadEntry((fs::path(dir) / name).string(), &error);
        ReplayOutcome out;
        out.name = name;
        if (!entry) {
            out.detail = error;
        } else {
            out = replayEntry(*entry, opts);
        }
        res.total += 1;
        if (out.ok)
            res.passed += 1;
        res.outcomes.push_back(std::move(out));
    }
    return res;
}

} // namespace portend::fuzz
