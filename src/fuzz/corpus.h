/**
 * @file
 * On-disk reproducer corpus.
 *
 * Each corpus entry is one directory holding a minimized PIL program
 * (ir::serializeProgram text), the schedule trace of its detection
 * run (ScheduleTrace::serialize text), and a small key=value
 * metadata file recording how the program was grown (recipe, seeds)
 * and what behavior it must reproduce (the oracle signature, or the
 * oracle check it falsified):
 *
 *   <corpus>/<entry>/meta.txt
 *   <corpus>/<entry>/program.pil
 *   <corpus>/<entry>/trace.txt
 *
 * Two entry kinds:
 *  - "regression": a minimized exemplar of a distinct behavior
 *    signature. Replaying must reproduce the signature, the recorded
 *    trace, and a clean oracle — the corpus is a regression suite
 *    every future PR can run (`portend corpus run <dir>`).
 *  - "disagreement": a minimized oracle falsifier, written by a
 *    campaign for triage. Replaying is "green" only once the
 *    disagreement no longer reproduces (i.e. the bug is fixed);
 *    fresh findings are therefore expected to replay red until
 *    fixed, and live in the campaign's output corpus, not in the
 *    checked-in seed corpus.
 *
 * Everything is plain text so reproducers diff, review, and merge
 * like source files.
 */

#ifndef PORTEND_FUZZ_CORPUS_H
#define PORTEND_FUZZ_CORPUS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracle.h"

namespace portend::fuzz {

/** One reproducer. */
struct CorpusEntry
{
    std::string name;              ///< directory name
    std::string kind = "regression"; ///< "regression" | "disagreement"
    std::string check;             ///< failed check (disagreements)
    std::uint64_t fuzz_seed = 0;   ///< campaign seed that found it
    std::uint64_t index = 0;       ///< program index in the campaign
    std::uint64_t detection_seed = 1; ///< schedule seed to replay with

    /**
     * Stage-3 explorer the signature was recorded under ("random" |
     * "dpor"; "" = whatever the replay requests). Pinned like
     * detection_seed: a signature names the behavior of one exact
     * configuration, and explorers legitimately differ on races the
     * dpor superset upgrades from "k-witness harmless" to a
     * decisive class. The oracle battery (including the
     * cross-explorer monotonicity checks) still runs under the
     * replay's requested explorer.
     */
    std::string explore;

    std::string signature;         ///< expected oracle signature

    /** Solver-concretized witness inputs of the deep symbolic run
     *  ("cell:name=value ...", "" when none; emitted only when
     *  non-empty, so legacy corpus bytes are unchanged). */
    std::string witness;
    std::string recipe_text;       ///< ProgramRecipe::serialize form
    std::string program_text;      ///< ir::serializeProgram form
    std::string trace_text;        ///< ScheduleTrace::serialize form
};

/**
 * Write @p entry under @p dir (creating directories as needed).
 *
 * @return false with @p error filled on I/O failure
 */
bool saveEntry(const std::string &dir, const CorpusEntry &entry,
               std::string *error = nullptr);

/** Load one entry directory; nullopt with @p error on bad contents. */
std::optional<CorpusEntry> loadEntry(const std::string &entry_dir,
                                     std::string *error = nullptr);

/** Sorted entry directory names under @p dir (those with meta.txt). */
std::vector<std::string> listEntries(const std::string &dir);

/** One entry's replay outcome. */
struct ReplayOutcome
{
    std::string name;
    bool ok = false;
    std::string detail; ///< why the replay failed ("" when ok)
};

/**
 * Re-run one reproducer: deserialize the program, run the oracle
 * with the recorded detection seed, and compare against the entry's
 * expectations (see the file comment for per-kind semantics).
 */
ReplayOutcome replayEntry(const CorpusEntry &entry,
                          const OracleOptions &opts);

/** Whole-corpus replay result. */
struct CorpusRunResult
{
    int total = 0;
    int passed = 0;
    std::vector<ReplayOutcome> outcomes;

    bool allGreen() const { return passed == total; }
};

/** Replay every entry under @p dir in sorted name order. */
CorpusRunResult runCorpus(const std::string &dir,
                          const OracleOptions &opts);

} // namespace portend::fuzz

#endif // PORTEND_FUZZ_CORPUS_H
