/**
 * @file
 * Differential and metamorphic testing oracle.
 *
 * Given one PIL program, the oracle runs it through the full
 * detector/classifier stack and cross-checks results that must agree
 * by construction, in the spirit of the detector-comparison
 * literature (detectors disagree exactly on corner cases a generator
 * mass-produces):
 *
 *  - structural: the program passes ir::verifyProgram, and its text
 *    serialization round-trips byte-identically;
 *  - determinism: the same seed yields byte-identical verdict
 *    reports and an identical recorded schedule trace;
 *  - jobs invariance: `--jobs 2` verdict bytes equal `--jobs 1`
 *    (the PR-2 scheduler contract);
 *  - detector monotonicity: every cell raced under the full
 *    happens-before detector is also raced under the mutex-blind
 *    detector (fewer HB edges can only grow the unordered set) and
 *    under the Eraser-style lockset detector (an HB race implies no
 *    common lock);
 *  - k-monotonicity: a "spec violated" verdict found by single-path
 *    single-schedule analysis is still found at a larger budget, and
 *    kWitnessHarmless k never shrinks as the budget grows;
 *  - schedule-coverage monotonicity: raising the Ma budget, or
 *    switching the stage-3 explorer from `random` to `dpor`, never
 *    loses a "spec violated" verdict — the dpor explorer runs the
 *    random explorer's schedules first (same seeds, same order)
 *    before its systematic candidates, so it witnesses a superset
 *    of behaviors at equal budget;
 *  - sym-monotonicity: making declared program inputs symbolic may
 *    only upgrade verdicts — a decisive single-path stage-1 verdict
 *    (spec violated / output differs) never becomes harmless when
 *    the multi-path forker explores additional feasible inputs;
 *  - witness-replay: every decisive verdict of the symbolic run
 *    carries evidence that replayEvidence reproduces
 *    byte-identically on repeated replays;
 *  - classifier vs. baselines: a race the static ad-hoc-sync
 *    detector prunes as "single ordering" must be classified
 *    "single ordering" by Portend (dynamic and static recognition of
 *    the same spin loop must agree).
 *
 * Comparisons that are *expected* to disagree (the paper's point:
 * e.g. the Record/Replay-Analyzer's conservative "likely harmful"
 * verdicts against Portend's k-witness) are recorded as counters,
 * never flagged.
 */

#ifndef PORTEND_FUZZ_ORACLE_H
#define PORTEND_FUZZ_ORACLE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "ir/program.h"

namespace portend::fuzz {

/** Oracle configuration (kept small: fuzzing wants throughput). */
struct OracleOptions
{
    std::uint64_t detection_seed = 1; ///< schedule seed (CLI --seed)
    int mp = 3;                       ///< primary paths at full budget
    int ma = 2;                       ///< alternate schedules per primary
    std::uint64_t max_steps = 200000; ///< per-run interpreter budget
    int executor_max_states = 64;     ///< symbolic fork cap

    /** Stage-3 explorer of the primary pipeline run (CLI --explore);
     *  deep mode cross-checks it against the other explorer. */
    explore::ExploreMode explore = explore::ExploreMode::Dpor;

    /**
     * Run the expensive metamorphic re-executions (determinism,
     * jobs invariance, k-monotonicity). The cheap checks always run.
     */
    bool deep = true;
};

/** One oracle check's outcome. */
struct CheckResult
{
    std::string name;   ///< e.g. "determinism", "hb-subset-lockset"
    bool ok = true;
    std::string detail; ///< non-empty when failed (what disagreed)
};

/** Everything the oracle learned about one program. */
struct OracleVerdict
{
    std::vector<CheckResult> checks;

    /** Detection outcome name of the primary pipeline run. */
    std::string outcome;

    int distinct_races = 0;
    int dynamic_races = 0;

    /** Verdict-class name -> cluster count (primary run). */
    std::map<std::string, int> class_counts;

    /** Expected-to-disagree baseline counters (never flagged),
     *  e.g. "replay-analyzer-conservative-fp". */
    std::map<std::string, int> baseline_counts;

    /** Recorded schedule trace of the primary detection run
     *  (serialized; stored in corpus reproducers). */
    std::string trace_text;

    /** Concatenated Fig. 6 reports of the primary run. */
    std::string report_text;

    /**
     * Solver-concretized witness inputs of the deep symbolic run
     * ("cell:name=value ..." per decisive verdict, space-joined;
     * "" when the program declares no inputs or nothing upgraded).
     * Stored in corpus reproducer meta.txt.
     */
    std::string witness_text;

    /** True when any check failed. */
    bool flagged() const;

    /** Name of the first failed check ("" when none). */
    std::string firstFailure() const;

    /**
     * Behavior signature for corpus novelty: detection outcome +
     * class histogram. Deterministic, wall-clock free.
     */
    std::string signature() const;
};

/** Run every applicable check against @p prog. */
OracleVerdict runOracle(const ir::Program &prog,
                        const OracleOptions &opts);

/**
 * Serialize a verdict as the fuzz campaign's cache payload
 * (`portend-fuzz-verdict-v1`): a text header per field with
 * length-prefixed byte blocks, so multi-line members (trace, report)
 * round-trip exactly. deserializeVerdict is the strict inverse —
 * any structural mismatch yields nullopt (the campaign then simply
 * re-runs the oracle, which is always sound).
 */
std::string serializeVerdict(const OracleVerdict &v);
std::optional<OracleVerdict>
deserializeVerdict(const std::string &text,
                   std::string *error = nullptr);

} // namespace portend::fuzz

#endif // PORTEND_FUZZ_ORACLE_H
